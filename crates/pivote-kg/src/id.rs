//! Dense integer identifiers for knowledge-graph objects.
//!
//! Every resource in the graph is dictionary-encoded into a dense `u32`
//! namespace so that extents (`E(π)`, `E(c)`, `E(t)`) can be represented as
//! sorted `u32` slices and intersected without hashing. Separate newtypes
//! keep the namespaces from being mixed up at compile time.

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Construct from a raw index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// The raw dense index.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// The raw index widened for slice indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u32 {
            #[inline]
            fn from(id: $name) -> u32 {
                id.0
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

define_id!(
    /// An entity (RDF resource) in the knowledge graph, e.g. `Forrest_Gump`.
    EntityId
);
define_id!(
    /// A predicate (RDF property), e.g. `starring`.
    PredicateId
);
define_id!(
    /// An entity type, e.g. `Film`. Types come from `rdf:type` statements
    /// but live in their own dense namespace for fast extent lookups.
    TypeId
);
define_id!(
    /// A category, e.g. `American films` (`dct:subject` in DBpedia).
    CategoryId
);
define_id!(
    /// A literal value attached to an entity.
    LiteralId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        let e = EntityId::new(7);
        assert_eq!(e.raw(), 7);
        assert_eq!(e.index(), 7usize);
        assert_eq!(u32::from(e), 7);
        assert_eq!(EntityId::from(7u32), e);
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(EntityId::new(1) < EntityId::new(2));
        assert!(PredicateId::new(0) < PredicateId::new(100));
    }

    #[test]
    fn display_includes_namespace() {
        assert_eq!(EntityId::new(3).to_string(), "EntityId(3)");
        assert_eq!(TypeId::new(0).to_string(), "TypeId(0)");
    }

    #[test]
    fn serde_is_transparent() {
        let json = serde_json::to_string(&EntityId::new(12)).unwrap();
        assert_eq!(json, "12");
        let back: EntityId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, EntityId::new(12));
    }
}

//! Triples, objects and literal values.
//!
//! The store keeps the classic RDF view `<s, p, o>` where `o` is either
//! another entity or a literal. Literals carry a small datatype tag so the
//! search engine can render attribute text ("142 minutes") and experiments
//! can generate typed values deterministically.

use crate::id::{EntityId, LiteralId, PredicateId};
use serde::{Deserialize, Serialize};

/// The object position of a triple: an entity or a literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Object {
    /// Link to another entity.
    Entity(EntityId),
    /// A literal value, stored in the literal table.
    Literal(LiteralId),
}

impl Object {
    /// The entity id if this object is an entity.
    #[inline]
    pub fn as_entity(self) -> Option<EntityId> {
        match self {
            Object::Entity(e) => Some(e),
            Object::Literal(_) => None,
        }
    }

    /// The literal id if this object is a literal.
    #[inline]
    pub fn as_literal(self) -> Option<LiteralId> {
        match self {
            Object::Literal(l) => Some(l),
            Object::Entity(_) => None,
        }
    }
}

/// A single statement `<s, p, o>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Triple {
    /// Subject entity.
    pub subject: EntityId,
    /// Predicate.
    pub predicate: PredicateId,
    /// Object: entity or literal.
    pub object: Object,
}

impl Triple {
    /// Construct a triple.
    #[inline]
    pub fn new(subject: EntityId, predicate: PredicateId, object: Object) -> Self {
        Self {
            subject,
            predicate,
            object,
        }
    }
}

/// Datatype tag of a literal value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LiteralKind {
    /// Plain string (optionally language-tagged in N-Triples).
    String,
    /// Integer (`xsd:integer`).
    Integer,
    /// Floating point (`xsd:double`).
    Double,
    /// Calendar date (`xsd:date`), stored lexically as `YYYY-MM-DD`.
    Date,
}

/// A literal value: lexical form plus datatype tag.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Literal {
    /// Lexical form, e.g. `"142"` or `"Forrest Gump"`.
    pub lexical: String,
    /// Datatype tag.
    pub kind: LiteralKind,
}

impl Literal {
    /// A plain string literal.
    pub fn string(s: impl Into<String>) -> Self {
        Self {
            lexical: s.into(),
            kind: LiteralKind::String,
        }
    }

    /// An integer literal.
    pub fn integer(v: i64) -> Self {
        Self {
            lexical: v.to_string(),
            kind: LiteralKind::Integer,
        }
    }

    /// A double literal.
    pub fn double(v: f64) -> Self {
        Self {
            lexical: format!("{v}"),
            kind: LiteralKind::Double,
        }
    }

    /// A date literal from year/month/day (lexical `YYYY-MM-DD`).
    pub fn date(year: i32, month: u32, day: u32) -> Self {
        Self {
            lexical: format!("{year:04}-{month:02}-{day:02}"),
            kind: LiteralKind::Date,
        }
    }

    /// Parse the lexical form as an integer, if the tag says so.
    pub fn as_integer(&self) -> Option<i64> {
        matches!(self.kind, LiteralKind::Integer)
            .then(|| self.lexical.parse().ok())
            .flatten()
    }

    /// Parse the lexical form as a double (Integer literals widen too).
    pub fn as_double(&self) -> Option<f64> {
        matches!(self.kind, LiteralKind::Double | LiteralKind::Integer)
            .then(|| self.lexical.parse().ok())
            .flatten()
    }
}

impl std::fmt::Display for Literal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.lexical)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_accessors() {
        let e = Object::Entity(EntityId::new(1));
        let l = Object::Literal(LiteralId::new(2));
        assert_eq!(e.as_entity(), Some(EntityId::new(1)));
        assert_eq!(e.as_literal(), None);
        assert_eq!(l.as_literal(), Some(LiteralId::new(2)));
        assert_eq!(l.as_entity(), None);
    }

    #[test]
    fn literal_constructors_and_parsing() {
        assert_eq!(Literal::integer(142).as_integer(), Some(142));
        assert_eq!(Literal::integer(142).as_double(), Some(142.0));
        assert_eq!(Literal::double(1.5).as_double(), Some(1.5));
        assert_eq!(Literal::double(1.5).as_integer(), None);
        assert_eq!(Literal::string("x").as_integer(), None);
        assert_eq!(Literal::date(1994, 7, 6).lexical, "1994-07-06");
    }

    #[test]
    fn triple_ordering_is_spo() {
        let a = Triple::new(
            EntityId::new(0),
            PredicateId::new(1),
            Object::Entity(EntityId::new(0)),
        );
        let b = Triple::new(
            EntityId::new(0),
            PredicateId::new(2),
            Object::Entity(EntityId::new(0)),
        );
        let c = Triple::new(
            EntityId::new(1),
            PredicateId::new(0),
            Object::Entity(EntityId::new(0)),
        );
        assert!(a < b && b < c);
    }
}

//! Binary snapshots: save a frozen [`KnowledgeGraph`] to a compact
//! length-prefixed binary file and load it back without re-parsing or
//! re-generating.
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic "PVTE" | version u32 |
//! entities: count u32, names (str) | labels: Option<str> per entity |
//! predicates / types / categories: count u32, names |
//! literals: count u32, (kind u8, lexical str) |
//! entity edges: count u32, (s u32, p u32, o u32) |
//! literal edges: count u32, (s u32, p u32, lit u32) |
//! type assertions / category assertions: count u32, (e u32, id u32) |
//! aliases: count u32, (e u32, alias str)
//! str = len u32 + UTF-8 bytes
//! ```
//!
//! The snapshot round-trips the *logical* graph through [`KgBuilder`],
//! so derived indexes are rebuilt on load — versioned data, not
//! memory-dumped structs.

use crate::id::{EntityId, PredicateId};
use crate::store::{KgBuilder, KnowledgeGraph};
use crate::triple::{Literal, LiteralKind};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"PVTE";
const VERSION: u32 = 1;

/// Errors from snapshot IO.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying IO failure.
    Io(io::Error),
    /// Not a snapshot file, or an unsupported version.
    Format(String),
    /// A section holds more items (or a string more bytes) than the
    /// format's 32-bit counters can record. Refusing to save beats
    /// silently truncating the count and producing a snapshot that
    /// loads wrong.
    TooLarge {
        /// Which section overflowed.
        what: &'static str,
        /// The length that did not fit.
        len: usize,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot IO error: {e}"),
            SnapshotError::Format(m) => write!(f, "snapshot format error: {m}"),
            SnapshotError::TooLarge { what, len } => write!(
                f,
                "snapshot section `{what}` has {len} items — past the format's u32 counter"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Write a section length as the format's u32 counter, refusing lengths
/// it cannot represent — the one place every count in [`save`] funnels
/// through, so no `as u32` truncation survives anywhere in the writer.
fn write_count(w: &mut impl Write, n: usize, what: &'static str) -> Result<(), SnapshotError> {
    let v = u32::try_from(n).map_err(|_| SnapshotError::TooLarge { what, len: n })?;
    write_u32(w, v)?;
    Ok(())
}

fn write_str(w: &mut impl Write, s: &str) -> Result<(), SnapshotError> {
    write_count(w, s.len(), "string bytes")?;
    w.write_all(s.as_bytes())?;
    Ok(())
}

fn read_u32(r: &mut impl Read) -> Result<u32, SnapshotError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_str(r: &mut impl Read) -> Result<String, SnapshotError> {
    let len = read_u32(r)? as usize;
    if len > 64 * 1024 * 1024 {
        return Err(SnapshotError::Format(format!("string of {len} bytes")));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|e| SnapshotError::Format(format!("invalid UTF-8: {e}")))
}

fn kind_tag(kind: LiteralKind) -> u8 {
    match kind {
        LiteralKind::String => 0,
        LiteralKind::Integer => 1,
        LiteralKind::Double => 2,
        LiteralKind::Date => 3,
    }
}

fn tag_kind(tag: u8) -> Result<LiteralKind, SnapshotError> {
    Ok(match tag {
        0 => LiteralKind::String,
        1 => LiteralKind::Integer,
        2 => LiteralKind::Double,
        3 => LiteralKind::Date,
        other => return Err(SnapshotError::Format(format!("bad literal tag {other}"))),
    })
}

/// Write a snapshot of `kg` to `w`.
pub fn save(kg: &KnowledgeGraph, w: &mut impl Write) -> Result<(), SnapshotError> {
    w.write_all(MAGIC)?;
    write_u32(w, VERSION)?;

    write_count(w, kg.entity_count(), "entities")?;
    for e in kg.entity_ids() {
        write_str(w, kg.entity_name(e))?;
    }
    for e in kg.entity_ids() {
        match kg.label(e) {
            Some(l) => {
                w.write_all(&[1])?;
                write_str(w, l)?;
            }
            None => w.write_all(&[0])?,
        }
    }
    write_count(w, kg.predicate_count(), "predicates")?;
    for p in kg.predicate_ids() {
        write_str(w, kg.predicate_name(p))?;
    }
    write_count(w, kg.type_count(), "types")?;
    for t in kg.type_ids() {
        write_str(w, kg.type_name(t))?;
    }
    write_count(w, kg.category_count(), "categories")?;
    for c in kg.category_ids() {
        write_str(w, kg.category_name(c))?;
    }

    // literal table is reconstructed from literal edges on load
    let literal_edges: Vec<(EntityId, PredicateId, &Literal)> = kg.literal_triples().collect();
    let entity_edges: Vec<_> = kg.entity_triples().collect();

    write_count(w, entity_edges.len(), "entity edges")?;
    for t in &entity_edges {
        write_u32(w, t.subject.raw())?;
        write_u32(w, t.predicate.raw())?;
        match t.object {
            crate::triple::Object::Entity(o) => write_u32(w, o.raw())?,
            crate::triple::Object::Literal(_) => unreachable!("entity_triples yields entities"),
        }
    }
    write_count(w, literal_edges.len(), "literal edges")?;
    for (s, p, lit) in &literal_edges {
        write_u32(w, s.raw())?;
        write_u32(w, p.raw())?;
        w.write_all(&[kind_tag(lit.kind)])?;
        write_str(w, &lit.lexical)?;
    }

    let type_assertions: Vec<(u32, u32)> = kg
        .entity_ids()
        .flat_map(|e| kg.types_of(e).map(move |t| (e.raw(), t.raw())))
        .collect();
    write_count(w, type_assertions.len(), "type assertions")?;
    for (e, t) in type_assertions {
        write_u32(w, e)?;
        write_u32(w, t)?;
    }
    let cat_assertions: Vec<(u32, u32)> = kg
        .entity_ids()
        .flat_map(|e| kg.categories_of(e).map(move |c| (e.raw(), c.raw())))
        .collect();
    write_count(w, cat_assertions.len(), "category assertions")?;
    for (e, c) in cat_assertions {
        write_u32(w, e)?;
        write_u32(w, c)?;
    }

    let aliases: Vec<(u32, &String)> = kg
        .entity_ids()
        .flat_map(|e| kg.aliases(e).iter().map(move |a| (e.raw(), a)))
        .collect();
    write_count(w, aliases.len(), "aliases")?;
    for (e, alias) in aliases {
        write_u32(w, e)?;
        write_str(w, alias)?;
    }
    Ok(())
}

/// Read a snapshot back into a frozen graph.
pub fn load(r: &mut impl Read) -> Result<KnowledgeGraph, SnapshotError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(SnapshotError::Format(
            "bad magic — not a PVTE snapshot".into(),
        ));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(SnapshotError::Format(format!(
            "unsupported snapshot version {version} (expected {VERSION})"
        )));
    }
    let mut b = KgBuilder::new();

    let n_entities = read_u32(r)? as usize;
    let mut entities: Vec<EntityId> = Vec::with_capacity(n_entities);
    for _ in 0..n_entities {
        let name = read_str(r)?;
        entities.push(b.entity(&name));
    }
    for &e in &entities {
        let mut flag = [0u8; 1];
        r.read_exact(&mut flag)?;
        if flag[0] == 1 {
            let label = read_str(r)?;
            b.label(e, label);
        }
    }
    let n_preds = read_u32(r)? as usize;
    let mut predicates: Vec<PredicateId> = Vec::with_capacity(n_preds);
    for _ in 0..n_preds {
        let name = read_str(r)?;
        predicates.push(b.predicate(&name));
    }
    let n_types = read_u32(r)? as usize;
    let mut type_names: Vec<String> = Vec::with_capacity(n_types);
    for _ in 0..n_types {
        type_names.push(read_str(r)?);
    }
    let n_cats = read_u32(r)? as usize;
    let mut cat_names: Vec<String> = Vec::with_capacity(n_cats);
    for _ in 0..n_cats {
        cat_names.push(read_str(r)?);
    }
    // declare the dictionaries in stored id order, so the loaded graph's
    // dense type/category ids equal the saved graph's — required by
    // derived state keyed on those ids (the persisted warm-state sidecar)
    for name in &type_names {
        b.declare_type(name);
    }
    for name in &cat_names {
        b.declare_category(name);
    }

    let lookup_entity = |id: u32, n: usize| -> Result<EntityId, SnapshotError> {
        if (id as usize) < n {
            Ok(EntityId::new(id))
        } else {
            Err(SnapshotError::Format(format!(
                "entity id {id} out of range"
            )))
        }
    };

    let n_edges = read_u32(r)? as usize;
    for _ in 0..n_edges {
        let s = lookup_entity(read_u32(r)?, n_entities)?;
        let p = read_u32(r)? as usize;
        let o = lookup_entity(read_u32(r)?, n_entities)?;
        let p = *predicates
            .get(p)
            .ok_or_else(|| SnapshotError::Format(format!("predicate id {p} out of range")))?;
        b.triple(s, p, o);
    }
    let n_lit = read_u32(r)? as usize;
    for _ in 0..n_lit {
        let s = lookup_entity(read_u32(r)?, n_entities)?;
        let p = read_u32(r)? as usize;
        let p = *predicates
            .get(p)
            .ok_or_else(|| SnapshotError::Format(format!("predicate id {p} out of range")))?;
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        let kind = tag_kind(tag[0])?;
        let lexical = read_str(r)?;
        b.literal_triple(s, p, Literal { lexical, kind });
    }
    let n_ta = read_u32(r)? as usize;
    for _ in 0..n_ta {
        let e = lookup_entity(read_u32(r)?, n_entities)?;
        let t = read_u32(r)? as usize;
        let name = type_names
            .get(t)
            .ok_or_else(|| SnapshotError::Format(format!("type id {t} out of range")))?;
        b.typed(e, name);
    }
    let n_ca = read_u32(r)? as usize;
    for _ in 0..n_ca {
        let e = lookup_entity(read_u32(r)?, n_entities)?;
        let c = read_u32(r)? as usize;
        let name = cat_names
            .get(c)
            .ok_or_else(|| SnapshotError::Format(format!("category id {c} out of range")))?;
        b.categorized(e, name);
    }
    let n_alias = read_u32(r)? as usize;
    for _ in 0..n_alias {
        let e = lookup_entity(read_u32(r)?, n_entities)?;
        let alias = read_str(r)?;
        b.redirect(alias, e);
    }
    Ok(b.finish())
}

/// A 64-bit FNV-1a fingerprint of the logical graph — hashed over the
/// exact bytes [`save`] would write. Restart-stable: a loaded snapshot
/// fingerprints identically to the graph that saved it, and every
/// id-preserving build path (rebuild, append, sharded union rebuild,
/// compaction) fingerprints identically too, because they all
/// serialize byte-identically. The mutation *generation* deliberately
/// does not participate (it resets to 0 on load, and persisting it
/// would break append-vs-rebuild byte identity) — this fingerprint is
/// the pairing key for sidecar artifacts like the persisted warm-state
/// cache.
pub fn fingerprint(kg: &KnowledgeGraph) -> u64 {
    struct FnvWriter(u64);
    impl Write for FnvWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            for &b in buf {
                self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }
    let mut w = FnvWriter(0xcbf2_9ce4_8422_2325);
    // the sink cannot fail, and a graph held in memory is orders of
    // magnitude below the format's u32 section counters
    save(kg, &mut w).expect("in-memory fingerprint write cannot fail");
    w.0
}

/// Save to a file path.
pub fn save_to_path(
    kg: &KnowledgeGraph,
    path: impl AsRef<std::path::Path>,
) -> Result<(), SnapshotError> {
    let mut file = io::BufWriter::new(std::fs::File::create(path)?);
    save(kg, &mut file)?;
    file.flush()?;
    Ok(())
}

/// Load from a file path.
pub fn load_from_path(path: impl AsRef<std::path::Path>) -> Result<KnowledgeGraph, SnapshotError> {
    let mut file = io::BufReader::new(std::fs::File::open(path)?);
    load(&mut file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{generate, DatagenConfig};
    use crate::ntriples;

    #[test]
    fn roundtrip_preserves_the_logical_graph() {
        let kg = generate(&DatagenConfig::tiny());
        let mut buf = Vec::new();
        save(&kg, &mut buf).unwrap();
        let kg2 = load(&mut buf.as_slice()).unwrap();
        assert_eq!(kg2.entity_count(), kg.entity_count());
        assert_eq!(kg2.relation_count(), kg.relation_count());
        assert_eq!(kg2.triple_count(), kg.triple_count());
        // the N-Triples serialization is a full logical fingerprint
        assert_eq!(ntriples::serialize(&kg2), ntriples::serialize(&kg));
    }

    #[test]
    fn fingerprint_is_stable_across_build_paths_and_loads() {
        let kg = generate(&DatagenConfig::tiny());
        let fp = fingerprint(&kg);
        // load roundtrip preserves the fingerprint
        let mut buf = Vec::new();
        save(&kg, &mut buf).unwrap();
        let loaded = load(&mut buf.as_slice()).unwrap();
        assert_eq!(
            fingerprint(&loaded),
            fp,
            "load must preserve the fingerprint"
        );
        // append == rebuild fingerprints identically
        let (mut appended, delta) = crate::delta::split_incremental(&kg, 0.5);
        appended.apply(&delta);
        assert_eq!(fingerprint(&appended), fp, "append path must match");
        // any logical change moves it
        let mut grown = load(&mut buf.as_slice()).unwrap();
        let mut d = crate::delta::DeltaBatch::new();
        d.entity("Fingerprint_Probe");
        grown.apply(&d);
        assert_ne!(fingerprint(&grown), fp, "a grown graph must not collide");
    }

    #[test]
    fn roundtrip_via_files() {
        let kg = generate(&DatagenConfig::tiny());
        let path = std::env::temp_dir().join("pivote_snapshot_test.pvte");
        save_to_path(&kg, &path).unwrap();
        let kg2 = load_from_path(&path).unwrap();
        assert_eq!(kg2.entity_count(), kg.entity_count());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            load(&mut &b"NOPE"[..]),
            Err(SnapshotError::Format(_)) | Err(SnapshotError::Io(_))
        ));
        let err = load(&mut &b"XXXX\x01\x00\x00\x00"[..]).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        let err = load(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn rejects_truncated_snapshot() {
        let kg = generate(&DatagenConfig::tiny());
        let mut buf = Vec::new();
        save(&kg, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_out_of_range_ids() {
        // hand-craft: 1 entity, 0 labels... simpler: corrupt a valid
        // snapshot's edge section by appending a bogus edge count is
        // fragile; instead check oversized string guard
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes()); // 1 entity
        buf.extend_from_slice(&(u32::MAX).to_le_bytes()); // absurd name length
        let err = load(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, SnapshotError::Format(_)), "{err}");
    }

    #[test]
    fn counts_past_u32_are_refused_not_truncated() {
        // the writer path with a mocked length: every section counter
        // funnels through write_count, so driving it past u32::MAX must
        // surface TooLarge — previously `len() as u32` wrapped silently
        // and produced a snapshot that loads wrong
        let mut sink = Vec::new();
        write_count(&mut sink, u32::MAX as usize, "entities").unwrap();
        assert_eq!(sink, (u32::MAX).to_le_bytes());
        let err = write_count(&mut sink, u32::MAX as usize + 1, "entities").unwrap_err();
        match err {
            SnapshotError::TooLarge { what, len } => {
                assert_eq!(what, "entities");
                assert_eq!(len, u32::MAX as usize + 1);
            }
            other => panic!("expected TooLarge, got {other}"),
        }
        let err = write_count(&mut sink, usize::MAX, "aliases").unwrap_err();
        assert!(err.to_string().contains("aliases"), "{err}");
        // nothing is written on refusal — the snapshot stays a prefix of
        // valid sections, never a frame with a wrapped counter
        assert_eq!(sink.len(), 4);
    }

    #[test]
    fn snapshot_is_smaller_than_ntriples() {
        let kg = generate(&DatagenConfig::small());
        let mut buf = Vec::new();
        save(&kg, &mut buf).unwrap();
        let nt = ntriples::serialize(&kg);
        assert!(
            buf.len() < nt.len(),
            "binary {} >= text {}",
            buf.len(),
            nt.len()
        );
    }
}

//! # pivote-kg — knowledge graph substrate for the PivotE reproduction
//!
//! An in-memory, dictionary-encoded RDF-style knowledge graph store with
//! the access paths the PivotE system (VLDB'19) needs:
//!
//! - dense integer ids for entities/predicates/types/categories ([`id`]);
//! - CSR adjacency in both directions with per-predicate runs sorted by
//!   target id, so semantic-feature extents `E(π)` are zero-copy sorted
//!   slices ([`store`]);
//! - types, Wikipedia-style categories, labels, literals and redirect
//!   aliases as first-class indexes ([`store`], [`schema`]);
//! - N-Triples input/output for real DBpedia-style data ([`ntriples`]);
//! - a deterministic synthetic DBpedia-like generator that substitutes for
//!   the paper's DBpedia corpus ([`datagen`]);
//! - entity-id-range sharding — [`ShardedGraph`]/[`ShardRouter`] with a
//!   shard-local id remap whose invariants make sharded rankings
//!   bit-identical to single-graph rankings ([`shard`]);
//! - type-coupling statistics backing the paper's Fig. 1-b type view and
//!   the pivot operation ([`stats`]).
//!
//! ## Quick start
//!
//! ```
//! use pivote_kg::{DatagenConfig, generate};
//!
//! let kg = generate(&DatagenConfig::tiny());
//! let film = kg.type_id("Film").unwrap();
//! assert!(!kg.type_extent(film).is_empty());
//! let f = kg.type_extent(film)[0];
//! let starring = kg.predicate("starring").unwrap();
//! // E(f:starring→): the cast of f, a sorted entity-id slice.
//! assert!(kg.objects(f, starring).len() >= 2);
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod datagen;
pub mod delta;
pub mod id;
pub mod interner;
pub mod ntriples;
pub mod schema;
pub mod shard;
pub mod snapshot;
pub mod stats;
pub mod store;
pub mod triple;
pub mod wal;

pub use backend::GraphBackend;
pub use datagen::{generate, DatagenConfig, Zipf};
pub use delta::{
    incremental_from_env, replica_from_env, retract_from_env, scale_from_env, snapshot_from_env,
    split_growth, split_incremental, AppliedDelta, CompactionReceipt, DeltaBatch, DeltaOp,
};
pub use id::{CategoryId, EntityId, LiteralId, PredicateId, TypeId};
pub use interner::Interner;
pub use ntriples::{
    parse, parse_into_builder, parse_into_delta, parse_removed_into_delta, parse_removed_stream,
    parse_stream, serialize, ParseError, StreamError, StreamStats,
};
pub use shard::maintenance_from_env;
pub use shard::{
    compact_from_env, shard_counts_from_env, CompactionPolicy, GraphShard, ShardRouter,
    ShardedGraph,
};
pub use snapshot::{fingerprint, load_from_path, save_to_path, SnapshotError};
pub use stats::{Coupling, TypeCouplingStats};
pub use store::{GraphSummary, KgBuilder, KnowledgeGraph};
pub use triple::{Literal, LiteralKind, Object, Triple};
pub use wal::{read_records, WalError, WalEvent, WalHeader, WalReader, WalRecord, WalWriter};

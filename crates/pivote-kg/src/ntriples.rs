//! N-Triples reading and writing.
//!
//! Supports the subset of N-Triples that DBpedia dumps use: IRI subjects
//! and predicates; IRI or literal objects; literals with optional language
//! tags or `^^<datatype>` annotations. Well-known predicates
//! ([`crate::schema`]) are routed into the store's dedicated indexes
//! (types, categories, labels, aliases) instead of generic edges, matching
//! how PivotE treats DBpedia input.
//!
//! Three entry points share one statement parser and one line filter:
//!
//! - [`parse`] / [`parse_into_builder`] — whole document to a fresh graph;
//! - [`parse_into_delta`] — whole document to one [`DeltaBatch`];
//! - [`parse_stream`] — any [`io::BufRead`] to a series of bounded
//!   [`DeltaBatch`]es, for dumps too large to hold in memory.
//!
//! The parser works on borrowed slices of the current line: terms are
//! never copied into intermediate `String`s (literals allocate only when
//! they actually contain escapes), and the streaming path reuses one line
//! buffer and one batch for the whole document.

use crate::delta::DeltaBatch;
use crate::schema;
use crate::store::{KgBuilder, KnowledgeGraph};
use crate::triple::{Literal, LiteralKind};
use std::borrow::Cow;
use std::fmt::Write as _;
use std::io;

/// A parse error with 1-based line number and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line where the error occurred.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "N-Triples parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Failure of a streaming parse: either the underlying reader or the
/// N-Triples syntax.
#[derive(Debug)]
pub enum StreamError {
    /// The reader failed.
    Io(io::Error),
    /// A statement failed to parse (with its 1-based line number).
    Parse(ParseError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "N-Triples stream read error: {e}"),
            StreamError::Parse(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Io(e) => Some(e),
            StreamError::Parse(e) => Some(e),
        }
    }
}

impl From<io::Error> for StreamError {
    fn from(e: io::Error) -> Self {
        StreamError::Io(e)
    }
}

impl From<ParseError> for StreamError {
    fn from(e: ParseError) -> Self {
        StreamError::Parse(e)
    }
}

/// What a completed [`parse_stream`] run saw.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Statements parsed (one delta op each).
    pub statements: usize,
    /// Input lines read, including skipped comments and blanks.
    pub lines: usize,
    /// Batches handed to the sink.
    pub batches: usize,
}

/// One parsed term, borrowing from the current line. Literal lexical forms
/// stay borrowed unless the source contained escapes.
#[derive(Debug, Clone, PartialEq, Eq)]
enum TermRef<'a> {
    Iri(&'a str),
    Literal {
        lexical: Cow<'a, str>,
        kind: LiteralKind,
    },
}

/// The single line filter every entry point routes through: returns the
/// statement body, or `None` for blank lines and `# comment` lines.
#[inline]
fn statement_body(raw: &str) -> Option<&str> {
    let line = raw.trim();
    if line.is_empty() || line.starts_with('#') {
        None
    } else {
        Some(line)
    }
}

/// Parse an N-Triples document into a fresh [`KgBuilder`].
///
/// Comments (`# ...`) and blank lines are skipped. Returns the builder so
/// callers can add more statements before freezing.
///
/// Implemented as per-line delta routing + builder replay (one reused
/// one-statement batch, so peak memory stays per-line): the bulk-parse
/// and the incremental-append paths share one statement-routing
/// implementation and can never diverge.
pub fn parse_into_builder(input: &str) -> Result<KgBuilder, ParseError> {
    let mut b = KgBuilder::new();
    let mut line_batch = DeltaBatch::new();
    for (lineno, raw) in input.lines().enumerate() {
        let Some(line) = statement_body(raw) else {
            continue;
        };
        parse_line_delta(line, lineno + 1, &mut line_batch)?;
        line_batch.apply_to_builder(&mut b);
        line_batch.clear();
    }
    Ok(b)
}

/// Parse an N-Triples document straight into a frozen [`KnowledgeGraph`].
pub fn parse(input: &str) -> Result<KnowledgeGraph, ParseError> {
    Ok(parse_into_builder(input)?.finish())
}

/// Parse an N-Triples document into a [`DeltaBatch`] for appending to a
/// live graph via `KnowledgeGraph::apply`/`ShardedGraph::apply`. Each
/// statement is routed exactly like [`parse`] routes it (types,
/// categories, labels and aliases into their dedicated ops), in line
/// order — so parsing a document in two halves and appending the second
/// half yields the same graph as parsing the whole document.
pub fn parse_into_delta(input: &str) -> Result<DeltaBatch, ParseError> {
    let mut d = DeltaBatch::new();
    for (lineno, raw) in input.lines().enumerate() {
        let Some(line) = statement_body(raw) else {
            continue;
        };
        parse_line_delta(line, lineno + 1, &mut d)?;
    }
    Ok(d)
}

/// Parse a *removed-triples* N-Triples document (the `removed.nt` half of
/// a DBpedia-Live style changeset) into a [`DeltaBatch`] of retract ops.
/// Each statement is routed through the same well-known-predicate schema
/// as [`parse_into_delta`], but to the retract form of the op: `rdf:type`
/// becomes a type retraction, `rdfs:label` a label retraction, redirects
/// and disambiguations alias retractions, and everything else a triple or
/// literal retraction. Statements naming unknown entities are no-ops at
/// apply time — a retract never interns.
pub fn parse_removed_into_delta(input: &str) -> Result<DeltaBatch, ParseError> {
    let mut d = DeltaBatch::new();
    for (lineno, raw) in input.lines().enumerate() {
        let Some(line) = statement_body(raw) else {
            continue;
        };
        parse_line_retract(line, lineno + 1, &mut d)?;
    }
    Ok(d)
}

/// [`parse_stream`] for a removed-triples source: every batch handed to
/// the sink holds retract ops routed exactly as
/// [`parse_removed_into_delta`] routes them, with the same bounded-memory
/// and batch-boundary guarantees as the insert-polarity stream.
pub fn parse_removed_stream<R, F>(
    reader: R,
    max_ops: usize,
    mut sink: F,
) -> Result<StreamStats, StreamError>
where
    R: io::BufRead,
    F: FnMut(&mut DeltaBatch),
{
    let max_ops = max_ops.max(1);
    let mut reader = reader;
    let mut line = String::new();
    let mut batch = DeltaBatch::new();
    let mut stats = StreamStats::default();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        stats.lines += 1;
        if let Some(body) = statement_body(&line) {
            parse_line_retract(body, stats.lines, &mut batch)?;
            stats.statements += 1;
            if batch.len() >= max_ops {
                stats.batches += 1;
                sink(&mut batch);
                batch.clear();
            }
        }
    }
    if !batch.is_empty() {
        stats.batches += 1;
        sink(&mut batch);
        batch.clear();
    }
    Ok(stats)
}

/// Parse N-Triples from any buffered reader, handing the sink one
/// [`DeltaBatch`] of at most `max_ops` ops at a time.
///
/// This is the bounded-memory ingest path: the document is never held in
/// memory — one line buffer and one batch are reused for the whole
/// stream, so peak memory is O(`max_ops`), not O(document). Ops arrive at
/// the sink in exact line order and batch boundaries fall at fixed op
/// counts, so splitting the same document into any sequence of read
/// chunks yields the identical op sequence (and therefore an identical
/// graph) as [`parse_into_delta`] — chunk boundaries cannot change
/// interning order.
///
/// The batch passed to the sink is cleared and reused afterwards; sinks
/// that need to keep ops must copy them out. `max_ops` is clamped to at
/// least 1. The final partial batch is flushed before returning.
pub fn parse_stream<R, F>(
    reader: R,
    max_ops: usize,
    mut sink: F,
) -> Result<StreamStats, StreamError>
where
    R: io::BufRead,
    F: FnMut(&mut DeltaBatch),
{
    let max_ops = max_ops.max(1);
    let mut reader = reader;
    let mut line = String::new();
    let mut batch = DeltaBatch::new();
    let mut stats = StreamStats::default();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        stats.lines += 1;
        if let Some(body) = statement_body(&line) {
            parse_line_delta(body, stats.lines, &mut batch)?;
            stats.statements += 1;
            if batch.len() >= max_ops {
                stats.batches += 1;
                sink(&mut batch);
                batch.clear();
            }
        }
    }
    if !batch.is_empty() {
        stats.batches += 1;
        sink(&mut batch);
        batch.clear();
    }
    Ok(stats)
}

fn parse_line_delta(line: &str, lineno: usize, d: &mut DeltaBatch) -> Result<(), ParseError> {
    let (subject, predicate, object) = parse_statement(line, lineno)?;
    match (predicate, object) {
        // Redirect/disambiguation subjects are alias pages, not entities
        // of the graph proper — they become alias strings on the target,
        // so `parse(serialize(kg))` preserves the entity count.
        (schema::DBO_REDIRECT, TermRef::Iri(o)) => {
            d.redirect(
                schema::local_name(subject).replace('_', " "),
                schema::local_name(o),
            );
        }
        (schema::DBO_DISAMBIGUATES, TermRef::Iri(o)) => {
            d.disambiguation(
                schema::local_name(subject).replace('_', " "),
                schema::local_name(o),
            );
        }
        (schema::RDF_TYPE, TermRef::Iri(o)) => {
            d.typed(schema::local_name(subject), schema::local_name(o));
        }
        (schema::RDFS_LABEL, TermRef::Literal { lexical, .. }) => {
            d.label(schema::local_name(subject), lexical);
        }
        (schema::DCT_SUBJECT, TermRef::Iri(o)) => {
            d.categorized(
                schema::local_name(subject),
                schema::category_name(o).replace('_', " "),
            );
        }
        (_, TermRef::Iri(o)) => {
            d.triple(
                schema::local_name(subject),
                schema::local_name(predicate),
                schema::local_name(o),
            );
        }
        (_, TermRef::Literal { lexical, kind }) => {
            d.literal(
                schema::local_name(subject),
                schema::local_name(predicate),
                Literal {
                    lexical: lexical.into_owned(),
                    kind,
                },
            );
        }
    }
    Ok(())
}

/// Retract-polarity twin of [`parse_line_delta`]: identical statement
/// parsing and schema routing, emitting the retract form of each op.
fn parse_line_retract(line: &str, lineno: usize, d: &mut DeltaBatch) -> Result<(), ParseError> {
    let (subject, predicate, object) = parse_statement(line, lineno)?;
    match (predicate, object) {
        (schema::DBO_REDIRECT, TermRef::Iri(o)) | (schema::DBO_DISAMBIGUATES, TermRef::Iri(o)) => {
            d.retract_alias(
                schema::local_name(subject).replace('_', " "),
                schema::local_name(o),
            );
        }
        (schema::RDF_TYPE, TermRef::Iri(o)) => {
            d.retract_typed(schema::local_name(subject), schema::local_name(o));
        }
        (schema::RDFS_LABEL, TermRef::Literal { lexical, .. }) => {
            d.retract_label(schema::local_name(subject), lexical);
        }
        (schema::DCT_SUBJECT, TermRef::Iri(o)) => {
            d.retract_categorized(
                schema::local_name(subject),
                schema::category_name(o).replace('_', " "),
            );
        }
        (_, TermRef::Iri(o)) => {
            d.retract_triple(
                schema::local_name(subject),
                schema::local_name(predicate),
                schema::local_name(o),
            );
        }
        (_, TermRef::Literal { lexical, kind }) => {
            d.retract_literal(
                schema::local_name(subject),
                schema::local_name(predicate),
                Literal {
                    lexical: lexical.into_owned(),
                    kind,
                },
            );
        }
    }
    Ok(())
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parse one statement into `(subject IRI, predicate IRI, object term)`,
/// borrowing everything from `line`.
fn parse_statement(line: &str, lineno: usize) -> Result<(&str, &str, TermRef<'_>), ParseError> {
    let mut rest = line;
    let subject = match take_term(&mut rest, lineno)? {
        TermRef::Iri(iri) => iri,
        TermRef::Literal { .. } => return Err(err(lineno, "subject must be an IRI")),
    };
    let predicate = match take_term(&mut rest, lineno)? {
        TermRef::Iri(iri) => iri,
        TermRef::Literal { .. } => return Err(err(lineno, "predicate must be an IRI")),
    };
    let object = take_term(&mut rest, lineno)?;
    let rest = rest.trim_start();
    if !rest.starts_with('.') {
        return Err(err(lineno, "statement must end with '.'"));
    }
    Ok((subject, predicate, object))
}

/// Consume one term (IRI or literal) from the front of `rest`.
fn take_term<'a>(rest: &mut &'a str, lineno: usize) -> Result<TermRef<'a>, ParseError> {
    *rest = rest.trim_start();
    let bytes = rest.as_bytes();
    match bytes.first() {
        Some(b'<') => {
            let end = rest
                .find('>')
                .ok_or_else(|| err(lineno, "unterminated IRI"))?;
            let iri = &rest[1..end];
            if iri.is_empty() {
                return Err(err(lineno, "empty IRI"));
            }
            *rest = &rest[end + 1..];
            Ok(TermRef::Iri(iri))
        }
        Some(b'"') => {
            let (lexical, consumed) = take_quoted(rest, lineno)?;
            *rest = &rest[consumed..];
            // optional language tag or datatype
            let mut kind = LiteralKind::String;
            if let Some(stripped) = rest.strip_prefix('@') {
                let end = stripped.find([' ', '\t']).unwrap_or(stripped.len());
                *rest = &stripped[end..];
            } else if let Some(stripped) = rest.strip_prefix("^^<") {
                let end = stripped
                    .find('>')
                    .ok_or_else(|| err(lineno, "unterminated datatype IRI"))?;
                let dt = &stripped[..end];
                kind = datatype_kind(dt);
                *rest = &stripped[end + 1..];
            }
            Ok(TermRef::Literal { lexical, kind })
        }
        Some(_) => Err(err(lineno, format!("unexpected term start: {rest:.20}"))),
        None => Err(err(lineno, "unexpected end of statement")),
    }
}

/// Parse a double-quoted string with `\"`, `\\`, `\n`, `\t`, `\r` escapes.
/// Returns the content — borrowed when the source contains no escapes —
/// and how many input bytes were consumed (including both quotes).
fn take_quoted<'a>(input: &'a str, lineno: usize) -> Result<(Cow<'a, str>, usize), ParseError> {
    debug_assert!(input.starts_with('"'));
    let body = &input[1..];
    let Some(stop) = body.find(['"', '\\']) else {
        return Err(err(lineno, "unterminated string literal"));
    };
    if body.as_bytes()[stop] == b'"' {
        // fast path: no escapes, borrow straight from the line
        return Ok((Cow::Borrowed(&body[..stop]), stop + 2));
    }
    let mut out = String::with_capacity(body.len());
    out.push_str(&body[..stop]);
    let mut chars = body[stop..].char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((Cow::Owned(out), 1 + stop + i + 1)),
            '\\' => {
                let (_, esc) = chars.next().ok_or_else(|| err(lineno, "dangling escape"))?;
                out.push(match esc {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    '"' => '"',
                    '\\' => '\\',
                    other => return Err(err(lineno, format!("unknown escape \\{other}"))),
                });
            }
            other => out.push(other),
        }
    }
    Err(err(lineno, "unterminated string literal"))
}

fn datatype_kind(dt: &str) -> LiteralKind {
    match schema::local_name(dt) {
        "integer" | "int" | "long" | "nonNegativeInteger" => LiteralKind::Integer,
        "double" | "float" | "decimal" => LiteralKind::Double,
        "date" => LiteralKind::Date,
        _ => LiteralKind::String,
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

fn datatype_iri(kind: LiteralKind) -> Option<&'static str> {
    match kind {
        LiteralKind::String => None,
        LiteralKind::Integer => Some("http://www.w3.org/2001/XMLSchema#integer"),
        LiteralKind::Double => Some("http://www.w3.org/2001/XMLSchema#double"),
        LiteralKind::Date => Some("http://www.w3.org/2001/XMLSchema#date"),
    }
}

/// Serialize a knowledge graph to N-Triples, inverse of [`parse`].
///
/// Types, categories, labels and aliases are written back with their
/// well-known predicates so that `parse(serialize(kg))` reconstructs the
/// same logical graph.
pub fn serialize(kg: &KnowledgeGraph) -> String {
    let mut out = String::new();
    let ent = |name: &str| format!("<{}{}>", schema::NS_RESOURCE, name);
    for e in kg.entity_ids() {
        let s = ent(kg.entity_name(e));
        if let Some(label) = kg.label(e) {
            let _ = writeln!(out, "{s} <{}> \"{}\" .", schema::RDFS_LABEL, escape(label));
        }
        for t in kg.types_of(e) {
            let _ = writeln!(
                out,
                "{s} <{}> <{}{}> .",
                schema::RDF_TYPE,
                schema::NS_ONTOLOGY,
                kg.type_name(t)
            );
        }
        for c in kg.categories_of(e) {
            let _ = writeln!(
                out,
                "{s} <{}> <{}{}> .",
                schema::DCT_SUBJECT,
                schema::NS_CATEGORY,
                kg.category_name(c).replace(' ', "_")
            );
        }
        for alias in kg.aliases(e) {
            let _ = writeln!(
                out,
                "{} <{}> {s} .",
                ent(&alias.replace(' ', "_")),
                schema::DBO_REDIRECT
            );
        }
        for (p, o) in kg.out_edges(e) {
            let _ = writeln!(
                out,
                "{s} <{}{}> {} .",
                schema::NS_ONTOLOGY,
                kg.predicate_name(p),
                ent(kg.entity_name(o))
            );
        }
        for (p, l) in kg.literals(e) {
            let dt = match datatype_iri(l.kind) {
                Some(iri) => format!("^^<{iri}>"),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "{s} <{}{}> \"{}\"{dt} .",
                schema::NS_ONTOLOGY,
                kg.predicate_name(p),
                escape(&l.lexical)
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# a comment
<http://dbpedia.org/resource/Forrest_Gump> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://dbpedia.org/ontology/Film> .
<http://dbpedia.org/resource/Forrest_Gump> <http://www.w3.org/2000/01/rdf-schema#label> "Forrest Gump"@en .
<http://dbpedia.org/resource/Forrest_Gump> <http://dbpedia.org/ontology/starring> <http://dbpedia.org/resource/Tom_Hanks> .
<http://dbpedia.org/resource/Forrest_Gump> <http://purl.org/dc/terms/subject> <http://dbpedia.org/resource/Category:American_films> .
<http://dbpedia.org/resource/Forrest_Gump> <http://dbpedia.org/ontology/runtime> "142"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://dbpedia.org/resource/Geenbow> <http://dbpedia.org/ontology/wikiPageRedirects> <http://dbpedia.org/resource/Forrest_Gump> .
"#;

    #[test]
    fn parses_dbpedia_style_sample() {
        let kg = parse(SAMPLE).unwrap();
        let gump = kg.entity("Forrest_Gump").unwrap();
        assert_eq!(kg.label(gump), Some("Forrest Gump"));
        assert!(kg.type_id("Film").is_some());
        assert_eq!(
            kg.category_name(kg.categories_of(gump).next().unwrap()),
            "American films"
        );
        let starring = kg.predicate("starring").unwrap();
        assert_eq!(kg.objects(gump, starring).len(), 1);
        let lit: Vec<_> = kg.literals(gump).collect();
        assert_eq!(lit[0].1.as_integer(), Some(142));
        assert_eq!(kg.aliases(gump), &["Geenbow".to_owned()]);
    }

    #[test]
    fn rejects_literal_subject() {
        let e = parse(r#""x" <http://p> <http://o> ."#).unwrap_err();
        assert!(e.message.contains("subject"));
        assert_eq!(e.line, 1);
    }

    #[test]
    fn rejects_missing_dot() {
        let e = parse("<http://s> <http://p> <http://o>").unwrap_err();
        assert!(e.message.contains("'.'"));
    }

    #[test]
    fn rejects_unterminated_iri_and_string() {
        assert!(parse("<http://s <http://p> <http://o> .").is_err());
        assert!(parse(r#"<http://s> <http://p> "oops ."#).is_err());
    }

    #[test]
    fn rejects_unknown_escape() {
        let e = parse(r#"<http://s> <http://p> "bad\q" ."#).unwrap_err();
        assert!(e.message.contains("escape"));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let src = r#"<http://s> <http://p> "line\nbreak \"quoted\" tab\t" ."#;
        let kg = parse(src).unwrap();
        let s = kg.entity("s").unwrap();
        let (_, lit) = kg.literals(s).next().unwrap();
        assert_eq!(lit.lexical, "line\nbreak \"quoted\" tab\t");
    }

    #[test]
    fn serialize_then_parse_preserves_structure() {
        let kg = parse(SAMPLE).unwrap();
        let nt = serialize(&kg);
        let kg2 = parse(&nt).unwrap();
        assert_eq!(kg2.entity_count(), kg.entity_count());
        assert_eq!(kg2.relation_count(), kg.relation_count());
        assert_eq!(kg2.type_count(), kg.type_count());
        assert_eq!(kg2.category_count(), kg.category_count());
        let gump = kg2.entity("Forrest_Gump").unwrap();
        assert_eq!(kg2.label(gump), Some("Forrest Gump"));
        assert_eq!(kg2.aliases(gump), &["Geenbow".to_owned()]);
        let lit: Vec<_> = kg2.literals(gump).collect();
        assert_eq!(lit[0].1.as_integer(), Some(142));
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let kg = parse("").unwrap();
        assert_eq!(kg.entity_count(), 0);
    }

    /// Comments and blank lines (including indented and whitespace-only
    /// ones) are skipped by every entry point identically.
    #[test]
    fn comments_and_blanks_skipped_in_all_entry_points() {
        let src = "\n# leading comment\n  \t \n<http://s> <http://p> <http://o> .\n   # indented comment\n\n<http://s2> <http://p> <http://o> .\n\t\n# trailing comment";
        let via_builder = parse_into_builder(src).unwrap().finish();
        assert_eq!(via_builder.entity_count(), 3); // s, s2, o

        let via_delta = parse_into_delta(src).unwrap();
        assert_eq!(via_delta.len(), 2);

        let mut streamed = DeltaBatch::new();
        let stats = parse_stream(src.as_bytes(), 1, |b| {
            for op in b.ops() {
                streamed.push(op.clone());
            }
        })
        .unwrap();
        assert_eq!(stats.statements, 2);
        assert_eq!(stats.batches, 2);
        assert_eq!(streamed.ops(), via_delta.ops());
    }

    /// The streamed op sequence equals the bulk `parse_into_delta` op
    /// sequence regardless of batch size, and the final partial batch is
    /// flushed.
    #[test]
    fn parse_stream_matches_bulk_parse() {
        let bulk = parse_into_delta(SAMPLE).unwrap();
        for max_ops in [1, 2, 3, 100] {
            let mut streamed = DeltaBatch::new();
            let mut sizes = Vec::new();
            let stats = parse_stream(SAMPLE.as_bytes(), max_ops, |b| {
                sizes.push(b.len());
                for op in b.ops() {
                    streamed.push(op.clone());
                }
            })
            .unwrap();
            assert_eq!(streamed.ops(), bulk.ops(), "max_ops={max_ops}");
            assert_eq!(stats.statements, bulk.len());
            assert_eq!(stats.batches, sizes.len());
            assert!(sizes.iter().all(|&s| s <= max_ops.max(1)));
        }
    }

    /// A removed-triples document routes every statement to the retract
    /// twin of the op the added-triples parser would emit, and applying
    /// `added` then `removed` of the same document leaves the store
    /// holding only tombstones (the dictionaries survive — a retract
    /// never removes a name).
    #[test]
    fn parse_removed_mirrors_parse_added() {
        use crate::delta::DeltaOp;
        let removed = parse_removed_into_delta(SAMPLE).unwrap();
        let added = parse_into_delta(SAMPLE).unwrap();
        assert_eq!(removed.len(), added.len());
        assert!(removed.ops().iter().all(DeltaOp::is_retract));

        let mut streamed = DeltaBatch::new();
        let stats = parse_removed_stream(SAMPLE.as_bytes(), 2, |b| {
            for op in b.ops() {
                streamed.push(op.clone());
            }
        })
        .unwrap();
        assert_eq!(streamed.ops(), removed.ops());
        assert_eq!(stats.statements, removed.len());

        let mut kg = parse(SAMPLE).unwrap();
        let gump = kg.entity("Forrest_Gump").unwrap();
        kg.apply(&removed);
        assert_eq!(kg.relation_count(), 0);
        assert_eq!(kg.label(gump), None);
        assert_eq!(kg.types_of(gump).count(), 0);
        assert_eq!(kg.categories_of(gump).count(), 0);
        assert_eq!(kg.literals(gump).count(), 0);
        assert!(kg.aliases(gump).is_empty());
        assert!(kg.tombstone_count() > 0);
        assert_eq!(kg.entity("Forrest_Gump"), Some(gump));
    }

    #[test]
    fn parse_stream_reports_parse_errors_with_line_numbers() {
        let src = "<http://s> <http://p> <http://o> .\n<http://s> bad .\n";
        let e = parse_stream(src.as_bytes(), 8, |_| {}).unwrap_err();
        match e {
            StreamError::Parse(p) => assert_eq!(p.line, 2),
            StreamError::Io(_) => panic!("expected parse error"),
        }
    }

    #[test]
    fn parse_stream_empty_input_sends_no_batches() {
        let stats = parse_stream("".as_bytes(), 8, |_| panic!("no batch expected")).unwrap();
        assert_eq!(stats, StreamStats::default());
    }

    /// Borrowed-literal fast path and escaped slow path agree with the
    /// old always-owned behaviour.
    #[test]
    fn quoted_fast_and_slow_paths() {
        let (plain, n) = take_quoted(r#""hello world" ."#, 1).unwrap();
        assert!(matches!(plain, Cow::Borrowed("hello world")));
        assert_eq!(n, 13);
        let (esc, n) = take_quoted(r#""a\"b\\c" ."#, 1).unwrap();
        assert_eq!(esc.as_ref(), "a\"b\\c");
        assert!(matches!(esc, Cow::Owned(_)));
        assert_eq!(n, 9);
    }
}

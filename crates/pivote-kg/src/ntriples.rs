//! N-Triples reading and writing.
//!
//! Supports the subset of N-Triples that DBpedia dumps use: IRI subjects
//! and predicates; IRI or literal objects; literals with optional language
//! tags or `^^<datatype>` annotations. Well-known predicates
//! ([`crate::schema`]) are routed into the store's dedicated indexes
//! (types, categories, labels, aliases) instead of generic edges, matching
//! how PivotE treats DBpedia input.

use crate::delta::DeltaBatch;
use crate::schema;
use crate::store::{KgBuilder, KnowledgeGraph};
use crate::triple::{Literal, LiteralKind};
use std::fmt::Write as _;

/// A parse error with 1-based line number and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line where the error occurred.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "N-Triples parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// One parsed term.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Term {
    Iri(String),
    Literal(Literal),
}

/// Parse an N-Triples document into a fresh [`KgBuilder`].
///
/// Comments (`# ...`) and blank lines are skipped. Returns the builder so
/// callers can add more statements before freezing.
///
/// Implemented as per-line delta routing + builder replay (one reused
/// one-statement batch, so peak memory stays per-line): the bulk-parse
/// and the incremental-append paths share one statement-routing
/// implementation and can never diverge.
pub fn parse_into_builder(input: &str) -> Result<KgBuilder, ParseError> {
    let mut b = KgBuilder::new();
    let mut line_batch = DeltaBatch::new();
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        parse_line_delta(line, lineno + 1, &mut line_batch)?;
        line_batch.apply_to_builder(&mut b);
        line_batch.clear();
    }
    Ok(b)
}

/// Parse an N-Triples document straight into a frozen [`KnowledgeGraph`].
pub fn parse(input: &str) -> Result<KnowledgeGraph, ParseError> {
    Ok(parse_into_builder(input)?.finish())
}

/// Parse an N-Triples document into a [`DeltaBatch`] for appending to a
/// live graph via `KnowledgeGraph::apply`/`ShardedGraph::apply`. Each
/// statement is routed exactly like [`parse`] routes it (types,
/// categories, labels and aliases into their dedicated ops), in line
/// order — so parsing a document in two halves and appending the second
/// half yields the same graph as parsing the whole document.
pub fn parse_into_delta(input: &str) -> Result<DeltaBatch, ParseError> {
    let mut d = DeltaBatch::new();
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        parse_line_delta(line, lineno + 1, &mut d)?;
    }
    Ok(d)
}

fn parse_line_delta(line: &str, lineno: usize, d: &mut DeltaBatch) -> Result<(), ParseError> {
    let (subject, predicate, object) = parse_statement(line, lineno)?;
    match (predicate.as_str(), object) {
        // Redirect/disambiguation subjects are alias pages, not entities
        // of the graph proper — they become alias strings on the target,
        // so `parse(serialize(kg))` preserves the entity count.
        (schema::DBO_REDIRECT, Term::Iri(o)) => {
            d.redirect(
                schema::local_name(&subject).replace('_', " "),
                schema::local_name(&o),
            );
        }
        (schema::DBO_DISAMBIGUATES, Term::Iri(o)) => {
            d.disambiguation(
                schema::local_name(&subject).replace('_', " "),
                schema::local_name(&o),
            );
        }
        (schema::RDF_TYPE, Term::Iri(o)) => {
            d.typed(schema::local_name(&subject), schema::local_name(&o));
        }
        (schema::RDFS_LABEL, Term::Literal(l)) => {
            d.label(schema::local_name(&subject), l.lexical);
        }
        (schema::DCT_SUBJECT, Term::Iri(o)) => {
            d.categorized(
                schema::local_name(&subject),
                schema::category_name(&o).replace('_', " "),
            );
        }
        (_, Term::Iri(o)) => {
            d.triple(
                schema::local_name(&subject),
                schema::local_name(&predicate),
                schema::local_name(&o),
            );
        }
        (_, Term::Literal(l)) => {
            d.literal(
                schema::local_name(&subject),
                schema::local_name(&predicate),
                l,
            );
        }
    }
    Ok(())
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parse one statement into `(subject IRI, predicate IRI, object term)`.
fn parse_statement(line: &str, lineno: usize) -> Result<(String, String, Term), ParseError> {
    let mut rest = line;
    let subject = match take_term(&mut rest, lineno)? {
        Term::Iri(iri) => iri,
        Term::Literal(_) => return Err(err(lineno, "subject must be an IRI")),
    };
    let predicate = match take_term(&mut rest, lineno)? {
        Term::Iri(iri) => iri,
        Term::Literal(_) => return Err(err(lineno, "predicate must be an IRI")),
    };
    let object = take_term(&mut rest, lineno)?;
    let rest = rest.trim_start();
    if !rest.starts_with('.') {
        return Err(err(lineno, "statement must end with '.'"));
    }
    Ok((subject, predicate, object))
}

/// Consume one term (IRI or literal) from the front of `rest`.
fn take_term(rest: &mut &str, lineno: usize) -> Result<Term, ParseError> {
    *rest = rest.trim_start();
    let bytes = rest.as_bytes();
    match bytes.first() {
        Some(b'<') => {
            let end = rest
                .find('>')
                .ok_or_else(|| err(lineno, "unterminated IRI"))?;
            let iri = rest[1..end].to_owned();
            if iri.is_empty() {
                return Err(err(lineno, "empty IRI"));
            }
            *rest = &rest[end + 1..];
            Ok(Term::Iri(iri))
        }
        Some(b'"') => {
            let (lexical, consumed) = take_quoted(rest, lineno)?;
            *rest = &rest[consumed..];
            // optional language tag or datatype
            let mut kind = LiteralKind::String;
            if let Some(stripped) = rest.strip_prefix('@') {
                let end = stripped.find([' ', '\t']).unwrap_or(stripped.len());
                *rest = &stripped[end..];
            } else if let Some(stripped) = rest.strip_prefix("^^<") {
                let end = stripped
                    .find('>')
                    .ok_or_else(|| err(lineno, "unterminated datatype IRI"))?;
                let dt = &stripped[..end];
                kind = datatype_kind(dt);
                *rest = &stripped[end + 1..];
            }
            Ok(Term::Literal(Literal { lexical, kind }))
        }
        Some(_) => Err(err(lineno, format!("unexpected term start: {rest:.20}"))),
        None => Err(err(lineno, "unexpected end of statement")),
    }
}

/// Parse a double-quoted string with `\"`, `\\`, `\n`, `\t`, `\r` escapes.
/// Returns the unescaped content and how many input bytes were consumed
/// (including both quotes).
fn take_quoted(input: &str, lineno: usize) -> Result<(String, usize), ParseError> {
    debug_assert!(input.starts_with('"'));
    let mut out = String::new();
    let mut chars = input.char_indices().skip(1).peekable();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, i + 1)),
            '\\' => {
                let (_, esc) = chars.next().ok_or_else(|| err(lineno, "dangling escape"))?;
                out.push(match esc {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    '"' => '"',
                    '\\' => '\\',
                    other => return Err(err(lineno, format!("unknown escape \\{other}"))),
                });
            }
            other => out.push(other),
        }
    }
    Err(err(lineno, "unterminated string literal"))
}

fn datatype_kind(dt: &str) -> LiteralKind {
    match schema::local_name(dt) {
        "integer" | "int" | "long" | "nonNegativeInteger" => LiteralKind::Integer,
        "double" | "float" | "decimal" => LiteralKind::Double,
        "date" => LiteralKind::Date,
        _ => LiteralKind::String,
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

fn datatype_iri(kind: LiteralKind) -> Option<&'static str> {
    match kind {
        LiteralKind::String => None,
        LiteralKind::Integer => Some("http://www.w3.org/2001/XMLSchema#integer"),
        LiteralKind::Double => Some("http://www.w3.org/2001/XMLSchema#double"),
        LiteralKind::Date => Some("http://www.w3.org/2001/XMLSchema#date"),
    }
}

/// Serialize a knowledge graph to N-Triples, inverse of [`parse`].
///
/// Types, categories, labels and aliases are written back with their
/// well-known predicates so that `parse(serialize(kg))` reconstructs the
/// same logical graph.
pub fn serialize(kg: &KnowledgeGraph) -> String {
    let mut out = String::new();
    let ent = |name: &str| format!("<{}{}>", schema::NS_RESOURCE, name);
    for e in kg.entity_ids() {
        let s = ent(kg.entity_name(e));
        if let Some(label) = kg.label(e) {
            let _ = writeln!(out, "{s} <{}> \"{}\" .", schema::RDFS_LABEL, escape(label));
        }
        for t in kg.types_of(e) {
            let _ = writeln!(
                out,
                "{s} <{}> <{}{}> .",
                schema::RDF_TYPE,
                schema::NS_ONTOLOGY,
                kg.type_name(t)
            );
        }
        for c in kg.categories_of(e) {
            let _ = writeln!(
                out,
                "{s} <{}> <{}{}> .",
                schema::DCT_SUBJECT,
                schema::NS_CATEGORY,
                kg.category_name(c).replace(' ', "_")
            );
        }
        for alias in kg.aliases(e) {
            let _ = writeln!(
                out,
                "{} <{}> {s} .",
                ent(&alias.replace(' ', "_")),
                schema::DBO_REDIRECT
            );
        }
        for (p, o) in kg.out_edges(e) {
            let _ = writeln!(
                out,
                "{s} <{}{}> {} .",
                schema::NS_ONTOLOGY,
                kg.predicate_name(p),
                ent(kg.entity_name(o))
            );
        }
        for (p, l) in kg.literals(e) {
            let dt = match datatype_iri(l.kind) {
                Some(iri) => format!("^^<{iri}>"),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "{s} <{}{}> \"{}\"{dt} .",
                schema::NS_ONTOLOGY,
                kg.predicate_name(p),
                escape(&l.lexical)
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# a comment
<http://dbpedia.org/resource/Forrest_Gump> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://dbpedia.org/ontology/Film> .
<http://dbpedia.org/resource/Forrest_Gump> <http://www.w3.org/2000/01/rdf-schema#label> "Forrest Gump"@en .
<http://dbpedia.org/resource/Forrest_Gump> <http://dbpedia.org/ontology/starring> <http://dbpedia.org/resource/Tom_Hanks> .
<http://dbpedia.org/resource/Forrest_Gump> <http://purl.org/dc/terms/subject> <http://dbpedia.org/resource/Category:American_films> .
<http://dbpedia.org/resource/Forrest_Gump> <http://dbpedia.org/ontology/runtime> "142"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://dbpedia.org/resource/Geenbow> <http://dbpedia.org/ontology/wikiPageRedirects> <http://dbpedia.org/resource/Forrest_Gump> .
"#;

    #[test]
    fn parses_dbpedia_style_sample() {
        let kg = parse(SAMPLE).unwrap();
        let gump = kg.entity("Forrest_Gump").unwrap();
        assert_eq!(kg.label(gump), Some("Forrest Gump"));
        assert!(kg.type_id("Film").is_some());
        assert_eq!(
            kg.category_name(kg.categories_of(gump).next().unwrap()),
            "American films"
        );
        let starring = kg.predicate("starring").unwrap();
        assert_eq!(kg.objects(gump, starring).len(), 1);
        let lit: Vec<_> = kg.literals(gump).collect();
        assert_eq!(lit[0].1.as_integer(), Some(142));
        assert_eq!(kg.aliases(gump), &["Geenbow".to_owned()]);
    }

    #[test]
    fn rejects_literal_subject() {
        let e = parse(r#""x" <http://p> <http://o> ."#).unwrap_err();
        assert!(e.message.contains("subject"));
        assert_eq!(e.line, 1);
    }

    #[test]
    fn rejects_missing_dot() {
        let e = parse("<http://s> <http://p> <http://o>").unwrap_err();
        assert!(e.message.contains("'.'"));
    }

    #[test]
    fn rejects_unterminated_iri_and_string() {
        assert!(parse("<http://s <http://p> <http://o> .").is_err());
        assert!(parse(r#"<http://s> <http://p> "oops ."#).is_err());
    }

    #[test]
    fn rejects_unknown_escape() {
        let e = parse(r#"<http://s> <http://p> "bad\q" ."#).unwrap_err();
        assert!(e.message.contains("escape"));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let src = r#"<http://s> <http://p> "line\nbreak \"quoted\" tab\t" ."#;
        let kg = parse(src).unwrap();
        let s = kg.entity("s").unwrap();
        let (_, lit) = kg.literals(s).next().unwrap();
        assert_eq!(lit.lexical, "line\nbreak \"quoted\" tab\t");
    }

    #[test]
    fn serialize_then_parse_preserves_structure() {
        let kg = parse(SAMPLE).unwrap();
        let nt = serialize(&kg);
        let kg2 = parse(&nt).unwrap();
        assert_eq!(kg2.entity_count(), kg.entity_count());
        assert_eq!(kg2.relation_count(), kg.relation_count());
        assert_eq!(kg2.type_count(), kg.type_count());
        assert_eq!(kg2.category_count(), kg.category_count());
        let gump = kg2.entity("Forrest_Gump").unwrap();
        assert_eq!(kg2.label(gump), Some("Forrest Gump"));
        assert_eq!(kg2.aliases(gump), &["Geenbow".to_owned()]);
        let lit: Vec<_> = kg2.literals(gump).collect();
        assert_eq!(lit[0].1.as_integer(), Some(142));
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let kg = parse("").unwrap();
        assert_eq!(kg.entity_count(), 0);
    }
}

//! The in-memory knowledge graph store.
//!
//! [`KgBuilder`] accumulates statements in any order; [`KgBuilder::finish`]
//! freezes them into an indexed [`KnowledgeGraph`] with per-row adjacency
//! in both directions, per-predicate runs sorted by target id, and sorted
//! extent lists for every type and category. The frozen graph is *not*
//! write-only: [`KnowledgeGraph::apply`] splices a
//! [`DeltaBatch`](crate::delta::DeltaBatch) of new statements into the
//! touched rows in place (amortized, row-proportional work), which is the
//! substrate of the live-graph execution layer.
//!
//! The layout is chosen for the hot loops of the PivotE ranking model
//! (`pivote-core`): a semantic-feature extent `E(π)` is exactly one
//! per-predicate run of the CSR (already sorted by entity id), and
//! `‖E(π) ∩ E(c)‖` becomes a linear/galloping merge of two sorted slices
//! with no hashing.

use crate::delta::{
    polarity_runs, replay_entity_facets, replicate_dictionaries, AppliedDelta, DeltaBatch, DeltaOp,
};
use crate::id::{CategoryId, EntityId, LiteralId, PredicateId, TypeId};
use crate::interner::Interner;
use crate::triple::{Literal, Object, Triple};

/// Adjacency rows: per source entity, a run of `(predicate, target)`
/// pairs sorted by `(predicate, target)`, so the targets of one predicate
/// form a contiguous slice sorted by entity id. Rows are independently
/// growable, which is what makes [`KnowledgeGraph::apply`] splice new
/// edges with work proportional to the touched rows instead of
/// rebuilding the whole index.
#[derive(Debug, Default, Clone)]
pub(crate) struct EdgeCsr {
    rows: Vec<EdgeRow>,
    total: usize,
}

/// One entity's adjacency: parallel arrays sorted by `(pred, target)`.
#[derive(Debug, Default, Clone)]
struct EdgeRow {
    preds: Vec<PredicateId>,
    targets: Vec<EntityId>,
}

impl EdgeCsr {
    fn build(n_sources: usize, mut edges: Vec<(u32, PredicateId, EntityId)>) -> Self {
        edges.sort_unstable();
        edges.dedup();
        let mut rows = vec![EdgeRow::default(); n_sources];
        let total = edges.len();
        for (s, p, t) in edges {
            let row = &mut rows[s as usize];
            row.preds.push(p);
            row.targets.push(t);
        }
        Self { rows, total }
    }

    /// Grow the source dimension to `n` rows (new rows empty).
    fn ensure_rows(&mut self, n: usize) {
        if self.rows.len() < n {
            self.rows.resize_with(n, EdgeRow::default);
        }
    }

    /// Merge sorted, deduplicated `(pred, target)` additions into `e`'s
    /// row, skipping pairs already present. Newly inserted pairs are
    /// appended to `inserted`; `work` grows by the number of elements
    /// examined or moved (row length + additions).
    fn splice(
        &mut self,
        e: EntityId,
        add: &[(PredicateId, EntityId)],
        inserted: &mut Vec<(PredicateId, EntityId)>,
        work: &mut u64,
    ) {
        let row = &mut self.rows[e.index()];
        *work += (row.preds.len() + add.len()) as u64;
        let mut preds = Vec::with_capacity(row.preds.len() + add.len());
        let mut targets = Vec::with_capacity(row.targets.len() + add.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < row.preds.len() && j < add.len() {
            let old = (row.preds[i], row.targets[i]);
            match old.cmp(&add[j]) {
                std::cmp::Ordering::Less => {
                    preds.push(old.0);
                    targets.push(old.1);
                    i += 1;
                }
                std::cmp::Ordering::Equal => {
                    preds.push(old.0);
                    targets.push(old.1);
                    i += 1;
                    j += 1; // duplicate: already stored
                }
                std::cmp::Ordering::Greater => {
                    preds.push(add[j].0);
                    targets.push(add[j].1);
                    inserted.push(add[j]);
                    j += 1;
                }
            }
        }
        while i < row.preds.len() {
            preds.push(row.preds[i]);
            targets.push(row.targets[i]);
            i += 1;
        }
        while j < add.len() {
            preds.push(add[j].0);
            targets.push(add[j].1);
            inserted.push(add[j]);
            j += 1;
        }
        self.total += preds.len() - row.preds.len();
        row.preds = preds;
        row.targets = targets;
    }

    /// Remove sorted, deduplicated `(pred, target)` pairs from `e`'s row
    /// with a single forward in-place pass. Pairs actually present (and
    /// therefore removed) are appended to `removed`; absent pairs are
    /// ignored. The row stays sorted, so every read path sees only live
    /// edges — the removed pairs become tombstones only in the sense
    /// that the graph keeps their memory until a compaction reclaims it.
    fn unsplice(
        &mut self,
        e: EntityId,
        remove: &[(PredicateId, EntityId)],
        removed: &mut Vec<(PredicateId, EntityId)>,
        work: &mut u64,
    ) {
        let row = &mut self.rows[e.index()];
        *work += (row.preds.len() + remove.len()) as u64;
        let before = removed.len();
        let mut w = 0usize;
        let mut j = 0usize;
        for i in 0..row.preds.len() {
            let cur = (row.preds[i], row.targets[i]);
            while j < remove.len() && remove[j] < cur {
                j += 1;
            }
            if j < remove.len() && remove[j] == cur {
                removed.push(cur);
                j += 1;
                continue;
            }
            row.preds[w] = cur.0;
            row.targets[w] = cur.1;
            w += 1;
        }
        row.preds.truncate(w);
        row.targets.truncate(w);
        self.total -= removed.len() - before;
    }

    /// All `(predicate, target)` pairs of `e`.
    pub(crate) fn row(&self, e: EntityId) -> impl Iterator<Item = (PredicateId, EntityId)> + '_ {
        let row = &self.rows[e.index()];
        row.preds.iter().copied().zip(row.targets.iter().copied())
    }

    /// Targets of `e` under predicate `p`: a sorted slice of entity ids.
    pub(crate) fn with_pred(&self, e: EntityId, p: PredicateId) -> &[EntityId] {
        let row = &self.rows[e.index()];
        let lo = row.preds.partition_point(|&q| q < p);
        let hi = row.preds.partition_point(|&q| q <= p);
        &row.targets[lo..hi]
    }

    /// Distinct predicates appearing on `e`'s row.
    pub(crate) fn preds_of(&self, e: EntityId) -> Vec<PredicateId> {
        let mut out: Vec<PredicateId> = self.rows[e.index()].preds.clone();
        out.dedup();
        out
    }

    pub(crate) fn degree(&self, e: EntityId) -> usize {
        self.rows[e.index()].preds.len()
    }

    pub(crate) fn len(&self) -> usize {
        self.total
    }
}

/// Literal-valued statements: per entity, `(predicate, literal)` pairs
/// sorted by `(predicate, literal id)`. Per-row storage for the same
/// append-in-place reason as [`EdgeCsr`].
#[derive(Debug, Default, Clone)]
struct LiteralCsr {
    rows: Vec<LitRow>,
    total: usize,
}

/// One entity's literal statements.
#[derive(Debug, Default, Clone)]
struct LitRow {
    preds: Vec<PredicateId>,
    lits: Vec<LiteralId>,
}

impl LiteralCsr {
    fn build(n_sources: usize, mut edges: Vec<(u32, PredicateId, LiteralId)>) -> Self {
        edges.sort_unstable();
        edges.dedup();
        let mut rows = vec![LitRow::default(); n_sources];
        let total = edges.len();
        for (s, p, l) in edges {
            let row = &mut rows[s as usize];
            row.preds.push(p);
            row.lits.push(l);
        }
        Self { rows, total }
    }

    fn ensure_rows(&mut self, n: usize) {
        if self.rows.len() < n {
            self.rows.resize_with(n, LitRow::default);
        }
    }

    /// Insert a fresh literal statement. The literal id is always newly
    /// allocated (greater than every stored id), so the insertion point
    /// is the end of `p`'s run.
    fn insert(&mut self, e: EntityId, p: PredicateId, l: LiteralId, work: &mut u64) {
        let row = &mut self.rows[e.index()];
        let at = row.preds.partition_point(|&q| q <= p);
        *work += (row.preds.len() - at + 1) as u64;
        row.preds.insert(at, p);
        row.lits.insert(at, l);
        self.total += 1;
    }

    fn len(&self) -> usize {
        self.total
    }

    fn row(&self, e: EntityId) -> impl Iterator<Item = (PredicateId, LiteralId)> + '_ {
        let row = &self.rows[e.index()];
        row.preds.iter().copied().zip(row.lits.iter().copied())
    }
}

/// Per-entity membership lists (types or categories), one sorted row per
/// entity.
#[derive(Debug, Default, Clone)]
struct Membership {
    rows: Vec<Vec<u32>>,
    total: usize,
}

impl Membership {
    fn build(n_sources: usize, mut pairs: Vec<(u32, u32)>) -> Self {
        pairs.sort_unstable();
        pairs.dedup();
        let mut rows = vec![Vec::new(); n_sources];
        let total = pairs.len();
        for (s, t) in pairs {
            rows[s as usize].push(t);
        }
        Self { rows, total }
    }

    fn ensure_rows(&mut self, n: usize) {
        if self.rows.len() < n {
            self.rows.resize_with(n, Vec::new);
        }
    }

    /// Sorted-insert `item` into `e`'s row; returns whether it was new.
    fn insert(&mut self, e: EntityId, item: u32, work: &mut u64) -> bool {
        let row = &mut self.rows[e.index()];
        *work += 1;
        match row.binary_search(&item) {
            Ok(_) => false,
            Err(at) => {
                *work += (row.len() - at) as u64;
                row.insert(at, item);
                self.total += 1;
                true
            }
        }
    }

    /// Remove `item` from `e`'s row; returns whether it was present.
    fn remove(&mut self, e: EntityId, item: u32, work: &mut u64) -> bool {
        let row = &mut self.rows[e.index()];
        *work += 1;
        match row.binary_search(&item) {
            Ok(at) => {
                *work += (row.len() - at) as u64;
                row.remove(at);
                self.total -= 1;
                true
            }
            Err(_) => false,
        }
    }

    fn len(&self) -> usize {
        self.total
    }

    fn row(&self, e: EntityId) -> &[u32] {
        &self.rows[e.index()]
    }
}

/// Mutable accumulator for building a [`KnowledgeGraph`].
#[derive(Debug, Default)]
pub struct KgBuilder {
    entities: Interner,
    predicates: Interner,
    types: Interner,
    categories: Interner,
    literals: Vec<Literal>,
    labels: Vec<Option<String>>,
    entity_edges: Vec<(u32, PredicateId, EntityId)>,
    literal_edges: Vec<(u32, PredicateId, LiteralId)>,
    entity_types: Vec<(u32, u32)>,
    entity_categories: Vec<(u32, u32)>,
    redirects: Vec<(u32, String)>,
    disambiguations: Vec<(u32, String)>,
}

impl KgBuilder {
    /// A fresh, empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern (or look up) the entity called `name` and return its id.
    pub fn entity(&mut self, name: &str) -> EntityId {
        let id = self.entities.intern(name);
        if id as usize >= self.labels.len() {
            self.labels.resize(id as usize + 1, None);
        }
        EntityId::new(id)
    }

    /// Intern (or look up) the predicate called `name`.
    pub fn predicate(&mut self, name: &str) -> PredicateId {
        PredicateId::new(self.predicates.intern(name))
    }

    /// Set the human-readable label (`rdfs:label`) of an entity.
    pub fn label(&mut self, e: EntityId, label: impl Into<String>) {
        self.labels[e.index()] = Some(label.into());
    }

    /// Add an entity-to-entity statement `<s, p, o>`.
    pub fn triple(&mut self, s: EntityId, p: PredicateId, o: EntityId) {
        self.entity_edges.push((s.raw(), p, o));
    }

    /// Add a literal-valued statement `<s, p, "literal">`.
    pub fn literal_triple(&mut self, s: EntityId, p: PredicateId, value: Literal) {
        let lid = LiteralId::new(self.literals.len() as u32);
        self.literals.push(value);
        self.literal_edges.push((s.raw(), p, lid));
    }

    /// Intern a type name without asserting any membership. Lets builders
    /// reproduce an existing graph's dense type numbering (e.g. when
    /// partitioning a graph into shards) before adding per-entity
    /// assertions in an arbitrary order.
    pub fn declare_type(&mut self, type_name: &str) -> TypeId {
        TypeId::new(self.types.intern(type_name))
    }

    /// Intern a category name without asserting any membership — the
    /// category analogue of [`KgBuilder::declare_type`].
    pub fn declare_category(&mut self, category: &str) -> CategoryId {
        CategoryId::new(self.categories.intern(category))
    }

    /// Assert `rdf:type` membership: `e` is a `type_name`.
    pub fn typed(&mut self, e: EntityId, type_name: &str) -> TypeId {
        let t = self.types.intern(type_name);
        self.entity_types.push((e.raw(), t));
        TypeId::new(t)
    }

    /// Assert category membership (`dct:subject`): `e` is in `category`.
    pub fn categorized(&mut self, e: EntityId, category: &str) -> CategoryId {
        let c = self.categories.intern(category);
        self.entity_categories.push((e.raw(), c));
        CategoryId::new(c)
    }

    /// Record a redirect alias (e.g. the misspelling "Geenbow" redirects to
    /// Forrest_Gump). Aliases feed the "similar entity names" search field.
    pub fn redirect(&mut self, alias: impl Into<String>, target: EntityId) {
        self.redirects.push((target.raw(), alias.into()));
    }

    /// Record a disambiguation alias pointing at `target`.
    pub fn disambiguation(&mut self, alias: impl Into<String>, target: EntityId) {
        self.disambiguations.push((target.raw(), alias.into()));
    }

    /// Number of entities interned so far.
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// Name of an already-interned entity (pre-freeze lookup).
    pub fn entity_name_hint(&self, e: EntityId) -> &str {
        self.entities.resolve(e.raw())
    }

    /// Freeze into an immutable, indexed [`KnowledgeGraph`].
    pub fn finish(self) -> KnowledgeGraph {
        let n = self.entities.len();
        let inverted: Vec<(u32, PredicateId, EntityId)> = self
            .entity_edges
            .iter()
            .map(|&(s, p, o)| (o.raw(), p, EntityId::new(s)))
            .collect();
        let out = EdgeCsr::build(n, self.entity_edges);
        let inc = EdgeCsr::build(n, inverted);
        let lit = LiteralCsr::build(n, self.literal_edges);

        let mut type_extents: Vec<Vec<EntityId>> = vec![Vec::new(); self.types.len()];
        for &(e, t) in &self.entity_types {
            type_extents[t as usize].push(EntityId::new(e));
        }
        for ext in &mut type_extents {
            ext.sort_unstable();
            ext.dedup();
        }
        let mut cat_extents: Vec<Vec<EntityId>> = vec![Vec::new(); self.categories.len()];
        for &(e, c) in &self.entity_categories {
            cat_extents[c as usize].push(EntityId::new(e));
        }
        for ext in &mut cat_extents {
            ext.sort_unstable();
            ext.dedup();
        }
        let entity_types = Membership::build(n, self.entity_types);
        let entity_cats = Membership::build(n, self.entity_categories);

        let mut aliases: Vec<Vec<String>> = vec![Vec::new(); n];
        for (e, alias) in self.redirects.into_iter().chain(self.disambiguations) {
            aliases[e as usize].push(alias);
        }
        for a in &mut aliases {
            a.sort();
            a.dedup();
        }

        let mut pred_freq = vec![0u64; self.predicates.len()];
        for e in 0..n as u32 {
            for (p, _) in out.row(EntityId::new(e)) {
                pred_freq[p.index()] += 1;
            }
            for (p, _) in lit.row(EntityId::new(e)) {
                pred_freq[p.index()] += 1;
            }
        }

        KnowledgeGraph {
            generation: 0,
            entities: self.entities,
            predicates: self.predicates,
            types: self.types,
            categories: self.categories,
            literals: self.literals,
            labels: self.labels,
            out,
            inc,
            lit,
            entity_types,
            type_extents,
            entity_cats,
            cat_extents,
            aliases,
            pred_freq,
            dead_relations: Vec::new(),
            dead_literals: Vec::new(),
            dead_type_asserts: Vec::new(),
            dead_cat_asserts: Vec::new(),
        }
    }
}

/// An immutable, fully indexed knowledge graph.
///
/// All extent-returning methods (`objects`, `subjects`, `type_extent`,
/// `category_extent`) return slices **sorted by entity id with no
/// duplicates** — the invariant the ranking layer's set intersections rely
/// on.
#[derive(Debug, Clone)]
pub struct KnowledgeGraph {
    /// Bumped by every [`KnowledgeGraph::apply`]; 0 for a fresh build.
    generation: u64,
    entities: Interner,
    predicates: Interner,
    types: Interner,
    categories: Interner,
    literals: Vec<Literal>,
    labels: Vec<Option<String>>,
    out: EdgeCsr,
    inc: EdgeCsr,
    lit: LiteralCsr,
    entity_types: Membership,
    type_extents: Vec<Vec<EntityId>>,
    entity_cats: Membership,
    cat_extents: Vec<Vec<EntityId>>,
    aliases: Vec<Vec<String>>,
    pred_freq: Vec<u64>,
    /// Tombstones: statements retracted since the last compaction. Every
    /// read path already sees only live rows (retracts splice the live
    /// arrays immediately), but the retracted statements' memory — these
    /// logs plus the slack they leave in the row allocations and the
    /// literal arena — is only returned by [`KnowledgeGraph::reclaim`].
    /// Their mass feeds the compaction policy's tombstone trigger.
    dead_relations: Vec<(EntityId, PredicateId, EntityId)>,
    dead_literals: Vec<(EntityId, PredicateId, LiteralId)>,
    dead_type_asserts: Vec<(EntityId, TypeId)>,
    dead_cat_asserts: Vec<(EntityId, CategoryId)>,
}

impl KnowledgeGraph {
    /// Number of entities.
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// Number of distinct predicates.
    pub fn predicate_count(&self) -> usize {
        self.predicates.len()
    }

    /// Number of distinct types.
    pub fn type_count(&self) -> usize {
        self.types.len()
    }

    /// Number of distinct categories.
    pub fn category_count(&self) -> usize {
        self.categories.len()
    }

    /// Total statements: entity edges + literal edges + type + category
    /// assertions.
    pub fn triple_count(&self) -> usize {
        self.out.len() + self.lit.len() + self.entity_types.len() + self.entity_cats.len()
    }

    /// Number of entity-to-entity statements only.
    pub fn relation_count(&self) -> usize {
        self.out.len()
    }

    /// Resolve an entity by name.
    pub fn entity(&self, name: &str) -> Option<EntityId> {
        self.entities.get(name).map(EntityId::new)
    }

    /// The canonical name of an entity (e.g. `Forrest_Gump`).
    pub fn entity_name(&self, e: EntityId) -> &str {
        self.entities.resolve(e.raw())
    }

    /// The `rdfs:label` of an entity, if set.
    pub fn label(&self, e: EntityId) -> Option<&str> {
        self.labels[e.index()].as_deref()
    }

    /// Human-readable display name: the label if present, else the entity
    /// name with underscores replaced by spaces.
    pub fn display_name(&self, e: EntityId) -> String {
        match self.label(e) {
            Some(l) => l.to_owned(),
            None => self.entity_name(e).replace('_', " "),
        }
    }

    /// Resolve a predicate by name.
    pub fn predicate(&self, name: &str) -> Option<PredicateId> {
        self.predicates.get(name).map(PredicateId::new)
    }

    /// The name of a predicate (e.g. `starring`).
    pub fn predicate_name(&self, p: PredicateId) -> &str {
        self.predicates.resolve(p.raw())
    }

    /// Resolve a type by name.
    pub fn type_id(&self, name: &str) -> Option<TypeId> {
        self.types.get(name).map(TypeId::new)
    }

    /// The name of a type (e.g. `Film`).
    pub fn type_name(&self, t: TypeId) -> &str {
        self.types.resolve(t.raw())
    }

    /// Resolve a category by name.
    pub fn category_id(&self, name: &str) -> Option<CategoryId> {
        self.categories.get(name).map(CategoryId::new)
    }

    /// The name of a category (e.g. `American films`).
    pub fn category_name(&self, c: CategoryId) -> &str {
        self.categories.resolve(c.raw())
    }

    /// Outgoing `(predicate, object-entity)` pairs of `e`.
    pub fn out_edges(&self, e: EntityId) -> impl Iterator<Item = (PredicateId, EntityId)> + '_ {
        self.out.row(e)
    }

    /// Incoming `(predicate, subject-entity)` pairs of `e`.
    pub fn in_edges(&self, e: EntityId) -> impl Iterator<Item = (PredicateId, EntityId)> + '_ {
        self.inc.row(e)
    }

    /// Objects of `<e, p, ?x>` — sorted, deduplicated entity ids. This is
    /// the extent of the semantic feature `e:p→`.
    pub fn objects(&self, e: EntityId, p: PredicateId) -> &[EntityId] {
        self.out.with_pred(e, p)
    }

    /// Subjects of `<?x, p, e>` — sorted, deduplicated entity ids. This is
    /// the extent of the semantic feature `e:p←`.
    pub fn subjects(&self, e: EntityId, p: PredicateId) -> &[EntityId] {
        self.inc.with_pred(e, p)
    }

    /// Distinct predicates on outgoing edges of `e`.
    pub fn out_predicates(&self, e: EntityId) -> Vec<PredicateId> {
        self.out.preds_of(e)
    }

    /// Distinct predicates on incoming edges of `e`.
    pub fn in_predicates(&self, e: EntityId) -> Vec<PredicateId> {
        self.inc.preds_of(e)
    }

    /// Out-degree + in-degree over entity edges (used by the PPR baseline).
    pub fn degree(&self, e: EntityId) -> usize {
        self.out.degree(e) + self.inc.degree(e)
    }

    /// Literal statements `(predicate, literal)` of `e`.
    pub fn literals(&self, e: EntityId) -> impl Iterator<Item = (PredicateId, &Literal)> + '_ {
        self.lit.row(e).map(|(p, l)| (p, &self.literals[l.index()]))
    }

    /// Resolve a literal id.
    pub fn literal(&self, l: LiteralId) -> &Literal {
        &self.literals[l.index()]
    }

    /// Types of `e`, sorted by type id.
    pub fn types_of(&self, e: EntityId) -> impl Iterator<Item = TypeId> + '_ {
        self.entity_types.row(e).iter().map(|&t| TypeId::new(t))
    }

    /// Categories of `e`, sorted by category id.
    pub fn categories_of(&self, e: EntityId) -> impl Iterator<Item = CategoryId> + '_ {
        self.entity_cats.row(e).iter().map(|&c| CategoryId::new(c))
    }

    /// All entities of type `t`, sorted by entity id.
    pub fn type_extent(&self, t: TypeId) -> &[EntityId] {
        &self.type_extents[t.index()]
    }

    /// All entities in category `c`, sorted by entity id.
    pub fn category_extent(&self, c: CategoryId) -> &[EntityId] {
        &self.cat_extents[c.index()]
    }

    /// Whether `e` has type `t` (binary search on the extent's complement —
    /// the per-entity row, which is tiny).
    pub fn has_type(&self, e: EntityId, t: TypeId) -> bool {
        self.entity_types.row(e).binary_search(&t.raw()).is_ok()
    }

    /// Whether `e` is in category `c`.
    pub fn has_category(&self, e: EntityId, c: CategoryId) -> bool {
        self.entity_cats.row(e).binary_search(&c.raw()).is_ok()
    }

    /// Redirect + disambiguation aliases of `e` ("similar entity names").
    pub fn aliases(&self, e: EntityId) -> &[String] {
        &self.aliases[e.index()]
    }

    /// How many statements (entity or literal valued) use predicate `p`.
    pub fn predicate_frequency(&self, p: PredicateId) -> u64 {
        self.pred_freq[p.index()]
    }

    /// Iterate every entity id.
    pub fn entity_ids(&self) -> impl Iterator<Item = EntityId> {
        (0..self.entities.len() as u32).map(EntityId::new)
    }

    /// Iterate every predicate id.
    pub fn predicate_ids(&self) -> impl Iterator<Item = PredicateId> {
        (0..self.predicates.len() as u32).map(PredicateId::new)
    }

    /// Iterate every type id.
    pub fn type_ids(&self) -> impl Iterator<Item = TypeId> {
        (0..self.types.len() as u32).map(TypeId::new)
    }

    /// Iterate every category id.
    pub fn category_ids(&self) -> impl Iterator<Item = CategoryId> {
        (0..self.categories.len() as u32).map(CategoryId::new)
    }

    /// Iterate all entity-to-entity triples (for serialization and stats).
    pub fn entity_triples(&self) -> impl Iterator<Item = Triple> + '_ {
        self.entity_ids().flat_map(move |s| {
            self.out
                .row(s)
                .map(move |(p, o)| Triple::new(s, p, Object::Entity(o)))
        })
    }

    /// Iterate all literal triples as `(subject, predicate, literal)`.
    pub fn literal_triples(&self) -> impl Iterator<Item = (EntityId, PredicateId, &Literal)> + '_ {
        self.entity_ids().flat_map(move |s| {
            self.lit
                .row(s)
                .map(move |(p, l)| (s, p, &self.literals[l.index()]))
        })
    }

    /// The mutation generation: 0 for a freshly built graph, bumped by
    /// every [`KnowledgeGraph::apply`]. Execution layers stamp their
    /// caches with this counter.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Apply a [`DeltaBatch`] in place: new triples, literal statements,
    /// type/category assertions, labels and aliases — possibly
    /// introducing new entities and new dictionary terms, which are
    /// interned **in op order** (exactly the ids a from-scratch rebuild
    /// of `base ops + delta ops` would assign, so the appended graph is
    /// bit-identical to the rebuilt union) — plus retract ops, which
    /// tombstone matching statements. The batch is split into maximal
    /// same-polarity runs applied in op order, so a mixed insert/delete
    /// batch is equivalent to replaying its ops against a shadow
    /// statement set and rebuilding from the survivors. Retracts never
    /// intern names (an unknown name makes the op a no-op), so the id
    /// assignment is unchanged by their presence, and the generation is
    /// bumped exactly once per apply regardless of run count.
    ///
    /// The work done is proportional to the touched rows and extents
    /// (per-predicate extent splicing), *not* to the size of the graph;
    /// the returned [`AppliedDelta::work`] counter witnesses this, and
    /// the receipt lists exactly which feature and context extents
    /// changed so execution-layer caches can invalidate precisely.
    pub fn apply(&mut self, delta: &DeltaBatch) -> AppliedDelta {
        let mut acc = DeltaAcc::new(self.entities.len() as u32);
        for (retract, run) in polarity_runs(delta.ops()) {
            if retract {
                self.apply_retract_run(run, &mut acc);
            } else {
                self.apply_insert_run(run, &mut acc);
            }
        }
        self.generation += 1;
        acc.finish(self.generation, self.entities.len() as u32)
    }

    /// One maximal insert-polarity run of [`KnowledgeGraph::apply`].
    fn apply_insert_run(&mut self, ops: &[DeltaOp], acc: &mut DeltaAcc) {
        let mut work: u64 = 0;

        // Pre-size the entity dictionary for the run so interning never
        // rehashes mid-apply. A run of n ops introduces at most ~n new
        // entity names, so the table overshoot is O(batch), never
        // O(graph). The other dictionaries (predicates, types,
        // categories) are small and self-size adequately.
        self.entities.reserve(ops.len());

        // Pass 1: intern every name in op order and resolve ops to dense
        // ids. New entities/predicates/types/categories get exactly the
        // ids a rebuild replaying these ops into a KgBuilder would assign.
        //
        // Dump batches are heavily run-structured (N-Triples groups
        // statements by subject), so each dictionary keeps a last-name
        // memo per role: a repeated consecutive name resolves with one
        // string compare and no hashing. Memoization can't perturb id
        // assignment — interning is idempotent, so a memo hit returns
        // exactly what a fresh intern would.
        let mut memo_subject: Option<(&str, u32)> = None;
        let mut memo_object: Option<(&str, u32)> = None;
        let mut memo_pred: Option<(&str, u32)> = None;
        let mut memo_type: Option<(&str, u32)> = None;
        let mut memo_cat: Option<(&str, u32)> = None;
        macro_rules! memoized {
            ($memo:ident, $dict:expr, $name:expr) => {{
                let name: &str = $name;
                match $memo {
                    Some((last, id)) if last == name => id,
                    _ => {
                        let id = $dict.intern(name);
                        $memo = Some((name, id));
                        id
                    }
                }
            }};
        }
        let mut edges: Vec<(EntityId, PredicateId, EntityId)> = Vec::new();
        let mut lit_adds: Vec<(EntityId, PredicateId, &Literal)> = Vec::new();
        let mut type_adds: Vec<(EntityId, TypeId)> = Vec::new();
        let mut cat_adds: Vec<(EntityId, CategoryId)> = Vec::new();
        let mut label_sets: Vec<(EntityId, &str)> = Vec::new();
        let mut alias_adds: Vec<(EntityId, &str)> = Vec::new();
        for op in ops {
            match op {
                DeltaOp::Entity { name } => {
                    memoized!(memo_subject, self.entities, name);
                }
                DeltaOp::DeclarePredicate { name } => {
                    memoized!(memo_pred, self.predicates, name);
                }
                DeltaOp::DeclareType { name } => {
                    memoized!(memo_type, self.types, name);
                }
                DeltaOp::DeclareCategory { name } => {
                    memoized!(memo_cat, self.categories, name);
                }
                DeltaOp::Triple { s, p, o } => {
                    let s = EntityId::new(memoized!(memo_subject, self.entities, s));
                    let p = PredicateId::new(memoized!(memo_pred, self.predicates, p));
                    let o = EntityId::new(memoized!(memo_object, self.entities, o));
                    edges.push((s, p, o));
                }
                DeltaOp::LiteralTriple { s, p, value } => {
                    let s = EntityId::new(memoized!(memo_subject, self.entities, s));
                    let p = PredicateId::new(memoized!(memo_pred, self.predicates, p));
                    lit_adds.push((s, p, value));
                }
                DeltaOp::Typed { entity, type_name } => {
                    let e = EntityId::new(memoized!(memo_subject, self.entities, entity));
                    let t = TypeId::new(memoized!(memo_type, self.types, type_name));
                    type_adds.push((e, t));
                }
                DeltaOp::Categorized { entity, category } => {
                    let e = EntityId::new(memoized!(memo_subject, self.entities, entity));
                    let c = CategoryId::new(memoized!(memo_cat, self.categories, category));
                    cat_adds.push((e, c));
                }
                DeltaOp::Label { entity, label } => {
                    let e = EntityId::new(memoized!(memo_subject, self.entities, entity));
                    label_sets.push((e, label));
                }
                DeltaOp::Redirect { alias, target } | DeltaOp::Disambiguation { alias, target } => {
                    let t = EntityId::new(memoized!(memo_subject, self.entities, target));
                    alias_adds.push((t, alias));
                }
                _ => unreachable!("retract op in an insert-polarity run"),
            }
        }

        // Grow every per-entity table to the new entity count.
        let n = self.entities.len();
        self.labels.resize(n, None);
        self.aliases.resize_with(n, Vec::new);
        self.out.ensure_rows(n);
        self.inc.ensure_rows(n);
        self.lit.ensure_rows(n);
        self.entity_types.ensure_rows(n);
        self.entity_cats.ensure_rows(n);
        self.pred_freq.resize(self.predicates.len(), 0);
        self.type_extents.resize_with(self.types.len(), Vec::new);
        self.cat_extents
            .resize_with(self.categories.len(), Vec::new);

        // Pass 2: splice entity edges per touched row, both directions.
        edges.sort_unstable();
        edges.dedup();
        let mut inserted: Vec<(EntityId, PredicateId, EntityId)> = Vec::new();
        let mut row_adds: Vec<(PredicateId, EntityId)> = Vec::new();
        let mut row_inserted: Vec<(PredicateId, EntityId)> = Vec::new();
        let mut i = 0;
        while i < edges.len() {
            let s = edges[i].0;
            row_adds.clear();
            row_inserted.clear();
            while i < edges.len() && edges[i].0 == s {
                row_adds.push((edges[i].1, edges[i].2));
                i += 1;
            }
            self.out.splice(s, &row_adds, &mut row_inserted, &mut work);
            for &(p, o) in &row_inserted {
                inserted.push((s, p, o));
                self.pred_freq[p.index()] += 1;
            }
        }
        // Invert the actually-inserted edges and splice the incoming rows.
        let mut inverted: Vec<(EntityId, PredicateId, EntityId)> =
            inserted.iter().map(|&(s, p, o)| (o, p, s)).collect();
        inverted.sort_unstable();
        let mut i = 0;
        while i < inverted.len() {
            let o = inverted[i].0;
            row_adds.clear();
            row_inserted.clear();
            while i < inverted.len() && inverted[i].0 == o {
                row_adds.push((inverted[i].1, inverted[i].2));
                i += 1;
            }
            self.inc.splice(o, &row_adds, &mut row_inserted, &mut work);
            debug_assert_eq!(
                row_inserted.len(),
                row_adds.len(),
                "incoming rows must mirror outgoing rows"
            );
        }

        // Literal statements: fresh literal ids in op order.
        for &(s, p, value) in &lit_adds {
            let lid = LiteralId::new(self.literals.len() as u32);
            self.literals.push(value.clone());
            self.lit.insert(s, p, lid, &mut work);
            self.pred_freq[p.index()] += 1;
        }

        // Type / category assertions: membership rows per op (rows are
        // per-entity and tiny), then one sort-and-merge splice per
        // *touched extent* instead of a binary insert per op — a batch
        // adding k members to one extent of n entities costs O(n + k)
        // moves, not O(n·k).
        let mut new_type_members: Vec<(TypeId, EntityId)> = Vec::new();
        for &(e, t) in &type_adds {
            if self.entity_types.insert(e, t.raw(), &mut work) {
                new_type_members.push((t, e));
            }
        }
        new_type_members.sort_unstable();
        let mut touched_types: Vec<TypeId> = Vec::new();
        for (t, adds) in group_pairs(&new_type_members) {
            splice_extent(&mut self.type_extents[t.index()], adds, &mut work);
            touched_types.push(t);
        }
        let mut new_cat_members: Vec<(CategoryId, EntityId)> = Vec::new();
        for &(e, c) in &cat_adds {
            if self.entity_cats.insert(e, c.raw(), &mut work) {
                new_cat_members.push((c, e));
            }
        }
        new_cat_members.sort_unstable();
        let mut touched_categories: Vec<CategoryId> = Vec::new();
        for (c, adds) in group_pairs(&new_cat_members) {
            splice_extent(&mut self.cat_extents[c.index()], adds, &mut work);
            touched_categories.push(c);
        }

        // Labels and aliases.
        for (e, l) in label_sets {
            self.labels[e.index()] = Some(l.to_owned());
        }
        for (e, alias) in alias_adds {
            let row = &mut self.aliases[e.index()];
            if let Err(at) = row.binary_search_by(|a| a.as_str().cmp(alias)) {
                row.insert(at, alias.to_owned());
                work += 1;
            }
        }

        acc.touched_out
            .extend(inserted.iter().map(|&(s, p, _)| (s, p)));
        acc.touched_in
            .extend(inserted.iter().map(|&(_, p, o)| (o, p)));
        acc.touched_types.extend(touched_types);
        acc.touched_categories.extend(touched_categories);
        acc.added_relations += inserted.len();
        acc.added_literals += lit_adds.len();
        acc.work += work;
    }

    /// One maximal retract-polarity run of [`KnowledgeGraph::apply`].
    ///
    /// Resolution is lookup-only: a retract naming an unknown entity,
    /// predicate, type or category is a no-op (nothing is interned), so
    /// runs of retracts can never perturb the dense-id assignment of the
    /// inserts around them. Matching statements are spliced out of the
    /// live rows and extents immediately and logged as tombstones until
    /// the next compaction reclaims their memory.
    fn apply_retract_run(&mut self, ops: &[DeltaOp], acc: &mut DeltaAcc) {
        let mut work: u64 = 0;
        let mut edge_removes: Vec<(EntityId, PredicateId, EntityId)> = Vec::new();
        let mut lit_removes: Vec<(EntityId, PredicateId, &Literal)> = Vec::new();
        let mut type_removes: Vec<(EntityId, TypeId)> = Vec::new();
        let mut cat_removes: Vec<(EntityId, CategoryId)> = Vec::new();
        for op in ops {
            work += 1;
            match op {
                DeltaOp::RetractTriple { s, p, o } => {
                    let (Some(s), Some(p), Some(o)) = (
                        self.entities.get(s),
                        self.predicates.get(p),
                        self.entities.get(o),
                    ) else {
                        continue;
                    };
                    edge_removes.push((EntityId::new(s), PredicateId::new(p), EntityId::new(o)));
                }
                DeltaOp::RetractLiteral { s, p, value } => {
                    let (Some(s), Some(p)) = (self.entities.get(s), self.predicates.get(p)) else {
                        continue;
                    };
                    lit_removes.push((EntityId::new(s), PredicateId::new(p), value));
                }
                DeltaOp::RetractTyped { entity, type_name } => {
                    let (Some(e), Some(t)) = (self.entities.get(entity), self.types.get(type_name))
                    else {
                        continue;
                    };
                    type_removes.push((EntityId::new(e), TypeId::new(t)));
                }
                DeltaOp::RetractCategorized { entity, category } => {
                    let (Some(e), Some(c)) =
                        (self.entities.get(entity), self.categories.get(category))
                    else {
                        continue;
                    };
                    cat_removes.push((EntityId::new(e), CategoryId::new(c)));
                }
                DeltaOp::RetractLabel { entity, label } => {
                    let Some(e) = self.entities.get(entity) else {
                        continue;
                    };
                    let slot = &mut self.labels[e as usize];
                    if slot.as_deref() == Some(label.as_str()) {
                        *slot = None;
                        acc.removed_assertions += 1;
                    }
                }
                DeltaOp::RetractAlias { alias, target } => {
                    let Some(t) = self.entities.get(target) else {
                        continue;
                    };
                    let row = &mut self.aliases[t as usize];
                    if let Ok(at) = row.binary_search_by(|a| a.as_str().cmp(alias)) {
                        row.remove(at);
                        acc.removed_assertions += 1;
                        work += 1;
                    }
                }
                _ => unreachable!("insert op in a retract-polarity run"),
            }
        }

        // Entity edges: per-row unsplice, both directions, mirroring the
        // insert pass. Only pairs actually present count as removed.
        edge_removes.sort_unstable();
        edge_removes.dedup();
        let mut removed: Vec<(EntityId, PredicateId, EntityId)> = Vec::new();
        let mut row_removes: Vec<(PredicateId, EntityId)> = Vec::new();
        let mut row_removed: Vec<(PredicateId, EntityId)> = Vec::new();
        let mut i = 0;
        while i < edge_removes.len() {
            let s = edge_removes[i].0;
            row_removes.clear();
            row_removed.clear();
            while i < edge_removes.len() && edge_removes[i].0 == s {
                row_removes.push((edge_removes[i].1, edge_removes[i].2));
                i += 1;
            }
            self.out
                .unsplice(s, &row_removes, &mut row_removed, &mut work);
            for &(p, o) in &row_removed {
                removed.push((s, p, o));
                self.pred_freq[p.index()] -= 1;
            }
        }
        let mut inverted: Vec<(EntityId, PredicateId, EntityId)> =
            removed.iter().map(|&(s, p, o)| (o, p, s)).collect();
        inverted.sort_unstable();
        let mut i = 0;
        while i < inverted.len() {
            let o = inverted[i].0;
            row_removes.clear();
            row_removed.clear();
            while i < inverted.len() && inverted[i].0 == o {
                row_removes.push((inverted[i].1, inverted[i].2));
                i += 1;
            }
            self.inc
                .unsplice(o, &row_removes, &mut row_removed, &mut work);
            debug_assert_eq!(
                row_removed.len(),
                row_removes.len(),
                "incoming rows must mirror outgoing rows"
            );
        }
        acc.touched_out
            .extend(removed.iter().map(|&(s, p, _)| (s, p)));
        acc.touched_in
            .extend(removed.iter().map(|&(_, p, o)| (o, p)));
        acc.removed_relations += removed.len();
        self.dead_relations.extend(removed);

        // Literal statements: a retract removes *every* stored copy whose
        // value matches (inserts do not deduplicate literals). The dead
        // literal ids keep their arena slots until compaction re-densifies
        // the arena.
        for (s, p, value) in lit_removes {
            let row = &mut self.lit.rows[s.index()];
            let lo = row.preds.partition_point(|&q| q < p);
            let hi = row.preds.partition_point(|&q| q <= p);
            work += (hi - lo + 1) as u64;
            let mut w = lo;
            for i in lo..row.preds.len() {
                if i < hi && self.literals[row.lits[i].index()] == *value {
                    self.dead_literals.push((s, p, row.lits[i]));
                    self.pred_freq[p.index()] -= 1;
                    self.lit.total -= 1;
                    acc.removed_literals += 1;
                    continue;
                }
                row.preds[w] = row.preds[i];
                row.lits[w] = row.lits[i];
                w += 1;
            }
            row.preds.truncate(w);
            row.lits.truncate(w);
        }

        // Type / category assertions: membership rows per op, then one
        // merge unsplice per touched extent (the retract mirror of the
        // batched insert splice).
        let mut gone_type_members: Vec<(TypeId, EntityId)> = Vec::new();
        for &(e, t) in &type_removes {
            if self.entity_types.remove(e, t.raw(), &mut work) {
                gone_type_members.push((t, e));
                self.dead_type_asserts.push((e, t));
            }
        }
        gone_type_members.sort_unstable();
        for (t, dels) in group_pairs(&gone_type_members) {
            unsplice_extent(&mut self.type_extents[t.index()], dels, &mut work);
            acc.touched_types.push(t);
        }
        let mut gone_cat_members: Vec<(CategoryId, EntityId)> = Vec::new();
        for &(e, c) in &cat_removes {
            if self.entity_cats.remove(e, c.raw(), &mut work) {
                gone_cat_members.push((c, e));
                self.dead_cat_asserts.push((e, c));
            }
        }
        gone_cat_members.sort_unstable();
        for (c, dels) in group_pairs(&gone_cat_members) {
            unsplice_extent(&mut self.cat_extents[c.index()], dels, &mut work);
            acc.touched_categories.push(c);
        }
        acc.removed_assertions += gone_type_members.len() + gone_cat_members.len();
        acc.work += work;
    }

    /// Number of tombstoned statements held since the last compaction
    /// (retracted relations, literal statements, and type/category
    /// assertions — each relation counted once, not per direction). Feeds
    /// the compaction policy's tombstone-mass trigger; a graph fresh from
    /// a build or a [`KnowledgeGraph::reclaim`] holds zero.
    pub fn tombstone_count(&self) -> usize {
        self.dead_relations.len()
            + self.dead_literals.len()
            + self.dead_type_asserts.len()
            + self.dead_cat_asserts.len()
    }

    /// Compact away every tombstone: an id-preserving rebuild from the
    /// surviving statements. Entity and dictionary ids are unchanged
    /// (retraction removes statements, never dictionary entries), every
    /// extent is bit-identical to the live view of `self`, literal ids
    /// are re-densified, and the result holds zero tombstones — the
    /// memory of the retracted statements is returned. The rebuilt
    /// graph's generation is `self.generation() + 1`, mirroring the
    /// sharded compaction's generation stamp.
    pub fn reclaim(&self) -> KnowledgeGraph {
        let mut b = KgBuilder::new();
        replicate_dictionaries(&mut b, self);
        for e in self.entity_ids() {
            replay_entity_facets(&mut b, self, e);
        }
        for t in self.entity_triples() {
            let o = t.object.as_entity().expect("entity triple");
            b.triple(t.subject, t.predicate, o);
        }
        let mut out = b.finish();
        out.generation = self.generation + 1;
        out
    }

    /// Aggregate size/shape statistics of the graph.
    pub fn summary(&self) -> GraphSummary {
        let mut max_out = 0usize;
        let mut max_in = 0usize;
        for e in self.entity_ids() {
            max_out = max_out.max(self.out.degree(e));
            max_in = max_in.max(self.inc.degree(e));
        }
        GraphSummary {
            entities: self.entity_count(),
            predicates: self.predicate_count(),
            types: self.type_count(),
            categories: self.category_count(),
            relation_triples: self.relation_count(),
            literal_triples: self.lit.len(),
            avg_degree: if self.entity_count() == 0 {
                0.0
            } else {
                2.0 * self.relation_count() as f64 / self.entity_count() as f64
            },
            max_out_degree: max_out,
            max_in_degree: max_in,
        }
    }
}

/// Iterate maximal runs of equal keys in a sorted pair slice, yielding
/// each key once with its run (whose second elements are sorted and
/// distinct, since the pairs are sorted and deduplicated upstream by the
/// membership-row insert).
fn group_pairs<K: Copy + PartialEq>(
    pairs: &[(K, EntityId)],
) -> impl Iterator<Item = (K, &[(K, EntityId)])> {
    let mut i = 0;
    std::iter::from_fn(move || {
        if i >= pairs.len() {
            return None;
        }
        let k = pairs[i].0;
        let start = i;
        while i < pairs.len() && pairs[i].0 == k {
            i += 1;
        }
        Some((k, &pairs[start..i]))
    })
}

/// Merge `adds` (second elements sorted, strictly increasing, disjoint
/// from `ext`) into the sorted extent with a single backward in-place
/// pass: elements below the lowest add never move, everything above it
/// moves exactly once. The batched counterpart of a per-element
/// binary-insert, whose repeated tail shifts are O(extent) *per add*.
fn splice_extent<K: Copy>(ext: &mut Vec<EntityId>, adds: &[(K, EntityId)], work: &mut u64) {
    debug_assert!(adds.windows(2).all(|w| w[0].1 < w[1].1));
    let old_len = ext.len();
    *work += adds.len() as u64;
    if old_len == 0 || ext[old_len - 1] < adds[0].1 {
        // pure append — the common case for dense-id batches, since new
        // entities get ids above every existing extent member
        ext.extend(adds.iter().map(|&(_, e)| e));
        return;
    }
    let start = ext.partition_point(|&x| x < adds[0].1);
    *work += (old_len - start) as u64;
    ext.resize(old_len + adds.len(), adds[0].1);
    let mut w = old_len + adds.len();
    let mut r = old_len;
    let mut a = adds.len();
    while a > 0 {
        while r > start && ext[r - 1] > adds[a - 1].1 {
            w -= 1;
            ext[w] = ext[r - 1];
            r -= 1;
        }
        w -= 1;
        ext[w] = adds[a - 1].1;
        a -= 1;
    }
    debug_assert_eq!(w, r, "merge must consume exactly the shifted tail");
}

/// Remove `dels` (second elements sorted, strictly increasing, all
/// present in `ext`) from the sorted extent with a single forward
/// in-place pass — the retract mirror of [`splice_extent`].
fn unsplice_extent<K: Copy>(ext: &mut Vec<EntityId>, dels: &[(K, EntityId)], work: &mut u64) {
    debug_assert!(dels.windows(2).all(|w| w[0].1 < w[1].1));
    *work += dels.len() as u64;
    if dels.is_empty() {
        return;
    }
    let start = ext.partition_point(|&x| x < dels[0].1);
    *work += (ext.len() - start) as u64;
    let mut w = start;
    let mut j = 0;
    for r in start..ext.len() {
        if j < dels.len() && ext[r] == dels[j].1 {
            j += 1;
            continue;
        }
        ext[w] = ext[r];
        w += 1;
    }
    debug_assert_eq!(j, dels.len(), "every removal must have been present");
    ext.truncate(w);
}

/// Receipt accumulator shared by the polarity runs of one
/// [`KnowledgeGraph::apply`]: runs append raw touched entries and
/// counters, and [`DeltaAcc::finish`] sorts, deduplicates and stamps the
/// final [`AppliedDelta`] once per apply.
pub(crate) struct DeltaAcc {
    base_entities: u32,
    pub(crate) touched_out: Vec<(EntityId, PredicateId)>,
    pub(crate) touched_in: Vec<(EntityId, PredicateId)>,
    pub(crate) touched_types: Vec<TypeId>,
    pub(crate) touched_categories: Vec<CategoryId>,
    pub(crate) added_relations: usize,
    pub(crate) added_literals: usize,
    pub(crate) removed_relations: usize,
    pub(crate) removed_literals: usize,
    pub(crate) removed_assertions: usize,
    pub(crate) work: u64,
}

impl DeltaAcc {
    pub(crate) fn new(base_entities: u32) -> Self {
        Self {
            base_entities,
            touched_out: Vec::new(),
            touched_in: Vec::new(),
            touched_types: Vec::new(),
            touched_categories: Vec::new(),
            added_relations: 0,
            added_literals: 0,
            removed_relations: 0,
            removed_literals: 0,
            removed_assertions: 0,
            work: 0,
        }
    }

    pub(crate) fn finish(mut self, generation: u64, end_entities: u32) -> AppliedDelta {
        self.touched_out.sort_unstable();
        self.touched_out.dedup();
        self.touched_in.sort_unstable();
        self.touched_in.dedup();
        self.touched_types.sort_unstable();
        self.touched_types.dedup();
        self.touched_categories.sort_unstable();
        self.touched_categories.dedup();
        AppliedDelta {
            generation,
            new_entities: self.base_entities..end_entities,
            touched_out: self.touched_out,
            touched_in: self.touched_in,
            touched_types: self.touched_types,
            touched_categories: self.touched_categories,
            added_relations: self.added_relations,
            added_literals: self.added_literals,
            removed_relations: self.removed_relations,
            removed_literals: self.removed_literals,
            removed_assertions: self.removed_assertions,
            work: self.work,
        }
    }
}

/// Aggregate statistics returned by [`KnowledgeGraph::summary`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphSummary {
    /// Number of entities.
    pub entities: usize,
    /// Number of distinct predicates.
    pub predicates: usize,
    /// Number of distinct types.
    pub types: usize,
    /// Number of distinct categories.
    pub categories: usize,
    /// Entity-to-entity statements.
    pub relation_triples: usize,
    /// Literal-valued statements.
    pub literal_triples: usize,
    /// Mean (in+out) entity degree.
    pub avg_degree: f64,
    /// Largest out-degree (hub fan-out).
    pub max_out_degree: usize,
    /// Largest in-degree (hub fan-in).
    pub max_in_degree: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running example in miniature.
    pub(crate) fn toy_kg() -> KnowledgeGraph {
        let mut b = KgBuilder::new();
        let gump = b.entity("Forrest_Gump");
        let apollo = b.entity("Apollo_13_(film)");
        let hanks = b.entity("Tom_Hanks");
        let sinise = b.entity("Gary_Sinise");
        let zemeckis = b.entity("Robert_Zemeckis");
        let starring = b.predicate("starring");
        let director = b.predicate("director");
        b.label(gump, "Forrest Gump");
        b.triple(gump, starring, hanks);
        b.triple(gump, starring, sinise);
        b.triple(apollo, starring, hanks);
        b.triple(apollo, starring, sinise);
        b.triple(gump, director, zemeckis);
        b.typed(gump, "Film");
        b.typed(apollo, "Film");
        b.typed(hanks, "Actor");
        b.typed(sinise, "Actor");
        b.typed(zemeckis, "Director");
        b.categorized(gump, "American films");
        b.categorized(apollo, "American films");
        let runtime = b.predicate("runtime");
        b.literal_triple(gump, runtime, Literal::integer(142));
        b.redirect("Geenbow", gump);
        b.finish()
    }

    #[test]
    fn basic_counts() {
        let kg = toy_kg();
        assert_eq!(kg.entity_count(), 5);
        assert_eq!(kg.predicate_count(), 3);
        assert_eq!(kg.type_count(), 3);
        assert_eq!(kg.category_count(), 1);
        assert_eq!(kg.relation_count(), 5);
        // 5 relations + 1 literal + 5 type + 2 category assertions
        assert_eq!(kg.triple_count(), 13);
    }

    #[test]
    fn objects_and_subjects_are_sorted_extents() {
        let kg = toy_kg();
        let gump = kg.entity("Forrest_Gump").unwrap();
        let hanks = kg.entity("Tom_Hanks").unwrap();
        let starring = kg.predicate("starring").unwrap();
        let cast = kg.objects(gump, starring);
        assert_eq!(cast.len(), 2);
        assert!(cast.windows(2).all(|w| w[0] < w[1]));
        // films starring Tom Hanks = extent of SF Tom_Hanks:starring←
        let films = kg.subjects(hanks, starring);
        assert_eq!(films.len(), 2);
        assert!(films.contains(&gump));
    }

    #[test]
    fn duplicate_triples_are_deduplicated() {
        let mut b = KgBuilder::new();
        let a = b.entity("a");
        let c = b.entity("c");
        let p = b.predicate("p");
        b.triple(a, p, c);
        b.triple(a, p, c);
        let kg = b.finish();
        assert_eq!(kg.relation_count(), 1);
    }

    #[test]
    fn type_and_category_extents() {
        let kg = toy_kg();
        let film = kg.type_id("Film").unwrap();
        let ext = kg.type_extent(film);
        assert_eq!(ext.len(), 2);
        assert!(ext.windows(2).all(|w| w[0] < w[1]));
        let cat = kg.category_id("American films").unwrap();
        assert_eq!(kg.category_extent(cat).len(), 2);
        let gump = kg.entity("Forrest_Gump").unwrap();
        assert!(kg.has_type(gump, film));
        assert!(kg.has_category(gump, cat));
        let actor = kg.type_id("Actor").unwrap();
        assert!(!kg.has_type(gump, actor));
    }

    #[test]
    fn labels_aliases_literals() {
        let kg = toy_kg();
        let gump = kg.entity("Forrest_Gump").unwrap();
        let hanks = kg.entity("Tom_Hanks").unwrap();
        assert_eq!(kg.label(gump), Some("Forrest Gump"));
        assert_eq!(kg.display_name(hanks), "Tom Hanks");
        assert_eq!(kg.aliases(gump), &["Geenbow".to_owned()]);
        let lits: Vec<_> = kg.literals(gump).collect();
        assert_eq!(lits.len(), 1);
        assert_eq!(lits[0].1.as_integer(), Some(142));
    }

    #[test]
    fn predicate_statistics() {
        let kg = toy_kg();
        let starring = kg.predicate("starring").unwrap();
        let runtime = kg.predicate("runtime").unwrap();
        assert_eq!(kg.predicate_frequency(starring), 4);
        assert_eq!(kg.predicate_frequency(runtime), 1);
    }

    #[test]
    fn degree_counts_both_directions() {
        let kg = toy_kg();
        let hanks = kg.entity("Tom_Hanks").unwrap();
        assert_eq!(kg.degree(hanks), 2); // two incoming starring edges
        let gump = kg.entity("Forrest_Gump").unwrap();
        assert_eq!(kg.degree(gump), 3); // three outgoing edges
    }

    #[test]
    fn triple_iteration_matches_counts() {
        let kg = toy_kg();
        assert_eq!(kg.entity_triples().count(), kg.relation_count());
        assert_eq!(kg.literal_triples().count(), 1);
    }

    #[test]
    fn empty_graph_is_fine() {
        let kg = KgBuilder::new().finish();
        assert_eq!(kg.entity_count(), 0);
        assert_eq!(kg.triple_count(), 0);
        assert_eq!(kg.entity_triples().count(), 0);
    }

    #[test]
    fn out_predicates_deduplicated() {
        let kg = toy_kg();
        let gump = kg.entity("Forrest_Gump").unwrap();
        let preds = kg.out_predicates(gump);
        assert_eq!(preds.len(), 2); // starring, director
    }

    #[test]
    fn summary_reports_shape() {
        let kg = toy_kg();
        let s = kg.summary();
        assert_eq!(s.entities, 5);
        assert_eq!(s.relation_triples, 5);
        assert_eq!(s.literal_triples, 1);
        assert_eq!(s.max_out_degree, 3); // Forrest_Gump
        assert_eq!(s.max_in_degree, 2); // Tom_Hanks / Gary_Sinise
        assert!((s.avg_degree - 2.0).abs() < 1e-12);
    }

    mod apply {
        use super::*;
        use crate::delta::DeltaBatch;

        /// The toy graph's build script, reusable as the base half of an
        /// append-vs-rebuild comparison.
        fn base_ops(b: &mut KgBuilder) {
            let gump = b.entity("Forrest_Gump");
            let apollo = b.entity("Apollo_13_(film)");
            let hanks = b.entity("Tom_Hanks");
            let starring = b.predicate("starring");
            b.triple(gump, starring, hanks);
            b.triple(apollo, starring, hanks);
            b.typed(gump, "Film");
            b.typed(apollo, "Film");
            b.categorized(gump, "American films");
        }

        fn delta() -> DeltaBatch {
            let mut d = DeltaBatch::new();
            d.triple("Cast_Away", "starring", "Tom_Hanks")
                .triple("Cast_Away", "director", "Robert_Zemeckis")
                .typed("Cast_Away", "Film")
                .typed("Robert_Zemeckis", "Director")
                .categorized("Cast_Away", "American films")
                .categorized("Cast_Away", "Survival films")
                .label("Cast_Away", "Cast Away")
                .literal("Cast_Away", "runtime", Literal::integer(143))
                .redirect("CastAway", "Cast_Away");
            d
        }

        fn assert_same_graph(a: &KnowledgeGraph, b: &KnowledgeGraph) {
            assert_eq!(a.entity_count(), b.entity_count());
            assert_eq!(a.predicate_count(), b.predicate_count());
            assert_eq!(a.type_count(), b.type_count());
            assert_eq!(a.category_count(), b.category_count());
            assert_eq!(a.relation_count(), b.relation_count());
            assert_eq!(a.triple_count(), b.triple_count());
            for e in a.entity_ids() {
                assert_eq!(a.entity_name(e), b.entity_name(e));
                assert_eq!(a.label(e), b.label(e));
                assert_eq!(a.aliases(e), b.aliases(e));
                let ta: Vec<TypeId> = a.types_of(e).collect();
                let tb: Vec<TypeId> = b.types_of(e).collect();
                assert_eq!(ta, tb);
                let ca: Vec<CategoryId> = a.categories_of(e).collect();
                let cb: Vec<CategoryId> = b.categories_of(e).collect();
                assert_eq!(ca, cb);
                for p in a.out_predicates(e) {
                    assert_eq!(a.objects(e, p), b.objects(e, p));
                }
                for p in a.in_predicates(e) {
                    assert_eq!(a.subjects(e, p), b.subjects(e, p));
                }
                assert_eq!(a.literals(e).count(), b.literals(e).count());
            }
            for t in a.type_ids() {
                assert_eq!(a.type_extent(t), b.type_extent(t));
            }
            for c in a.category_ids() {
                assert_eq!(a.category_extent(c), b.category_extent(c));
            }
            for p in a.predicate_ids() {
                assert_eq!(a.predicate_name(p), b.predicate_name(p));
                assert_eq!(a.predicate_frequency(p), b.predicate_frequency(p));
            }
        }

        #[test]
        fn append_equals_rebuild_of_the_union() {
            let mut appended = {
                let mut b = KgBuilder::new();
                base_ops(&mut b);
                b.finish()
            };
            let receipt = appended.apply(&delta());
            assert_eq!(receipt.generation, 1);
            assert_eq!(appended.generation(), 1);
            assert_eq!(receipt.added_relations, 2);
            assert_eq!(receipt.added_literals, 1);
            assert!(!receipt.new_entities.is_empty());

            let rebuilt = {
                let mut b = KgBuilder::new();
                base_ops(&mut b);
                delta().apply_to_builder(&mut b);
                b.finish()
            };
            assert_same_graph(&appended, &rebuilt);
        }

        #[test]
        fn duplicate_statements_are_not_reinserted() {
            let mut kg = {
                let mut b = KgBuilder::new();
                base_ops(&mut b);
                b.finish()
            };
            let before_triples = kg.triple_count();
            let mut d = DeltaBatch::new();
            d.triple("Forrest_Gump", "starring", "Tom_Hanks")
                .typed("Forrest_Gump", "Film");
            let receipt = kg.apply(&d);
            assert_eq!(receipt.added_relations, 0);
            assert!(receipt.touched_out.is_empty());
            assert!(receipt.touched_types.is_empty());
            assert_eq!(kg.triple_count(), before_triples);
        }

        #[test]
        fn receipt_lists_exactly_the_touched_extents() {
            let mut kg = {
                let mut b = KgBuilder::new();
                base_ops(&mut b);
                b.finish()
            };
            let gump = kg.entity("Forrest_Gump").unwrap();
            let hanks = kg.entity("Tom_Hanks").unwrap();
            let starring = kg.predicate("starring").unwrap();
            let mut d = DeltaBatch::new();
            d.triple("Tom_Hanks", "starring", "Forrest_Gump"); // reversed edge
            let receipt = kg.apply(&d);
            assert_eq!(receipt.touched_out, vec![(hanks, starring)]);
            assert_eq!(receipt.touched_in, vec![(gump, starring)]);
            assert!(receipt.touched_types.is_empty());
            assert!(receipt.new_entities.is_empty());
        }

        #[test]
        fn append_work_is_sublinear_in_graph_size() {
            use crate::datagen::{generate, DatagenConfig};
            let mut kg = generate(&DatagenConfig::small());
            let m = kg.relation_count() as u64;
            let mut d = DeltaBatch::new();
            for i in 0..10u32 {
                d.triple(
                    kg.entity_name(EntityId::new(i)).to_owned(),
                    "appended_pred",
                    kg.entity_name(EntityId::new(i + 40)).to_owned(),
                );
            }
            let receipt = kg.apply(&d);
            assert_eq!(receipt.added_relations, 10);
            assert!(
                receipt.work < m / 10,
                "append of 10 triples did {} work on a graph of {} relations — \
                 that smells like a rebuild",
                receipt.work,
                m
            );
        }

        /// Regression guard for the batched extent splice: 10k `Typed`
        /// ops into one extent, asserted in *descending* entity-id order
        /// (the worst case for a per-op binary insert, which would shift
        /// the whole tail on every add — ~50M element moves here). The
        /// sort-then-merge splice does one O(extent + adds) pass per
        /// touched extent, so total work stays within a small constant of
        /// the op count.
        #[test]
        fn bulk_extent_work_is_linear_in_batch_size() {
            let n: u32 = 10_000;
            let mut b = KgBuilder::new();
            for i in 0..n {
                b.entity(&format!("e{i}"));
            }
            let mut kg = b.finish();
            let mut d = DeltaBatch::new();
            for i in (0..n).rev() {
                d.typed(format!("e{i}"), "Big");
            }
            let receipt = kg.apply(&d);
            assert_eq!(receipt.touched_types.len(), 1);
            let big = kg.type_id("Big").unwrap();
            let ext = kg.type_extent(big);
            assert_eq!(ext.len(), n as usize);
            assert!(ext.windows(2).all(|w| w[0] < w[1]), "extent stays sorted");
            assert!(
                receipt.work < 100_000,
                "10k-op extent batch did {} work — that smells like a per-op \
                 binary insert (quadratic tail shifting)",
                receipt.work
            );
        }

        #[test]
        fn appended_entities_are_queryable() {
            let mut kg = KgBuilder::new().finish();
            let mut d = DeltaBatch::new();
            d.triple("a", "p", "b").typed("a", "T").label("a", "The A");
            kg.apply(&d);
            let a = kg.entity("a").expect("appended entity resolvable");
            let p = kg.predicate("p").unwrap();
            assert_eq!(kg.objects(a, p).len(), 1);
            assert_eq!(kg.label(a), Some("The A"));
            assert_eq!(kg.degree(a), 1);
            assert!(kg.has_type(a, kg.type_id("T").unwrap()));
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Random edge lists over a small id space.
        fn edges() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
            proptest::collection::vec((0u8..12, 0u8..4, 0u8..12), 0..64)
        }

        fn build(edges: &[(u8, u8, u8)]) -> KnowledgeGraph {
            let mut b = KgBuilder::new();
            // pre-intern a stable entity set
            for i in 0..12u8 {
                b.entity(&format!("e{i}"));
            }
            for &(s, p, o) in edges {
                let s = b.entity(&format!("e{s}"));
                let p = b.predicate(&format!("p{p}"));
                let o = b.entity(&format!("e{o}"));
                b.triple(s, p, o);
            }
            b.finish()
        }

        proptest! {
            /// Adjacency symmetry: o ∈ objects(s,p) ⟺ s ∈ subjects(o,p),
            /// and both sides are sorted and deduplicated.
            #[test]
            fn prop_out_in_symmetry(edges in edges()) {
                let kg = build(&edges);
                for s in kg.entity_ids() {
                    for (p, o) in kg.out_edges(s) {
                        prop_assert!(kg.subjects(o, p).binary_search(&s).is_ok());
                    }
                    for (p, src) in kg.in_edges(s) {
                        prop_assert!(kg.objects(src, p).binary_search(&s).is_ok());
                    }
                    for p in kg.out_predicates(s) {
                        let objs = kg.objects(s, p);
                        prop_assert!(objs.windows(2).all(|w| w[0] < w[1]));
                    }
                }
            }

            /// The triple count seen through iteration equals the count
            /// after sort+dedup of the input.
            #[test]
            fn prop_triple_count_is_dedup_count(edges in edges()) {
                let kg = build(&edges);
                let mut uniq = edges.clone();
                uniq.sort_unstable();
                uniq.dedup();
                prop_assert_eq!(kg.relation_count(), uniq.len());
                prop_assert_eq!(kg.entity_triples().count(), uniq.len());
            }

            /// Degrees are consistent with edge iteration.
            #[test]
            fn prop_degree_matches_edges(edges in edges()) {
                let kg = build(&edges);
                for e in kg.entity_ids() {
                    let expected = kg.out_edges(e).count() + kg.in_edges(e).count();
                    prop_assert_eq!(kg.degree(e), expected);
                }
            }
        }
    }

    mod retract {
        use super::*;

        #[test]
        fn retract_triple_removes_both_directions() {
            let mut kg = toy_kg();
            let gump = kg.entity("Forrest_Gump").unwrap();
            let hanks = kg.entity("Tom_Hanks").unwrap();
            let starring = kg.predicate("starring").unwrap();
            let mut d = DeltaBatch::new();
            d.retract_triple("Forrest_Gump", "starring", "Tom_Hanks");
            let r = kg.apply(&d);
            assert_eq!(r.removed_relations, 1);
            assert_eq!(r.touched_out, vec![(gump, starring)]);
            assert_eq!(r.touched_in, vec![(hanks, starring)]);
            assert_eq!(r.generation, 1);
            assert!(kg.objects(gump, starring).binary_search(&hanks).is_err());
            assert!(kg.subjects(hanks, starring).binary_search(&gump).is_err());
            assert_eq!(kg.relation_count(), 4);
            assert_eq!(kg.predicate_frequency(starring), 3);
            assert_eq!(kg.tombstone_count(), 1);
            // the untouched co-starring edge survives
            let sinise = kg.entity("Gary_Sinise").unwrap();
            assert!(kg.objects(gump, starring).binary_search(&sinise).is_ok());
        }

        #[test]
        fn retract_of_unknown_names_is_a_no_op_and_never_interns() {
            let mut kg = toy_kg();
            let entities = kg.entity_count();
            let mut d = DeltaBatch::new();
            d.retract_triple("No_Such_Subject", "starring", "Tom_Hanks")
                .retract_triple("Forrest_Gump", "no_such_pred", "Tom_Hanks")
                .retract_typed("Forrest_Gump", "No_Such_Type")
                .retract_categorized("No_Such_Entity", "American films")
                .retract_label("No_Such_Entity", "x")
                .retract_alias("Geenbow", "No_Such_Entity")
                .retract_literal("No_Such_Entity", "runtime", Literal::integer(1));
            let r = kg.apply(&d);
            assert_eq!(
                r.removed_relations + r.removed_literals + r.removed_assertions,
                0
            );
            assert!(r.touched_out.is_empty() && r.touched_in.is_empty());
            assert_eq!(kg.entity_count(), entities);
            assert_eq!(kg.entity("No_Such_Subject"), None);
            assert_eq!(kg.tombstone_count(), 0);
            assert_eq!(kg.triple_count(), toy_kg().triple_count());
        }

        #[test]
        fn retract_facets_and_label_and_alias() {
            let mut kg = toy_kg();
            let gump = kg.entity("Forrest_Gump").unwrap();
            let film = kg.type_id("Film").unwrap();
            let cat = kg.category_id("American films").unwrap();
            let mut d = DeltaBatch::new();
            d.retract_typed("Forrest_Gump", "Film")
                .retract_categorized("Forrest_Gump", "American films")
                .retract_label("Forrest_Gump", "Forrest Gump")
                .retract_alias("Geenbow", "Forrest_Gump")
                .retract_literal("Forrest_Gump", "runtime", Literal::integer(142));
            let r = kg.apply(&d);
            // type + category + label + alias each count as one assertion
            assert_eq!(r.removed_assertions, 4);
            assert_eq!(r.removed_literals, 1);
            assert_eq!(r.touched_types, vec![film]);
            assert_eq!(r.touched_categories, vec![cat]);
            assert!(!kg.has_type(gump, film));
            assert!(!kg.has_category(gump, cat));
            assert_eq!(
                kg.type_extent(film),
                &[kg.entity("Apollo_13_(film)").unwrap()]
            );
            assert_eq!(kg.label(gump), None);
            assert!(kg.aliases(gump).is_empty());
            assert_eq!(kg.literals(gump).count(), 0);
            // type + category + literal tombstone; labels and aliases are
            // cleared in place, not tombstoned
            assert_eq!(kg.tombstone_count(), 3);
        }

        #[test]
        fn retract_label_only_clears_a_matching_value() {
            let mut kg = toy_kg();
            let gump = kg.entity("Forrest_Gump").unwrap();
            let mut d = DeltaBatch::new();
            d.retract_label("Forrest_Gump", "Stale Label");
            kg.apply(&d);
            assert_eq!(kg.label(gump), Some("Forrest Gump"));
        }

        #[test]
        fn retract_literal_removes_every_matching_copy() {
            let mut b = KgBuilder::new();
            let e = b.entity("e");
            let p = b.predicate("p");
            b.literal_triple(e, p, Literal::integer(7));
            b.literal_triple(e, p, Literal::integer(7));
            b.literal_triple(e, p, Literal::integer(9));
            let mut kg = b.finish();
            let mut d = DeltaBatch::new();
            d.retract_literal("e", "p", Literal::integer(7));
            let r = kg.apply(&d);
            assert_eq!(r.removed_literals, 2);
            let lits: Vec<_> = kg.literals(e).map(|(_, l)| l.clone()).collect();
            assert_eq!(lits, vec![Literal::integer(9)]);
        }

        #[test]
        fn mixed_polarity_batch_applies_in_order_with_one_generation_bump() {
            let mut kg = toy_kg();
            let mut d = DeltaBatch::new();
            // insert, retract the inserted edge, insert it again: order matters
            d.triple("Forrest_Gump", "starring", "Robert_Zemeckis");
            d.retract_triple("Forrest_Gump", "starring", "Robert_Zemeckis");
            d.triple("Forrest_Gump", "starring", "Robert_Zemeckis");
            let r = kg.apply(&d);
            assert_eq!(r.generation, 1);
            assert_eq!(kg.generation(), 1);
            assert_eq!(r.added_relations, 2);
            assert_eq!(r.removed_relations, 1);
            let gump = kg.entity("Forrest_Gump").unwrap();
            let zemeckis = kg.entity("Robert_Zemeckis").unwrap();
            let starring = kg.predicate("starring").unwrap();
            assert!(kg.objects(gump, starring).binary_search(&zemeckis).is_ok());
        }

        #[test]
        fn reinsert_after_retract_restores_the_row() {
            let mut kg = toy_kg();
            let mut d = DeltaBatch::new();
            d.retract_triple("Forrest_Gump", "starring", "Tom_Hanks");
            kg.apply(&d);
            let mut d2 = DeltaBatch::new();
            d2.triple("Forrest_Gump", "starring", "Tom_Hanks");
            kg.apply(&d2);
            let gump = kg.entity("Forrest_Gump").unwrap();
            let hanks = kg.entity("Tom_Hanks").unwrap();
            let starring = kg.predicate("starring").unwrap();
            assert!(kg.objects(gump, starring).binary_search(&hanks).is_ok());
            assert_eq!(kg.relation_count(), 5);
            // the tombstone of the retracted row survives until reclaim
            assert_eq!(kg.tombstone_count(), 1);
        }

        #[test]
        fn reclaim_drops_tombstones_and_preserves_answers() {
            let mut kg = toy_kg();
            let mut d = DeltaBatch::new();
            d.retract_triple("Forrest_Gump", "starring", "Gary_Sinise")
                .retract_typed("Zemeckis_Wrong", "Film") // unknown: no-op
                .retract_categorized("Apollo_13_(film)", "American films")
                .retract_literal("Forrest_Gump", "runtime", Literal::integer(142));
            kg.apply(&d);
            assert_eq!(kg.tombstone_count(), 3);
            let r = kg.reclaim();
            assert_eq!(r.tombstone_count(), 0);
            assert_eq!(r.generation(), kg.generation() + 1);
            // identical live view, identical ids
            assert_eq!(r.entity_count(), kg.entity_count());
            assert_eq!(r.triple_count(), kg.triple_count());
            for e in kg.entity_ids() {
                assert_eq!(r.entity_name(e), kg.entity_name(e));
                assert_eq!(r.label(e), kg.label(e));
                assert_eq!(r.degree(e), kg.degree(e));
            }
            assert_eq!(
                crate::ntriples::serialize(&r),
                crate::ntriples::serialize(&kg)
            );
        }
    }
}

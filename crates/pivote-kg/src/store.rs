//! The in-memory knowledge graph store.
//!
//! [`KgBuilder`] accumulates statements in any order; [`KgBuilder::finish`]
//! freezes them into an immutable [`KnowledgeGraph`] with compressed
//! sparse-row (CSR) adjacency in both directions, per-predicate runs sorted
//! by target id, and sorted extent lists for every type and category.
//!
//! The layout is chosen for the hot loops of the PivotE ranking model
//! (`pivote-core`): a semantic-feature extent `E(π)` is exactly one
//! per-predicate run of the CSR (already sorted by entity id), and
//! `‖E(π) ∩ E(c)‖` becomes a linear/galloping merge of two sorted slices
//! with no hashing.

use crate::id::{CategoryId, EntityId, LiteralId, PredicateId, TypeId};
use crate::interner::Interner;
use crate::triple::{Literal, Object, Triple};

/// CSR adjacency: per source entity, a run of `(predicate, target)` pairs
/// sorted by `(predicate, target)`, so the targets of one predicate form a
/// contiguous slice sorted by entity id.
#[derive(Debug, Default, Clone)]
pub(crate) struct EdgeCsr {
    offsets: Vec<u32>,
    preds: Vec<PredicateId>,
    targets: Vec<EntityId>,
}

impl EdgeCsr {
    fn build(n_sources: usize, mut edges: Vec<(u32, PredicateId, EntityId)>) -> Self {
        edges.sort_unstable();
        edges.dedup();
        let mut offsets = vec![0u32; n_sources + 1];
        for &(s, _, _) in &edges {
            offsets[s as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut preds = Vec::with_capacity(edges.len());
        let mut targets = Vec::with_capacity(edges.len());
        for (_, p, t) in edges {
            preds.push(p);
            targets.push(t);
        }
        Self {
            offsets,
            preds,
            targets,
        }
    }

    #[inline]
    fn range(&self, e: EntityId) -> std::ops::Range<usize> {
        self.offsets[e.index()] as usize..self.offsets[e.index() + 1] as usize
    }

    /// All `(predicate, target)` pairs of `e`.
    pub(crate) fn row(&self, e: EntityId) -> impl Iterator<Item = (PredicateId, EntityId)> + '_ {
        let r = self.range(e);
        self.preds[r.clone()]
            .iter()
            .copied()
            .zip(self.targets[r].iter().copied())
    }

    /// Targets of `e` under predicate `p`: a sorted slice of entity ids.
    pub(crate) fn with_pred(&self, e: EntityId, p: PredicateId) -> &[EntityId] {
        let r = self.range(e);
        let preds = &self.preds[r.clone()];
        let lo = preds.partition_point(|&q| q < p);
        let hi = preds.partition_point(|&q| q <= p);
        &self.targets[r.start + lo..r.start + hi]
    }

    /// Distinct predicates appearing on `e`'s row.
    pub(crate) fn preds_of(&self, e: EntityId) -> Vec<PredicateId> {
        let r = self.range(e);
        let mut out: Vec<PredicateId> = self.preds[r].to_vec();
        out.dedup();
        out
    }

    pub(crate) fn degree(&self, e: EntityId) -> usize {
        self.range(e).len()
    }

    pub(crate) fn len(&self) -> usize {
        self.preds.len()
    }
}

/// CSR for literal-valued statements: per entity, `(predicate, literal)`
/// pairs sorted by predicate.
#[derive(Debug, Default, Clone)]
struct LiteralCsr {
    offsets: Vec<u32>,
    preds: Vec<PredicateId>,
    lits: Vec<LiteralId>,
}

impl LiteralCsr {
    fn build(n_sources: usize, mut edges: Vec<(u32, PredicateId, LiteralId)>) -> Self {
        edges.sort_unstable();
        edges.dedup();
        let mut offsets = vec![0u32; n_sources + 1];
        for &(s, _, _) in &edges {
            offsets[s as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut preds = Vec::with_capacity(edges.len());
        let mut lits = Vec::with_capacity(edges.len());
        for (_, p, l) in edges {
            preds.push(p);
            lits.push(l);
        }
        Self {
            offsets,
            preds,
            lits,
        }
    }

    #[inline]
    fn range(&self, e: EntityId) -> std::ops::Range<usize> {
        self.offsets[e.index()] as usize..self.offsets[e.index() + 1] as usize
    }

    fn row(&self, e: EntityId) -> impl Iterator<Item = (PredicateId, LiteralId)> + '_ {
        let r = self.range(e);
        self.preds[r.clone()]
            .iter()
            .copied()
            .zip(self.lits[r].iter().copied())
    }
}

/// Per-entity membership lists (types or categories), CSR-encoded.
#[derive(Debug, Default, Clone)]
struct Membership {
    offsets: Vec<u32>,
    items: Vec<u32>,
}

impl Membership {
    fn build(n_sources: usize, mut pairs: Vec<(u32, u32)>) -> Self {
        pairs.sort_unstable();
        pairs.dedup();
        let mut offsets = vec![0u32; n_sources + 1];
        for &(s, _) in &pairs {
            offsets[s as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let items = pairs.into_iter().map(|(_, t)| t).collect();
        Self { offsets, items }
    }

    fn row(&self, e: EntityId) -> &[u32] {
        &self.items[self.offsets[e.index()] as usize..self.offsets[e.index() + 1] as usize]
    }
}

/// Mutable accumulator for building a [`KnowledgeGraph`].
#[derive(Debug, Default)]
pub struct KgBuilder {
    entities: Interner,
    predicates: Interner,
    types: Interner,
    categories: Interner,
    literals: Vec<Literal>,
    labels: Vec<Option<String>>,
    entity_edges: Vec<(u32, PredicateId, EntityId)>,
    literal_edges: Vec<(u32, PredicateId, LiteralId)>,
    entity_types: Vec<(u32, u32)>,
    entity_categories: Vec<(u32, u32)>,
    redirects: Vec<(u32, String)>,
    disambiguations: Vec<(u32, String)>,
}

impl KgBuilder {
    /// A fresh, empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern (or look up) the entity called `name` and return its id.
    pub fn entity(&mut self, name: &str) -> EntityId {
        let id = self.entities.intern(name);
        if id as usize >= self.labels.len() {
            self.labels.resize(id as usize + 1, None);
        }
        EntityId::new(id)
    }

    /// Intern (or look up) the predicate called `name`.
    pub fn predicate(&mut self, name: &str) -> PredicateId {
        PredicateId::new(self.predicates.intern(name))
    }

    /// Set the human-readable label (`rdfs:label`) of an entity.
    pub fn label(&mut self, e: EntityId, label: impl Into<String>) {
        self.labels[e.index()] = Some(label.into());
    }

    /// Add an entity-to-entity statement `<s, p, o>`.
    pub fn triple(&mut self, s: EntityId, p: PredicateId, o: EntityId) {
        self.entity_edges.push((s.raw(), p, o));
    }

    /// Add a literal-valued statement `<s, p, "literal">`.
    pub fn literal_triple(&mut self, s: EntityId, p: PredicateId, value: Literal) {
        let lid = LiteralId::new(self.literals.len() as u32);
        self.literals.push(value);
        self.literal_edges.push((s.raw(), p, lid));
    }

    /// Intern a type name without asserting any membership. Lets builders
    /// reproduce an existing graph's dense type numbering (e.g. when
    /// partitioning a graph into shards) before adding per-entity
    /// assertions in an arbitrary order.
    pub fn declare_type(&mut self, type_name: &str) -> TypeId {
        TypeId::new(self.types.intern(type_name))
    }

    /// Intern a category name without asserting any membership — the
    /// category analogue of [`KgBuilder::declare_type`].
    pub fn declare_category(&mut self, category: &str) -> CategoryId {
        CategoryId::new(self.categories.intern(category))
    }

    /// Assert `rdf:type` membership: `e` is a `type_name`.
    pub fn typed(&mut self, e: EntityId, type_name: &str) -> TypeId {
        let t = self.types.intern(type_name);
        self.entity_types.push((e.raw(), t));
        TypeId::new(t)
    }

    /// Assert category membership (`dct:subject`): `e` is in `category`.
    pub fn categorized(&mut self, e: EntityId, category: &str) -> CategoryId {
        let c = self.categories.intern(category);
        self.entity_categories.push((e.raw(), c));
        CategoryId::new(c)
    }

    /// Record a redirect alias (e.g. the misspelling "Geenbow" redirects to
    /// Forrest_Gump). Aliases feed the "similar entity names" search field.
    pub fn redirect(&mut self, alias: impl Into<String>, target: EntityId) {
        self.redirects.push((target.raw(), alias.into()));
    }

    /// Record a disambiguation alias pointing at `target`.
    pub fn disambiguation(&mut self, alias: impl Into<String>, target: EntityId) {
        self.disambiguations.push((target.raw(), alias.into()));
    }

    /// Number of entities interned so far.
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// Name of an already-interned entity (pre-freeze lookup).
    pub fn entity_name_hint(&self, e: EntityId) -> &str {
        self.entities.resolve(e.raw())
    }

    /// Freeze into an immutable, indexed [`KnowledgeGraph`].
    pub fn finish(self) -> KnowledgeGraph {
        let n = self.entities.len();
        let inverted: Vec<(u32, PredicateId, EntityId)> = self
            .entity_edges
            .iter()
            .map(|&(s, p, o)| (o.raw(), p, EntityId::new(s)))
            .collect();
        let out = EdgeCsr::build(n, self.entity_edges);
        let inc = EdgeCsr::build(n, inverted);
        let lit = LiteralCsr::build(n, self.literal_edges);

        let mut type_extents: Vec<Vec<EntityId>> = vec![Vec::new(); self.types.len()];
        for &(e, t) in &self.entity_types {
            type_extents[t as usize].push(EntityId::new(e));
        }
        for ext in &mut type_extents {
            ext.sort_unstable();
            ext.dedup();
        }
        let mut cat_extents: Vec<Vec<EntityId>> = vec![Vec::new(); self.categories.len()];
        for &(e, c) in &self.entity_categories {
            cat_extents[c as usize].push(EntityId::new(e));
        }
        for ext in &mut cat_extents {
            ext.sort_unstable();
            ext.dedup();
        }
        let entity_types = Membership::build(n, self.entity_types);
        let entity_cats = Membership::build(n, self.entity_categories);

        let mut aliases: Vec<Vec<String>> = vec![Vec::new(); n];
        for (e, alias) in self.redirects.into_iter().chain(self.disambiguations) {
            aliases[e as usize].push(alias);
        }
        for a in &mut aliases {
            a.sort();
            a.dedup();
        }

        let mut pred_freq = vec![0u64; self.predicates.len()];
        for i in 0..out.len() {
            pred_freq[out.preds[i].index()] += 1;
        }
        for p in &lit.preds {
            pred_freq[p.index()] += 1;
        }

        KnowledgeGraph {
            entities: self.entities,
            predicates: self.predicates,
            types: self.types,
            categories: self.categories,
            literals: self.literals,
            labels: self.labels,
            out,
            inc,
            lit,
            entity_types,
            type_extents,
            entity_cats,
            cat_extents,
            aliases,
            pred_freq,
        }
    }
}

/// An immutable, fully indexed knowledge graph.
///
/// All extent-returning methods (`objects`, `subjects`, `type_extent`,
/// `category_extent`) return slices **sorted by entity id with no
/// duplicates** — the invariant the ranking layer's set intersections rely
/// on.
#[derive(Debug)]
pub struct KnowledgeGraph {
    entities: Interner,
    predicates: Interner,
    types: Interner,
    categories: Interner,
    literals: Vec<Literal>,
    labels: Vec<Option<String>>,
    out: EdgeCsr,
    inc: EdgeCsr,
    lit: LiteralCsr,
    entity_types: Membership,
    type_extents: Vec<Vec<EntityId>>,
    entity_cats: Membership,
    cat_extents: Vec<Vec<EntityId>>,
    aliases: Vec<Vec<String>>,
    pred_freq: Vec<u64>,
}

impl KnowledgeGraph {
    /// Number of entities.
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// Number of distinct predicates.
    pub fn predicate_count(&self) -> usize {
        self.predicates.len()
    }

    /// Number of distinct types.
    pub fn type_count(&self) -> usize {
        self.types.len()
    }

    /// Number of distinct categories.
    pub fn category_count(&self) -> usize {
        self.categories.len()
    }

    /// Total statements: entity edges + literal edges + type + category
    /// assertions.
    pub fn triple_count(&self) -> usize {
        self.out.len()
            + self.lit.preds.len()
            + self.entity_types.items.len()
            + self.entity_cats.items.len()
    }

    /// Number of entity-to-entity statements only.
    pub fn relation_count(&self) -> usize {
        self.out.len()
    }

    /// Resolve an entity by name.
    pub fn entity(&self, name: &str) -> Option<EntityId> {
        self.entities.get(name).map(EntityId::new)
    }

    /// The canonical name of an entity (e.g. `Forrest_Gump`).
    pub fn entity_name(&self, e: EntityId) -> &str {
        self.entities.resolve(e.raw())
    }

    /// The `rdfs:label` of an entity, if set.
    pub fn label(&self, e: EntityId) -> Option<&str> {
        self.labels[e.index()].as_deref()
    }

    /// Human-readable display name: the label if present, else the entity
    /// name with underscores replaced by spaces.
    pub fn display_name(&self, e: EntityId) -> String {
        match self.label(e) {
            Some(l) => l.to_owned(),
            None => self.entity_name(e).replace('_', " "),
        }
    }

    /// Resolve a predicate by name.
    pub fn predicate(&self, name: &str) -> Option<PredicateId> {
        self.predicates.get(name).map(PredicateId::new)
    }

    /// The name of a predicate (e.g. `starring`).
    pub fn predicate_name(&self, p: PredicateId) -> &str {
        self.predicates.resolve(p.raw())
    }

    /// Resolve a type by name.
    pub fn type_id(&self, name: &str) -> Option<TypeId> {
        self.types.get(name).map(TypeId::new)
    }

    /// The name of a type (e.g. `Film`).
    pub fn type_name(&self, t: TypeId) -> &str {
        self.types.resolve(t.raw())
    }

    /// Resolve a category by name.
    pub fn category_id(&self, name: &str) -> Option<CategoryId> {
        self.categories.get(name).map(CategoryId::new)
    }

    /// The name of a category (e.g. `American films`).
    pub fn category_name(&self, c: CategoryId) -> &str {
        self.categories.resolve(c.raw())
    }

    /// Outgoing `(predicate, object-entity)` pairs of `e`.
    pub fn out_edges(&self, e: EntityId) -> impl Iterator<Item = (PredicateId, EntityId)> + '_ {
        self.out.row(e)
    }

    /// Incoming `(predicate, subject-entity)` pairs of `e`.
    pub fn in_edges(&self, e: EntityId) -> impl Iterator<Item = (PredicateId, EntityId)> + '_ {
        self.inc.row(e)
    }

    /// Objects of `<e, p, ?x>` — sorted, deduplicated entity ids. This is
    /// the extent of the semantic feature `e:p→`.
    pub fn objects(&self, e: EntityId, p: PredicateId) -> &[EntityId] {
        self.out.with_pred(e, p)
    }

    /// Subjects of `<?x, p, e>` — sorted, deduplicated entity ids. This is
    /// the extent of the semantic feature `e:p←`.
    pub fn subjects(&self, e: EntityId, p: PredicateId) -> &[EntityId] {
        self.inc.with_pred(e, p)
    }

    /// Distinct predicates on outgoing edges of `e`.
    pub fn out_predicates(&self, e: EntityId) -> Vec<PredicateId> {
        self.out.preds_of(e)
    }

    /// Distinct predicates on incoming edges of `e`.
    pub fn in_predicates(&self, e: EntityId) -> Vec<PredicateId> {
        self.inc.preds_of(e)
    }

    /// Out-degree + in-degree over entity edges (used by the PPR baseline).
    pub fn degree(&self, e: EntityId) -> usize {
        self.out.degree(e) + self.inc.degree(e)
    }

    /// Literal statements `(predicate, literal)` of `e`.
    pub fn literals(&self, e: EntityId) -> impl Iterator<Item = (PredicateId, &Literal)> + '_ {
        self.lit.row(e).map(|(p, l)| (p, &self.literals[l.index()]))
    }

    /// Resolve a literal id.
    pub fn literal(&self, l: LiteralId) -> &Literal {
        &self.literals[l.index()]
    }

    /// Types of `e`, sorted by type id.
    pub fn types_of(&self, e: EntityId) -> impl Iterator<Item = TypeId> + '_ {
        self.entity_types.row(e).iter().map(|&t| TypeId::new(t))
    }

    /// Categories of `e`, sorted by category id.
    pub fn categories_of(&self, e: EntityId) -> impl Iterator<Item = CategoryId> + '_ {
        self.entity_cats.row(e).iter().map(|&c| CategoryId::new(c))
    }

    /// All entities of type `t`, sorted by entity id.
    pub fn type_extent(&self, t: TypeId) -> &[EntityId] {
        &self.type_extents[t.index()]
    }

    /// All entities in category `c`, sorted by entity id.
    pub fn category_extent(&self, c: CategoryId) -> &[EntityId] {
        &self.cat_extents[c.index()]
    }

    /// Whether `e` has type `t` (binary search on the extent's complement —
    /// the per-entity row, which is tiny).
    pub fn has_type(&self, e: EntityId, t: TypeId) -> bool {
        self.entity_types.row(e).binary_search(&t.raw()).is_ok()
    }

    /// Whether `e` is in category `c`.
    pub fn has_category(&self, e: EntityId, c: CategoryId) -> bool {
        self.entity_cats.row(e).binary_search(&c.raw()).is_ok()
    }

    /// Redirect + disambiguation aliases of `e` ("similar entity names").
    pub fn aliases(&self, e: EntityId) -> &[String] {
        &self.aliases[e.index()]
    }

    /// How many statements (entity or literal valued) use predicate `p`.
    pub fn predicate_frequency(&self, p: PredicateId) -> u64 {
        self.pred_freq[p.index()]
    }

    /// Iterate every entity id.
    pub fn entity_ids(&self) -> impl Iterator<Item = EntityId> {
        (0..self.entities.len() as u32).map(EntityId::new)
    }

    /// Iterate every predicate id.
    pub fn predicate_ids(&self) -> impl Iterator<Item = PredicateId> {
        (0..self.predicates.len() as u32).map(PredicateId::new)
    }

    /// Iterate every type id.
    pub fn type_ids(&self) -> impl Iterator<Item = TypeId> {
        (0..self.types.len() as u32).map(TypeId::new)
    }

    /// Iterate every category id.
    pub fn category_ids(&self) -> impl Iterator<Item = CategoryId> {
        (0..self.categories.len() as u32).map(CategoryId::new)
    }

    /// Iterate all entity-to-entity triples (for serialization and stats).
    pub fn entity_triples(&self) -> impl Iterator<Item = Triple> + '_ {
        self.entity_ids().flat_map(move |s| {
            self.out
                .row(s)
                .map(move |(p, o)| Triple::new(s, p, Object::Entity(o)))
        })
    }

    /// Iterate all literal triples as `(subject, predicate, literal)`.
    pub fn literal_triples(&self) -> impl Iterator<Item = (EntityId, PredicateId, &Literal)> + '_ {
        self.entity_ids().flat_map(move |s| {
            self.lit
                .row(s)
                .map(move |(p, l)| (s, p, &self.literals[l.index()]))
        })
    }

    /// Aggregate size/shape statistics of the graph.
    pub fn summary(&self) -> GraphSummary {
        let mut max_out = 0usize;
        let mut max_in = 0usize;
        for e in self.entity_ids() {
            max_out = max_out.max(self.out.degree(e));
            max_in = max_in.max(self.inc.degree(e));
        }
        GraphSummary {
            entities: self.entity_count(),
            predicates: self.predicate_count(),
            types: self.type_count(),
            categories: self.category_count(),
            relation_triples: self.relation_count(),
            literal_triples: self.lit.preds.len(),
            avg_degree: if self.entity_count() == 0 {
                0.0
            } else {
                2.0 * self.relation_count() as f64 / self.entity_count() as f64
            },
            max_out_degree: max_out,
            max_in_degree: max_in,
        }
    }
}

/// Aggregate statistics returned by [`KnowledgeGraph::summary`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphSummary {
    /// Number of entities.
    pub entities: usize,
    /// Number of distinct predicates.
    pub predicates: usize,
    /// Number of distinct types.
    pub types: usize,
    /// Number of distinct categories.
    pub categories: usize,
    /// Entity-to-entity statements.
    pub relation_triples: usize,
    /// Literal-valued statements.
    pub literal_triples: usize,
    /// Mean (in+out) entity degree.
    pub avg_degree: f64,
    /// Largest out-degree (hub fan-out).
    pub max_out_degree: usize,
    /// Largest in-degree (hub fan-in).
    pub max_in_degree: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running example in miniature.
    pub(crate) fn toy_kg() -> KnowledgeGraph {
        let mut b = KgBuilder::new();
        let gump = b.entity("Forrest_Gump");
        let apollo = b.entity("Apollo_13_(film)");
        let hanks = b.entity("Tom_Hanks");
        let sinise = b.entity("Gary_Sinise");
        let zemeckis = b.entity("Robert_Zemeckis");
        let starring = b.predicate("starring");
        let director = b.predicate("director");
        b.label(gump, "Forrest Gump");
        b.triple(gump, starring, hanks);
        b.triple(gump, starring, sinise);
        b.triple(apollo, starring, hanks);
        b.triple(apollo, starring, sinise);
        b.triple(gump, director, zemeckis);
        b.typed(gump, "Film");
        b.typed(apollo, "Film");
        b.typed(hanks, "Actor");
        b.typed(sinise, "Actor");
        b.typed(zemeckis, "Director");
        b.categorized(gump, "American films");
        b.categorized(apollo, "American films");
        let runtime = b.predicate("runtime");
        b.literal_triple(gump, runtime, Literal::integer(142));
        b.redirect("Geenbow", gump);
        b.finish()
    }

    #[test]
    fn basic_counts() {
        let kg = toy_kg();
        assert_eq!(kg.entity_count(), 5);
        assert_eq!(kg.predicate_count(), 3);
        assert_eq!(kg.type_count(), 3);
        assert_eq!(kg.category_count(), 1);
        assert_eq!(kg.relation_count(), 5);
        // 5 relations + 1 literal + 5 type + 2 category assertions
        assert_eq!(kg.triple_count(), 13);
    }

    #[test]
    fn objects_and_subjects_are_sorted_extents() {
        let kg = toy_kg();
        let gump = kg.entity("Forrest_Gump").unwrap();
        let hanks = kg.entity("Tom_Hanks").unwrap();
        let starring = kg.predicate("starring").unwrap();
        let cast = kg.objects(gump, starring);
        assert_eq!(cast.len(), 2);
        assert!(cast.windows(2).all(|w| w[0] < w[1]));
        // films starring Tom Hanks = extent of SF Tom_Hanks:starring←
        let films = kg.subjects(hanks, starring);
        assert_eq!(films.len(), 2);
        assert!(films.contains(&gump));
    }

    #[test]
    fn duplicate_triples_are_deduplicated() {
        let mut b = KgBuilder::new();
        let a = b.entity("a");
        let c = b.entity("c");
        let p = b.predicate("p");
        b.triple(a, p, c);
        b.triple(a, p, c);
        let kg = b.finish();
        assert_eq!(kg.relation_count(), 1);
    }

    #[test]
    fn type_and_category_extents() {
        let kg = toy_kg();
        let film = kg.type_id("Film").unwrap();
        let ext = kg.type_extent(film);
        assert_eq!(ext.len(), 2);
        assert!(ext.windows(2).all(|w| w[0] < w[1]));
        let cat = kg.category_id("American films").unwrap();
        assert_eq!(kg.category_extent(cat).len(), 2);
        let gump = kg.entity("Forrest_Gump").unwrap();
        assert!(kg.has_type(gump, film));
        assert!(kg.has_category(gump, cat));
        let actor = kg.type_id("Actor").unwrap();
        assert!(!kg.has_type(gump, actor));
    }

    #[test]
    fn labels_aliases_literals() {
        let kg = toy_kg();
        let gump = kg.entity("Forrest_Gump").unwrap();
        let hanks = kg.entity("Tom_Hanks").unwrap();
        assert_eq!(kg.label(gump), Some("Forrest Gump"));
        assert_eq!(kg.display_name(hanks), "Tom Hanks");
        assert_eq!(kg.aliases(gump), &["Geenbow".to_owned()]);
        let lits: Vec<_> = kg.literals(gump).collect();
        assert_eq!(lits.len(), 1);
        assert_eq!(lits[0].1.as_integer(), Some(142));
    }

    #[test]
    fn predicate_statistics() {
        let kg = toy_kg();
        let starring = kg.predicate("starring").unwrap();
        let runtime = kg.predicate("runtime").unwrap();
        assert_eq!(kg.predicate_frequency(starring), 4);
        assert_eq!(kg.predicate_frequency(runtime), 1);
    }

    #[test]
    fn degree_counts_both_directions() {
        let kg = toy_kg();
        let hanks = kg.entity("Tom_Hanks").unwrap();
        assert_eq!(kg.degree(hanks), 2); // two incoming starring edges
        let gump = kg.entity("Forrest_Gump").unwrap();
        assert_eq!(kg.degree(gump), 3); // three outgoing edges
    }

    #[test]
    fn triple_iteration_matches_counts() {
        let kg = toy_kg();
        assert_eq!(kg.entity_triples().count(), kg.relation_count());
        assert_eq!(kg.literal_triples().count(), 1);
    }

    #[test]
    fn empty_graph_is_fine() {
        let kg = KgBuilder::new().finish();
        assert_eq!(kg.entity_count(), 0);
        assert_eq!(kg.triple_count(), 0);
        assert_eq!(kg.entity_triples().count(), 0);
    }

    #[test]
    fn out_predicates_deduplicated() {
        let kg = toy_kg();
        let gump = kg.entity("Forrest_Gump").unwrap();
        let preds = kg.out_predicates(gump);
        assert_eq!(preds.len(), 2); // starring, director
    }

    #[test]
    fn summary_reports_shape() {
        let kg = toy_kg();
        let s = kg.summary();
        assert_eq!(s.entities, 5);
        assert_eq!(s.relation_triples, 5);
        assert_eq!(s.literal_triples, 1);
        assert_eq!(s.max_out_degree, 3); // Forrest_Gump
        assert_eq!(s.max_in_degree, 2); // Tom_Hanks / Gary_Sinise
        assert!((s.avg_degree - 2.0).abs() < 1e-12);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Random edge lists over a small id space.
        fn edges() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
            proptest::collection::vec((0u8..12, 0u8..4, 0u8..12), 0..64)
        }

        fn build(edges: &[(u8, u8, u8)]) -> KnowledgeGraph {
            let mut b = KgBuilder::new();
            // pre-intern a stable entity set
            for i in 0..12u8 {
                b.entity(&format!("e{i}"));
            }
            for &(s, p, o) in edges {
                let s = b.entity(&format!("e{s}"));
                let p = b.predicate(&format!("p{p}"));
                let o = b.entity(&format!("e{o}"));
                b.triple(s, p, o);
            }
            b.finish()
        }

        proptest! {
            /// Adjacency symmetry: o ∈ objects(s,p) ⟺ s ∈ subjects(o,p),
            /// and both sides are sorted and deduplicated.
            #[test]
            fn prop_out_in_symmetry(edges in edges()) {
                let kg = build(&edges);
                for s in kg.entity_ids() {
                    for (p, o) in kg.out_edges(s) {
                        prop_assert!(kg.subjects(o, p).binary_search(&s).is_ok());
                    }
                    for (p, src) in kg.in_edges(s) {
                        prop_assert!(kg.objects(src, p).binary_search(&s).is_ok());
                    }
                    for p in kg.out_predicates(s) {
                        let objs = kg.objects(s, p);
                        prop_assert!(objs.windows(2).all(|w| w[0] < w[1]));
                    }
                }
            }

            /// The triple count seen through iteration equals the count
            /// after sort+dedup of the input.
            #[test]
            fn prop_triple_count_is_dedup_count(edges in edges()) {
                let kg = build(&edges);
                let mut uniq = edges.clone();
                uniq.sort_unstable();
                uniq.dedup();
                prop_assert_eq!(kg.relation_count(), uniq.len());
                prop_assert_eq!(kg.entity_triples().count(), uniq.len());
            }

            /// Degrees are consistent with edge iteration.
            #[test]
            fn prop_degree_matches_edges(edges in edges()) {
                let kg = build(&edges);
                for e in kg.entity_ids() {
                    let expected = kg.out_edges(e).count() + kg.in_edges(e).count();
                    prop_assert_eq!(kg.degree(e), expected);
                }
            }
        }
    }
}

//! [`GraphBackend`] — one owned store, two physical layouts.
//!
//! The live execution layer (`pivote-core`'s `LiveStore`) grew up as two
//! parallel wrappers — one owning a [`KnowledgeGraph`], one owning a
//! [`ShardedGraph`] — because the two stores exposed their mutation and
//! maintenance surfaces under different names. [`GraphBackend`] closes
//! that gap at the storage layer: a single owned enum unifying
//!
//! - **mutation**: [`GraphBackend::apply`] splices a [`DeltaBatch`] into
//!   whichever layout is behind the enum, returning the same global-id
//!   [`AppliedDelta`] receipt either way;
//! - **versioning**: [`GraphBackend::generation`] (bumped by every apply
//!   and every compaction) and [`GraphBackend::compaction_epoch`] (bumped
//!   only by re-partitions; constant `0` for a single graph, which is
//!   always "one partition");
//! - **maintenance**: [`GraphBackend::compact`],
//!   [`GraphBackend::trailing_shard_count`] and
//!   [`GraphBackend::needs_compaction`] — all no-ops / zeros on the
//!   single layout, so policy-driven maintenance code never branches on
//!   the variant;
//! - **snapshots**: [`GraphBackend::to_single`] materializes the logical
//!   graph (identity clone for single, union rebuild for sharded) and
//!   [`GraphBackend::save_snapshot`] writes it through the one
//!   [`snapshot`](crate::snapshot) format every build path round-trips.
//!
//! The enum is deliberately *owned* (not borrowed): it is the thing a
//! live store puts behind its `RwLock`, clones under a read guard for
//! off-lock compaction, and swaps wholesale. The borrowed, query-side
//! twin lives in `pivote-core` (`GraphHandle`).

use crate::delta::{AppliedDelta, DeltaBatch};
use crate::id::EntityId;
use crate::shard::{CompactionPolicy, ShardedGraph};
use crate::snapshot::{self, SnapshotError};
use crate::store::KnowledgeGraph;

/// One owned knowledge-graph store: a single in-memory graph or a
/// range-sharded partition, behind one mutation / maintenance /
/// snapshot surface.
// A store exists once per live wrapper (never in collections), so the
// inline size gap between the variants costs nothing and boxing would
// put a pointer chase on every guard-scoped access.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum GraphBackend {
    /// One in-memory [`KnowledgeGraph`].
    Single(KnowledgeGraph),
    /// A range-partitioned [`ShardedGraph`].
    Sharded(ShardedGraph),
}

impl From<KnowledgeGraph> for GraphBackend {
    fn from(kg: KnowledgeGraph) -> Self {
        GraphBackend::Single(kg)
    }
}

impl From<ShardedGraph> for GraphBackend {
    fn from(sg: ShardedGraph) -> Self {
        GraphBackend::Sharded(sg)
    }
}

impl GraphBackend {
    /// Append a [`DeltaBatch`] in place. Both layouts intern unknown
    /// names in op order and return the same global-id receipt, so the
    /// caller's cache invalidation is layout-independent.
    pub fn apply(&mut self, delta: &DeltaBatch) -> AppliedDelta {
        match self {
            GraphBackend::Single(kg) => kg.apply(delta),
            GraphBackend::Sharded(sg) => sg.apply(delta),
        }
    }

    /// The mutation generation: 0 for a fresh store, bumped by every
    /// [`GraphBackend::apply`] and (on the sharded layout) every
    /// compaction.
    pub fn generation(&self) -> u64 {
        match self {
            GraphBackend::Single(kg) => kg.generation(),
            GraphBackend::Sharded(sg) => sg.generation(),
        }
    }

    /// Number of re-partitions this store descends from. A single graph
    /// is always one partition, so its epoch is constant `0`; per-shard
    /// derived state (search indexes, say) keyed by shard position is
    /// valid exactly as long as the epoch is unchanged.
    pub fn compaction_epoch(&self) -> u64 {
        match self {
            GraphBackend::Single(_) => 0,
            GraphBackend::Sharded(sg) => sg.compaction_epoch(),
        }
    }

    /// Number of physical shards (1 for the single layout).
    pub fn shard_count(&self) -> usize {
        match self {
            GraphBackend::Single(_) => 1,
            GraphBackend::Sharded(sg) => sg.shard_count(),
        }
    }

    /// Trailing shards appended by deltas since the last deliberate
    /// partition — the quantity compaction policies watch. Always 0 for
    /// the single layout.
    pub fn trailing_shard_count(&self) -> usize {
        match self {
            GraphBackend::Single(_) => 0,
            GraphBackend::Sharded(sg) => sg.trailing_shard_count(),
        }
    }

    /// Fraction of owned entities living in trailing shards (0.0 for the
    /// single layout and for a freshly partitioned graph).
    pub fn tail_owned_fraction(&self) -> f64 {
        match self {
            GraphBackend::Single(_) => 0.0,
            GraphBackend::Sharded(sg) => sg.tail_owned_fraction(),
        }
    }

    /// Whether `policy` judges this store degenerate enough to compact.
    /// The single layout has no partition to degenerate, so only the
    /// tombstone-mass axis can fire there — a retract-heavy single store
    /// still compacts to reclaim its dead rows.
    pub fn needs_compaction(&self, policy: &CompactionPolicy) -> bool {
        match self {
            GraphBackend::Single(kg) => {
                policy.tombstones_trip(kg.tombstone_count(), kg.triple_count())
            }
            GraphBackend::Sharded(sg) => policy.needs_compaction(sg),
        }
    }

    /// Retracted-but-unreclaimed statements held by the store (the mass
    /// the tombstone compaction axis watches). Zero for any store that
    /// has never seen a retract since its last compaction.
    pub fn tombstone_count(&self) -> usize {
        match self {
            GraphBackend::Single(kg) => kg.tombstone_count(),
            GraphBackend::Sharded(sg) => sg.tombstone_count(),
        }
    }

    /// Re-partition into `target_shards` fresh range shards
    /// (answer-preserving; see [`ShardedGraph::compact`]). On the single
    /// layout a single graph is always one partition, so compaction is
    /// the identity — a clone at the same generation — unless tombstones
    /// are held, in which case it is an id-preserving
    /// [`KnowledgeGraph::reclaim`] (same answers, dead rows returned,
    /// generation bumped like the sharded compaction).
    pub fn compact(&self, target_shards: usize) -> GraphBackend {
        match self {
            GraphBackend::Single(kg) if kg.tombstone_count() == 0 => {
                GraphBackend::Single(kg.clone())
            }
            GraphBackend::Single(kg) => GraphBackend::Single(kg.reclaim()),
            GraphBackend::Sharded(sg) => GraphBackend::Sharded(sg.compact(target_shards)),
        }
    }

    /// [`snapshot::fingerprint`] of the *logical* graph behind this
    /// store: the restart-stable hash of its exact snapshot bytes,
    /// independent of layout, partitioning and mutation generation. Two
    /// backends with equal fingerprints serve bit-identical answers —
    /// the equality the delta-log replication contract is stated in.
    /// Linear in graph size (the sharded layout union-rebuilds first);
    /// call at durability points, not per query.
    pub fn fingerprint(&self) -> u64 {
        match self {
            GraphBackend::Single(kg) => snapshot::fingerprint(kg),
            GraphBackend::Sharded(sg) => snapshot::fingerprint(&sg.to_graph()),
        }
    }

    /// Total number of entities.
    pub fn entity_count(&self) -> usize {
        match self {
            GraphBackend::Single(kg) => kg.entity_count(),
            GraphBackend::Sharded(sg) => sg.entity_count(),
        }
    }

    /// Resolve an entity by name.
    pub fn entity(&self, name: &str) -> Option<EntityId> {
        match self {
            GraphBackend::Single(kg) => kg.entity(name),
            GraphBackend::Sharded(sg) => sg.entity(name),
        }
    }

    /// Total number of statements.
    pub fn triple_count(&self) -> usize {
        match self {
            GraphBackend::Single(kg) => kg.triple_count(),
            GraphBackend::Sharded(sg) => sg.triple_count(),
        }
    }

    /// The single graph, when this backend is the single layout.
    pub fn as_single(&self) -> Option<&KnowledgeGraph> {
        match self {
            GraphBackend::Single(kg) => Some(kg),
            GraphBackend::Sharded(_) => None,
        }
    }

    /// The sharded graph, when this backend is the sharded layout.
    pub fn as_sharded(&self) -> Option<&ShardedGraph> {
        match self {
            GraphBackend::Single(_) => None,
            GraphBackend::Sharded(sg) => Some(sg),
        }
    }

    /// Materialize the logical single graph this store represents: the
    /// graph itself for the single layout, the id-preserving union
    /// rebuild ([`ShardedGraph::to_graph`]) for the sharded one. Both
    /// serialize to byte-identical snapshots of the same logical graph.
    pub fn to_single(&self) -> KnowledgeGraph {
        match self {
            GraphBackend::Single(kg) => kg.clone(),
            GraphBackend::Sharded(sg) => sg.to_graph(),
        }
    }

    /// [`GraphBackend::to_single`], consuming the backend (avoids the
    /// clone on the single layout).
    pub fn into_single(self) -> KnowledgeGraph {
        match self {
            GraphBackend::Single(kg) => kg,
            GraphBackend::Sharded(sg) => sg.to_graph(),
        }
    }

    /// Save the logical graph through the versioned snapshot format —
    /// the one entry point both layouts (and every build path: rebuild,
    /// append, sharded append, compaction) serialize through.
    pub fn save_snapshot(&self, path: impl AsRef<std::path::Path>) -> Result<(), SnapshotError> {
        match self {
            GraphBackend::Single(kg) => snapshot::save_to_path(kg, path),
            GraphBackend::Sharded(sg) => snapshot::save_to_path(&sg.to_graph(), path),
        }
    }

    /// Load a snapshot into a single-layout backend.
    pub fn load_snapshot(path: impl AsRef<std::path::Path>) -> Result<GraphBackend, SnapshotError> {
        Ok(GraphBackend::Single(snapshot::load_from_path(path)?))
    }

    /// Load a snapshot and partition it into a sharded-layout backend.
    pub fn load_snapshot_sharded(
        path: impl AsRef<std::path::Path>,
        shards: usize,
    ) -> Result<GraphBackend, SnapshotError> {
        let kg = snapshot::load_from_path(path)?;
        Ok(GraphBackend::Sharded(ShardedGraph::from_graph(&kg, shards)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{generate, DatagenConfig};

    fn delta(kg: &KnowledgeGraph) -> DeltaBatch {
        let n0 = kg.entity_name(EntityId::new(0)).to_owned();
        let mut d = DeltaBatch::new();
        d.triple("Backend_Fresh_Entity", "backend_pred", &n0)
            .typed("Backend_Fresh_Entity", "Film");
        d
    }

    #[test]
    fn both_layouts_apply_identically() {
        let kg = generate(&DatagenConfig::tiny());
        let d = delta(&kg);
        let mut single = GraphBackend::from(kg.clone());
        let mut sharded = GraphBackend::from(ShardedGraph::from_graph(&kg, 3));
        let rs = single.apply(&d);
        let rh = sharded.apply(&d);
        assert_eq!(rs.new_entities, rh.new_entities);
        assert_eq!(rs.touched_out, rh.touched_out);
        assert_eq!(rs.touched_in, rh.touched_in);
        assert_eq!(single.generation(), 1);
        assert_eq!(sharded.generation(), 1);
        assert_eq!(single.entity_count(), sharded.entity_count());
        assert_eq!(
            single.entity("Backend_Fresh_Entity"),
            sharded.entity("Backend_Fresh_Entity")
        );
        // trailing / epoch surfaces: zeros on single, live on sharded
        assert_eq!(single.trailing_shard_count(), 0);
        assert_eq!(sharded.trailing_shard_count(), 1);
        assert_eq!(single.compaction_epoch(), 0);
        let policy = CompactionPolicy {
            max_trailing: 0,
            max_tail_fraction: 1.0,
            max_tombstone_fraction: 1.0,
        };
        assert!(!single.needs_compaction(&policy));
        assert!(sharded.needs_compaction(&policy));
    }

    #[test]
    fn compact_is_identity_on_single_and_repartitions_sharded() {
        let kg = generate(&DatagenConfig::tiny());
        let d = delta(&kg);
        let mut sharded = GraphBackend::from(ShardedGraph::from_graph(&kg, 2));
        sharded.apply(&d);
        let compacted = sharded.compact(2);
        assert_eq!(compacted.trailing_shard_count(), 0);
        assert_eq!(compacted.generation(), sharded.generation() + 1);
        assert_eq!(compacted.compaction_epoch(), 1);

        let single = GraphBackend::from(kg.clone());
        let same = single.compact(4);
        assert_eq!(same.generation(), single.generation());
        assert_eq!(same.shard_count(), 1);
        assert_eq!(same.triple_count(), single.triple_count());
    }

    #[test]
    fn snapshot_entry_points_agree_across_layouts() {
        let kg = generate(&DatagenConfig::tiny());
        let single = GraphBackend::from(kg.clone());
        let sharded = GraphBackend::from(ShardedGraph::from_graph(&kg, 3));
        let dir = std::env::temp_dir();
        let p1 = dir.join("pivote_backend_single.pvte");
        let p2 = dir.join("pivote_backend_sharded.pvte");
        single.save_snapshot(&p1).unwrap();
        sharded.save_snapshot(&p2).unwrap();
        assert_eq!(
            std::fs::read(&p1).unwrap(),
            std::fs::read(&p2).unwrap(),
            "both layouts must snapshot the same logical graph bytes"
        );
        let loaded = GraphBackend::load_snapshot(&p1).unwrap();
        assert_eq!(loaded.entity_count(), kg.entity_count());
        let loaded_sharded = GraphBackend::load_snapshot_sharded(&p2, 2).unwrap();
        assert_eq!(loaded_sharded.shard_count(), 2);
        assert_eq!(loaded_sharded.entity_count(), kg.entity_count());
        assert_eq!(
            crate::ntriples::serialize(&loaded_sharded.to_single()),
            crate::ntriples::serialize(&kg)
        );
        let _ = std::fs::remove_file(&p1);
        let _ = std::fs::remove_file(&p2);
    }
}

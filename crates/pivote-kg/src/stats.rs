//! Type-coupling statistics: which entity types are statistically coupled
//! through which relations.
//!
//! This is the structure behind Fig. 1-b of the paper ("a view of entity
//! types"): films couple to actors via `starring`, to directors via
//! `director`, and so on. PivotE uses these couplings as the *pivot*
//! directions — from a domain of entities, the coupled types are the
//! candidate domains a user can browse into.

use crate::id::{PredicateId, TypeId};
use crate::store::KnowledgeGraph;
use std::collections::HashMap;

/// One observed coupling: subject type —predicate→ object type, with its
/// support count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coupling {
    /// Type of the subject side.
    pub subject_type: TypeId,
    /// The relation.
    pub predicate: PredicateId,
    /// Type of the object side.
    pub object_type: TypeId,
    /// Number of triples supporting this coupling.
    pub count: u64,
}

/// Aggregated type-coupling statistics of a knowledge graph.
#[derive(Debug, Clone)]
pub struct TypeCouplingStats {
    counts: HashMap<(TypeId, PredicateId, TypeId), u64>,
    /// Triples per subject type (for normalization).
    per_subject_type: HashMap<TypeId, u64>,
}

impl TypeCouplingStats {
    /// Scan every entity-to-entity triple once and tally couplings. An
    /// entity with multiple types contributes one count per (subject type ×
    /// object type) combination, matching how DBpedia types overlap.
    pub fn compute(kg: &KnowledgeGraph) -> Self {
        let mut counts: HashMap<(TypeId, PredicateId, TypeId), u64> = HashMap::new();
        let mut per_subject_type: HashMap<TypeId, u64> = HashMap::new();
        for s in kg.entity_ids() {
            let s_types: Vec<TypeId> = kg.types_of(s).collect();
            if s_types.is_empty() {
                continue;
            }
            for (p, o) in kg.out_edges(s) {
                for &st in &s_types {
                    *per_subject_type.entry(st).or_default() += 1;
                    for ot in kg.types_of(o) {
                        *counts.entry((st, p, ot)).or_default() += 1;
                    }
                }
            }
        }
        Self {
            counts,
            per_subject_type,
        }
    }

    /// Support of one specific coupling.
    pub fn count(&self, subject_type: TypeId, predicate: PredicateId, object_type: TypeId) -> u64 {
        self.counts
            .get(&(subject_type, predicate, object_type))
            .copied()
            .unwrap_or(0)
    }

    /// All couplings sorted by descending support.
    pub fn top_couplings(&self, limit: usize) -> Vec<Coupling> {
        let mut all: Vec<Coupling> = self
            .counts
            .iter()
            .map(|(&(st, p, ot), &count)| Coupling {
                subject_type: st,
                predicate: p,
                object_type: ot,
                count,
            })
            .collect();
        all.sort_unstable_by(|a, b| {
            b.count.cmp(&a.count).then_with(|| {
                (a.subject_type, a.predicate, a.object_type).cmp(&(
                    b.subject_type,
                    b.predicate,
                    b.object_type,
                ))
            })
        });
        all.truncate(limit);
        all
    }

    /// Couplings whose subject side is `t`, sorted by descending support.
    /// These are the outgoing pivot directions from domain `t`.
    pub fn couplings_from(&self, t: TypeId) -> Vec<Coupling> {
        let mut out: Vec<Coupling> = self
            .counts
            .iter()
            .filter(|((st, _, _), _)| *st == t)
            .map(|(&(st, p, ot), &count)| Coupling {
                subject_type: st,
                predicate: p,
                object_type: ot,
                count,
            })
            .collect();
        out.sort_unstable_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then_with(|| (a.predicate, a.object_type).cmp(&(b.predicate, b.object_type)))
        });
        out
    }

    /// Types reachable from `t` (over any predicate) with their total
    /// support, sorted descending — the "adjacent domains" of Fig. 1-b.
    pub fn coupled_types(&self, t: TypeId) -> Vec<(TypeId, u64)> {
        let mut agg: HashMap<TypeId, u64> = HashMap::new();
        for ((st, _, ot), &count) in &self.counts {
            if *st == t {
                *agg.entry(*ot).or_default() += count;
            }
        }
        let mut out: Vec<(TypeId, u64)> = agg.into_iter().collect();
        out.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Conditional strength of a coupling: the fraction of `t`-subject
    /// triples (counted per subject type) that land on `object_type` via
    /// `predicate`. In `[0, 1]`.
    pub fn strength(
        &self,
        subject_type: TypeId,
        predicate: PredicateId,
        object_type: TypeId,
    ) -> f64 {
        let n = self.count(subject_type, predicate, object_type);
        let d = self
            .per_subject_type
            .get(&subject_type)
            .copied()
            .unwrap_or(0);
        if d == 0 {
            0.0
        } else {
            n as f64 / d as f64
        }
    }

    /// Number of distinct couplings observed.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no couplings were observed.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::KgBuilder;

    fn kg() -> KnowledgeGraph {
        let mut b = KgBuilder::new();
        let f1 = b.entity("f1");
        let f2 = b.entity("f2");
        let a1 = b.entity("a1");
        let a2 = b.entity("a2");
        let d1 = b.entity("d1");
        let starring = b.predicate("starring");
        let director = b.predicate("director");
        for f in [f1, f2] {
            b.typed(f, "Film");
            b.triple(f, starring, a1);
            b.triple(f, director, d1);
        }
        b.triple(f1, starring, a2);
        b.typed(a1, "Actor");
        b.typed(a2, "Actor");
        b.typed(d1, "Director");
        b.finish()
    }

    #[test]
    fn counts_couplings() {
        let kg = kg();
        let stats = TypeCouplingStats::compute(&kg);
        let film = kg.type_id("Film").unwrap();
        let actor = kg.type_id("Actor").unwrap();
        let director = kg.type_id("Director").unwrap();
        let starring = kg.predicate("starring").unwrap();
        let director_p = kg.predicate("director").unwrap();
        assert_eq!(stats.count(film, starring, actor), 3);
        assert_eq!(stats.count(film, director_p, director), 2);
        assert_eq!(stats.count(actor, starring, film), 0);
    }

    #[test]
    fn top_couplings_sorted_by_support() {
        let kg = kg();
        let stats = TypeCouplingStats::compute(&kg);
        let top = stats.top_couplings(10);
        assert_eq!(top.len(), 2);
        assert!(top[0].count >= top[1].count);
        assert_eq!(top[0].count, 3);
    }

    #[test]
    fn coupled_types_from_film() {
        let kg = kg();
        let stats = TypeCouplingStats::compute(&kg);
        let film = kg.type_id("Film").unwrap();
        let coupled = stats.coupled_types(film);
        assert_eq!(coupled.len(), 2);
        assert_eq!(kg.type_name(coupled[0].0), "Actor");
    }

    #[test]
    fn strength_is_normalized() {
        let kg = kg();
        let stats = TypeCouplingStats::compute(&kg);
        let film = kg.type_id("Film").unwrap();
        let actor = kg.type_id("Actor").unwrap();
        let starring = kg.predicate("starring").unwrap();
        let s = stats.strength(film, starring, actor);
        // 3 of 5 Film-subject triples are starring→Actor
        assert!((s - 0.6).abs() < 1e-9, "strength={s}");
    }

    #[test]
    fn untyped_entities_are_skipped() {
        let mut b = KgBuilder::new();
        let x = b.entity("x");
        let y = b.entity("y");
        let p = b.predicate("p");
        b.triple(x, p, y);
        let kg = b.finish();
        let stats = TypeCouplingStats::compute(&kg);
        assert!(stats.is_empty());
    }
}

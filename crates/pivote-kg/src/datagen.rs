//! Deterministic synthetic DBpedia-like knowledge graph generator.
//!
//! The paper runs PivotE over DBpedia/Freebase. Those dumps are not
//! redistributable here, so this module generates a multi-domain movie
//! knowledge graph with the same *statistical* structure the ranking model
//! consumes: types statistically coupled through specific relations
//! (Film—starring→Actor, Film—director→Director, …), Zipfian popularity
//! (a few prolific actors/directors, a long tail), Wikipedia-style
//! categories ("American films", "Films directed by X", "1990s films"),
//! labels, typed literals, and redirect aliases (the paper's "Geenbow" →
//! Forrest Gump example).
//!
//! Everything is driven by a seeded RNG: the same [`DatagenConfig`]
//! produces the same graph, triple for triple, which the experiment
//! harness relies on.

use crate::id::EntityId;
use crate::store::{KgBuilder, KnowledgeGraph};
use crate::triple::Literal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Scale and shape parameters for [`generate`].
#[derive(Debug, Clone)]
pub struct DatagenConfig {
    /// RNG seed; equal configs produce identical graphs.
    pub seed: u64,
    /// Number of films — the primary domain. Other domain sizes derive
    /// from this unless overridden.
    pub films: usize,
    /// Number of actors.
    pub actors: usize,
    /// Number of directors.
    pub directors: usize,
    /// Number of writers.
    pub writers: usize,
    /// Number of music composers.
    pub composers: usize,
    /// Number of cities.
    pub cities: usize,
    /// Number of universities.
    pub universities: usize,
    /// Number of studios.
    pub studios: usize,
    /// Number of books (some films are `basedOn` a book).
    pub books: usize,
    /// Number of book authors.
    pub authors: usize,
    /// Number of awards.
    pub awards: usize,
    /// Zipf exponent controlling popularity skew (1.0 ≈ classic Zipf).
    pub zipf_exponent: f64,
    /// Cast size range per film (inclusive).
    pub cast_range: (usize, usize),
    /// Probability that an entity gets a misspelled redirect alias.
    pub alias_probability: f64,
}

impl DatagenConfig {
    /// ~60 entities; unit-test sized.
    pub fn tiny() -> Self {
        Self::scaled(12, 7)
    }

    /// ~1.3k entities; integration-test sized.
    pub fn small() -> Self {
        Self::scaled(300, 7)
    }

    /// ~9k entities; example/eval sized.
    pub fn medium() -> Self {
        Self::scaled(2_000, 7)
    }

    /// ~90k entities; scaling benches.
    pub fn large() -> Self {
        Self::scaled(20_000, 7)
    }

    /// Derive all domain sizes from a film count.
    pub fn scaled(films: usize, seed: u64) -> Self {
        let at_least = |v: usize, min: usize| v.max(min);
        Self {
            seed,
            films,
            actors: at_least(films * 2, 8),
            directors: at_least(films / 4, 3),
            writers: at_least(films / 3, 3),
            composers: at_least(films / 6, 2),
            cities: at_least(films / 10, 4),
            universities: at_least(films / 25, 2),
            studios: at_least(films / 20, 2),
            books: at_least(films / 8, 2),
            authors: at_least(films / 12, 2),
            awards: at_least(films / 50, 2).min(40),
            zipf_exponent: 1.05,
            cast_range: (2, 6),
            alias_probability: 0.12,
        }
    }

    /// Override the seed, keeping every other parameter.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for DatagenConfig {
    fn default() -> Self {
        Self::small()
    }
}

/// Zipf-distributed sampler over ranks `0..n` via inverse-CDF binary
/// search. Rank 0 is the most popular.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over zero ranks");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Draw a rank in `0..n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

const GENRES: &[&str] = &[
    "Drama",
    "Comedy",
    "Thriller",
    "Romance",
    "Action",
    "Science_fiction",
    "Horror",
    "War",
    "Western",
    "Musical",
    "Crime",
    "Adventure",
    "Mystery",
    "Fantasy",
];

/// (country resource name, adjective used in category names)
const COUNTRIES: &[(&str, &str)] = &[
    ("United_States", "American"),
    ("United_Kingdom", "British"),
    ("France", "French"),
    ("Germany", "German"),
    ("Italy", "Italian"),
    ("Japan", "Japanese"),
    ("India", "Indian"),
    ("Canada", "Canadian"),
];

const FIRST_NAMES: &[&str] = &[
    "Tom", "Gary", "Robert", "Sally", "Robin", "Mykelti", "Rebecca", "Michael", "Kurt", "Bill",
    "Ed", "Kathleen", "Gene", "David", "Laura", "Grace", "Henry", "Nora", "Walter", "Iris", "Paul",
    "Clara", "Victor", "Ruth", "Oscar", "Elena", "Frank", "Maya", "Louis", "Vera", "Arthur",
    "Stella", "Hugo", "Ada", "Felix", "June", "Max", "Pearl", "Leo", "Faye",
];

const LAST_NAMES: &[&str] = &[
    "Hanks",
    "Sinise",
    "Zemeckis",
    "Field",
    "Wright",
    "Williamson",
    "Holm",
    "Keaton",
    "Russell",
    "Paxton",
    "Harris",
    "Quinlan",
    "Mercer",
    "Ashford",
    "Bellamy",
    "Crane",
    "Dunmore",
    "Ellery",
    "Fontaine",
    "Garrick",
    "Hollis",
    "Ingram",
    "Jarvis",
    "Kessler",
    "Lindqvist",
    "Marchetti",
    "Novak",
    "Ostrowski",
    "Pemberton",
    "Quigley",
    "Rousseau",
    "Santoro",
    "Thackeray",
    "Ullman",
    "Vance",
    "Whitfield",
    "Yates",
    "Zielinski",
    "Ames",
    "Barrow",
    "Coyle",
    "Drummond",
    "Eastman",
    "Falk",
    "Grady",
    "Hartwell",
    "Irwin",
    "Joplin",
    "Kirby",
    "Lowell",
];

const TITLE_ADJ: &[&str] = &[
    "Silent",
    "Golden",
    "Broken",
    "Distant",
    "Crimson",
    "Hidden",
    "Last",
    "First",
    "Burning",
    "Frozen",
    "Endless",
    "Forgotten",
    "Hollow",
    "Pale",
    "Restless",
    "Savage",
    "Quiet",
    "Wild",
    "Lonely",
    "Gilded",
    "Shattered",
    "Velvet",
    "Iron",
    "Amber",
    "Midnight",
    "Electric",
];

const TITLE_NOUN: &[&str] = &[
    "Harbor",
    "River",
    "Promise",
    "Garden",
    "Empire",
    "Letter",
    "Road",
    "Summer",
    "Winter",
    "Shadow",
    "Horizon",
    "Station",
    "Orchard",
    "Voyage",
    "Reckoning",
    "Cartographer",
    "Lantern",
    "Parade",
    "Tide",
    "Meridian",
    "Compass",
    "Archive",
    "Sparrow",
    "Monument",
    "Carousel",
    "Signal",
    "Harvest",
    "Labyrinth",
    "Overture",
    "Pilgrim",
    "Vigil",
    "Mosaic",
];

const BOOK_NOUN: &[&str] = &[
    "Chronicle",
    "Testament",
    "Memoir",
    "Ballad",
    "Atlas",
    "Manifesto",
    "Diary",
    "Elegy",
    "Fable",
    "Almanac",
];

/// Unique-name allocator: appends a numeric disambiguator on collision,
/// mirroring Wikipedia's `Title_(1994_film)` convention.
struct Namer {
    used: HashSet<String>,
}

impl Namer {
    fn new() -> Self {
        Self {
            used: HashSet::new(),
        }
    }

    fn claim(&mut self, base: String, kind: &str) -> String {
        if self.used.insert(base.clone()) {
            return base;
        }
        for i in 2.. {
            let candidate = format!("{base}_({kind}_{i})");
            if self.used.insert(candidate.clone()) {
                return candidate;
            }
        }
        unreachable!()
    }
}

fn person_name(pool_offset: usize, i: usize) -> String {
    let idx = pool_offset + i;
    let first = FIRST_NAMES[idx % FIRST_NAMES.len()];
    let last = LAST_NAMES[(idx / FIRST_NAMES.len()) % LAST_NAMES.len()];
    format!("{first}_{last}")
}

fn misspell(name: &str, rng: &mut impl Rng) -> String {
    let display = name.replace('_', " ");
    let chars: Vec<char> = display.chars().collect();
    if chars.len() < 4 {
        return format!("{display}n");
    }
    let mut out: Vec<char> = chars.clone();
    match rng.gen_range(0..3u8) {
        0 => {
            // drop an interior character
            let i = rng.gen_range(1..out.len() - 1);
            out.remove(i);
        }
        1 => {
            // swap two adjacent interior characters
            let i = rng.gen_range(1..out.len() - 2);
            out.swap(i, i + 1);
        }
        _ => {
            // double an interior character
            let i = rng.gen_range(1..out.len() - 1);
            let c = out[i];
            out.insert(i, c);
        }
    }
    out.into_iter().collect()
}

/// A generated person: entity id plus the country/city it was wired to,
/// used for category assignment.
struct Person {
    id: EntityId,
    country: usize,
    birth_year: i32,
}

#[allow(clippy::too_many_arguments)]
fn make_people(
    b: &mut KgBuilder,
    namer: &mut Namer,
    rng: &mut StdRng,
    count: usize,
    pool_offset: usize,
    type_name: &str,
    cities: &[(EntityId, usize)],
    universities: &[EntityId],
    city_zipf: &Zipf,
    awards: &[EntityId],
) -> Vec<Person> {
    let birth_place = b.predicate("birthPlace");
    let alma_mater = b.predicate("almaMater");
    let award_p = b.predicate("award");
    let birth_date = b.predicate("birthDate");
    let mut people = Vec::with_capacity(count);
    for i in 0..count {
        let name = namer.claim(person_name(pool_offset, i), "person");
        let e = b.entity(&name);
        b.label(e, name.replace('_', " "));
        b.typed(e, type_name);
        b.typed(e, "Person");
        let (city, country) = cities[city_zipf.sample(rng) % cities.len()];
        b.triple(e, birth_place, city);
        let birth_year = rng.gen_range(1920..=1995);
        b.literal_triple(
            e,
            birth_date,
            Literal::date(birth_year, rng.gen_range(1..=12), rng.gen_range(1..=28)),
        );
        if !universities.is_empty() && rng.gen_bool(0.35) {
            let u = universities[rng.gen_range(0..universities.len())];
            b.triple(e, alma_mater, u);
        }
        if !awards.is_empty() && rng.gen_bool(0.08) {
            let a = awards[rng.gen_range(0..awards.len())];
            b.triple(e, award_p, a);
        }
        people.push(Person {
            id: e,
            country,
            birth_year,
        });
    }
    people
}

/// Generate a synthetic movie-domain knowledge graph.
pub fn generate(config: &DatagenConfig) -> KnowledgeGraph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = KgBuilder::new();
    let mut namer = Namer::new();

    // --- static scaffolding -------------------------------------------
    let country_ids: Vec<EntityId> = COUNTRIES
        .iter()
        .map(|(name, _)| {
            let e = b.entity(name);
            b.label(e, name.replace('_', " "));
            b.typed(e, "Country");
            e
        })
        .collect();

    let genre_ids: Vec<EntityId> = GENRES
        .iter()
        .map(|name| {
            let e = b.entity(name);
            b.label(e, name.replace('_', " "));
            b.typed(e, "Genre");
            e
        })
        .collect();

    let country_p = b.predicate("country");
    let located_in = b.predicate("locatedIn");

    let cities: Vec<(EntityId, usize)> = (0..config.cities)
        .map(|i| {
            let country = i % COUNTRIES.len();
            let name = namer.claim(
                format!("{}_{}", TITLE_NOUN[i % TITLE_NOUN.len()], "City"),
                "city",
            );
            let e = b.entity(&name);
            b.label(e, name.replace('_', " "));
            b.typed(e, "City");
            b.triple(e, country_p, country_ids[country]);
            (e, country)
        })
        .collect();

    let universities: Vec<EntityId> = (0..config.universities)
        .map(|i| {
            let name = namer.claim(
                format!(
                    "University_of_{}",
                    TITLE_NOUN[(i * 3 + 1) % TITLE_NOUN.len()]
                ),
                "university",
            );
            let e = b.entity(&name);
            b.label(e, name.replace('_', " "));
            b.typed(e, "University");
            let (city, _) = cities[i % cities.len()];
            b.triple(e, located_in, city);
            e
        })
        .collect();

    let studios: Vec<(EntityId, usize)> = (0..config.studios)
        .map(|i| {
            let country = i % COUNTRIES.len().min(3); // studios concentrate
            let name = namer.claim(
                format!("{}_Pictures", TITLE_ADJ[(i * 5 + 2) % TITLE_ADJ.len()]),
                "studio",
            );
            let e = b.entity(&name);
            b.label(e, name.replace('_', " "));
            b.typed(e, "Studio");
            b.triple(e, country_p, country_ids[country]);
            (e, country)
        })
        .collect();

    let awards: Vec<EntityId> = (0..config.awards)
        .map(|i| {
            let name = namer.claim(
                format!(
                    "{}_{}_Award",
                    TITLE_ADJ[(i * 7 + 3) % TITLE_ADJ.len()],
                    TITLE_NOUN[(i * 11 + 5) % TITLE_NOUN.len()]
                ),
                "award",
            );
            let e = b.entity(&name);
            b.label(e, name.replace('_', " "));
            b.typed(e, "Award");
            e
        })
        .collect();

    // --- people pools --------------------------------------------------
    let city_zipf = Zipf::new(config.cities.max(1), config.zipf_exponent);
    let actors = make_people(
        &mut b,
        &mut namer,
        &mut rng,
        config.actors,
        0,
        "Actor",
        &cities,
        &universities,
        &city_zipf,
        &awards,
    );
    let directors = make_people(
        &mut b,
        &mut namer,
        &mut rng,
        config.directors,
        211,
        "Director",
        &cities,
        &universities,
        &city_zipf,
        &awards,
    );
    let writers = make_people(
        &mut b,
        &mut namer,
        &mut rng,
        config.writers,
        503,
        "Writer",
        &cities,
        &universities,
        &city_zipf,
        &awards,
    );
    let composers = make_people(
        &mut b,
        &mut namer,
        &mut rng,
        config.composers,
        811,
        "MusicComposer",
        &cities,
        &universities,
        &city_zipf,
        &awards,
    );
    let authors = make_people(
        &mut b,
        &mut namer,
        &mut rng,
        config.authors,
        1301,
        "Author",
        &cities,
        &universities,
        &city_zipf,
        &awards,
    );

    // Sparse spouse edges among actors (Person↔Person coupling).
    let spouse = b.predicate("spouse");
    for i in (0..actors.len().saturating_sub(1)).step_by(9) {
        b.triple(actors[i].id, spouse, actors[i + 1].id);
    }

    // --- books ----------------------------------------------------------
    let author_p = b.predicate("author");
    let genre_p = b.predicate("genre");
    let book_zipf = Zipf::new(config.authors.max(1), config.zipf_exponent);
    let books: Vec<EntityId> = (0..config.books)
        .map(|i| {
            let name = namer.claim(
                format!(
                    "The_{}_{}",
                    TITLE_ADJ[(i * 13 + 1) % TITLE_ADJ.len()],
                    BOOK_NOUN[i % BOOK_NOUN.len()]
                ),
                "book",
            );
            let e = b.entity(&name);
            b.label(e, name.replace('_', " "));
            b.typed(e, "Book");
            let a = &authors[book_zipf.sample(&mut rng) % authors.len()];
            b.triple(e, author_p, a.id);
            b.triple(e, genre_p, genre_ids[rng.gen_range(0..genre_ids.len())]);
            e
        })
        .collect();

    // --- films: the primary domain ---------------------------------------
    let starring = b.predicate("starring");
    let director_p = b.predicate("director");
    let writer_p = b.predicate("writer");
    let composer_p = b.predicate("musicComposer");
    let studio_p = b.predicate("studio");
    let based_on = b.predicate("basedOn");
    let award_p = b.predicate("award");
    let runtime_p = b.predicate("runtime");
    let release_p = b.predicate("releaseDate");
    let gross_p = b.predicate("gross");
    let abstract_p = b.predicate("abstract");

    let actor_zipf = Zipf::new(config.actors.max(1), config.zipf_exponent);
    let director_zipf = Zipf::new(config.directors.max(1), config.zipf_exponent);
    let writer_zipf = Zipf::new(config.writers.max(1), config.zipf_exponent);
    let composer_zipf = Zipf::new(config.composers.max(1), config.zipf_exponent);

    for i in 0..config.films {
        let adj = TITLE_ADJ[rng.gen_range(0..TITLE_ADJ.len())];
        let noun = TITLE_NOUN[rng.gen_range(0..TITLE_NOUN.len())];
        let base = match rng.gen_range(0..4u8) {
            0 => format!("The_{noun}"),
            1 => format!("{adj}_{noun}"),
            2 => format!("The_{adj}_{noun}"),
            _ => format!(
                "{noun}_of_the_{}",
                TITLE_NOUN[rng.gen_range(0..TITLE_NOUN.len())]
            ),
        };
        let name = namer.claim(base, "film");
        let film = b.entity(&name);
        b.label(film, name.replace('_', " "));
        b.typed(film, "Film");
        b.typed(film, "Work");

        let dir = &directors[director_zipf.sample(&mut rng) % config.directors.max(1)];
        b.triple(film, director_p, dir.id);

        let cast_n = rng.gen_range(config.cast_range.0..=config.cast_range.1);
        let mut cast: Vec<usize> = Vec::with_capacity(cast_n);
        while cast.len() < cast_n.min(config.actors) {
            let a = actor_zipf.sample(&mut rng) % config.actors.max(1);
            if !cast.contains(&a) {
                cast.push(a);
            }
        }
        for &a in &cast {
            b.triple(film, starring, actors[a].id);
        }

        for _ in 0..rng.gen_range(1..=2usize) {
            let w = writer_zipf.sample(&mut rng) % config.writers.max(1);
            b.triple(film, writer_p, writers[w].id);
        }
        let comp = composer_zipf.sample(&mut rng) % config.composers.max(1);
        b.triple(film, composer_p, composers[comp].id);

        // Country correlates with the director's country 70% of the time,
        // giving the type-coupling stats a realistic signal.
        let country = if rng.gen_bool(0.7) {
            dir.country
        } else {
            rng.gen_range(0..COUNTRIES.len())
        };
        b.triple(film, country_p, country_ids[country]);

        let (studio, _) = studios[rng.gen_range(0..studios.len())];
        b.triple(film, studio_p, studio);

        let n_genres = rng.gen_range(1..=2usize);
        let g0 = rng.gen_range(0..genre_ids.len());
        b.triple(film, genre_p, genre_ids[g0]);
        if n_genres == 2 {
            b.triple(film, genre_p, genre_ids[(g0 + 1 + i) % genre_ids.len()]);
        }

        if rng.gen_bool(0.10) && !books.is_empty() {
            b.triple(film, based_on, books[rng.gen_range(0..books.len())]);
        }
        if rng.gen_bool(0.05) && !awards.is_empty() {
            b.triple(film, award_p, awards[rng.gen_range(0..awards.len())]);
        }

        let year = rng.gen_range(1960..=2019);
        let runtime = rng.gen_range(80..=190i64);
        b.literal_triple(film, runtime_p, Literal::integer(runtime));
        b.literal_triple(
            film,
            release_p,
            Literal::date(year, rng.gen_range(1..=12), rng.gen_range(1..=28)),
        );
        b.literal_triple(
            film,
            gross_p,
            Literal::integer(rng.gen_range(1..=900i64) * 1_000_000),
        );
        let (_, country_adj) = COUNTRIES[country];
        b.literal_triple(
            film,
            abstract_p,
            Literal::string(format!(
                "{} is a {} {} {} film directed by {} with a runtime of {} minutes.",
                name.replace('_', " "),
                year,
                country_adj,
                GENRES[g0].replace('_', " ").to_lowercase(),
                person_name(
                    211,
                    directors.iter().position(|d| d.id == dir.id).unwrap_or(0)
                )
                .replace('_', " "),
                runtime,
            )),
        );

        // --- film categories (ground-truth classes for eval) -------------
        b.categorized(film, &format!("{country_adj} films"));
        b.categorized(film, &format!("{}s films", year - year % 10));
        b.categorized(film, &format!("{} films", GENRES[g0].replace('_', " ")));
        let dir_name = b.entity_display_name_hint(dir.id);
        b.categorized(film, &format!("Films directed by {dir_name}"));
    }

    // --- person categories ----------------------------------------------
    for (people, noun) in [
        (&actors, "actors"),
        (&directors, "film directors"),
        (&writers, "screenwriters"),
        (&composers, "film score composers"),
        (&authors, "novelists"),
    ] {
        for p in people.iter() {
            let (_, adj) = COUNTRIES[p.country];
            b.categorized(p.id, &format!("{adj} {noun}"));
            b.categorized(
                p.id,
                &format!("People born in the {}s", p.birth_year - p.birth_year % 10),
            );
        }
    }

    // --- redirect aliases -------------------------------------------------
    let n_entities = b.entity_count();
    for raw in 0..n_entities as u32 {
        if rng.gen_bool(config.alias_probability) {
            let e = EntityId::new(raw);
            let alias = misspell(b.entity_name_hint(e), &mut rng);
            b.redirect(alias, e);
        }
    }

    b.finish()
}

impl KgBuilder {
    /// Datagen helper: display name of an already-interned entity
    /// (label-style, underscores replaced). Exposed for generator use only.
    fn entity_display_name_hint(&self, e: EntityId) -> String {
        self.entity_name_hint(e).replace('_', " ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(100, 1.1);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            let r = z.sample(&mut rng);
            assert!(r < 100);
            counts[r] += 1;
        }
        assert!(counts[0] > counts[50] * 5, "rank 0 should dominate rank 50");
        assert!(counts[0] > counts[10], "rank 0 should beat rank 10");
    }

    #[test]
    fn zipf_single_rank() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&DatagenConfig::tiny());
        let b = generate(&DatagenConfig::tiny());
        assert_eq!(a.entity_count(), b.entity_count());
        assert_eq!(a.triple_count(), b.triple_count());
        assert_eq!(
            crate::ntriples::serialize(&a),
            crate::ntriples::serialize(&b)
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&DatagenConfig::tiny());
        let b = generate(&DatagenConfig::tiny().with_seed(99));
        assert_ne!(
            crate::ntriples::serialize(&a),
            crate::ntriples::serialize(&b)
        );
    }

    #[test]
    fn every_film_has_director_and_cast() {
        let kg = generate(&DatagenConfig::tiny());
        let film = kg.type_id("Film").unwrap();
        let starring = kg.predicate("starring").unwrap();
        let director = kg.predicate("director").unwrap();
        for &f in kg.type_extent(film) {
            assert!(!kg.objects(f, director).is_empty(), "film without director");
            assert!(kg.objects(f, starring).len() >= 2, "film with tiny cast");
        }
    }

    #[test]
    fn expected_domains_exist() {
        let kg = generate(&DatagenConfig::tiny());
        for t in [
            "Film",
            "Actor",
            "Director",
            "Writer",
            "MusicComposer",
            "Author",
            "Book",
            "City",
            "Country",
            "Genre",
            "Studio",
            "University",
            "Award",
            "Person",
            "Work",
        ] {
            let tid = kg.type_id(t).unwrap_or_else(|| panic!("missing type {t}"));
            assert!(!kg.type_extent(tid).is_empty(), "empty extent for {t}");
        }
    }

    #[test]
    fn categories_are_populated() {
        let kg = generate(&DatagenConfig::small());
        // At least one country-film category should have many members.
        let big = kg
            .category_ids()
            .map(|c| kg.category_extent(c).len())
            .max()
            .unwrap();
        assert!(big >= 10, "largest category only has {big} members");
    }

    #[test]
    fn zipf_popularity_shows_in_actor_degrees() {
        let kg = generate(&DatagenConfig::small());
        let starring = kg.predicate("starring").unwrap();
        let actor = kg.type_id("Actor").unwrap();
        let mut degrees: Vec<usize> = kg
            .type_extent(actor)
            .iter()
            .map(|&a| kg.subjects(a, starring).len())
            .collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top = degrees[0];
        let median = degrees[degrees.len() / 2];
        assert!(
            top >= median.max(1) * 5,
            "expected skew, got top={top} median={median}"
        );
    }

    #[test]
    fn aliases_are_generated() {
        let kg = generate(&DatagenConfig::small());
        let with_alias = kg
            .entity_ids()
            .filter(|&e| !kg.aliases(e).is_empty())
            .count();
        assert!(with_alias > 0, "no redirect aliases generated");
    }

    #[test]
    fn films_have_literals_and_abstract() {
        let kg = generate(&DatagenConfig::tiny());
        let film = kg.type_id("Film").unwrap();
        let f = kg.type_extent(film)[0];
        let lits: Vec<_> = kg.literals(f).collect();
        assert!(lits.len() >= 4, "expected runtime/release/gross/abstract");
        let abstract_p = kg.predicate("abstract").unwrap();
        assert!(lits.iter().any(|(p, _)| *p == abstract_p));
    }
}

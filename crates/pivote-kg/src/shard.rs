//! Range-sharded knowledge graphs.
//!
//! [`ShardedGraph`] partitions a [`KnowledgeGraph`] by **entity-id range**
//! into `N` independent [`KnowledgeGraph`] shards so that query layers can
//! fan work out per shard and merge bounded top-k results — the seam for
//! graphs larger than one machine's memory. The partitioning is chosen so
//! that the ranking model's set algebra decomposes *exactly*:
//!
//! - A [`ShardRouter`] maps every global [`EntityId`] to the shard that
//!   **owns** it (contiguous ranges, so routing is a binary search over
//!   `N+1` cut points).
//! - Each shard stores every triple **incident to an owned entity** (a
//!   triple whose endpoints live in two shards is stored in both). The
//!   non-owned endpoints interned into a shard are its *ghosts*.
//! - Shard-local entity ids are remapped densely: owned entities first, in
//!   ascending global order (`local = global − range.start`), then ghosts
//!   in ascending global order. Two invariants follow that the execution
//!   layer (`pivote-core`) relies on:
//!   1. **Owned prefix**: in any sorted local-id extent slice, the owned
//!      members form a prefix (`local < owned_count`), so
//!      `‖E(π) ∩ range_i‖` is one `partition_point`.
//!   2. **Order preservation**: among owned locals, local order equals
//!      global order, so per-shard owned extents remapped to global ids
//!      and concatenated in shard order are globally sorted.
//! - Types, categories, labels, aliases and literals are stored **only**
//!   in the owning shard, so context extents (`E(c)`, `E(t)`) are
//!   disjoint across shards and global counts are plain sums.
//! - Predicate, type and category dictionaries are replicated into every
//!   shard in global id order, so those dense ids are **identical** in
//!   every shard and in the source graph.
//!
//! Together these give the exact decompositions
//! `‖E(π)‖ = Σᵢ ‖Eᵢ(π) ∩ rangeᵢ‖` and
//! `‖E(π) ∩ E(c)‖ = Σᵢ ‖Eᵢ(π) ∩ Eᵢ(c)‖` (integer sums — no floating
//! error), which is what makes sharded rankings bit-identical to
//! single-graph rankings.

use crate::delta::{polarity_runs, AppliedDelta, DeltaBatch, DeltaOp};
use crate::id::{CategoryId, EntityId, PredicateId, TypeId};
use crate::store::{DeltaAcc, KgBuilder, KnowledgeGraph};
use crate::triple::Literal;

/// Whether the `PIVOTE_COMPACT=1` environment leg is active — the CI
/// hook that routes graph construction through the sharded
/// append-then-compact path (base partition + delta batches growing
/// trailing shards + [`ShardedGraph::compact`] + union rebuild).
pub fn compact_from_env() -> bool {
    crate::delta::env_flag("PIVOTE_COMPACT")
}

/// Whether the `PIVOTE_MAINTENANCE=1` environment leg is active — the
/// CI hook that routes the eval harness' graph construction through a
/// live store with a background maintenance thread compacting the
/// growing partition off the query path (the thread itself lives in
/// `pivote-core`; the flag lives here with its `PIVOTE_*` siblings so
/// there is one parser behind every CI-leg hook).
pub fn maintenance_from_env() -> bool {
    crate::delta::env_flag("PIVOTE_MAINTENANCE")
}

/// Shard counts for a test/benchmark matrix, from the `PIVOTE_SHARDS`
/// environment variable (comma-separated, e.g. `PIVOTE_SHARDS=1,4`), or
/// `default` when unset/unparsable. This is the hook the CI sharded
/// matrix uses to run one suite per shard configuration.
pub fn shard_counts_from_env(default: &[usize]) -> Vec<usize> {
    match std::env::var("PIVOTE_SHARDS") {
        Ok(v) => {
            let parsed: Vec<usize> = v
                .split(',')
                .filter_map(|s| s.trim().parse().ok())
                .filter(|&n| n >= 1)
                .collect();
            if parsed.is_empty() {
                default.to_vec()
            } else {
                parsed
            }
        }
        Err(_) => default.to_vec(),
    }
}

/// Maps global entity ids to shards by contiguous id range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRouter {
    /// `cuts[i]..cuts[i+1]` is the global-id range owned by shard `i`.
    cuts: Vec<u32>,
}

impl ShardRouter {
    /// Uniform ranges: `shards` shards of (up to) `ceil(count/shards)`
    /// entities each. Trailing shards may be empty when `shards` exceeds
    /// the entity count — query layers must tolerate empty shards.
    pub fn uniform(entity_count: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let count = entity_count as u32;
        let chunk = (entity_count.div_ceil(shards)).max(1) as u32;
        let cuts = (0..=shards)
            .map(|i| (i as u32).saturating_mul(chunk).min(count))
            .collect();
        Self { cuts }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.cuts.len() - 1
    }

    /// The shard owning `e`.
    ///
    /// # Panics
    /// If `e` is outside the routed id space.
    pub fn shard_of(&self, e: EntityId) -> usize {
        assert!(
            e.raw() < *self.cuts.last().expect("router has cut points"),
            "entity {e} outside the routed id space"
        );
        self.cuts.partition_point(|&c| c <= e.raw()) - 1
    }

    /// The global-id range owned by shard `i`.
    pub fn range(&self, i: usize) -> std::ops::Range<u32> {
        self.cuts[i]..self.cuts[i + 1]
    }

    /// Total number of routed entities.
    pub fn entity_count(&self) -> usize {
        *self.cuts.last().expect("router has cut points") as usize
    }

    /// Append a new trailing shard owning the next `additional` global
    /// ids — how the sharded apply places entities created by a delta.
    pub(crate) fn append_range(&mut self, additional: u32) {
        let last = *self.cuts.last().expect("router has cut points");
        self.cuts.push(last + additional);
    }
}

/// One shard: a self-contained [`KnowledgeGraph`] over the owned entity
/// range plus ghost copies of cross-shard neighbours, with the local ↔
/// global id remap table.
///
/// The shard graph lives behind an [`Arc`](std::sync::Arc) so cloning a
/// shard (and so a whole [`ShardedGraph`]) is a reference bump plus the
/// remap metadata — a published snapshot shares every shard with the
/// live partition, and a later mutation copies only the shard(s) it
/// actually touches (copy-on-write via `Arc::make_mut`).
#[derive(Debug, Clone)]
pub struct GraphShard {
    graph: std::sync::Arc<KnowledgeGraph>,
    /// Local id → global id. Owned locals (`0..owned_count`) are the
    /// shard's range in ascending order; ghost locals follow in the order
    /// they were interned (ascending at construction; appended ghosts
    /// from live deltas arrive in delta order).
    local_to_global: Vec<EntityId>,
    /// Ghost lookup `(global, local)`, sorted by global id — kept sorted
    /// under appends so [`GraphShard::to_local`] stays a binary search
    /// even when deltas intern ghosts out of global order.
    ghost_lookup: Vec<(EntityId, EntityId)>,
    /// First global id of the owned range (`local = global − base` for
    /// owned entities).
    base: u32,
    owned_count: usize,
}

impl GraphShard {
    /// The shard-local graph. All ids in its API are **local**.
    pub fn graph(&self) -> &KnowledgeGraph {
        &self.graph
    }

    /// Number of entities this shard owns (not counting ghosts).
    pub fn owned_count(&self) -> usize {
        self.owned_count
    }

    /// Whether a *local* id is an owned entity (vs a ghost).
    #[inline]
    pub fn is_owned(&self, local: EntityId) -> bool {
        local.index() < self.owned_count
    }

    /// Map a local id back to the global id space.
    #[inline]
    pub fn to_global(&self, local: EntityId) -> EntityId {
        self.local_to_global[local.index()]
    }

    /// Map a global id to this shard's local id space, if the entity is
    /// present here (owned or ghost).
    pub fn to_local(&self, global: EntityId) -> Option<EntityId> {
        let owned_end = self.base + self.owned_count as u32;
        if (self.base..owned_end).contains(&global.raw()) {
            return Some(EntityId::new(global.raw() - self.base));
        }
        self.ghost_lookup
            .binary_search_by_key(&global, |&(g, _)| g)
            .ok()
            .map(|i| self.ghost_lookup[i].1)
    }

    /// Register a freshly interned ghost local (post-append bookkeeping).
    fn push_ghost(&mut self, global: EntityId, local: EntityId) {
        debug_assert_eq!(local.index(), self.local_to_global.len());
        self.local_to_global.push(global);
        let at = self.ghost_lookup.partition_point(|&(g, _)| g < global);
        self.ghost_lookup.insert(at, (global, local));
    }

    /// Length of the owned prefix of a sorted local-id extent slice —
    /// exactly `‖E ∩ range‖` for this shard's range (invariant 1 above).
    #[inline]
    pub fn owned_prefix_len(&self, extent: &[EntityId]) -> usize {
        extent.partition_point(|&e| e.index() < self.owned_count)
    }

    /// Append the owned prefix of a sorted local extent to `out` as
    /// global ids (stays sorted — invariant 2 above).
    pub fn extend_owned_global(&self, extent: &[EntityId], out: &mut Vec<EntityId>) {
        let n = self.owned_prefix_len(extent);
        out.extend(extent[..n].iter().map(|&e| self.to_global(e)));
    }
}

/// A knowledge graph partitioned into range-owned shards.
///
/// All public accessors speak **global ids** (the id space of the source
/// graph); per-shard access via [`ShardedGraph::shard`] speaks local ids.
///
/// `Clone` is cheap: shard graphs are `Arc`-shared, so a clone copies
/// the router and remap metadata plus one reference bump per shard —
/// how the live layer's concurrent compaction takes a consistent
/// snapshot under a read guard (and the serving layer publishes one per
/// write) without copying any graph. Mutating a clone copies only the
/// shard(s) the mutation touches.
#[derive(Debug, Clone)]
pub struct ShardedGraph {
    router: ShardRouter,
    shards: Vec<GraphShard>,
    relation_count: usize,
    triple_count: usize,
    /// Bumped by every [`ShardedGraph::apply`] and every
    /// [`ShardedGraph::compact`]; 0 for a fresh partition.
    generation: u64,
    /// Shard count of the last deliberate partition
    /// ([`ShardedGraph::from_graph`] or [`ShardedGraph::compact`]);
    /// shards beyond this are the *trailing* shards appended by deltas.
    base_shards: usize,
    /// Number of compaction passes this partition descends from (0 for
    /// `from_graph`). Within one epoch shards are only ever appended —
    /// never reordered, resized or replaced — which is what lets
    /// per-shard derived state (e.g. search indexes) be reused
    /// positionally across appends but never across a re-partition.
    compaction_epoch: u64,
}

impl ShardedGraph {
    /// Partition `kg` into `shards` range shards.
    ///
    /// Every global entity id is owned by exactly one shard; every triple
    /// is stored in the shard(s) owning its endpoints; dictionaries for
    /// predicates, types and categories are replicated in global order so
    /// their dense ids agree across shards.
    pub fn from_graph(kg: &KnowledgeGraph, shards: usize) -> Self {
        let router = ShardRouter::uniform(kg.entity_count(), shards);
        let n = router.shard_count();
        let mut triples: Vec<Vec<(EntityId, PredicateId, EntityId)>> = vec![Vec::new(); n];
        let mut ghosts: Vec<Vec<EntityId>> = vec![Vec::new(); n];
        for t in kg.entity_triples() {
            let o = t.object.as_entity().expect("entity triple");
            let (ss, os) = (router.shard_of(t.subject), router.shard_of(o));
            triples[ss].push((t.subject, t.predicate, o));
            if os != ss {
                triples[os].push((t.subject, t.predicate, o));
                ghosts[os].push(t.subject);
                ghosts[ss].push(o);
            }
        }

        let built = (0..n)
            .map(|i| {
                let range = router.range(i);
                let base = range.start;
                let owned_count = range.len();
                let mut b = KgBuilder::new();
                // replicate the dictionaries in global id order so dense
                // predicate/type/category ids match the source graph
                crate::delta::replicate_dictionaries(&mut b, kg);
                // owned entities first, ascending; then ghosts, ascending
                let mut local_to_global: Vec<EntityId> = Vec::with_capacity(owned_count);
                for g in range.clone() {
                    let ge = EntityId::new(g);
                    let le = b.entity(kg.entity_name(ge));
                    debug_assert_eq!(le.raw(), g - base, "owned locals must be dense");
                    local_to_global.push(ge);
                }
                ghosts[i].sort_unstable();
                ghosts[i].dedup();
                for &ge in &ghosts[i] {
                    let le = b.entity(kg.entity_name(ge));
                    // ghosts carry their entity's label so shard-local
                    // display names — and the search documents built from
                    // them — match the source graph exactly
                    if let Some(l) = kg.label(ge) {
                        b.label(le, l);
                    }
                    local_to_global.push(ge);
                }
                let ghost_list = &local_to_global[owned_count..];
                let to_local = |g: EntityId| -> EntityId {
                    if range.contains(&g.raw()) {
                        EntityId::new(g.raw() - base)
                    } else {
                        let idx = ghost_list.binary_search(&g).expect("ghost interned");
                        EntityId::new((owned_count + idx) as u32)
                    }
                };
                // owned-only facets: labels, memberships, literals,
                // aliases (b.entity returns the interned owned local)
                for g in range.clone() {
                    let le = crate::delta::replay_entity_facets(&mut b, kg, EntityId::new(g));
                    debug_assert_eq!(le.raw(), g - base);
                }
                for &(s, p, o) in &triples[i] {
                    b.triple(to_local(s), p, to_local(o));
                }
                let ghost_lookup = local_to_global[owned_count..]
                    .iter()
                    .enumerate()
                    .map(|(i, &g)| (g, EntityId::new((owned_count + i) as u32)))
                    .collect();
                GraphShard {
                    graph: std::sync::Arc::new(b.finish()),
                    local_to_global,
                    ghost_lookup,
                    base,
                    owned_count,
                }
            })
            .collect();

        let base_shards = router.shard_count();
        Self {
            router,
            shards: built,
            relation_count: kg.relation_count(),
            triple_count: kg.triple_count(),
            generation: 0,
            base_shards,
            compaction_epoch: 0,
        }
    }

    /// Number of compaction passes this partition descends from —
    /// bumped by [`ShardedGraph::compact`], untouched by appends. A
    /// changed epoch means the shard list was rebuilt wholesale, so any
    /// per-shard derived state (per-shard search indexes, say) keyed by
    /// shard position is invalid; within one epoch, per-shard state
    /// stays valid as long as that shard's local
    /// [`KnowledgeGraph::generation`] is unchanged.
    pub fn compaction_epoch(&self) -> u64 {
        self.compaction_epoch
    }

    /// The mutation generation: 0 for a fresh partition, bumped by every
    /// [`ShardedGraph::apply`] and every [`ShardedGraph::compact`].
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of *trailing* shards: shards appended by deltas since the
    /// last deliberate partition ([`ShardedGraph::from_graph`] or
    /// [`ShardedGraph::compact`]). Every query fans out over
    /// base + trailing shards, so a growing tail degrades per-query
    /// latency linearly — the quantity [`CompactionPolicy`] watches.
    pub fn trailing_shard_count(&self) -> usize {
        self.shards.len() - self.base_shards
    }

    /// Fraction of all owned entities living in trailing shards
    /// (0.0 for a freshly partitioned or just-compacted graph).
    pub fn tail_owned_fraction(&self) -> f64 {
        let tail: usize = self.shards[self.base_shards..]
            .iter()
            .map(|s| s.owned_count())
            .sum();
        tail as f64 / self.entity_count().max(1) as f64
    }

    /// Materialize the logical single graph this partition represents —
    /// the union-rebuild half of compaction. Dense ids are preserved
    /// exactly: dictionaries are replayed in global id order, entities in
    /// ascending global id order with their owned facets, then every
    /// entity triple once (from its subject's home shard, which stores
    /// all incident triples). The result is id-identical to the
    /// [`KnowledgeGraph`] that `from_graph` + the applied deltas
    /// logically describe, so rankings over it are bit-identical.
    pub fn to_graph(&self) -> KnowledgeGraph {
        let mut b = KgBuilder::new();
        crate::delta::replicate_dictionaries(&mut b, self.dict());
        for g in self.entity_ids() {
            // the home shard's local graph carries the entity's owned
            // facets under the replicated (global) dictionary ids
            let (shard, local) = self.home(g);
            let le = crate::delta::replay_entity_facets(&mut b, shard.graph(), local);
            debug_assert_eq!(le, g, "union rebuild must preserve entity ids");
        }
        for g in self.entity_ids() {
            let (shard, local) = self.home(g);
            for (p, o) in shard.graph().out_edges(local) {
                b.triple(g, p, shard.to_global(o));
            }
        }
        b.finish()
    }

    /// Re-partition into `target_shards` fresh entity-id-range shards —
    /// the offline compaction pass for a graph whose trailing shards have
    /// accumulated. An offline union rebuild ([`ShardedGraph::to_graph`])
    /// feeds [`ShardedGraph::from_graph`], so the result carries all the
    /// remap and dictionary-replication invariants of a fresh partition:
    /// owned-first dense locals, globally sorted concatenated extents,
    /// identical dense dictionary ids. Every global id — entity,
    /// predicate, type, category — is unchanged, which is what makes
    /// compaction answer-preserving: rankings, heat maps and profiles
    /// over the compacted graph are bit-identical to the uncompacted one
    /// (enforced by `tests/compaction_equivalence.rs` and
    /// `tests/golden_compaction.rs`).
    ///
    /// The compacted graph starts a new generation (`generation + 1`),
    /// observable through [`ShardedGraph::generation`] and, on the live
    /// wrapper, through the shared cache's generation counter.
    pub fn compact(&self, target_shards: usize) -> ShardedGraph {
        let mut fresh = ShardedGraph::from_graph(&self.to_graph(), target_shards);
        fresh.generation = self.generation + 1;
        fresh.compaction_epoch = self.compaction_epoch + 1;
        fresh
    }

    /// Append a [`DeltaBatch`], routing every statement to the shard(s)
    /// that own its endpoints while preserving the remap invariants the
    /// execution layer relies on:
    ///
    /// - Entities created by the delta become a **new trailing shard**
    ///   owning the appended global-id range (owned locals dense in
    ///   global order by construction) — existing shards never gain owned
    ///   entities, so their owned prefixes stay intact.
    /// - A new triple is stored in the shard(s) owning its endpoints;
    ///   endpoints foreign to a shard are interned there as ghosts
    ///   (`local ≥ owned_count`, so the owned-prefix invariant holds no
    ///   matter the interning order).
    /// - New predicates/types/categories are declared into **every**
    ///   shard first, in first-appearance order — the same global order
    ///   the single-graph apply interns them — so dictionaries stay
    ///   replicated and dense ids stay identical across shards.
    /// - Facet statements (types, categories, labels, literals, aliases)
    ///   go only to the owning shard, keeping context extents disjoint.
    ///
    /// Work is proportional to the delta and the touched rows (existing
    /// shards are patched via [`KnowledgeGraph::apply`]); the receipt is
    /// a *global-id* [`AppliedDelta`] equivalent to the one the
    /// single-graph apply of the same batch returns.
    ///
    /// Note: every batch that introduces entities appends one shard, so
    /// a long sequence of tiny deltas grows the shard count (and the
    /// per-query shard iteration) linearly — re-partition via
    /// [`ShardedGraph::compact`] when [`CompactionPolicy`] judges the
    /// tail degenerate.
    ///
    /// Retract ops are routed to the shard(s) storing the statement —
    /// the subject's *and* object's home shards for a triple (cross-shard
    /// triples live in both), every ghost-holding shard for a label, and
    /// the owning shard for the other facets — with ghost-consistent
    /// semantics: a ghost copy loses exactly the statements its owned
    /// copy loses, so the decomposition invariants survive retraction.
    /// Like the single-graph apply, the batch is split into maximal
    /// same-polarity runs and the generation is bumped exactly once.
    pub fn apply(&mut self, delta: &DeltaBatch) -> AppliedDelta {
        let mut acc = DeltaAcc::new(self.router.entity_count() as u32);
        for (retract, run) in polarity_runs(delta.ops()) {
            if retract {
                self.apply_retract_run(run, &mut acc);
            } else {
                self.apply_insert_run(run, &mut acc);
            }
        }
        self.generation += 1;
        acc.finish(self.generation, self.router.entity_count() as u32)
    }

    /// One maximal insert-polarity run of [`ShardedGraph::apply`].
    fn apply_insert_run(&mut self, ops: &[DeltaOp], acc: &mut DeltaAcc) {
        use std::collections::{HashMap, HashSet};

        let old_count = self.router.entity_count() as u32;
        let n_old_shards = self.shards.len();
        let mut work: u64 = 0;

        // ---- phase A (read-only): resolve names, dedup statements ------
        let mut name_ids: HashMap<&str, EntityId> = HashMap::new();
        let mut new_names: Vec<&str> = Vec::new();
        let mut next_id = old_count;
        macro_rules! resolve {
            ($name:expr) => {{
                let name: &str = $name;
                match name_ids.get(name) {
                    Some(&id) => id,
                    None => {
                        let id = match self.entity(name) {
                            Some(id) => id,
                            None => {
                                let id = EntityId::new(next_id);
                                next_id += 1;
                                new_names.push(name);
                                id
                            }
                        };
                        name_ids.insert(name, id);
                        id
                    }
                }
            }};
        }
        // dictionary terms: known ids, or provisional dense ids for new
        // names in first-appearance order (matches the single-graph
        // interning order)
        let mut pred_ids: HashMap<&str, u32> = HashMap::new();
        let mut new_preds: Vec<&str> = Vec::new();
        let mut type_known: HashMap<&str, Option<TypeId>> = HashMap::new();
        let mut new_types: Vec<&str> = Vec::new();
        let mut cat_known: HashMap<&str, Option<CategoryId>> = HashMap::new();
        let mut new_cats: Vec<&str> = Vec::new();

        let old_pred_count = self.predicate_count() as u32;
        // statements kept after deduplication, as indexes into ops
        let mut kept_triples: Vec<(EntityId, u32, EntityId, usize)> = Vec::new();
        let mut kept_types: Vec<(EntityId, usize)> = Vec::new();
        let mut kept_cats: Vec<(EntityId, usize)> = Vec::new();
        let mut seen_triples: HashSet<(EntityId, u32, EntityId)> = HashSet::new();
        let mut seen_types: HashSet<(EntityId, &str)> = HashSet::new();
        let mut seen_cats: HashSet<(EntityId, &str)> = HashSet::new();
        let mut touched_types: Vec<TypeId> = Vec::new();
        let mut touched_categories: Vec<CategoryId> = Vec::new();
        let mut n_literals = 0usize;

        for (idx, op) in ops.iter().enumerate() {
            match op {
                DeltaOp::Entity { name } => {
                    resolve!(name.as_str());
                }
                DeltaOp::DeclarePredicate { name } => {
                    if !pred_ids.contains_key(name.as_str()) && self.predicate(name).is_none() {
                        pred_ids.insert(name.as_str(), old_pred_count + new_preds.len() as u32);
                        new_preds.push(name.as_str());
                    }
                }
                DeltaOp::DeclareType { name } => {
                    let entry = type_known
                        .entry(name.as_str())
                        .or_insert_with(|| self.type_id(name));
                    if entry.is_none() && !new_types.contains(&name.as_str()) {
                        new_types.push(name.as_str());
                    }
                }
                DeltaOp::DeclareCategory { name } => {
                    let entry = cat_known
                        .entry(name.as_str())
                        .or_insert_with(|| self.category_id(name));
                    if entry.is_none() && !new_cats.contains(&name.as_str()) {
                        new_cats.push(name.as_str());
                    }
                }
                DeltaOp::Triple { s, p, o } => {
                    let s = resolve!(s.as_str());
                    let o = resolve!(o.as_str());
                    let pid = match pred_ids.get(p.as_str()) {
                        Some(&pid) => pid,
                        None => {
                            let pid = match self.predicate(p) {
                                Some(pid) => pid.raw(),
                                None => {
                                    let pid = old_pred_count + new_preds.len() as u32;
                                    new_preds.push(p.as_str());
                                    pid
                                }
                            };
                            pred_ids.insert(p.as_str(), pid);
                            pid
                        }
                    };
                    if !seen_triples.insert((s, pid, o)) {
                        continue; // duplicate within the batch
                    }
                    // already stored? check the subject's home shard
                    if s.raw() < old_count && o.raw() < old_count && pid < old_pred_count {
                        let (shard, local_s) = self.home(s);
                        if let Some(local_o) = shard.to_local(o) {
                            if shard
                                .graph()
                                .objects(local_s, PredicateId::new(pid))
                                .binary_search(&local_o)
                                .is_ok()
                            {
                                continue;
                            }
                        }
                    }
                    kept_triples.push((s, pid, o, idx));
                }
                DeltaOp::LiteralTriple { s, p, .. } => {
                    resolve!(s.as_str());
                    if !pred_ids.contains_key(p.as_str()) && self.predicate(p).is_none() {
                        pred_ids.insert(p.as_str(), old_pred_count + new_preds.len() as u32);
                        new_preds.push(p.as_str());
                    }
                    n_literals += 1;
                }
                DeltaOp::Typed { entity, type_name } => {
                    let e = resolve!(entity.as_str());
                    let known = *type_known
                        .entry(type_name.as_str())
                        .or_insert_with(|| self.type_id(type_name));
                    if known.is_none() && !new_types.contains(&type_name.as_str()) {
                        new_types.push(type_name.as_str());
                    }
                    if !seen_types.insert((e, type_name.as_str())) {
                        continue;
                    }
                    if let Some(t) = known {
                        if e.raw() < old_count && self.has_type(e, t) {
                            continue;
                        }
                    }
                    kept_types.push((e, idx));
                    let t = known.unwrap_or_else(|| {
                        TypeId::new(
                            self.type_count() as u32
                                + new_types
                                    .iter()
                                    .position(|&n| n == type_name.as_str())
                                    .expect("new type recorded")
                                    as u32,
                        )
                    });
                    touched_types.push(t);
                }
                DeltaOp::Categorized { entity, category } => {
                    let e = resolve!(entity.as_str());
                    let known = *cat_known
                        .entry(category.as_str())
                        .or_insert_with(|| self.category_id(category));
                    if known.is_none() && !new_cats.contains(&category.as_str()) {
                        new_cats.push(category.as_str());
                    }
                    if !seen_cats.insert((e, category.as_str())) {
                        continue;
                    }
                    if let Some(c) = known {
                        if e.raw() < old_count && self.has_category(e, c) {
                            continue;
                        }
                    }
                    kept_cats.push((e, idx));
                    let c = known.unwrap_or_else(|| {
                        CategoryId::new(
                            self.category_count() as u32
                                + new_cats
                                    .iter()
                                    .position(|&n| n == category.as_str())
                                    .expect("new category recorded")
                                    as u32,
                        )
                    });
                    touched_categories.push(c);
                }
                DeltaOp::Label { entity, .. } => {
                    resolve!(entity.as_str());
                }
                DeltaOp::Redirect { target, .. } | DeltaOp::Disambiguation { target, .. } => {
                    resolve!(target.as_str());
                }
                _ => unreachable!("retract op in an insert-polarity run"),
            }
        }

        // ---- phase B: distribute to per-shard name-based deltas --------
        let new_shard_index = n_old_shards; // where new entities live
        let shard_of = |e: EntityId| -> usize {
            if e.raw() < old_count {
                self.router.shard_of(e)
            } else {
                new_shard_index
            }
        };
        let mut local_deltas: Vec<DeltaBatch> =
            vec![DeltaBatch::new(); n_old_shards + usize::from(!new_names.is_empty())];
        // every shard learns the new dictionary terms first, in global
        // (first-appearance) order
        for d in &mut local_deltas {
            for &p in &new_preds {
                d.declare_predicate(p);
            }
            for &t in &new_types {
                d.declare_type(t);
            }
            for &c in &new_cats {
                d.declare_category(c);
            }
        }
        // shards that gain a ghost copy of an entity through this batch's
        // cross-shard triples — every `(shard, foreign endpoint)` pair
        let mut ghost_sites: HashSet<(usize, EntityId)> = HashSet::new();
        for &(s, _, o, _) in &kept_triples {
            let (ss, os) = (shard_of(s), shard_of(o));
            if ss != os {
                ghost_sites.insert((ss, o));
                ghost_sites.insert((os, s));
            }
        }
        // Fresh ghosts of *existing* entities copy their current label
        // first (before any batch statement), so shard-local display
        // names stay globally consistent; label ops in the batch itself
        // are routed to ghost holders below and override these.
        let mut label_seeds: Vec<(usize, EntityId)> = ghost_sites
            .iter()
            .filter(|&&(i, e)| {
                i < n_old_shards && e.raw() < old_count && self.shards[i].to_local(e).is_none()
            })
            .copied()
            .collect();
        label_seeds.sort_unstable_by_key(|&(i, e)| (i, e));
        for (i, e) in label_seeds {
            if let Some(l) = self.label_of(e) {
                local_deltas[i].label(self.entity_name_of(e), l);
            }
        }
        let route_facet = |e: EntityId, op: &DeltaOp, deltas: &mut Vec<DeltaBatch>| {
            deltas[shard_of(e)].push(op.clone());
        };
        let triple_by_idx: HashMap<usize, (EntityId, EntityId)> = kept_triples
            .iter()
            .map(|&(s, _, o, i)| (i, (s, o)))
            .collect();
        let kept_type_idx: HashSet<usize> = kept_types.iter().map(|&(_, i)| i).collect();
        let kept_cat_idx: HashSet<usize> = kept_cats.iter().map(|&(_, i)| i).collect();
        for (idx, op) in ops.iter().enumerate() {
            match op {
                DeltaOp::Triple { .. } => {
                    let Some(&(s, o)) = triple_by_idx.get(&idx) else {
                        continue;
                    };
                    let (ss, os) = (shard_of(s), shard_of(o));
                    local_deltas[ss].push(op.clone());
                    if os != ss {
                        local_deltas[os].push(op.clone());
                    }
                }
                DeltaOp::LiteralTriple { s, .. } => {
                    let e = name_ids[s.as_str()];
                    route_facet(e, op, &mut local_deltas);
                }
                DeltaOp::Typed { entity, .. } => {
                    if kept_type_idx.contains(&idx) {
                        route_facet(name_ids[entity.as_str()], op, &mut local_deltas);
                    }
                }
                DeltaOp::Categorized { entity, .. } => {
                    if kept_cat_idx.contains(&idx) {
                        route_facet(name_ids[entity.as_str()], op, &mut local_deltas);
                    }
                }
                DeltaOp::Label { entity, .. } => {
                    // the owning shard, plus every shard holding (or
                    // gaining) a ghost copy — ghost labels must track the
                    // owned label for display names to stay consistent
                    let e = name_ids[entity.as_str()];
                    let home = shard_of(e);
                    local_deltas[home].push(op.clone());
                    for (j, local) in local_deltas.iter_mut().enumerate() {
                        if j == home {
                            continue;
                        }
                        let holds_ghost = (j < n_old_shards
                            && e.raw() < old_count
                            && self.shards[j].to_local(e).is_some())
                            || ghost_sites.contains(&(j, e));
                        if holds_ghost {
                            local.push(op.clone());
                        }
                    }
                }
                DeltaOp::Redirect { target, .. } | DeltaOp::Disambiguation { target, .. } => {
                    route_facet(name_ids[target.as_str()], op, &mut local_deltas);
                }
                DeltaOp::Entity { name } => {
                    // new entities are declared in their owning shard so
                    // bare declarations still materialize
                    let e = name_ids[name.as_str()];
                    if e.raw() >= old_count {
                        local_deltas[new_shard_index].push(op.clone());
                    }
                }
                DeltaOp::DeclarePredicate { .. }
                | DeltaOp::DeclareType { .. }
                | DeltaOp::DeclareCategory { .. } => {}
                _ => unreachable!("retract op in an insert-polarity run"),
            }
        }

        // ---- phase C: patch existing shards, then build the new one ----
        #[allow(clippy::needless_range_loop)]
        for i in 0..n_old_shards {
            if local_deltas[i].is_empty() {
                continue;
            }
            let applied =
                std::sync::Arc::make_mut(&mut self.shards[i].graph).apply(&local_deltas[i]);
            work += applied.work;
            for raw in applied.new_entities.clone() {
                let local = EntityId::new(raw);
                let global = name_ids[self.shards[i].graph.entity_name(local)];
                self.shards[i].push_ghost(global, local);
            }
        }
        if !new_names.is_empty() {
            let delta_ops = &local_deltas[new_shard_index];
            let mut b = KgBuilder::new();
            // replicate the updated dictionaries (shard 0 already applied
            // the declares) in global order
            crate::delta::replicate_dictionaries(&mut b, self.shards[0].graph());
            // owned entities: the appended global range, dense and in
            // ascending global order
            let mut local_to_global: Vec<EntityId> = Vec::with_capacity(new_names.len());
            for (i, &name) in new_names.iter().enumerate() {
                let le = b.entity(name);
                debug_assert_eq!(le.raw() as usize, i, "owned locals must be dense");
                local_to_global.push(EntityId::new(old_count + i as u32));
            }
            // ghosts: old entities referenced by this shard's statements,
            // ascending in global id
            let mut ghosts: Vec<EntityId> = delta_ops
                .ops()
                .iter()
                .filter_map(|op| match op {
                    DeltaOp::Triple { s, o, .. } => {
                        let (s, o) = (name_ids[s.as_str()], name_ids[o.as_str()]);
                        if s.raw() < old_count {
                            Some(s)
                        } else if o.raw() < old_count {
                            Some(o)
                        } else {
                            None
                        }
                    }
                    _ => None,
                })
                .collect();
            ghosts.sort_unstable();
            ghosts.dedup();
            for &g in &ghosts {
                let le = b.entity(&self.entity_name_of(g));
                // ghost copies of pre-existing entities keep their label
                // (batch label ops replayed below override)
                if let Some(l) = self.label_of(g) {
                    b.label(le, l);
                }
                local_to_global.push(g);
            }
            // replay the shard's statements through the builder
            local_deltas[new_shard_index].apply_to_builder(&mut b);
            let graph = b.finish();
            work += graph.triple_count() as u64;
            let ghost_lookup = local_to_global[new_names.len()..]
                .iter()
                .enumerate()
                .map(|(i, &g)| (g, EntityId::new((new_names.len() + i) as u32)))
                .collect();
            self.shards.push(GraphShard {
                graph: std::sync::Arc::new(graph),
                local_to_global,
                ghost_lookup,
                base: old_count,
                owned_count: new_names.len(),
            });
            self.router.append_range(new_names.len() as u32);
        }

        // ---- receipt ---------------------------------------------------
        self.relation_count += kept_triples.len();
        self.triple_count += kept_triples.len() + n_literals + kept_types.len() + kept_cats.len();

        acc.touched_out.extend(
            kept_triples
                .iter()
                .map(|&(s, p, ..)| (s, PredicateId::new(p))),
        );
        acc.touched_in.extend(
            kept_triples
                .iter()
                .map(|&(_, p, o, _)| (o, PredicateId::new(p))),
        );
        acc.touched_types.extend(touched_types);
        acc.touched_categories.extend(touched_categories);
        acc.added_relations += kept_triples.len();
        acc.added_literals += n_literals;
        acc.work += work;
    }

    /// One maximal retract-polarity run of [`ShardedGraph::apply`].
    ///
    /// Names are resolved lookup-only (a retract never interns — an
    /// unknown name makes the op a no-op) and presence is checked against
    /// the subject's home shard *before* routing, so the receipt counts
    /// exactly what the equivalent single-graph apply would count. Each
    /// surviving op is re-issued as a name-based retract to the shard(s)
    /// storing the statement: both endpoint home shards for a triple
    /// (cross-shard triples live in both), every ghost-holding shard for
    /// a label, and the owning shard for the other facets.
    fn apply_retract_run(&mut self, ops: &[DeltaOp], acc: &mut DeltaAcc) {
        use std::collections::HashSet;

        let n_shards = self.shards.len();
        let mut local_deltas: Vec<DeltaBatch> = vec![DeltaBatch::new(); n_shards];
        let mut seen_triples: HashSet<(EntityId, PredicateId, EntityId)> = HashSet::new();
        let mut seen_literals: HashSet<(EntityId, PredicateId, &Literal)> = HashSet::new();
        let mut seen_types: HashSet<(EntityId, TypeId)> = HashSet::new();
        let mut seen_cats: HashSet<(EntityId, CategoryId)> = HashSet::new();
        let mut seen_labels: HashSet<(EntityId, &str)> = HashSet::new();
        let mut seen_aliases: HashSet<(&str, EntityId)> = HashSet::new();
        let mut removed_relations = 0usize;
        let mut removed_literals = 0usize;
        let mut removed_assertions = 0usize;
        // label/alias clears: counted in the receipt's assertion total but
        // never in `triple_count`, which tracks statements only
        let mut removed_meta = 0usize;
        for op in ops {
            acc.work += 1;
            match op {
                DeltaOp::RetractTriple { s, p, o } => {
                    let (Some(sg), Some(pg), Some(og)) =
                        (self.entity(s), self.predicate(p), self.entity(o))
                    else {
                        continue;
                    };
                    if !seen_triples.insert((sg, pg, og)) {
                        continue;
                    }
                    // stored? a stored triple forces a copy of the object
                    // in the subject's home shard
                    let (shard, ls) = self.home(sg);
                    let Some(lo) = shard.to_local(og) else {
                        continue;
                    };
                    if shard.graph().objects(ls, pg).binary_search(&lo).is_err() {
                        continue;
                    }
                    let (hs, ho) = (self.router.shard_of(sg), self.router.shard_of(og));
                    local_deltas[hs].retract_triple(s, p, o);
                    if ho != hs {
                        local_deltas[ho].retract_triple(s, p, o);
                    }
                    acc.touched_out.push((sg, pg));
                    acc.touched_in.push((og, pg));
                    removed_relations += 1;
                }
                DeltaOp::RetractLiteral { s, p, value } => {
                    let (Some(sg), Some(pg)) = (self.entity(s), self.predicate(p)) else {
                        continue;
                    };
                    if !seen_literals.insert((sg, pg, value)) {
                        continue;
                    }
                    // a retract removes every stored copy whose value
                    // matches; literals live only in the subject's home
                    let (shard, ls) = self.home(sg);
                    let copies = shard
                        .graph()
                        .literals(ls)
                        .filter(|&(q, v)| q == pg && v == value)
                        .count();
                    if copies == 0 {
                        continue;
                    }
                    local_deltas[self.router.shard_of(sg)].retract_literal(s, p, value.clone());
                    removed_literals += copies;
                }
                DeltaOp::RetractTyped { entity, type_name } => {
                    let (Some(e), Some(t)) = (self.entity(entity), self.type_id(type_name)) else {
                        continue;
                    };
                    if !seen_types.insert((e, t)) || !self.has_type(e, t) {
                        continue;
                    }
                    local_deltas[self.router.shard_of(e)].retract_typed(entity, type_name);
                    acc.touched_types.push(t);
                    removed_assertions += 1;
                }
                DeltaOp::RetractCategorized { entity, category } => {
                    let (Some(e), Some(c)) = (self.entity(entity), self.category_id(category))
                    else {
                        continue;
                    };
                    if !seen_cats.insert((e, c)) || !self.has_category(e, c) {
                        continue;
                    }
                    local_deltas[self.router.shard_of(e)].retract_categorized(entity, category);
                    acc.touched_categories.push(c);
                    removed_assertions += 1;
                }
                DeltaOp::RetractLabel { entity, label } => {
                    // every holder — the home shard plus ghost copies,
                    // whose labels track the owned label
                    let Some(e) = self.entity(entity) else {
                        continue;
                    };
                    if !seen_labels.insert((e, label.as_str())) {
                        continue;
                    }
                    let (shard, local) = self.home(e);
                    if shard.graph().label(local) != Some(label.as_str()) {
                        continue;
                    }
                    for (j, local) in local_deltas.iter_mut().enumerate() {
                        if self.shards[j].to_local(e).is_some() {
                            local.retract_label(entity, label);
                        }
                    }
                    removed_meta += 1;
                }
                DeltaOp::RetractAlias { alias, target } => {
                    let Some(t) = self.entity(target) else {
                        continue;
                    };
                    if !seen_aliases.insert((alias.as_str(), t)) {
                        continue;
                    }
                    let (shard, local) = self.home(t);
                    if shard
                        .graph()
                        .aliases(local)
                        .binary_search_by(|a| a.as_str().cmp(alias))
                        .is_err()
                    {
                        continue;
                    }
                    local_deltas[self.router.shard_of(t)].retract_alias(alias, target);
                    removed_meta += 1;
                }
                _ => unreachable!("insert op in a retract-polarity run"),
            }
        }

        for (i, d) in local_deltas.iter().enumerate() {
            if d.is_empty() {
                continue;
            }
            let applied = std::sync::Arc::make_mut(&mut self.shards[i].graph).apply(d);
            acc.work += applied.work;
        }

        acc.removed_relations += removed_relations;
        acc.removed_literals += removed_literals;
        acc.removed_assertions += removed_assertions + removed_meta;
        self.relation_count -= removed_relations;
        self.triple_count -= removed_relations + removed_literals + removed_assertions;
    }

    /// Number of tombstoned statements held across all shards since
    /// their last compaction. A relation retracted from a cross-shard
    /// pair is tombstoned in both endpoint shards, so this can
    /// over-count relative to [`KnowledgeGraph::tombstone_count`] on the
    /// equivalent single graph — acceptable for the compaction-pressure
    /// heuristic it feeds, which only needs "how much dead mass is held".
    pub fn tombstone_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.graph().tombstone_count())
            .sum()
    }

    /// Label of a global entity, read from its home shard (helper for
    /// the ghost-label replication in the apply path).
    fn label_of(&self, e: EntityId) -> Option<String> {
        let (shard, local) = self.home(e);
        shard.graph().label(local).map(str::to_owned)
    }

    /// Name of a global entity without borrowing `self` mutably twice
    /// (helper for the apply path).
    fn entity_name_of(&self, e: EntityId) -> String {
        let (shard, local) = self.home(e);
        shard.graph.entity_name(local).to_owned()
    }

    /// The entity → shard router.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// All shards, in range order.
    pub fn shards(&self) -> &[GraphShard] {
        &self.shards
    }

    /// Shard `i`.
    pub fn shard(&self, i: usize) -> &GraphShard {
        &self.shards[i]
    }

    /// The shard owning global entity `e`.
    pub fn shard_of(&self, e: EntityId) -> usize {
        self.router.shard_of(e)
    }

    /// The owning shard of `e` together with `e`'s local id there.
    pub fn home(&self, e: EntityId) -> (&GraphShard, EntityId) {
        let shard = &self.shards[self.router.shard_of(e)];
        let local = EntityId::new(e.raw() - shard.base);
        (shard, local)
    }

    // ---- global-id read API --------------------------------------------

    /// Total number of entities across all shards (ghosts not counted).
    pub fn entity_count(&self) -> usize {
        self.router.entity_count()
    }

    /// Number of distinct predicates (identical in every shard).
    pub fn predicate_count(&self) -> usize {
        self.dict().predicate_count()
    }

    /// Number of distinct types (identical in every shard).
    pub fn type_count(&self) -> usize {
        self.dict().type_count()
    }

    /// Number of distinct categories (identical in every shard).
    pub fn category_count(&self) -> usize {
        self.dict().category_count()
    }

    /// Entity-to-entity statements in the source graph (cross-shard
    /// triples counted once).
    pub fn relation_count(&self) -> usize {
        self.relation_count
    }

    /// Total statements in the source graph.
    pub fn triple_count(&self) -> usize {
        self.triple_count
    }

    /// Any shard's graph, used for the replicated dictionaries (shard 0
    /// always exists: the router clamps to ≥ 1 shard).
    fn dict(&self) -> &KnowledgeGraph {
        self.shards[0].graph()
    }

    /// Resolve an entity by name (scans shards; owned interning means the
    /// home shard always knows the name).
    pub fn entity(&self, name: &str) -> Option<EntityId> {
        self.shards
            .iter()
            .find_map(|s| s.graph.entity(name).map(|local| s.to_global(local)))
    }

    /// The canonical name of a global entity.
    pub fn entity_name(&self, e: EntityId) -> &str {
        let (shard, local) = self.home(e);
        shard.graph.entity_name(local)
    }

    /// The `rdfs:label` of a global entity, if set.
    pub fn label(&self, e: EntityId) -> Option<&str> {
        let (shard, local) = self.home(e);
        shard.graph.label(local)
    }

    /// Display name (label, else name with underscores as spaces).
    pub fn display_name(&self, e: EntityId) -> String {
        let (shard, local) = self.home(e);
        shard.graph.display_name(local)
    }

    /// Redirect/disambiguation aliases of a global entity.
    pub fn aliases(&self, e: EntityId) -> &[String] {
        let (shard, local) = self.home(e);
        shard.graph.aliases(local)
    }

    /// Literal statements of a global entity.
    pub fn literals(&self, e: EntityId) -> impl Iterator<Item = (PredicateId, &Literal)> + '_ {
        let (shard, local) = self.home(e);
        shard.graph.literals(local)
    }

    /// Resolve a predicate by name.
    pub fn predicate(&self, name: &str) -> Option<PredicateId> {
        self.dict().predicate(name)
    }

    /// The name of a predicate.
    pub fn predicate_name(&self, p: PredicateId) -> &str {
        self.dict().predicate_name(p)
    }

    /// Resolve a type by name.
    pub fn type_id(&self, name: &str) -> Option<TypeId> {
        self.dict().type_id(name)
    }

    /// The name of a type.
    pub fn type_name(&self, t: TypeId) -> &str {
        self.dict().type_name(t)
    }

    /// Resolve a category by name.
    pub fn category_id(&self, name: &str) -> Option<CategoryId> {
        self.dict().category_id(name)
    }

    /// The name of a category.
    pub fn category_name(&self, c: CategoryId) -> &str {
        self.dict().category_name(c)
    }

    /// Types of a global entity (type ids are global in every shard).
    pub fn types_of(&self, e: EntityId) -> impl Iterator<Item = TypeId> + '_ {
        let (shard, local) = self.home(e);
        shard.graph.types_of(local)
    }

    /// Categories of a global entity.
    pub fn categories_of(&self, e: EntityId) -> impl Iterator<Item = CategoryId> + '_ {
        let (shard, local) = self.home(e);
        shard.graph.categories_of(local)
    }

    /// Whether global entity `e` has type `t`.
    pub fn has_type(&self, e: EntityId, t: TypeId) -> bool {
        let (shard, local) = self.home(e);
        shard.graph.has_type(local, t)
    }

    /// Whether global entity `e` is in category `c`.
    pub fn has_category(&self, e: EntityId, c: CategoryId) -> bool {
        let (shard, local) = self.home(e);
        shard.graph.has_category(local, c)
    }

    /// Degree of a global entity (its home shard stores every incident
    /// triple, so this equals the single-graph degree).
    pub fn degree(&self, e: EntityId) -> usize {
        let (shard, local) = self.home(e);
        shard.graph.degree(local)
    }

    /// Outgoing `(predicate, object)` pairs of a global entity, with
    /// objects remapped to global ids. Complete (home shard stores every
    /// incident triple), but ordered by the shard-local target ids.
    pub fn out_edges(&self, e: EntityId) -> Vec<(PredicateId, EntityId)> {
        let (shard, local) = self.home(e);
        shard
            .graph
            .out_edges(local)
            .map(|(p, o)| (p, shard.to_global(o)))
            .collect()
    }

    /// Incoming `(predicate, subject)` pairs of a global entity, subjects
    /// remapped to global ids.
    pub fn in_edges(&self, e: EntityId) -> Vec<(PredicateId, EntityId)> {
        let (shard, local) = self.home(e);
        shard
            .graph
            .in_edges(local)
            .map(|(p, s)| (p, shard.to_global(s)))
            .collect()
    }

    /// Global extent of type `t`: per-shard owned extents (disjoint and
    /// locally sorted) concatenated in shard order — globally sorted.
    pub fn type_extent(&self, t: TypeId) -> Vec<EntityId> {
        let mut out = Vec::with_capacity(self.type_extent_len(t));
        for shard in &self.shards {
            shard.extend_owned_global(shard.graph.type_extent(t), &mut out);
        }
        out
    }

    /// `‖E(t)‖` without materializing the extent.
    pub fn type_extent_len(&self, t: TypeId) -> usize {
        self.shards
            .iter()
            .map(|s| s.graph.type_extent(t).len())
            .sum()
    }

    /// Global extent of category `c`, sorted.
    pub fn category_extent(&self, c: CategoryId) -> Vec<EntityId> {
        let mut out = Vec::with_capacity(self.category_extent_len(c));
        for shard in &self.shards {
            shard.extend_owned_global(shard.graph.category_extent(c), &mut out);
        }
        out
    }

    /// `‖E(c)‖` without materializing the extent.
    pub fn category_extent_len(&self, c: CategoryId) -> usize {
        self.shards
            .iter()
            .map(|s| s.graph.category_extent(c).len())
            .sum()
    }

    /// Iterate every global entity id.
    pub fn entity_ids(&self) -> impl Iterator<Item = EntityId> {
        (0..self.entity_count() as u32).map(EntityId::new)
    }

    /// Iterate every type id.
    pub fn type_ids(&self) -> impl Iterator<Item = TypeId> {
        (0..self.type_count() as u32).map(TypeId::new)
    }
}

/// When is a grown [`ShardedGraph`] degenerate enough to re-partition?
///
/// Every delta batch that introduces entities appends one trailing
/// shard, so a long-lived live graph accumulates small tail shards and
/// every query's per-shard fan-out grows with them. The policy triggers
/// compaction on either axis:
///
/// - **Count**: more than `max_trailing` trailing shards — per-query
///   iteration cost, independent of how small the shards are.
/// - **Mass**: trailing shards own more than `max_tail_fraction` of all
///   entities — the uniform-range partition no longer reflects the data.
/// - **Tombstones**: retracted statements hold more than
///   `max_tombstone_fraction` of the stored rows — a retract-heavy store
///   must compact to return the dead rows' memory even if it never grew
///   a single trailing shard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionPolicy {
    /// Maximum tolerated number of trailing shards.
    pub max_trailing: usize,
    /// Maximum tolerated fraction of entities owned by trailing shards.
    pub max_tail_fraction: f64,
    /// Maximum tolerated fraction of stored rows that are tombstones
    /// (retracted but not yet reclaimed). `1.0` disables the axis.
    pub max_tombstone_fraction: f64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        Self {
            max_trailing: 8,
            max_tail_fraction: 0.1,
            max_tombstone_fraction: 0.25,
        }
    }
}

impl CompactionPolicy {
    /// Whether `sg` has degenerated past this policy's thresholds and
    /// should be re-partitioned via [`ShardedGraph::compact`].
    pub fn needs_compaction(&self, sg: &ShardedGraph) -> bool {
        let trailing = sg.trailing_shard_count();
        trailing > self.max_trailing
            || (trailing > 0 && sg.tail_owned_fraction() > self.max_tail_fraction)
            || self.tombstones_trip(sg.tombstone_count(), sg.triple_count())
    }

    /// Whether `tombstones` dead rows against `live` surviving rows trip
    /// the tombstone-mass axis. Shared with the single-layout backend so
    /// both layouts compact under the same retraction pressure.
    pub fn tombstones_trip(&self, tombstones: usize, live: usize) -> bool {
        tombstones > 0
            && (tombstones as f64) / ((live + tombstones) as f64) > self.max_tombstone_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{generate, DatagenConfig};
    use std::collections::BTreeSet;

    #[test]
    fn router_uniform_covers_the_id_space() {
        let r = ShardRouter::uniform(10, 3);
        assert_eq!(r.shard_count(), 3);
        assert_eq!(r.entity_count(), 10);
        let mut seen = 0;
        for i in 0..3 {
            seen += r.range(i).len();
        }
        assert_eq!(seen, 10);
        assert_eq!(r.shard_of(EntityId::new(0)), 0);
        assert_eq!(r.shard_of(EntityId::new(9)), 2);
        for g in 0..10u32 {
            let s = r.shard_of(EntityId::new(g));
            assert!(r.range(s).contains(&g));
        }
    }

    #[test]
    fn router_tolerates_more_shards_than_entities() {
        let r = ShardRouter::uniform(2, 5);
        assert_eq!(r.shard_count(), 5);
        assert_eq!(r.range(0).len() + r.range(1).len(), 2);
        for i in 2..5 {
            assert!(r.range(i).is_empty(), "trailing shards are empty");
        }
    }

    #[test]
    fn router_zero_entities() {
        let r = ShardRouter::uniform(0, 4);
        assert_eq!(r.shard_count(), 4);
        assert_eq!(r.entity_count(), 0);
        for i in 0..4 {
            assert!(r.range(i).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "outside the routed id space")]
    fn router_rejects_out_of_space_ids() {
        ShardRouter::uniform(3, 2).shard_of(EntityId::new(3));
    }

    fn all_triples(kg: &KnowledgeGraph) -> BTreeSet<(EntityId, PredicateId, EntityId)> {
        kg.entity_triples()
            .map(|t| (t.subject, t.predicate, t.object.as_entity().unwrap()))
            .collect()
    }

    #[test]
    fn shards_reconstruct_the_source_graph() {
        let kg = generate(&DatagenConfig::tiny());
        for n in [1, 2, 3, 4] {
            let sg = ShardedGraph::from_graph(&kg, n);
            assert_eq!(sg.shard_count(), n);
            assert_eq!(sg.entity_count(), kg.entity_count());
            assert_eq!(sg.relation_count(), kg.relation_count());
            // union of remapped shard triples = source triples
            let mut got: BTreeSet<(EntityId, PredicateId, EntityId)> = BTreeSet::new();
            for shard in sg.shards() {
                for t in shard.graph().entity_triples() {
                    got.insert((
                        shard.to_global(t.subject),
                        t.predicate,
                        shard.to_global(t.object.as_entity().unwrap()),
                    ));
                }
            }
            assert_eq!(got, all_triples(&kg), "n={n}");
        }
    }

    #[test]
    fn ghosts_carry_labels_from_construction_and_appends() {
        // construction: every ghost's label must equal the source label
        let kg = generate(&DatagenConfig::tiny());
        let sg = ShardedGraph::from_graph(&kg, 3);
        for shard in sg.shards() {
            for local in shard.graph().entity_ids() {
                let global = shard.to_global(local);
                assert_eq!(
                    shard.graph().label(local),
                    kg.label(global),
                    "label of {} (owned={})",
                    kg.entity_name(global),
                    shard.is_owned(local)
                );
            }
        }

        // appends: a delta that (a) references an existing labelled
        // entity cross-shard, (b) creates a labelled entity that ghosts
        // into an old shard, and (c) relabels an existing entity that
        // has ghost copies
        let mut sg = sg;
        let e0 = EntityId::new(0);
        let last = EntityId::new(kg.entity_count() as u32 - 1);
        let mut d = DeltaBatch::new();
        d.triple("Brand_New_Node", "linksTo", kg.entity_name(e0).to_owned())
            .triple("Brand_New_Node", "linksTo", kg.entity_name(last).to_owned())
            // a cross-shard triple between two pre-existing entities mints
            // fresh ghosts in old shards, which must copy the current label
            .triple(
                kg.entity_name(e0).to_owned(),
                "linksTo",
                kg.entity_name(last).to_owned(),
            )
            .label("Brand_New_Node", "A Very Fresh Label")
            .label(kg.entity_name(e0).to_owned(), "Renamed Zero");
        sg.apply(&d);
        let mut union = kg.clone();
        union.apply(&d);
        for shard in sg.shards() {
            for local in shard.graph().entity_ids() {
                let global = shard.to_global(local);
                assert_eq!(
                    shard.graph().label(local),
                    union.label(global),
                    "post-append label of {} (owned={})",
                    union.entity_name(global),
                    shard.is_owned(local)
                );
            }
        }
    }

    #[test]
    fn dictionaries_are_replicated_in_global_order() {
        let kg = generate(&DatagenConfig::tiny());
        let sg = ShardedGraph::from_graph(&kg, 3);
        for shard in sg.shards() {
            for p in kg.predicate_ids() {
                assert_eq!(shard.graph().predicate_name(p), kg.predicate_name(p));
            }
            for t in kg.type_ids() {
                assert_eq!(shard.graph().type_name(t), kg.type_name(t));
            }
            for c in kg.category_ids() {
                assert_eq!(shard.graph().category_name(c), kg.category_name(c));
            }
        }
    }

    #[test]
    fn home_shard_has_complete_rows_and_facets() {
        let kg = generate(&DatagenConfig::tiny());
        let sg = ShardedGraph::from_graph(&kg, 4);
        for e in kg.entity_ids() {
            assert_eq!(sg.entity_name(e), kg.entity_name(e));
            assert_eq!(sg.label(e), kg.label(e));
            assert_eq!(
                sg.degree(e),
                kg.degree(e),
                "degree of {}",
                kg.entity_name(e)
            );
            assert_eq!(sg.aliases(e), kg.aliases(e));
            let mut got: Vec<_> = sg.out_edges(e);
            let mut want: Vec<_> = kg.out_edges(e).collect();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want);
            let got_types: Vec<TypeId> = sg.types_of(e).collect();
            let want_types: Vec<TypeId> = kg.types_of(e).collect();
            assert_eq!(got_types, want_types, "type ids must be global");
            let got_cats: Vec<CategoryId> = sg.categories_of(e).collect();
            let want_cats: Vec<CategoryId> = kg.categories_of(e).collect();
            assert_eq!(got_cats, want_cats);
            assert_eq!(sg.literals(e).count(), kg.literals(e).count());
        }
    }

    #[test]
    fn global_extents_match_and_stay_sorted() {
        let kg = generate(&DatagenConfig::tiny());
        for n in [1, 2, 5] {
            let sg = ShardedGraph::from_graph(&kg, n);
            for t in kg.type_ids() {
                let ext = sg.type_extent(t);
                assert_eq!(ext, kg.type_extent(t).to_vec(), "type extent n={n}");
                assert_eq!(sg.type_extent_len(t), ext.len());
            }
            for c in kg.category_ids() {
                assert_eq!(sg.category_extent(c), kg.category_extent(c).to_vec());
            }
        }
    }

    #[test]
    fn owned_prefix_invariant_holds_for_feature_extents() {
        // every per-shard extent slice (CSR run) has its owned members as
        // a prefix, and summed owned prefixes equal the global extent
        let kg = generate(&DatagenConfig::tiny());
        let sg = ShardedGraph::from_graph(&kg, 3);
        for e in kg.entity_ids() {
            for p in kg.out_predicates(e) {
                let global_len = kg.objects(e, p).len();
                let mut sum = 0;
                for shard in sg.shards() {
                    if let Some(local) = shard.to_local(e) {
                        let extent = shard.graph().objects(local, p);
                        let k = shard.owned_prefix_len(extent);
                        assert!(
                            extent[..k].iter().all(|&x| shard.is_owned(x))
                                && extent[k..].iter().all(|&x| !shard.is_owned(x)),
                            "owned members must form a prefix"
                        );
                        sum += k;
                    }
                }
                assert_eq!(sum, global_len, "entity {} pred {}", e, p);
            }
        }
    }

    #[test]
    fn local_global_roundtrip() {
        let kg = generate(&DatagenConfig::tiny());
        let sg = ShardedGraph::from_graph(&kg, 4);
        for e in kg.entity_ids() {
            let (shard, local) = sg.home(e);
            assert!(shard.is_owned(local));
            assert_eq!(shard.to_global(local), e);
            assert_eq!(shard.to_local(e), Some(local));
        }
        // ghosts roundtrip too
        for shard in sg.shards() {
            for local_raw in 0..shard.graph().entity_count() as u32 {
                let local = EntityId::new(local_raw);
                let g = shard.to_global(local);
                assert_eq!(shard.to_local(g), Some(local));
            }
        }
    }

    #[test]
    fn compaction_policy_edge_cases() {
        let kg = generate(&DatagenConfig::tiny());
        let fresh = ShardedGraph::from_graph(&kg, 2);
        let n0 = kg.entity_name(EntityId::new(0)).to_owned();

        // zero trailing shards: no policy — however aggressive — fires
        for policy in [
            CompactionPolicy {
                max_trailing: 0,
                max_tail_fraction: 0.0,
                max_tombstone_fraction: 0.0,
            },
            CompactionPolicy::default(),
        ] {
            assert!(
                !policy.needs_compaction(&fresh),
                "a fresh partition must never need compaction ({policy:?})"
            );
        }

        // max_trailing == 0: a single trailing shard trips the count axis
        // even when the tail-mass axis is disabled
        let mut grown = fresh.clone();
        let mut d = DeltaBatch::new();
        d.triple("Policy_Edge_Entity", "policy_pred", &n0);
        grown.apply(&d);
        assert_eq!(grown.trailing_shard_count(), 1);
        let count_only = CompactionPolicy {
            max_trailing: 0,
            max_tail_fraction: 1.0,
            max_tombstone_fraction: 1.0,
        };
        assert!(count_only.needs_compaction(&grown));

        // max_tail_fraction == 0.0: any positive tail mass trips the mass
        // axis even when the count axis tolerates the tail
        let mass_only = CompactionPolicy {
            max_trailing: usize::MAX,
            max_tail_fraction: 0.0,
            max_tombstone_fraction: 1.0,
        };
        assert!(grown.tail_owned_fraction() > 0.0);
        assert!(mass_only.needs_compaction(&grown));

        // a trailing shard owning *zero* entities (facet-only delta on
        // existing entities never appends one, so force the edge with an
        // empty-range trailing shard via a no-new-entity apply) — the
        // mass axis must not fire on an all-ghost tail
        let mut facet_only = fresh.clone();
        let mut d2 = DeltaBatch::new();
        d2.typed(&n0, "Policy_Edge_Type");
        facet_only.apply(&d2);
        assert_eq!(
            facet_only.trailing_shard_count(),
            0,
            "facet-only deltas must not mint trailing shards"
        );
        assert!(!mass_only.needs_compaction(&facet_only));
        assert_eq!(facet_only.tail_owned_fraction(), 0.0);
    }

    #[test]
    fn empty_shards_are_valid() {
        let kg = generate(&DatagenConfig::tiny());
        let n = kg.entity_count() + 3; // guarantees empty trailing shards
        let sg = ShardedGraph::from_graph(&kg, n);
        assert!(sg.shards().iter().any(|s| s.owned_count() == 0));
        for t in kg.type_ids() {
            assert_eq!(sg.type_extent(t), kg.type_extent(t).to_vec());
        }
    }

    mod apply {
        use super::*;
        use crate::delta::DeltaBatch;

        fn delta(kg: &KnowledgeGraph) -> DeltaBatch {
            let n0 = kg.entity_name(EntityId::new(0)).to_owned();
            let n1 = kg.entity_name(EntityId::new(1)).to_owned();
            let last = kg
                .entity_name(EntityId::new(kg.entity_count() as u32 - 1))
                .to_owned();
            let mut d = DeltaBatch::new();
            d.triple(&n0, "collaborated_with", &n1)
                .triple("Fresh_Entity_A", "collaborated_with", &n0)
                .triple("Fresh_Entity_A", "collaborated_with", "Fresh_Entity_B")
                .triple(&last, "collaborated_with", "Fresh_Entity_B")
                .typed("Fresh_Entity_A", "Film")
                .typed(&n0, "Freshly_Minted_Type")
                .categorized("Fresh_Entity_B", "Fresh category")
                .label("Fresh_Entity_A", "Fresh Entity A")
                .literal("Fresh_Entity_A", "runtime", Literal::integer(99))
                .redirect("FreshA", "Fresh_Entity_A");
            d
        }

        #[test]
        fn sharded_apply_matches_single_graph_apply() {
            let mut single = generate(&DatagenConfig::tiny());
            let d = delta(&single);
            let receipt_single = single.apply(&d);

            for n in [1, 2, 3, 4] {
                let base = generate(&DatagenConfig::tiny());
                let mut sg = ShardedGraph::from_graph(&base, n);
                let receipt = sg.apply(&d);

                // identical receipts (modulo the work counter)
                assert_eq!(receipt.new_entities, receipt_single.new_entities, "n={n}");
                assert_eq!(receipt.touched_out, receipt_single.touched_out, "n={n}");
                assert_eq!(receipt.touched_in, receipt_single.touched_in, "n={n}");
                assert_eq!(receipt.touched_types, receipt_single.touched_types);
                assert_eq!(
                    receipt.touched_categories,
                    receipt_single.touched_categories
                );
                assert_eq!(receipt.added_relations, receipt_single.added_relations);
                assert_eq!(receipt.added_literals, receipt_single.added_literals);

                // identical logical graph
                assert_eq!(sg.entity_count(), single.entity_count(), "n={n}");
                assert_eq!(sg.relation_count(), single.relation_count());
                assert_eq!(sg.triple_count(), single.triple_count());
                assert_eq!(sg.predicate_count(), single.predicate_count());
                assert_eq!(sg.type_count(), single.type_count());
                assert_eq!(sg.category_count(), single.category_count());
                let mut got: BTreeSet<(EntityId, PredicateId, EntityId)> = BTreeSet::new();
                for shard in sg.shards() {
                    for t in shard.graph().entity_triples() {
                        got.insert((
                            shard.to_global(t.subject),
                            t.predicate,
                            shard.to_global(t.object.as_entity().unwrap()),
                        ));
                    }
                }
                assert_eq!(got, all_triples(&single), "n={n}");
                for e in single.entity_ids() {
                    assert_eq!(sg.entity_name(e), single.entity_name(e));
                    assert_eq!(sg.label(e), single.label(e));
                    assert_eq!(sg.degree(e), single.degree(e), "degree n={n} e={e}");
                    assert_eq!(sg.aliases(e), single.aliases(e));
                    let st: Vec<TypeId> = sg.types_of(e).collect();
                    let kt: Vec<TypeId> = single.types_of(e).collect();
                    assert_eq!(st, kt);
                    assert_eq!(sg.literals(e).count(), single.literals(e).count());
                }
                for t in single.type_ids() {
                    assert_eq!(sg.type_extent(t), single.type_extent(t).to_vec());
                }
                for c in single.category_ids() {
                    assert_eq!(sg.category_extent(c), single.category_extent(c).to_vec());
                }
                // dictionaries still replicated in every shard
                for shard in sg.shards() {
                    for p in single.predicate_ids() {
                        assert_eq!(shard.graph().predicate_name(p), single.predicate_name(p));
                    }
                    for t in single.type_ids() {
                        assert_eq!(shard.graph().type_name(t), single.type_name(t));
                    }
                }
                // remap invariants hold on every shard, including the
                // appended one
                for shard in sg.shards() {
                    for local_raw in 0..shard.graph().entity_count() as u32 {
                        let local = EntityId::new(local_raw);
                        let g = shard.to_global(local);
                        assert_eq!(shard.to_local(g), Some(local), "roundtrip n={n}");
                    }
                }
                for e in single.entity_ids() {
                    for p in single.out_predicates(e) {
                        let mut sum = 0;
                        for shard in sg.shards() {
                            if let Some(local) = shard.to_local(e) {
                                let extent = shard.graph().objects(local, p);
                                let k = shard.owned_prefix_len(extent);
                                assert!(
                                    extent[..k].iter().all(|&x| shard.is_owned(x))
                                        && extent[k..].iter().all(|&x| !shard.is_owned(x)),
                                    "owned-prefix invariant broken after apply (n={n})"
                                );
                                sum += k;
                            }
                        }
                        assert_eq!(sum, single.objects(e, p).len(), "n={n} e={e} p={p}");
                    }
                }
            }
        }

        /// Retract-polarity twin of
        /// [`sharded_apply_matches_single_graph_apply`]: a mixed retract
        /// batch — cross-shard triple, facets, label, alias, literal, an
        /// in-batch duplicate, and unknown names — produces the identical
        /// receipt and the identical logical graph at every shard count.
        #[test]
        fn sharded_retract_matches_single_graph_retract() {
            let mut single = generate(&DatagenConfig::tiny());
            let grow = delta(&single);
            single.apply(&grow);
            let n0 = single.entity_name(EntityId::new(0)).to_owned();
            let n1 = single.entity_name(EntityId::new(1)).to_owned();
            let mut d = DeltaBatch::new();
            d.retract_triple(&n0, "collaborated_with", &n1)
                .retract_triple("Fresh_Entity_A", "collaborated_with", "Fresh_Entity_B")
                .retract_triple(&n0, "collaborated_with", &n1) // duplicate
                .retract_typed("Fresh_Entity_A", "Film")
                .retract_categorized("Fresh_Entity_B", "Fresh category")
                .retract_label("Fresh_Entity_A", "Fresh Entity A")
                .retract_alias("FreshA", "Fresh_Entity_A")
                .retract_literal("Fresh_Entity_A", "runtime", Literal::integer(99))
                .retract_triple("No_Such_Entity", "collaborated_with", &n0)
                .retract_typed(&n0, "No_Such_Type");
            let receipt_single = single.apply(&d);
            assert_eq!(receipt_single.removed_relations, 2);

            for n in [1, 2, 3, 4] {
                let base = generate(&DatagenConfig::tiny());
                let mut sg = ShardedGraph::from_graph(&base, n);
                sg.apply(&grow);
                let receipt = sg.apply(&d);

                assert_eq!(receipt.new_entities, receipt_single.new_entities, "n={n}");
                assert_eq!(receipt.touched_out, receipt_single.touched_out, "n={n}");
                assert_eq!(receipt.touched_in, receipt_single.touched_in, "n={n}");
                assert_eq!(receipt.touched_types, receipt_single.touched_types);
                assert_eq!(
                    receipt.touched_categories,
                    receipt_single.touched_categories
                );
                assert_eq!(receipt.removed_relations, receipt_single.removed_relations);
                assert_eq!(receipt.removed_literals, receipt_single.removed_literals);
                assert_eq!(
                    receipt.removed_assertions,
                    receipt_single.removed_assertions
                );
                assert_eq!(receipt.generation, receipt_single.generation);

                assert_eq!(sg.entity_count(), single.entity_count(), "n={n}");
                assert_eq!(sg.relation_count(), single.relation_count());
                assert_eq!(sg.triple_count(), single.triple_count());
                let mut got: BTreeSet<(EntityId, PredicateId, EntityId)> = BTreeSet::new();
                for shard in sg.shards() {
                    for t in shard.graph().entity_triples() {
                        got.insert((
                            shard.to_global(t.subject),
                            t.predicate,
                            shard.to_global(t.object.as_entity().unwrap()),
                        ));
                    }
                }
                assert_eq!(got, all_triples(&single), "n={n}");
                for e in single.entity_ids() {
                    assert_eq!(sg.label(e), single.label(e));
                    assert_eq!(sg.degree(e), single.degree(e), "degree n={n} e={e}");
                    assert_eq!(sg.aliases(e), single.aliases(e));
                    let st: Vec<TypeId> = sg.types_of(e).collect();
                    let kt: Vec<TypeId> = single.types_of(e).collect();
                    assert_eq!(st, kt);
                    assert_eq!(sg.literals(e).count(), single.literals(e).count());
                }
                for t in single.type_ids() {
                    assert_eq!(sg.type_extent(t), single.type_extent(t).to_vec());
                }
                for c in single.category_ids() {
                    assert_eq!(sg.category_extent(c), single.category_extent(c).to_vec());
                }
                assert!(sg.tombstone_count() > 0, "n={n}");
                // compaction reclaims every tombstone without changing
                // the logical graph
                let compacted = sg.compact(n);
                assert_eq!(compacted.tombstone_count(), 0, "n={n}");
                assert_eq!(compacted.relation_count(), single.relation_count());
                assert_eq!(compacted.triple_count(), single.triple_count());
            }
        }

        /// A retract-only workload on a store that never grew a trailing
        /// shard must still trip the policy once the tombstone fraction
        /// passes the threshold (the satellite bugfix: dead rows count
        /// toward compaction pressure).
        #[test]
        fn retract_only_workload_trips_the_policy() {
            let kg = generate(&DatagenConfig::tiny());
            let mut sg = ShardedGraph::from_graph(&kg, 2);
            let policy = CompactionPolicy::default();
            assert!(!policy.needs_compaction(&sg));

            // retract edges until >25% of stored rows are dead
            let mut d = DeltaBatch::new();
            let victims: Vec<_> = kg
                .entity_triples()
                .take(kg.triple_count() / 3 + 1)
                .collect();
            for t in &victims {
                d.retract_triple(
                    kg.entity_name(t.subject),
                    kg.predicate_name(t.predicate),
                    kg.entity_name(t.object.as_entity().unwrap()),
                );
            }
            sg.apply(&d);
            assert_eq!(sg.trailing_shard_count(), 0, "retracts mint no shards");
            assert!(sg.tombstone_count() >= victims.len());
            assert!(
                policy.needs_compaction(&sg),
                "tombstone mass must trip the default policy"
            );
            let compacted = sg.compact(2);
            assert_eq!(compacted.tombstone_count(), 0);
            assert!(!policy.needs_compaction(&compacted));
        }

        #[test]
        fn ghost_lookup_stays_sorted_under_out_of_order_interning() {
            // deltas intern ghosts in delta-op order, which is arbitrary
            // in global-id space; the lookup vector must stay sorted on
            // insert so GraphShard::to_local stays a binary search
            let base = generate(&DatagenConfig::tiny());
            let mut sg = ShardedGraph::from_graph(&base, 2);
            let n0 = base.entity_count() as u32;
            // apply 1: mint four fresh entities (a trailing shard owning
            // globals n0..n0+4, guaranteed unknown to shards 0 and 1)
            let mut d1 = DeltaBatch::new();
            for i in 0..4 {
                d1.entity(format!("Fresh_Ghost_{i}"));
            }
            sg.apply(&d1);
            // apply 2: wire them to shard-0-owned objects with subjects
            // in shuffled global order — shard 0 interns the four ghosts
            // as n0+3, n0+1, n0, n0+2 and must sorted-insert each
            let ghosts_before = sg.shard(0).ghost_lookup.len();
            let mut d2 = DeltaBatch::new();
            for (i, fresh) in [3u32, 1, 0, 2].into_iter().enumerate() {
                let o = base.entity_name(EntityId::new(i as u32)).to_owned();
                d2.triple(format!("Fresh_Ghost_{fresh}"), "p_ghostly", o);
            }
            sg.apply(&d2);

            assert_eq!(
                sg.shard(0).ghost_lookup.len(),
                ghosts_before + 4,
                "shard 0 must have interned the four appended ghosts"
            );
            for (i, shard) in sg.shards().iter().enumerate() {
                assert!(
                    shard.ghost_lookup.windows(2).all(|w| w[0].0 < w[1].0),
                    "shard {i}: ghost_lookup must stay strictly sorted by global id"
                );
                // binary-search lookup round-trips every interned local
                for raw in 0..shard.graph().entity_count() as u32 {
                    let local = EntityId::new(raw);
                    let g = shard.to_global(local);
                    assert_eq!(shard.to_local(g), Some(local), "shard {i}");
                }
            }
            // every out-of-order edge landed and is reachable globally
            let p = sg.predicate("p_ghostly").unwrap();
            for (i, fresh) in [3u32, 1, 0, 2].into_iter().enumerate() {
                let s = EntityId::new(n0 + fresh);
                assert_eq!(sg.entity(&format!("Fresh_Ghost_{fresh}")), Some(s));
                let o = EntityId::new(i as u32);
                assert!(sg.out_edges(s).contains(&(p, o)), "edge {i} lost");
            }
        }

        #[test]
        fn repeated_appends_accumulate() {
            let base = generate(&DatagenConfig::tiny());
            let mut sg = ShardedGraph::from_graph(&base, 2);
            let shard_count_before = sg.shard_count();
            let mut d1 = DeltaBatch::new();
            d1.triple("x1", "p_new", "x2");
            let r1 = sg.apply(&d1);
            assert_eq!(sg.generation(), 1);
            assert_eq!(r1.new_entities.len(), 2);
            assert_eq!(sg.shard_count(), shard_count_before + 1);
            let x1 = sg.entity("x1").expect("appended entity routable");
            assert_eq!(sg.degree(x1), 1);
            // second delta connects an appended entity to an old one
            let old = base.entity_name(EntityId::new(0)).to_owned();
            let mut d2 = DeltaBatch::new();
            d2.triple("x1", "p_new", &old);
            let r2 = sg.apply(&d2);
            assert_eq!(sg.generation(), 2);
            assert!(r2.new_entities.is_empty());
            assert_eq!(sg.degree(x1), 2);
            let p = sg.predicate("p_new").unwrap();
            let out = sg.out_edges(x1);
            assert_eq!(out.len(), 2);
            assert!(out.iter().all(|&(q, _)| q == p));
        }
    }

    mod compaction {
        use super::*;
        use crate::delta::DeltaBatch;
        use crate::ntriples;

        /// Grow a 2-shard graph by three entity-minting deltas.
        fn grown() -> (KnowledgeGraph, ShardedGraph, Vec<DeltaBatch>) {
            let base = generate(&DatagenConfig::tiny());
            let mut sg = ShardedGraph::from_graph(&base, 2);
            let mut deltas = Vec::new();
            for i in 0..3 {
                let old = base.entity_name(EntityId::new(i)).to_owned();
                let mut d = DeltaBatch::new();
                d.triple(format!("Grown_{i}"), "grew_from", &old)
                    .typed(format!("Grown_{i}"), "Film")
                    .label(format!("Grown_{i}"), format!("Grown {i}"));
                sg.apply(&d);
                deltas.push(d);
            }
            (base, sg, deltas)
        }

        #[test]
        fn to_graph_rebuilds_the_logical_union_id_identically() {
            let (base, sg, deltas) = grown();
            let union = {
                let mut kg = base;
                for d in &deltas {
                    kg.apply(d);
                }
                kg
            };
            let rebuilt = sg.to_graph();
            assert_eq!(rebuilt.entity_count(), union.entity_count());
            assert_eq!(rebuilt.relation_count(), union.relation_count());
            assert_eq!(rebuilt.triple_count(), union.triple_count());
            // the N-Triples serialization is a full logical fingerprint
            assert_eq!(ntriples::serialize(&rebuilt), ntriples::serialize(&union));
            // and ids are preserved, not just names
            for e in union.entity_ids() {
                assert_eq!(rebuilt.entity_name(e), union.entity_name(e));
            }
            for p in union.predicate_ids() {
                assert_eq!(rebuilt.predicate_name(p), union.predicate_name(p));
            }
        }

        #[test]
        fn compact_repartitions_without_changing_answers() {
            let (base, sg, deltas) = grown();
            assert_eq!(sg.trailing_shard_count(), 3);
            assert_eq!(sg.generation(), 3);
            let union = {
                let mut kg = base;
                for d in &deltas {
                    kg.apply(d);
                }
                kg
            };
            for target in [1usize, 2, 3, 4] {
                let compacted = sg.compact(target);
                assert_eq!(compacted.shard_count(), target);
                assert_eq!(compacted.trailing_shard_count(), 0);
                assert_eq!(compacted.generation(), 4, "new generation stamp");
                assert_eq!(compacted.entity_count(), union.entity_count());
                assert_eq!(compacted.relation_count(), union.relation_count());
                assert_eq!(compacted.triple_count(), union.triple_count());
                let mut got: BTreeSet<(EntityId, PredicateId, EntityId)> = BTreeSet::new();
                for shard in compacted.shards() {
                    for t in shard.graph().entity_triples() {
                        got.insert((
                            shard.to_global(t.subject),
                            t.predicate,
                            shard.to_global(t.object.as_entity().unwrap()),
                        ));
                    }
                }
                assert_eq!(got, all_triples(&union), "target={target}");
                for t in union.type_ids() {
                    assert_eq!(compacted.type_extent(t), union.type_extent(t).to_vec());
                }
                for e in union.entity_ids() {
                    assert_eq!(compacted.degree(e), union.degree(e));
                    assert_eq!(compacted.label(e), union.label(e));
                }
            }
        }

        #[test]
        fn compacted_graph_keeps_accepting_deltas() {
            let (_, sg, _) = grown();
            let mut compacted = sg.compact(2);
            let mut d = DeltaBatch::new();
            d.triple("Post_Compact", "grew_from", "Grown_0");
            compacted.apply(&d);
            assert_eq!(compacted.generation(), 5);
            assert_eq!(compacted.trailing_shard_count(), 1);
            let e = compacted.entity("Post_Compact").unwrap();
            assert_eq!(compacted.degree(e), 1);
        }

        #[test]
        fn policy_triggers_on_count_or_mass() {
            let (_, sg, _) = grown();
            // 3 trailing shards, each owning 1 of ~hundreds of entities
            let by_count = CompactionPolicy {
                max_trailing: 2,
                max_tail_fraction: 1.0,
                max_tombstone_fraction: 1.0,
            };
            assert!(by_count.needs_compaction(&sg));
            let by_mass = CompactionPolicy {
                max_trailing: usize::MAX,
                max_tail_fraction: 0.0,
                max_tombstone_fraction: 1.0,
            };
            assert!(by_mass.needs_compaction(&sg));
            let tolerant = CompactionPolicy {
                max_trailing: 8,
                max_tail_fraction: 0.5,
                max_tombstone_fraction: 1.0,
            };
            assert!(!tolerant.needs_compaction(&sg));
            // a fresh partition never needs compaction
            assert!(!CompactionPolicy::default().needs_compaction(&sg.compact(2)));
        }
    }

    #[test]
    fn entity_lookup_by_name() {
        let kg = generate(&DatagenConfig::tiny());
        let sg = ShardedGraph::from_graph(&kg, 3);
        for e in kg.entity_ids().take(50) {
            assert_eq!(sg.entity(kg.entity_name(e)), Some(e));
        }
        assert_eq!(sg.entity("no_such_entity_name"), None);
    }
}

//! Range-sharded knowledge graphs.
//!
//! [`ShardedGraph`] partitions a [`KnowledgeGraph`] by **entity-id range**
//! into `N` independent [`KnowledgeGraph`] shards so that query layers can
//! fan work out per shard and merge bounded top-k results — the seam for
//! graphs larger than one machine's memory. The partitioning is chosen so
//! that the ranking model's set algebra decomposes *exactly*:
//!
//! - A [`ShardRouter`] maps every global [`EntityId`] to the shard that
//!   **owns** it (contiguous ranges, so routing is a binary search over
//!   `N+1` cut points).
//! - Each shard stores every triple **incident to an owned entity** (a
//!   triple whose endpoints live in two shards is stored in both). The
//!   non-owned endpoints interned into a shard are its *ghosts*.
//! - Shard-local entity ids are remapped densely: owned entities first, in
//!   ascending global order (`local = global − range.start`), then ghosts
//!   in ascending global order. Two invariants follow that the execution
//!   layer (`pivote-core`) relies on:
//!   1. **Owned prefix**: in any sorted local-id extent slice, the owned
//!      members form a prefix (`local < owned_count`), so
//!      `‖E(π) ∩ range_i‖` is one `partition_point`.
//!   2. **Order preservation**: among owned locals, local order equals
//!      global order, so per-shard owned extents remapped to global ids
//!      and concatenated in shard order are globally sorted.
//! - Types, categories, labels, aliases and literals are stored **only**
//!   in the owning shard, so context extents (`E(c)`, `E(t)`) are
//!   disjoint across shards and global counts are plain sums.
//! - Predicate, type and category dictionaries are replicated into every
//!   shard in global id order, so those dense ids are **identical** in
//!   every shard and in the source graph.
//!
//! Together these give the exact decompositions
//! `‖E(π)‖ = Σᵢ ‖Eᵢ(π) ∩ rangeᵢ‖` and
//! `‖E(π) ∩ E(c)‖ = Σᵢ ‖Eᵢ(π) ∩ Eᵢ(c)‖` (integer sums — no floating
//! error), which is what makes sharded rankings bit-identical to
//! single-graph rankings.

use crate::id::{CategoryId, EntityId, PredicateId, TypeId};
use crate::store::{KgBuilder, KnowledgeGraph};
use crate::triple::Literal;

/// Shard counts for a test/benchmark matrix, from the `PIVOTE_SHARDS`
/// environment variable (comma-separated, e.g. `PIVOTE_SHARDS=1,4`), or
/// `default` when unset/unparsable. This is the hook the CI sharded
/// matrix uses to run one suite per shard configuration.
pub fn shard_counts_from_env(default: &[usize]) -> Vec<usize> {
    match std::env::var("PIVOTE_SHARDS") {
        Ok(v) => {
            let parsed: Vec<usize> = v
                .split(',')
                .filter_map(|s| s.trim().parse().ok())
                .filter(|&n| n >= 1)
                .collect();
            if parsed.is_empty() {
                default.to_vec()
            } else {
                parsed
            }
        }
        Err(_) => default.to_vec(),
    }
}

/// Maps global entity ids to shards by contiguous id range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRouter {
    /// `cuts[i]..cuts[i+1]` is the global-id range owned by shard `i`.
    cuts: Vec<u32>,
}

impl ShardRouter {
    /// Uniform ranges: `shards` shards of (up to) `ceil(count/shards)`
    /// entities each. Trailing shards may be empty when `shards` exceeds
    /// the entity count — query layers must tolerate empty shards.
    pub fn uniform(entity_count: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let count = entity_count as u32;
        let chunk = (entity_count.div_ceil(shards)).max(1) as u32;
        let cuts = (0..=shards)
            .map(|i| (i as u32).saturating_mul(chunk).min(count))
            .collect();
        Self { cuts }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.cuts.len() - 1
    }

    /// The shard owning `e`.
    ///
    /// # Panics
    /// If `e` is outside the routed id space.
    pub fn shard_of(&self, e: EntityId) -> usize {
        assert!(
            e.raw() < *self.cuts.last().expect("router has cut points"),
            "entity {e} outside the routed id space"
        );
        self.cuts.partition_point(|&c| c <= e.raw()) - 1
    }

    /// The global-id range owned by shard `i`.
    pub fn range(&self, i: usize) -> std::ops::Range<u32> {
        self.cuts[i]..self.cuts[i + 1]
    }

    /// Total number of routed entities.
    pub fn entity_count(&self) -> usize {
        *self.cuts.last().expect("router has cut points") as usize
    }
}

/// One shard: a self-contained [`KnowledgeGraph`] over the owned entity
/// range plus ghost copies of cross-shard neighbours, with the local ↔
/// global id remap table.
#[derive(Debug)]
pub struct GraphShard {
    graph: KnowledgeGraph,
    /// Local id → global id. Owned locals (`0..owned_count`) are the
    /// shard's range in ascending order; ghost locals follow, also
    /// ascending in global id.
    local_to_global: Vec<EntityId>,
    /// First global id of the owned range (`local = global − base` for
    /// owned entities).
    base: u32,
    owned_count: usize,
}

impl GraphShard {
    /// The shard-local graph. All ids in its API are **local**.
    pub fn graph(&self) -> &KnowledgeGraph {
        &self.graph
    }

    /// Number of entities this shard owns (not counting ghosts).
    pub fn owned_count(&self) -> usize {
        self.owned_count
    }

    /// Whether a *local* id is an owned entity (vs a ghost).
    #[inline]
    pub fn is_owned(&self, local: EntityId) -> bool {
        local.index() < self.owned_count
    }

    /// Map a local id back to the global id space.
    #[inline]
    pub fn to_global(&self, local: EntityId) -> EntityId {
        self.local_to_global[local.index()]
    }

    /// Map a global id to this shard's local id space, if the entity is
    /// present here (owned or ghost).
    pub fn to_local(&self, global: EntityId) -> Option<EntityId> {
        let owned_end = self.base + self.owned_count as u32;
        if (self.base..owned_end).contains(&global.raw()) {
            return Some(EntityId::new(global.raw() - self.base));
        }
        self.local_to_global[self.owned_count..]
            .binary_search(&global)
            .ok()
            .map(|i| EntityId::new((self.owned_count + i) as u32))
    }

    /// Length of the owned prefix of a sorted local-id extent slice —
    /// exactly `‖E ∩ range‖` for this shard's range (invariant 1 above).
    #[inline]
    pub fn owned_prefix_len(&self, extent: &[EntityId]) -> usize {
        extent.partition_point(|&e| e.index() < self.owned_count)
    }

    /// Append the owned prefix of a sorted local extent to `out` as
    /// global ids (stays sorted — invariant 2 above).
    pub fn extend_owned_global(&self, extent: &[EntityId], out: &mut Vec<EntityId>) {
        let n = self.owned_prefix_len(extent);
        out.extend(extent[..n].iter().map(|&e| self.to_global(e)));
    }
}

/// A knowledge graph partitioned into range-owned shards.
///
/// All public accessors speak **global ids** (the id space of the source
/// graph); per-shard access via [`ShardedGraph::shard`] speaks local ids.
#[derive(Debug)]
pub struct ShardedGraph {
    router: ShardRouter,
    shards: Vec<GraphShard>,
    relation_count: usize,
    triple_count: usize,
}

impl ShardedGraph {
    /// Partition `kg` into `shards` range shards.
    ///
    /// Every global entity id is owned by exactly one shard; every triple
    /// is stored in the shard(s) owning its endpoints; dictionaries for
    /// predicates, types and categories are replicated in global order so
    /// their dense ids agree across shards.
    pub fn from_graph(kg: &KnowledgeGraph, shards: usize) -> Self {
        let router = ShardRouter::uniform(kg.entity_count(), shards);
        let n = router.shard_count();
        let mut triples: Vec<Vec<(EntityId, PredicateId, EntityId)>> = vec![Vec::new(); n];
        let mut ghosts: Vec<Vec<EntityId>> = vec![Vec::new(); n];
        for t in kg.entity_triples() {
            let o = t.object.as_entity().expect("entity triple");
            let (ss, os) = (router.shard_of(t.subject), router.shard_of(o));
            triples[ss].push((t.subject, t.predicate, o));
            if os != ss {
                triples[os].push((t.subject, t.predicate, o));
                ghosts[os].push(t.subject);
                ghosts[ss].push(o);
            }
        }

        let built = (0..n)
            .map(|i| {
                let range = router.range(i);
                let base = range.start;
                let owned_count = range.len();
                let mut b = KgBuilder::new();
                // replicate the dictionaries in global id order so dense
                // predicate/type/category ids match the source graph
                for p in kg.predicate_ids() {
                    b.predicate(kg.predicate_name(p));
                }
                for t in kg.type_ids() {
                    b.declare_type(kg.type_name(t));
                }
                for c in kg.category_ids() {
                    b.declare_category(kg.category_name(c));
                }
                // owned entities first, ascending; then ghosts, ascending
                let mut local_to_global: Vec<EntityId> = Vec::with_capacity(owned_count);
                for g in range.clone() {
                    let ge = EntityId::new(g);
                    let le = b.entity(kg.entity_name(ge));
                    debug_assert_eq!(le.raw(), g - base, "owned locals must be dense");
                    local_to_global.push(ge);
                }
                ghosts[i].sort_unstable();
                ghosts[i].dedup();
                for &ge in &ghosts[i] {
                    b.entity(kg.entity_name(ge));
                    local_to_global.push(ge);
                }
                let ghost_list = &local_to_global[owned_count..];
                let to_local = |g: EntityId| -> EntityId {
                    if range.contains(&g.raw()) {
                        EntityId::new(g.raw() - base)
                    } else {
                        let idx = ghost_list.binary_search(&g).expect("ghost interned");
                        EntityId::new((owned_count + idx) as u32)
                    }
                };
                // owned-only facets: labels, memberships, literals, aliases
                for g in range.clone() {
                    let ge = EntityId::new(g);
                    let le = EntityId::new(g - base);
                    if let Some(l) = kg.label(ge) {
                        b.label(le, l);
                    }
                    for t in kg.types_of(ge) {
                        b.typed(le, kg.type_name(t));
                    }
                    for c in kg.categories_of(ge) {
                        b.categorized(le, kg.category_name(c));
                    }
                    for (p, lit) in kg.literals(ge) {
                        b.literal_triple(le, p, lit.clone());
                    }
                    for a in kg.aliases(ge) {
                        b.redirect(a.clone(), le);
                    }
                }
                for &(s, p, o) in &triples[i] {
                    b.triple(to_local(s), p, to_local(o));
                }
                GraphShard {
                    graph: b.finish(),
                    local_to_global,
                    base,
                    owned_count,
                }
            })
            .collect();

        Self {
            router,
            shards: built,
            relation_count: kg.relation_count(),
            triple_count: kg.triple_count(),
        }
    }

    /// The entity → shard router.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// All shards, in range order.
    pub fn shards(&self) -> &[GraphShard] {
        &self.shards
    }

    /// Shard `i`.
    pub fn shard(&self, i: usize) -> &GraphShard {
        &self.shards[i]
    }

    /// The shard owning global entity `e`.
    pub fn shard_of(&self, e: EntityId) -> usize {
        self.router.shard_of(e)
    }

    /// The owning shard of `e` together with `e`'s local id there.
    pub fn home(&self, e: EntityId) -> (&GraphShard, EntityId) {
        let shard = &self.shards[self.router.shard_of(e)];
        let local = EntityId::new(e.raw() - shard.base);
        (shard, local)
    }

    // ---- global-id read API --------------------------------------------

    /// Total number of entities across all shards (ghosts not counted).
    pub fn entity_count(&self) -> usize {
        self.router.entity_count()
    }

    /// Number of distinct predicates (identical in every shard).
    pub fn predicate_count(&self) -> usize {
        self.dict().predicate_count()
    }

    /// Number of distinct types (identical in every shard).
    pub fn type_count(&self) -> usize {
        self.dict().type_count()
    }

    /// Number of distinct categories (identical in every shard).
    pub fn category_count(&self) -> usize {
        self.dict().category_count()
    }

    /// Entity-to-entity statements in the source graph (cross-shard
    /// triples counted once).
    pub fn relation_count(&self) -> usize {
        self.relation_count
    }

    /// Total statements in the source graph.
    pub fn triple_count(&self) -> usize {
        self.triple_count
    }

    /// Any shard's graph, used for the replicated dictionaries (shard 0
    /// always exists: the router clamps to ≥ 1 shard).
    fn dict(&self) -> &KnowledgeGraph {
        self.shards[0].graph()
    }

    /// Resolve an entity by name (scans shards; owned interning means the
    /// home shard always knows the name).
    pub fn entity(&self, name: &str) -> Option<EntityId> {
        self.shards
            .iter()
            .find_map(|s| s.graph.entity(name).map(|local| s.to_global(local)))
    }

    /// The canonical name of a global entity.
    pub fn entity_name(&self, e: EntityId) -> &str {
        let (shard, local) = self.home(e);
        shard.graph.entity_name(local)
    }

    /// The `rdfs:label` of a global entity, if set.
    pub fn label(&self, e: EntityId) -> Option<&str> {
        let (shard, local) = self.home(e);
        shard.graph.label(local)
    }

    /// Display name (label, else name with underscores as spaces).
    pub fn display_name(&self, e: EntityId) -> String {
        let (shard, local) = self.home(e);
        shard.graph.display_name(local)
    }

    /// Redirect/disambiguation aliases of a global entity.
    pub fn aliases(&self, e: EntityId) -> &[String] {
        let (shard, local) = self.home(e);
        shard.graph.aliases(local)
    }

    /// Literal statements of a global entity.
    pub fn literals(&self, e: EntityId) -> impl Iterator<Item = (PredicateId, &Literal)> + '_ {
        let (shard, local) = self.home(e);
        shard.graph.literals(local)
    }

    /// Resolve a predicate by name.
    pub fn predicate(&self, name: &str) -> Option<PredicateId> {
        self.dict().predicate(name)
    }

    /// The name of a predicate.
    pub fn predicate_name(&self, p: PredicateId) -> &str {
        self.dict().predicate_name(p)
    }

    /// Resolve a type by name.
    pub fn type_id(&self, name: &str) -> Option<TypeId> {
        self.dict().type_id(name)
    }

    /// The name of a type.
    pub fn type_name(&self, t: TypeId) -> &str {
        self.dict().type_name(t)
    }

    /// Resolve a category by name.
    pub fn category_id(&self, name: &str) -> Option<CategoryId> {
        self.dict().category_id(name)
    }

    /// The name of a category.
    pub fn category_name(&self, c: CategoryId) -> &str {
        self.dict().category_name(c)
    }

    /// Types of a global entity (type ids are global in every shard).
    pub fn types_of(&self, e: EntityId) -> impl Iterator<Item = TypeId> + '_ {
        let (shard, local) = self.home(e);
        shard.graph.types_of(local)
    }

    /// Categories of a global entity.
    pub fn categories_of(&self, e: EntityId) -> impl Iterator<Item = CategoryId> + '_ {
        let (shard, local) = self.home(e);
        shard.graph.categories_of(local)
    }

    /// Whether global entity `e` has type `t`.
    pub fn has_type(&self, e: EntityId, t: TypeId) -> bool {
        let (shard, local) = self.home(e);
        shard.graph.has_type(local, t)
    }

    /// Whether global entity `e` is in category `c`.
    pub fn has_category(&self, e: EntityId, c: CategoryId) -> bool {
        let (shard, local) = self.home(e);
        shard.graph.has_category(local, c)
    }

    /// Degree of a global entity (its home shard stores every incident
    /// triple, so this equals the single-graph degree).
    pub fn degree(&self, e: EntityId) -> usize {
        let (shard, local) = self.home(e);
        shard.graph.degree(local)
    }

    /// Outgoing `(predicate, object)` pairs of a global entity, with
    /// objects remapped to global ids. Complete (home shard stores every
    /// incident triple), but ordered by the shard-local target ids.
    pub fn out_edges(&self, e: EntityId) -> Vec<(PredicateId, EntityId)> {
        let (shard, local) = self.home(e);
        shard
            .graph
            .out_edges(local)
            .map(|(p, o)| (p, shard.to_global(o)))
            .collect()
    }

    /// Incoming `(predicate, subject)` pairs of a global entity, subjects
    /// remapped to global ids.
    pub fn in_edges(&self, e: EntityId) -> Vec<(PredicateId, EntityId)> {
        let (shard, local) = self.home(e);
        shard
            .graph
            .in_edges(local)
            .map(|(p, s)| (p, shard.to_global(s)))
            .collect()
    }

    /// Global extent of type `t`: per-shard owned extents (disjoint and
    /// locally sorted) concatenated in shard order — globally sorted.
    pub fn type_extent(&self, t: TypeId) -> Vec<EntityId> {
        let mut out = Vec::with_capacity(self.type_extent_len(t));
        for shard in &self.shards {
            shard.extend_owned_global(shard.graph.type_extent(t), &mut out);
        }
        out
    }

    /// `‖E(t)‖` without materializing the extent.
    pub fn type_extent_len(&self, t: TypeId) -> usize {
        self.shards
            .iter()
            .map(|s| s.graph.type_extent(t).len())
            .sum()
    }

    /// Global extent of category `c`, sorted.
    pub fn category_extent(&self, c: CategoryId) -> Vec<EntityId> {
        let mut out = Vec::with_capacity(self.category_extent_len(c));
        for shard in &self.shards {
            shard.extend_owned_global(shard.graph.category_extent(c), &mut out);
        }
        out
    }

    /// `‖E(c)‖` without materializing the extent.
    pub fn category_extent_len(&self, c: CategoryId) -> usize {
        self.shards
            .iter()
            .map(|s| s.graph.category_extent(c).len())
            .sum()
    }

    /// Iterate every global entity id.
    pub fn entity_ids(&self) -> impl Iterator<Item = EntityId> {
        (0..self.entity_count() as u32).map(EntityId::new)
    }

    /// Iterate every type id.
    pub fn type_ids(&self) -> impl Iterator<Item = TypeId> {
        (0..self.type_count() as u32).map(TypeId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{generate, DatagenConfig};
    use std::collections::BTreeSet;

    #[test]
    fn router_uniform_covers_the_id_space() {
        let r = ShardRouter::uniform(10, 3);
        assert_eq!(r.shard_count(), 3);
        assert_eq!(r.entity_count(), 10);
        let mut seen = 0;
        for i in 0..3 {
            seen += r.range(i).len();
        }
        assert_eq!(seen, 10);
        assert_eq!(r.shard_of(EntityId::new(0)), 0);
        assert_eq!(r.shard_of(EntityId::new(9)), 2);
        for g in 0..10u32 {
            let s = r.shard_of(EntityId::new(g));
            assert!(r.range(s).contains(&g));
        }
    }

    #[test]
    fn router_tolerates_more_shards_than_entities() {
        let r = ShardRouter::uniform(2, 5);
        assert_eq!(r.shard_count(), 5);
        assert_eq!(r.range(0).len() + r.range(1).len(), 2);
        for i in 2..5 {
            assert!(r.range(i).is_empty(), "trailing shards are empty");
        }
    }

    #[test]
    fn router_zero_entities() {
        let r = ShardRouter::uniform(0, 4);
        assert_eq!(r.shard_count(), 4);
        assert_eq!(r.entity_count(), 0);
        for i in 0..4 {
            assert!(r.range(i).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "outside the routed id space")]
    fn router_rejects_out_of_space_ids() {
        ShardRouter::uniform(3, 2).shard_of(EntityId::new(3));
    }

    fn all_triples(kg: &KnowledgeGraph) -> BTreeSet<(EntityId, PredicateId, EntityId)> {
        kg.entity_triples()
            .map(|t| (t.subject, t.predicate, t.object.as_entity().unwrap()))
            .collect()
    }

    #[test]
    fn shards_reconstruct_the_source_graph() {
        let kg = generate(&DatagenConfig::tiny());
        for n in [1, 2, 3, 4] {
            let sg = ShardedGraph::from_graph(&kg, n);
            assert_eq!(sg.shard_count(), n);
            assert_eq!(sg.entity_count(), kg.entity_count());
            assert_eq!(sg.relation_count(), kg.relation_count());
            // union of remapped shard triples = source triples
            let mut got: BTreeSet<(EntityId, PredicateId, EntityId)> = BTreeSet::new();
            for shard in sg.shards() {
                for t in shard.graph().entity_triples() {
                    got.insert((
                        shard.to_global(t.subject),
                        t.predicate,
                        shard.to_global(t.object.as_entity().unwrap()),
                    ));
                }
            }
            assert_eq!(got, all_triples(&kg), "n={n}");
        }
    }

    #[test]
    fn dictionaries_are_replicated_in_global_order() {
        let kg = generate(&DatagenConfig::tiny());
        let sg = ShardedGraph::from_graph(&kg, 3);
        for shard in sg.shards() {
            for p in kg.predicate_ids() {
                assert_eq!(shard.graph().predicate_name(p), kg.predicate_name(p));
            }
            for t in kg.type_ids() {
                assert_eq!(shard.graph().type_name(t), kg.type_name(t));
            }
            for c in kg.category_ids() {
                assert_eq!(shard.graph().category_name(c), kg.category_name(c));
            }
        }
    }

    #[test]
    fn home_shard_has_complete_rows_and_facets() {
        let kg = generate(&DatagenConfig::tiny());
        let sg = ShardedGraph::from_graph(&kg, 4);
        for e in kg.entity_ids() {
            assert_eq!(sg.entity_name(e), kg.entity_name(e));
            assert_eq!(sg.label(e), kg.label(e));
            assert_eq!(
                sg.degree(e),
                kg.degree(e),
                "degree of {}",
                kg.entity_name(e)
            );
            assert_eq!(sg.aliases(e), kg.aliases(e));
            let mut got: Vec<_> = sg.out_edges(e);
            let mut want: Vec<_> = kg.out_edges(e).collect();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want);
            let got_types: Vec<TypeId> = sg.types_of(e).collect();
            let want_types: Vec<TypeId> = kg.types_of(e).collect();
            assert_eq!(got_types, want_types, "type ids must be global");
            let got_cats: Vec<CategoryId> = sg.categories_of(e).collect();
            let want_cats: Vec<CategoryId> = kg.categories_of(e).collect();
            assert_eq!(got_cats, want_cats);
            assert_eq!(sg.literals(e).count(), kg.literals(e).count());
        }
    }

    #[test]
    fn global_extents_match_and_stay_sorted() {
        let kg = generate(&DatagenConfig::tiny());
        for n in [1, 2, 5] {
            let sg = ShardedGraph::from_graph(&kg, n);
            for t in kg.type_ids() {
                let ext = sg.type_extent(t);
                assert_eq!(ext, kg.type_extent(t).to_vec(), "type extent n={n}");
                assert_eq!(sg.type_extent_len(t), ext.len());
            }
            for c in kg.category_ids() {
                assert_eq!(sg.category_extent(c), kg.category_extent(c).to_vec());
            }
        }
    }

    #[test]
    fn owned_prefix_invariant_holds_for_feature_extents() {
        // every per-shard extent slice (CSR run) has its owned members as
        // a prefix, and summed owned prefixes equal the global extent
        let kg = generate(&DatagenConfig::tiny());
        let sg = ShardedGraph::from_graph(&kg, 3);
        for e in kg.entity_ids() {
            for p in kg.out_predicates(e) {
                let global_len = kg.objects(e, p).len();
                let mut sum = 0;
                for shard in sg.shards() {
                    if let Some(local) = shard.to_local(e) {
                        let extent = shard.graph().objects(local, p);
                        let k = shard.owned_prefix_len(extent);
                        assert!(
                            extent[..k].iter().all(|&x| shard.is_owned(x))
                                && extent[k..].iter().all(|&x| !shard.is_owned(x)),
                            "owned members must form a prefix"
                        );
                        sum += k;
                    }
                }
                assert_eq!(sum, global_len, "entity {} pred {}", e, p);
            }
        }
    }

    #[test]
    fn local_global_roundtrip() {
        let kg = generate(&DatagenConfig::tiny());
        let sg = ShardedGraph::from_graph(&kg, 4);
        for e in kg.entity_ids() {
            let (shard, local) = sg.home(e);
            assert!(shard.is_owned(local));
            assert_eq!(shard.to_global(local), e);
            assert_eq!(shard.to_local(e), Some(local));
        }
        // ghosts roundtrip too
        for shard in sg.shards() {
            for local_raw in 0..shard.graph().entity_count() as u32 {
                let local = EntityId::new(local_raw);
                let g = shard.to_global(local);
                assert_eq!(shard.to_local(g), Some(local));
            }
        }
    }

    #[test]
    fn empty_shards_are_valid() {
        let kg = generate(&DatagenConfig::tiny());
        let n = kg.entity_count() + 3; // guarantees empty trailing shards
        let sg = ShardedGraph::from_graph(&kg, n);
        assert!(sg.shards().iter().any(|s| s.owned_count() == 0));
        for t in kg.type_ids() {
            assert_eq!(sg.type_extent(t), kg.type_extent(t).to_vec());
        }
    }

    #[test]
    fn entity_lookup_by_name() {
        let kg = generate(&DatagenConfig::tiny());
        let sg = ShardedGraph::from_graph(&kg, 3);
        for e in kg.entity_ids().take(50) {
            assert_eq!(sg.entity(kg.entity_name(e)), Some(e));
        }
        assert_eq!(sg.entity("no_such_entity_name"), None);
    }
}

//! Durable delta log (write-ahead log) — the write stream as a file.
//!
//! Read traffic scales past one store by replaying the write stream:
//! every [`DeltaBatch`] (inserts **and** retracts) plus every compaction
//! event a leader applies is serialized into an append-only log that any
//! follower can tail to provably reach the leader's state. Because
//! append==rebuild is bit-identical (the equivalence suites pin it), a
//! follower that has applied the log through generation `G` holds the
//! same *logical* graph as the leader at `G` — asserted in tests via
//! [`snapshot::fingerprint`](crate::snapshot::fingerprint). Crash
//! recovery falls out of the same mechanism: reload the last snapshot,
//! replay the log.
//!
//! Format (little-endian, the `"PVWS"` sidecar framing from the warm
//! state applied to a log):
//!
//! ```text
//! header: magic "PVWL" | version u32 |
//!         base generation u64 | base graph fingerprint u64
//! record: payload len u32 | FNV-1a checksum u64 (over payload) |
//!         payload = JSON of WalRecord { generation, event }
//! ```
//!
//! The header pins the log to the exact store state it continues from:
//! the *base fingerprint* is [`fingerprint`](crate::snapshot::fingerprint)
//! of the leader's graph at the moment logging began, and a follower
//! refuses a log whose base differs from the snapshot it loaded
//! ([`WalError::StaleBase`]). Records are individually checksummed and
//! length-prefixed so a torn tail write (leader crash mid-append) is
//! detected and cleanly ignored: readers stop at the first incomplete or
//! corrupt record, and [`WalWriter::resume`] truncates it before
//! appending further.

use crate::delta::DeltaBatch;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"PVWL";
const VERSION: u32 = 1;
/// Header length in bytes: magic + version + base generation + base
/// fingerprint.
const HEADER_LEN: u64 = 4 + 4 + 8 + 8;
/// Per-record framing overhead: payload length + checksum.
const FRAME_LEN: u64 = 4 + 8;
/// Largest payload a reader will try to parse — same spirit as the
/// snapshot reader's guard: a corrupt length prefix must fail with
/// `Corrupt`, never drive a multi-gigabyte allocation.
const MAX_PAYLOAD: u32 = 1 << 28;

/// One logged store mutation.
///
/// The two event kinds mirror the two ways a leader's generation
/// advances: [`GraphBackend::apply`](crate::GraphBackend::apply) and a
/// compaction that swaps the rebuilt store in. Single-layout compactions
/// that are pure no-ops (no tombstones) don't bump the generation and
/// are never logged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalEvent {
    /// A [`DeltaBatch`] applied through the write path.
    Delta(DeltaBatch),
    /// A compaction/reclaim that swapped the store (sharded
    /// re-partition to `target_shards`, or a single-layout tombstone
    /// reclaim).
    Compact {
        /// The shard count the leader compacted to. Followers on the
        /// sharded layout re-partition to the same target; single-layout
        /// followers reclaim tombstones (the logical graph is identical
        /// either way).
        target_shards: usize,
    },
}

/// One log record: the store generation the event produced, plus the
/// event itself. Generations are strictly increasing within a log, so a
/// follower that restarts mid-stream skips records at or below its
/// synced generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalRecord {
    /// The leader's [`generation`](crate::GraphBackend::generation)
    /// *after* applying this event.
    pub generation: u64,
    /// What was applied.
    pub event: WalEvent,
}

/// The log header: where this log starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalHeader {
    /// Leader generation when logging began — the first record in the
    /// log has generation `base_generation + 1`.
    pub base_generation: u64,
    /// [`fingerprint`](crate::snapshot::fingerprint) of the leader's
    /// graph when logging began. A follower must start from a snapshot
    /// with this exact fingerprint.
    pub base_fingerprint: u64,
}

/// Errors from delta-log IO.
#[derive(Debug)]
pub enum WalError {
    /// Underlying IO failure.
    Io(io::Error),
    /// Not a delta log, or an unsupported version.
    Format(String),
    /// The log continues from a different base state than the follower
    /// loaded — replaying it would diverge silently.
    StaleBase {
        /// Base fingerprint recorded in the log header.
        stored: u64,
        /// Fingerprint of the store the follower actually holds.
        expected: u64,
    },
    /// A complete-looking record failed its checksum or did not parse —
    /// mid-log corruption (a torn *tail* is not an error; readers treat
    /// it as end-of-log).
    Corrupt {
        /// Byte offset of the corrupt record's frame.
        offset: u64,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "delta-log IO error: {e}"),
            WalError::Format(m) => write!(f, "delta-log format error: {m}"),
            WalError::StaleBase { stored, expected } => write!(
                f,
                "delta log continues from base fingerprint {stored:#x}, \
                 not {expected:#x} — refusing to replay"
            ),
            WalError::Corrupt { offset, message } => {
                write!(f, "delta log corrupt at byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// FNV-1a over a byte slice — the same hash `snapshot::fingerprint`
/// streams, applied to one record payload.
fn checksum(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> Result<u32, WalError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64(r: &mut impl Read) -> Result<u64, WalError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_header(r: &mut impl Read) -> Result<WalHeader, WalError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(WalError::Format("bad magic — not a PVWL delta log".into()));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(WalError::Format(format!(
            "unsupported delta-log version {version} (expected {VERSION})"
        )));
    }
    Ok(WalHeader {
        base_generation: read_u64(r)?,
        base_fingerprint: read_u64(r)?,
    })
}

/// Try to read exactly `buf.len()` bytes at the reader's position.
/// `Ok(false)` means the file ended first (a torn tail, not an error);
/// any partial bytes read are irrelevant because callers re-seek.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> Result<bool, WalError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Ok(false),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WalError::Io(e)),
        }
    }
    Ok(true)
}

/// Read one record frame at `offset`. Returns `Ok(None)` when the file
/// ends before a complete record (clean end-of-log or a torn tail);
/// `Err(Corrupt)` when a complete frame fails validation.
fn read_record_at(file: &mut File, offset: u64) -> Result<Option<(WalRecord, u64)>, WalError> {
    file.seek(SeekFrom::Start(offset))?;
    let mut frame = [0u8; FRAME_LEN as usize];
    if !read_full(file, &mut frame)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(frame[0..4].try_into().expect("4-byte slice"));
    let stored_sum = u64::from_le_bytes(frame[4..12].try_into().expect("8-byte slice"));
    if len > MAX_PAYLOAD {
        return Err(WalError::Corrupt {
            offset,
            message: format!("payload length {len} exceeds the {MAX_PAYLOAD}-byte guard"),
        });
    }
    let mut payload = vec![0u8; len as usize];
    if !read_full(file, &mut payload)? {
        return Ok(None);
    }
    if checksum(&payload) != stored_sum {
        return Err(WalError::Corrupt {
            offset,
            message: "record checksum mismatch".into(),
        });
    }
    let text = std::str::from_utf8(&payload).map_err(|e| WalError::Corrupt {
        offset,
        message: format!("record payload is not UTF-8: {e}"),
    })?;
    let record: WalRecord = serde_json::from_str(text).map_err(|e| WalError::Corrupt {
        offset,
        message: format!("record payload does not parse: {e}"),
    })?;
    Ok(Some((record, offset + FRAME_LEN + len as u64)))
}

/// Appends records to a delta log. One writer per log; the leader's
/// write lock serializes appends.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    header: WalHeader,
    /// Generation of the last record written (or the base, when none).
    last_generation: u64,
}

impl WalWriter {
    /// Create (truncate) a log at `path` whose base is the given
    /// generation/fingerprint pair.
    pub fn create(
        path: impl AsRef<Path>,
        base_generation: u64,
        base_fingerprint: u64,
    ) -> Result<WalWriter, WalError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(MAGIC)?;
        write_u32(&mut file, VERSION)?;
        write_u64(&mut file, base_generation)?;
        write_u64(&mut file, base_fingerprint)?;
        file.flush()?;
        Ok(WalWriter {
            file,
            header: WalHeader {
                base_generation,
                base_fingerprint,
            },
            last_generation: base_generation,
        })
    }

    /// Reopen an existing log for appending — the leader-restart path.
    /// Scans every record, truncates a torn tail if one exists, and
    /// positions the writer at the end. Returns the writer and whether a
    /// torn tail was dropped.
    pub fn resume(path: impl AsRef<Path>) -> Result<(WalWriter, bool), WalError> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.seek(SeekFrom::Start(0))?;
        let header = read_header(&mut file)?;
        let mut offset = HEADER_LEN;
        let mut last_generation = header.base_generation;
        while let Some((record, next)) = read_record_at(&mut file, offset)? {
            last_generation = record.generation;
            offset = next;
        }
        let torn = file.metadata()?.len() > offset;
        if torn {
            file.set_len(offset)?;
        }
        file.seek(SeekFrom::Start(offset))?;
        Ok((
            WalWriter {
                file,
                header,
                last_generation,
            },
            torn,
        ))
    }

    /// The log's base pair.
    pub fn header(&self) -> WalHeader {
        self.header
    }

    /// Generation of the last appended record (the base generation when
    /// the log is empty).
    pub fn last_generation(&self) -> u64 {
        self.last_generation
    }

    /// Append one record. The frame is assembled in memory and written
    /// with a single `write_all`, so a crash leaves at most one torn
    /// tail record — which readers ignore and [`WalWriter::resume`]
    /// truncates.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), WalError> {
        let payload = serde_json::to_string(record)
            .map_err(|e| WalError::Format(format!("record does not serialize: {e}")))?;
        let bytes = payload.as_bytes();
        if bytes.len() as u64 > MAX_PAYLOAD as u64 {
            return Err(WalError::Format(format!(
                "record payload of {} bytes exceeds the {MAX_PAYLOAD}-byte guard",
                bytes.len()
            )));
        }
        let mut frame = Vec::with_capacity(FRAME_LEN as usize + bytes.len());
        frame.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        frame.extend_from_slice(&checksum(bytes).to_le_bytes());
        frame.extend_from_slice(bytes);
        self.file.write_all(&frame)?;
        self.file.flush()?;
        self.last_generation = record.generation;
        Ok(())
    }

    /// Append one event stamped with the log's next generation
    /// (`last_generation + 1`), returning the stamp. The log's
    /// generation sequence is its own strictly-increasing counter: it
    /// coincides with the store's mutation generation on a leader that
    /// logged from birth, and stays monotonic across leader restarts
    /// even though a snapshot reload resets the in-memory generation.
    pub fn append_event(&mut self, event: WalEvent) -> Result<u64, WalError> {
        let generation = self.last_generation + 1;
        self.append(&WalRecord { generation, event })?;
        Ok(generation)
    }

    /// Flush file contents to stable storage (`fdatasync`). [`append`]
    /// already pushes bytes to the OS; call this for durability points.
    ///
    /// [`append`]: WalWriter::append
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.file.sync_data()?;
        Ok(())
    }
}

/// Tails a delta log: polls for complete records, treating an
/// incomplete tail as "nothing new yet".
#[derive(Debug)]
pub struct WalReader {
    file: File,
    header: WalHeader,
    offset: u64,
}

impl WalReader {
    /// Open a log for tailing, positioned at the first record.
    pub fn open(path: impl AsRef<Path>) -> Result<WalReader, WalError> {
        let mut file = File::open(path)?;
        let header = read_header(&mut file)?;
        Ok(WalReader {
            file,
            header,
            offset: HEADER_LEN,
        })
    }

    /// The log's base pair.
    pub fn header(&self) -> WalHeader {
        self.header
    }

    /// Byte offset of the next record frame.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Read the next complete record, or `Ok(None)` when the log
    /// currently ends (possibly mid-record: a partial tail is "not yet
    /// written" from a tailer's perspective — the reader stays put and
    /// retries the same offset next poll).
    pub fn poll(&mut self) -> Result<Option<WalRecord>, WalError> {
        match read_record_at(&mut self.file, self.offset)? {
            Some((record, next)) => {
                self.offset = next;
                Ok(Some(record))
            }
            None => Ok(None),
        }
    }

    /// Whether bytes exist past the last complete record — a torn tail
    /// (leader crashed mid-append) if the leader is known to be down.
    pub fn has_partial_tail(&self) -> Result<bool, WalError> {
        Ok(self.file.metadata()?.len() > self.offset)
    }
}

/// Read a whole log from disk: header, every complete record, and
/// whether a torn tail was ignored. The recovery entry point.
pub fn read_records(path: impl AsRef<Path>) -> Result<(WalHeader, Vec<WalRecord>, bool), WalError> {
    let mut reader = WalReader::open(path)?;
    let mut records = Vec::new();
    while let Some(record) = reader.poll()? {
        records.push(record);
    }
    let torn = reader.has_partial_tail()?;
    Ok((reader.header(), records, torn))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::DeltaBatch;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pivote_wal_{tag}_{}.pvwl", std::process::id()))
    }

    fn sample_batch(i: u64) -> DeltaBatch {
        let mut d = DeltaBatch::new();
        d.triple(format!("s{i}"), "p", format!("o{i}"));
        d.retract_triple(format!("s{i}"), "q", "gone");
        d
    }

    #[test]
    fn records_roundtrip_through_the_vendored_serde() {
        // pins early that DeltaBatch-in-an-enum survives the vendored
        // serde derive + serde_json — everything else builds on this
        let rec = WalRecord {
            generation: 7,
            event: WalEvent::Delta(sample_batch(1)),
        };
        let json = serde_json::to_string(&rec).unwrap();
        let back: WalRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
        let rec = WalRecord {
            generation: 8,
            event: WalEvent::Compact { target_shards: 3 },
        };
        let json = serde_json::to_string(&rec).unwrap();
        let back: WalRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn write_then_tail_sees_every_record() {
        let path = temp_path("tail");
        let mut w = WalWriter::create(&path, 5, 0xabcd).unwrap();
        let mut r = WalReader::open(&path).unwrap();
        assert_eq!(
            r.header(),
            WalHeader {
                base_generation: 5,
                base_fingerprint: 0xabcd
            }
        );
        assert!(r.poll().unwrap().is_none(), "empty log has nothing");

        for i in 0..3u64 {
            w.append(&WalRecord {
                generation: 6 + i,
                event: WalEvent::Delta(sample_batch(i)),
            })
            .unwrap();
        }
        w.append(&WalRecord {
            generation: 9,
            event: WalEvent::Compact { target_shards: 2 },
        })
        .unwrap();
        assert_eq!(w.last_generation(), 9);

        // the pre-existing reader tails straight through the new bytes
        let mut gens = Vec::new();
        while let Some(rec) = r.poll().unwrap() {
            gens.push(rec.generation);
        }
        assert_eq!(gens, vec![6, 7, 8, 9]);
        assert!(!r.has_partial_tail().unwrap());

        let (header, records, torn) = read_records(&path).unwrap();
        assert_eq!(header.base_generation, 5);
        assert_eq!(records.len(), 4);
        assert!(!torn);
        assert!(matches!(
            records[3].event,
            WalEvent::Compact { target_shards: 2 }
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_ignored_and_resume_truncates_it() {
        let path = temp_path("torn");
        let mut w = WalWriter::create(&path, 0, 1).unwrap();
        w.append(&WalRecord {
            generation: 1,
            event: WalEvent::Delta(sample_batch(0)),
        })
        .unwrap();
        drop(w);
        let whole = std::fs::metadata(&path).unwrap().len();
        // simulate a crash mid-append: a second record whose frame
        // promises more bytes than were written
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&1000u32.to_le_bytes()).unwrap();
            f.write_all(&0u64.to_le_bytes()).unwrap();
            f.write_all(b"only a few bytes").unwrap();
        }

        // readers see exactly the one complete record, then a tail
        let (_, records, torn) = read_records(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert!(torn, "the torn tail must be reported");

        // resume truncates the tail and appends cleanly after it
        let (mut w, torn) = WalWriter::resume(&path).unwrap();
        assert!(torn);
        assert_eq!(w.last_generation(), 1);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), whole);
        w.append(&WalRecord {
            generation: 2,
            event: WalEvent::Delta(sample_batch(1)),
        })
        .unwrap();
        let (_, records, torn) = read_records(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert!(!torn);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_payload_byte_is_a_checksum_error() {
        let path = temp_path("corrupt");
        let mut w = WalWriter::create(&path, 0, 1).unwrap();
        w.append(&WalRecord {
            generation: 1,
            event: WalEvent::Delta(sample_batch(0)),
        })
        .unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40; // flip a bit inside the JSON payload
        std::fs::write(&path, &bytes).unwrap();
        let err = read_records(&path).unwrap_err();
        assert!(
            matches!(err, WalError::Corrupt { .. }),
            "expected Corrupt, got {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn huge_length_prefix_is_corrupt_not_an_allocation() {
        let path = temp_path("hugelen");
        let w = WalWriter::create(&path, 0, 1).unwrap();
        drop(w);
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&u32::MAX.to_le_bytes()).unwrap();
            f.write_all(&0u64.to_le_bytes()).unwrap();
        }
        let err = read_records(&path).unwrap_err();
        assert!(matches!(err, WalError::Corrupt { .. }), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_and_version_are_refused() {
        let path = temp_path("magic");
        std::fs::write(&path, b"NOPE00000000000000000000").unwrap();
        assert!(matches!(WalReader::open(&path), Err(WalError::Format(_))));
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 16]);
        std::fs::write(&path, &bytes).unwrap();
        let err = WalReader::open(&path).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}

//! String interning: bijective mapping between names and dense `u32` ids.
//!
//! The store dictionary-encodes every entity/predicate/type/category name
//! once, so all downstream structures work on compact integer ids. Lookup
//! by name is a single hash probe; lookup by id is an array index.

use std::collections::HashMap;

/// A bijective `String <-> u32` interner.
///
/// Ids are assigned densely in insertion order starting at zero, which is
/// what lets extents be plain sorted `u32` slices.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    by_name: HashMap<String, u32>,
    names: Vec<String>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty interner with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            by_name: HashMap::with_capacity(cap),
            names: Vec::with_capacity(cap),
        }
    }

    /// Intern `name`, returning its dense id. Repeated calls with the same
    /// name return the same id.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id =
            u32::try_from(self.names.len()).expect("interner overflow: more than u32::MAX names");
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Look up an already-interned name.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// Resolve an id back to its name. Panics if `id` was never issued.
    pub fn resolve(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// Resolve an id back to its name, returning `None` for unknown ids.
    pub fn try_resolve(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no names have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u32, n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("Forrest_Gump");
        let b = i.intern("Forrest_Gump");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered_by_insertion() {
        let mut i = Interner::new();
        assert_eq!(i.intern("a"), 0);
        assert_eq!(i.intern("b"), 1);
        assert_eq!(i.intern("c"), 2);
        assert_eq!(i.resolve(1), "b");
    }

    #[test]
    fn get_does_not_insert() {
        let mut i = Interner::new();
        assert_eq!(i.get("x"), None);
        i.intern("x");
        assert_eq!(i.get("x"), Some(0));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn try_resolve_handles_unknown() {
        let i = Interner::new();
        assert_eq!(i.try_resolve(0), None);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut i = Interner::new();
        for name in ["x", "y", "z"] {
            i.intern(name);
        }
        let collected: Vec<_> = i.iter().map(|(id, n)| (id, n.to_owned())).collect();
        assert_eq!(
            collected,
            vec![(0, "x".into()), (1, "y".into()), (2, "z".into())]
        );
    }

    proptest! {
        /// Interning any set of strings is a bijection: resolving the id of
        /// a name gives the name back, and equal names share an id.
        #[test]
        fn prop_bijection(names in proptest::collection::vec("[a-zA-Z0-9_]{1,12}", 0..64)) {
            let mut i = Interner::new();
            let ids: Vec<u32> = names.iter().map(|n| i.intern(n)).collect();
            for (name, id) in names.iter().zip(&ids) {
                prop_assert_eq!(i.resolve(*id), name.as_str());
                prop_assert_eq!(i.get(name), Some(*id));
            }
            // distinct ids <=> distinct names
            let mut uniq_names = names.clone();
            uniq_names.sort();
            uniq_names.dedup();
            let mut uniq_ids = ids.clone();
            uniq_ids.sort_unstable();
            uniq_ids.dedup();
            prop_assert_eq!(uniq_names.len(), uniq_ids.len());
            prop_assert_eq!(i.len(), uniq_names.len());
        }
    }
}

//! String interning: bijective mapping between names and dense `u32` ids.
//!
//! The store dictionary-encodes every entity/predicate/type/category name
//! once, so all downstream structures work on compact integer ids. Lookup
//! by name is a single hash probe; lookup by id is an array index.
//!
//! Interning is the hottest dictionary operation of the ingest path
//! (every op of every [`DeltaBatch`](crate::DeltaBatch) resolves 1–3
//! names), so the table is hand-rolled rather than a
//! `HashMap<String, u32>`:
//!
//! - **one hash, one probe** per intern — open addressing over a dense
//!   `u32` slot array, with the full 64-bit hash stored per id so probe
//!   collisions are rejected by an integer compare before any string
//!   compare, and table growth re-files slots from stored hashes without
//!   re-hashing a single string;
//! - **one allocation per unique name** — the name lives only in the
//!   id-indexed `names` vec (a `HashMap` key would duplicate it);
//! - **pre-sizing** — [`Interner::reserve`] lets a batch apply grow the
//!   table once up front instead of rehashing mid-splice.

/// Multiplier of the FxHash-style mix (the golden-ratio constant rustc's
/// hasher uses); string hashing cost is on the ingest critical path, so
/// the default SipHash is deliberately avoided.
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Hash a name: FxHash-style 8-byte folding with a final length mix and
/// bit spread. Not DoS-resistant — fine for dictionary encoding, where a
/// collision costs one string compare, not correctness.
#[inline]
fn hash_name(name: &str) -> u64 {
    let bytes = name.as_bytes();
    let mut h = 0u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = (h.rotate_left(5) ^ w).wrapping_mul(FX_SEED);
    }
    let mut tail = 0u64;
    for &b in chunks.remainder() {
        tail = (tail << 8) | u64::from(b);
    }
    h = (h.rotate_left(5) ^ tail).wrapping_mul(FX_SEED);
    h = (h.rotate_left(5) ^ bytes.len() as u64).wrapping_mul(FX_SEED);
    // spread the multiply's high-bit entropy into the low bits the table
    // indexes with
    h ^ (h >> 32)
}

/// A bijective `String <-> u32` interner.
///
/// Ids are assigned densely in insertion order starting at zero, which is
/// what lets extents be plain sorted `u32` slices.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    /// Name per id — the only copy of each string.
    names: Vec<String>,
    /// Hash per id, parallel to `names`: probe rejection and growth
    /// re-filing never touch string bytes.
    hashes: Vec<u64>,
    /// Open-addressing slots holding `id + 1` (0 = empty). Power-of-two
    /// length; empty until the first insert.
    table: Vec<u32>,
    /// `table.len() - 1` (0 while the table is empty).
    mask: usize,
}

/// Smallest non-empty table; grows by doubling at 7/8 load.
const MIN_TABLE: usize = 16;

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty interner with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        let mut s = Self {
            names: Vec::with_capacity(cap),
            hashes: Vec::with_capacity(cap),
            table: Vec::new(),
            mask: 0,
        };
        s.grow_table(table_size_for(cap));
        s
    }

    /// Pre-size the table for `additional` more names, so a batch of
    /// interns triggers at most one rehash up front instead of several
    /// mid-batch. Re-files existing slots from stored hashes — no string
    /// is re-hashed.
    pub fn reserve(&mut self, additional: usize) {
        let want = table_size_for(self.names.len() + additional);
        if want > self.table.len() {
            self.names.reserve(additional);
            self.hashes.reserve(additional);
            self.grow_table(want);
        }
    }

    /// Intern `name`, returning its dense id. Repeated calls with the same
    /// name return the same id.
    pub fn intern(&mut self, name: &str) -> u32 {
        let hash = hash_name(name);
        match self.probe(hash, name) {
            Ok(id) => id,
            Err(_) => self.insert_new(hash, name),
        }
    }

    /// Intern with a caller-computed [`Interner::hash_of`] value — the
    /// batch-apply fast path when one name is resolved against several
    /// dictionaries or memo tables without re-hashing.
    pub fn intern_prehashed(&mut self, hash: u64, name: &str) -> u32 {
        debug_assert_eq!(hash, hash_name(name), "prehashed value mismatch");
        match self.probe(hash, name) {
            Ok(id) => id,
            Err(_) => self.insert_new(hash, name),
        }
    }

    /// The hash [`Interner::intern_prehashed`] expects for `name`.
    pub fn hash_of(name: &str) -> u64 {
        hash_name(name)
    }

    /// Look up an already-interned name.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.probe(hash_name(name), name).ok()
    }

    /// Resolve an id back to its name. Panics if `id` was never issued.
    pub fn resolve(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// Resolve an id back to its name, returning `None` for unknown ids.
    pub fn try_resolve(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no names have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u32, n.as_str()))
    }

    /// Find `name`'s id (`Ok`) or the empty slot it belongs in (`Err`).
    #[inline]
    fn probe(&self, hash: u64, name: &str) -> Result<u32, usize> {
        if self.table.is_empty() {
            return Err(usize::MAX);
        }
        let mut slot = (hash as usize) & self.mask;
        loop {
            match self.table[slot] {
                0 => return Err(slot),
                stored => {
                    let id = stored - 1;
                    if self.hashes[id as usize] == hash && self.names[id as usize] == name {
                        return Ok(id);
                    }
                }
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Append a new name and file it into the table (growing first if the
    /// insert would cross 7/8 load).
    fn insert_new(&mut self, hash: u64, name: &str) -> u32 {
        let id =
            u32::try_from(self.names.len()).expect("interner overflow: more than u32::MAX names");
        if self.table.is_empty() || (self.names.len() + 1) * 8 > self.table.len() * 7 {
            self.grow_table((self.table.len() * 2).max(MIN_TABLE));
        }
        let slot = self
            .probe(hash, name)
            .expect_err("insert_new called for an absent name");
        self.table[slot] = id + 1;
        self.names.push(name.to_owned());
        self.hashes.push(hash);
        id
    }

    /// Replace the slot array with one of `size` slots (power of two) and
    /// re-file every id from its stored hash.
    fn grow_table(&mut self, size: usize) {
        debug_assert!(size.is_power_of_two());
        let mask = size - 1;
        let mut table = vec![0u32; size];
        for (id, &hash) in self.hashes.iter().enumerate() {
            let mut slot = (hash as usize) & mask;
            while table[slot] != 0 {
                slot = (slot + 1) & mask;
            }
            table[slot] = id as u32 + 1;
        }
        self.table = table;
        self.mask = mask;
    }
}

/// Table size whose 7/8 load bound holds `n` names.
fn table_size_for(n: usize) -> usize {
    (n * 8 / 7 + 1).next_power_of_two().max(MIN_TABLE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("Forrest_Gump");
        let b = i.intern("Forrest_Gump");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered_by_insertion() {
        let mut i = Interner::new();
        assert_eq!(i.intern("a"), 0);
        assert_eq!(i.intern("b"), 1);
        assert_eq!(i.intern("c"), 2);
        assert_eq!(i.resolve(1), "b");
    }

    #[test]
    fn get_does_not_insert() {
        let mut i = Interner::new();
        assert_eq!(i.get("x"), None);
        i.intern("x");
        assert_eq!(i.get("x"), Some(0));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn try_resolve_handles_unknown() {
        let i = Interner::new();
        assert_eq!(i.try_resolve(0), None);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut i = Interner::new();
        for name in ["x", "y", "z"] {
            i.intern(name);
        }
        let collected: Vec<_> = i.iter().map(|(id, n)| (id, n.to_owned())).collect();
        assert_eq!(
            collected,
            vec![(0, "x".into()), (1, "y".into()), (2, "z".into())]
        );
    }

    #[test]
    fn prehashed_matches_plain_intern() {
        let mut a = Interner::new();
        let mut b = Interner::new();
        for name in ["x", "y", "x", "longer_name_beyond_one_chunk", "y"] {
            assert_eq!(
                a.intern(name),
                b.intern_prehashed(Interner::hash_of(name), name)
            );
        }
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn reserve_preserves_contents_and_ids() {
        let mut i = Interner::new();
        for n in 0..100 {
            i.intern(&format!("name_{n}"));
        }
        i.reserve(10_000);
        for n in 0..100 {
            assert_eq!(i.get(&format!("name_{n}")), Some(n));
        }
        assert_eq!(i.intern("name_5"), 5);
        assert_eq!(i.intern("fresh"), 100);
    }

    #[test]
    fn survives_many_grows_across_chunked_name_lengths() {
        // names spanning the 8-byte folding boundary (7, 8, 9, 16, 17
        // bytes) through several table doublings
        let mut i = Interner::new();
        let mut expect = Vec::new();
        for n in 0..5000u32 {
            let name = format!("{}{}", "x".repeat((n % 20) as usize), n);
            expect.push((i.intern(&name), name));
        }
        for (id, name) in &expect {
            assert_eq!(i.get(name), Some(*id));
            assert_eq!(i.resolve(*id), name);
        }
    }

    proptest! {
        /// Interning any set of strings is a bijection: resolving the id of
        /// a name gives the name back, and equal names share an id.
        #[test]
        fn prop_bijection(names in proptest::collection::vec("[a-zA-Z0-9_]{1,12}", 0..64)) {
            let mut i = Interner::new();
            let ids: Vec<u32> = names.iter().map(|n| i.intern(n)).collect();
            for (name, id) in names.iter().zip(&ids) {
                prop_assert_eq!(i.resolve(*id), name.as_str());
                prop_assert_eq!(i.get(name), Some(*id));
            }
            // distinct ids <=> distinct names
            let mut uniq_names = names.clone();
            uniq_names.sort();
            uniq_names.dedup();
            let mut uniq_ids = ids.clone();
            uniq_ids.sort_unstable();
            uniq_ids.dedup();
            prop_assert_eq!(uniq_names.len(), uniq_ids.len());
            prop_assert_eq!(i.len(), uniq_names.len());
        }
    }
}

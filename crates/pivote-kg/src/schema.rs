//! Well-known vocabulary: the handful of predicates that get special
//! treatment when loading RDF data, plus URI helpers.
//!
//! PivotE follows the DBpedia conventions: `rdf:type` labels entities with
//! types, `dct:subject` assigns Wikipedia categories, `rdfs:label` carries
//! display names, and `dbo:wikiPageRedirects` / `dbo:wikiPageDisambiguates`
//! provide the "similar entity names" used by the search engine's
//! five-field representation (Table 1 of the paper).

/// `rdf:type` — routed into the type index rather than stored as an edge.
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
/// `rdfs:label` — routed into the label table.
pub const RDFS_LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
/// `dct:subject` — routed into the category index.
pub const DCT_SUBJECT: &str = "http://purl.org/dc/terms/subject";
/// `dbo:wikiPageRedirects` — the subject becomes an alias of the object.
pub const DBO_REDIRECT: &str = "http://dbpedia.org/ontology/wikiPageRedirects";
/// `dbo:wikiPageDisambiguates` — the subject becomes an alias of the object.
pub const DBO_DISAMBIGUATES: &str = "http://dbpedia.org/ontology/wikiPageDisambiguates";

/// DBpedia resource namespace, used when serializing entities.
pub const NS_RESOURCE: &str = "http://dbpedia.org/resource/";
/// DBpedia ontology namespace, used when serializing predicates and types.
pub const NS_ONTOLOGY: &str = "http://dbpedia.org/ontology/";
/// Category namespace (`Category:` resources).
pub const NS_CATEGORY: &str = "http://dbpedia.org/resource/Category:";

/// Extract the local name of a URI: the substring after the last `#` or
/// `/`. Returns the whole string when no separator exists.
pub fn local_name(uri: &str) -> &str {
    let cut = uri.rfind(['#', '/']).map(|i| i + 1).unwrap_or(0);
    &uri[cut..]
}

/// Strip the category namespace (handles both `Category:X` local names and
/// full category URIs), returning the bare category name.
pub fn category_name(uri: &str) -> &str {
    let local = local_name(uri);
    local.strip_prefix("Category:").unwrap_or(local)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_name_extraction() {
        assert_eq!(
            local_name("http://dbpedia.org/resource/Forrest_Gump"),
            "Forrest_Gump"
        );
        assert_eq!(
            local_name("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
            "type"
        );
        assert_eq!(local_name("plain"), "plain");
        assert_eq!(local_name(""), "");
    }

    #[test]
    fn category_name_strips_prefix() {
        assert_eq!(
            category_name("http://dbpedia.org/resource/Category:American_films"),
            "American_films"
        );
        assert_eq!(category_name("http://x/Y"), "Y");
    }
}

//! Delta batches: the unit of incremental growth for a live graph.
//!
//! A [`DeltaBatch`] is an ordered list of name-based statements — new
//! triples, literal statements, type/category assertions, labels and
//! aliases, possibly introducing brand-new entities, predicates, types or
//! categories. Names (not ids) keep a batch independent of any particular
//! graph's dictionary state, so one batch can be applied to a single
//! [`KnowledgeGraph`](crate::KnowledgeGraph), to a
//! [`ShardedGraph`](crate::ShardedGraph), or replayed into a fresh
//! [`KgBuilder`] — and because the ops are *ordered*, all three intern new
//! dictionary terms in exactly the same global order, which is what makes
//! append-then-query bit-identical to rebuild-then-query (the
//! `incremental_equivalence` suite enforces this).
//!
//! [`AppliedDelta`] is the receipt an apply returns: the new-entity id
//! range, exactly which feature extents and context extents were touched
//! (the cache-invalidation handle for the execution layers), and a work
//! counter proving the apply did splice-sized work, not a rebuild.

use crate::id::{CategoryId, EntityId, PredicateId, TypeId};
use crate::store::{KgBuilder, KnowledgeGraph};
use crate::triple::Literal;
use serde::{Deserialize, Serialize};

/// One ordered statement of a [`DeltaBatch`]. All references are by name;
/// unknown names intern new dictionary entries on apply, in op order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DeltaOp {
    /// Declare an entity (intern its name without asserting anything).
    Entity {
        /// Entity name.
        name: String,
    },
    /// Declare a predicate (intern without asserting any statement) —
    /// used by the sharded apply to replicate new dictionary terms into
    /// every shard in global order.
    DeclarePredicate {
        /// Predicate name.
        name: String,
    },
    /// Declare a type without asserting membership.
    DeclareType {
        /// Type name.
        name: String,
    },
    /// Declare a category without asserting membership.
    DeclareCategory {
        /// Category name.
        name: String,
    },
    /// An entity-to-entity statement `<s, p, o>`.
    Triple {
        /// Subject entity name.
        s: String,
        /// Predicate name.
        p: String,
        /// Object entity name.
        o: String,
    },
    /// A literal-valued statement `<s, p, "value">`.
    LiteralTriple {
        /// Subject entity name.
        s: String,
        /// Predicate name.
        p: String,
        /// Literal value.
        value: Literal,
    },
    /// An `rdf:type` assertion.
    Typed {
        /// Entity name.
        entity: String,
        /// Type name.
        type_name: String,
    },
    /// A category (`dct:subject`) assertion.
    Categorized {
        /// Entity name.
        entity: String,
        /// Category name.
        category: String,
    },
    /// Set (or overwrite) the `rdfs:label` of an entity.
    Label {
        /// Entity name.
        entity: String,
        /// The label.
        label: String,
    },
    /// A redirect alias pointing at `target`.
    Redirect {
        /// The alias string.
        alias: String,
        /// Target entity name.
        target: String,
    },
    /// A disambiguation alias pointing at `target`.
    Disambiguation {
        /// The alias string.
        alias: String,
        /// Target entity name.
        target: String,
    },
    /// Retract an entity-to-entity statement `<s, p, o>`. Retractions
    /// never intern new dictionary terms: naming an unknown entity or
    /// predicate makes the op a no-op, so an apply containing retracts
    /// assigns exactly the same dense ids as one without them.
    RetractTriple {
        /// Subject entity name.
        s: String,
        /// Predicate name.
        p: String,
        /// Object entity name.
        o: String,
    },
    /// Retract **all** matching copies of a literal-valued statement
    /// `<s, p, "value">` (literal statements are not deduplicated on
    /// insert, so the retract removes every copy).
    RetractLiteral {
        /// Subject entity name.
        s: String,
        /// Predicate name.
        p: String,
        /// Literal value.
        value: Literal,
    },
    /// Retract an `rdf:type` assertion.
    RetractTyped {
        /// Entity name.
        entity: String,
        /// Type name.
        type_name: String,
    },
    /// Retract a category (`dct:subject`) assertion.
    RetractCategorized {
        /// Entity name.
        entity: String,
        /// Category name.
        category: String,
    },
    /// Clear the `rdfs:label` of an entity, but only if the current
    /// label equals `label` (so a stale retraction cannot clobber a
    /// newer label set after it was issued).
    RetractLabel {
        /// Entity name.
        entity: String,
        /// The label value being retracted.
        label: String,
    },
    /// Remove a redirect/disambiguation alias from `target`'s alias
    /// list (no-op if absent).
    RetractAlias {
        /// The alias string.
        alias: String,
        /// Target entity name.
        target: String,
    },
}

impl DeltaOp {
    /// Whether this op removes statements rather than adding them. An
    /// apply splits its batch into maximal same-polarity runs and
    /// applies each run with the matching (insert or retract) pass.
    pub fn is_retract(&self) -> bool {
        matches!(
            self,
            DeltaOp::RetractTriple { .. }
                | DeltaOp::RetractLiteral { .. }
                | DeltaOp::RetractTyped { .. }
                | DeltaOp::RetractCategorized { .. }
                | DeltaOp::RetractLabel { .. }
                | DeltaOp::RetractAlias { .. }
        )
    }
}

/// An ordered batch of statements to append to a live graph.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DeltaBatch {
    ops: Vec<DeltaOp>,
}

impl DeltaBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of ops in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch holds no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The ordered ops.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// Drop all ops, keeping the allocation (for batch reuse in
    /// streaming ingestion loops).
    pub fn clear(&mut self) {
        self.ops.clear();
    }

    /// Push a raw op.
    pub fn push(&mut self, op: DeltaOp) {
        self.ops.push(op);
    }

    /// Declare an entity by name.
    pub fn entity(&mut self, name: impl Into<String>) -> &mut Self {
        self.ops.push(DeltaOp::Entity { name: name.into() });
        self
    }

    /// Declare a predicate by name (dictionary entry only).
    pub fn declare_predicate(&mut self, name: impl Into<String>) -> &mut Self {
        self.ops
            .push(DeltaOp::DeclarePredicate { name: name.into() });
        self
    }

    /// Declare a type by name (dictionary entry only).
    pub fn declare_type(&mut self, name: impl Into<String>) -> &mut Self {
        self.ops.push(DeltaOp::DeclareType { name: name.into() });
        self
    }

    /// Declare a category by name (dictionary entry only).
    pub fn declare_category(&mut self, name: impl Into<String>) -> &mut Self {
        self.ops
            .push(DeltaOp::DeclareCategory { name: name.into() });
        self
    }

    /// Add an entity-to-entity statement `<s, p, o>`.
    pub fn triple(
        &mut self,
        s: impl Into<String>,
        p: impl Into<String>,
        o: impl Into<String>,
    ) -> &mut Self {
        self.ops.push(DeltaOp::Triple {
            s: s.into(),
            p: p.into(),
            o: o.into(),
        });
        self
    }

    /// Add a literal-valued statement.
    pub fn literal(
        &mut self,
        s: impl Into<String>,
        p: impl Into<String>,
        value: Literal,
    ) -> &mut Self {
        self.ops.push(DeltaOp::LiteralTriple {
            s: s.into(),
            p: p.into(),
            value,
        });
        self
    }

    /// Assert `rdf:type` membership.
    pub fn typed(&mut self, entity: impl Into<String>, type_name: impl Into<String>) -> &mut Self {
        self.ops.push(DeltaOp::Typed {
            entity: entity.into(),
            type_name: type_name.into(),
        });
        self
    }

    /// Assert category membership.
    pub fn categorized(
        &mut self,
        entity: impl Into<String>,
        category: impl Into<String>,
    ) -> &mut Self {
        self.ops.push(DeltaOp::Categorized {
            entity: entity.into(),
            category: category.into(),
        });
        self
    }

    /// Set the label of an entity.
    pub fn label(&mut self, entity: impl Into<String>, label: impl Into<String>) -> &mut Self {
        self.ops.push(DeltaOp::Label {
            entity: entity.into(),
            label: label.into(),
        });
        self
    }

    /// Record a redirect alias.
    pub fn redirect(&mut self, alias: impl Into<String>, target: impl Into<String>) -> &mut Self {
        self.ops.push(DeltaOp::Redirect {
            alias: alias.into(),
            target: target.into(),
        });
        self
    }

    /// Record a disambiguation alias.
    pub fn disambiguation(
        &mut self,
        alias: impl Into<String>,
        target: impl Into<String>,
    ) -> &mut Self {
        self.ops.push(DeltaOp::Disambiguation {
            alias: alias.into(),
            target: target.into(),
        });
        self
    }

    /// Retract an entity-to-entity statement `<s, p, o>`.
    pub fn retract_triple(
        &mut self,
        s: impl Into<String>,
        p: impl Into<String>,
        o: impl Into<String>,
    ) -> &mut Self {
        self.ops.push(DeltaOp::RetractTriple {
            s: s.into(),
            p: p.into(),
            o: o.into(),
        });
        self
    }

    /// Retract all copies of a literal-valued statement.
    pub fn retract_literal(
        &mut self,
        s: impl Into<String>,
        p: impl Into<String>,
        value: Literal,
    ) -> &mut Self {
        self.ops.push(DeltaOp::RetractLiteral {
            s: s.into(),
            p: p.into(),
            value,
        });
        self
    }

    /// Retract an `rdf:type` assertion.
    pub fn retract_typed(
        &mut self,
        entity: impl Into<String>,
        type_name: impl Into<String>,
    ) -> &mut Self {
        self.ops.push(DeltaOp::RetractTyped {
            entity: entity.into(),
            type_name: type_name.into(),
        });
        self
    }

    /// Retract a category assertion.
    pub fn retract_categorized(
        &mut self,
        entity: impl Into<String>,
        category: impl Into<String>,
    ) -> &mut Self {
        self.ops.push(DeltaOp::RetractCategorized {
            entity: entity.into(),
            category: category.into(),
        });
        self
    }

    /// Retract the label of an entity (cleared only if it still equals
    /// `label`).
    pub fn retract_label(
        &mut self,
        entity: impl Into<String>,
        label: impl Into<String>,
    ) -> &mut Self {
        self.ops.push(DeltaOp::RetractLabel {
            entity: entity.into(),
            label: label.into(),
        });
        self
    }

    /// Retract an alias from `target`.
    pub fn retract_alias(
        &mut self,
        alias: impl Into<String>,
        target: impl Into<String>,
    ) -> &mut Self {
        self.ops.push(DeltaOp::RetractAlias {
            alias: alias.into(),
            target: target.into(),
        });
        self
    }

    /// Whether the batch holds at least one retract op.
    pub fn has_retracts(&self) -> bool {
        self.ops.iter().any(|op| op.is_retract())
    }

    /// Replay the batch into a [`KgBuilder`], interning names in exactly
    /// the order [`KnowledgeGraph::apply`] does — the rebuild side of the
    /// append/rebuild equivalence contract: building `base ops + delta
    /// ops` from scratch yields the same dense ids (and therefore
    /// bit-identical rankings) as building `base` and applying the delta.
    pub fn apply_to_builder(&self, b: &mut KgBuilder) {
        for op in &self.ops {
            match op {
                DeltaOp::Entity { name } => {
                    b.entity(name);
                }
                DeltaOp::DeclarePredicate { name } => {
                    b.predicate(name);
                }
                DeltaOp::DeclareType { name } => {
                    b.declare_type(name);
                }
                DeltaOp::DeclareCategory { name } => {
                    b.declare_category(name);
                }
                DeltaOp::Triple { s, p, o } => {
                    let s = b.entity(s);
                    let p = b.predicate(p);
                    let o = b.entity(o);
                    b.triple(s, p, o);
                }
                DeltaOp::LiteralTriple { s, p, value } => {
                    let s = b.entity(s);
                    let p = b.predicate(p);
                    b.literal_triple(s, p, value.clone());
                }
                DeltaOp::Typed { entity, type_name } => {
                    let e = b.entity(entity);
                    b.typed(e, type_name);
                }
                DeltaOp::Categorized { entity, category } => {
                    let e = b.entity(entity);
                    b.categorized(e, category);
                }
                DeltaOp::Label { entity, label } => {
                    let e = b.entity(entity);
                    b.label(e, label.clone());
                }
                DeltaOp::Redirect { alias, target } => {
                    let t = b.entity(target);
                    b.redirect(alias.clone(), t);
                }
                DeltaOp::Disambiguation { alias, target } => {
                    let t = b.entity(target);
                    b.disambiguation(alias.clone(), t);
                }
                DeltaOp::RetractTriple { .. }
                | DeltaOp::RetractLiteral { .. }
                | DeltaOp::RetractTyped { .. }
                | DeltaOp::RetractCategorized { .. }
                | DeltaOp::RetractLabel { .. }
                | DeltaOp::RetractAlias { .. } => {
                    panic!(
                        "retract ops cannot be replayed into an append-only builder; \
                         rebuild from the surviving statements instead"
                    );
                }
            }
        }
    }
}

/// Split `ops` into maximal runs of equal polarity (insert vs retract),
/// preserving order. An apply walks these runs so that a mixed batch
/// interleaves insert and retract passes in exactly op order — which is
/// what makes apply-then-query equivalent to replaying the ops against a
/// shadow statement set and rebuilding from the survivors.
pub(crate) fn polarity_runs(ops: &[DeltaOp]) -> Vec<(bool, &[DeltaOp])> {
    let mut runs = Vec::new();
    let mut start = 0usize;
    while start < ops.len() {
        let retract = ops[start].is_retract();
        let mut end = start + 1;
        while end < ops.len() && ops[end].is_retract() == retract {
            end += 1;
        }
        runs.push((retract, &ops[start..end]));
        start = end;
    }
    runs
}

/// The receipt of one applied [`DeltaBatch`]: what changed, and how much
/// work the splice did. This is the invalidation handle the execution
/// layers consume — a cached `p(π|c)` must be dropped iff `π`'s extent
/// (`touched_out`/`touched_in`) or `c`'s extent
/// (`touched_types`/`touched_categories`) was touched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedDelta {
    /// The graph's generation after this apply (monotonic, starts at 0
    /// for a freshly built graph).
    pub generation: u64,
    /// Raw ids of entities created by this apply (`start..end`, appended
    /// at the top of the id space).
    pub new_entities: std::ops::Range<u32>,
    /// `(s, p)` pairs whose outgoing run gained edges — the extents of
    /// features `s:p→` that changed. Sorted, deduplicated.
    pub touched_out: Vec<(EntityId, PredicateId)>,
    /// `(o, p)` pairs whose incoming run gained edges — the extents of
    /// features `o:p←` that changed. Sorted, deduplicated.
    pub touched_in: Vec<(EntityId, PredicateId)>,
    /// Types whose extent grew. Sorted, deduplicated.
    pub touched_types: Vec<TypeId>,
    /// Categories whose extent grew. Sorted, deduplicated.
    pub touched_categories: Vec<CategoryId>,
    /// New (deduplicated) entity-to-entity statements actually inserted.
    pub added_relations: usize,
    /// Literal statements appended.
    pub added_literals: usize,
    /// Entity-to-entity statements tombstoned by retract ops.
    pub removed_relations: usize,
    /// Literal statements tombstoned by retract ops.
    pub removed_literals: usize,
    /// Type/category assertions tombstoned plus labels/aliases cleared
    /// by retract ops.
    pub removed_assertions: usize,
    /// Elements examined or moved while splicing rows and extents — the
    /// sublinearity witness: appending N triples to a graph of M ≫ N
    /// triples does work proportional to the touched rows, not to M.
    pub work: u64,
}

impl AppliedDelta {
    /// Whether the apply changed any extent the ranking model reads.
    pub fn touched_anything(&self) -> bool {
        !self.touched_out.is_empty()
            || !self.touched_in.is_empty()
            || !self.touched_types.is_empty()
            || !self.touched_categories.is_empty()
            || !self.new_entities.is_empty()
    }
}

/// The receipt of one compaction pass over a live sharded graph: what
/// the partition looked like before and after the swap. Compaction is
/// answer-preserving (no extent changes), so unlike [`AppliedDelta`]
/// there is nothing to invalidate — the receipt records the new
/// generation stamp and the de-degeneration it bought.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionReceipt {
    /// The graph's generation after the compaction (monotonic with the
    /// append generations).
    pub generation: u64,
    /// Shard count before the re-partition.
    pub shards_before: usize,
    /// Shard count after (the requested target).
    pub shards_after: usize,
    /// How many trailing shards the pass absorbed.
    pub trailing_before: usize,
    /// Entities re-homed into the fresh entity-id-range partition (all
    /// of them — compaction is an offline rebuild).
    pub entities: usize,
    /// How many rebuild attempts the pass took. Always 1 for a
    /// stop-the-world pass; a concurrent pass retries (discarding the
    /// losing rebuild) every time an append moves the generation between
    /// its off-lock rebuild and its swap, so values above 1 count lost
    /// races — appends always win.
    pub attempts: u64,
}

/// Whether the `=1`-valued environment flag `name` is set — the one
/// parser behind every `PIVOTE_*` CI-leg hook.
pub(crate) fn env_flag(name: &str) -> bool {
    std::env::var(name).map(|v| v == "1").unwrap_or(false)
}

/// Whether the `PIVOTE_INCREMENTAL=1` environment leg is active — the CI
/// hook that routes graph construction through the append path.
pub fn incremental_from_env() -> bool {
    env_flag("PIVOTE_INCREMENTAL")
}

/// Whether the `PIVOTE_SCALE=1` environment leg is active — the CI hook
/// that enables the streaming-ingest scale smoke (a ~100k-triple dump
/// streamed through `StreamingIngest` with background maintenance).
pub fn scale_from_env() -> bool {
    env_flag("PIVOTE_SCALE")
}

/// Whether the `PIVOTE_RETRACT=1` environment leg is active — the CI
/// hook that routes graph construction through a mixed insert/delete
/// workload (growth batches interleaved with noise inserts that are
/// then retracted, finishing with a tombstone-reclaiming compaction).
pub fn retract_from_env() -> bool {
    env_flag("PIVOTE_RETRACT")
}

/// Whether the `PIVOTE_REPLICA=1` environment leg is active — the CI
/// hook that routes graph construction through a leader `LiveStore`
/// writing a durable delta log and a follower that tails it, asserting
/// the follower fingerprint-equal to the leader before handing the
/// replicated graph to the experiments.
pub fn replica_from_env() -> bool {
    env_flag("PIVOTE_REPLICA")
}

/// Whether the `PIVOTE_SNAPSHOT=1` environment leg is active — the CI
/// hook that routes the eval harness' queries through the live store's
/// generation-pinned prepared-snapshot read path (publication enabled,
/// every query answered off a published snapshot instead of a fresh
/// lock-scoped context), asserting snapshot-path answers against the
/// lock path along the way.
pub fn snapshot_from_env() -> bool {
    env_flag("PIVOTE_SNAPSHOT")
}

/// Replicate `kg`'s predicate/type/category dictionaries into `b` in
/// global id order, so the builder's dense dictionary ids equal the
/// source graph's — the first half of every id-preserving rebuild
/// (incremental splits, growth splits, and the sharded union rebuild).
pub(crate) fn replicate_dictionaries(b: &mut KgBuilder, kg: &KnowledgeGraph) {
    for p in kg.predicate_ids() {
        b.predicate(kg.predicate_name(p));
    }
    for t in kg.type_ids() {
        b.declare_type(kg.type_name(t));
    }
    for c in kg.category_ids() {
        b.declare_category(kg.category_name(c));
    }
}

/// Intern `e`'s name into `b` and replay all its owned facets — label,
/// types, categories, literals, aliases — the per-entity half of every
/// id-preserving rebuild. One implementation, so a new facet kind added
/// to [`KnowledgeGraph`] has exactly one replay site to extend. Returns
/// the builder-local id (equal to `e` when entities are replayed in
/// ascending id order into a fresh builder).
pub(crate) fn replay_entity_facets(
    b: &mut KgBuilder,
    kg: &KnowledgeGraph,
    e: EntityId,
) -> EntityId {
    let le = b.entity(kg.entity_name(e));
    if let Some(l) = kg.label(e) {
        b.label(le, l);
    }
    for t in kg.types_of(e) {
        b.typed(le, kg.type_name(t));
    }
    for c in kg.categories_of(e) {
        b.categorized(le, kg.category_name(c));
    }
    for (p, lit) in kg.literals(e) {
        b.literal_triple(le, p, lit.clone());
    }
    for a in kg.aliases(e) {
        b.redirect(a.clone(), le);
    }
    le
}

/// Split a finished graph into a base graph plus a [`DeltaBatch`] holding
/// the trailing `1 - fraction` of its entity triples, such that applying
/// the delta to the base reproduces the original graph's extents (and
/// hence its rankings) exactly: the base interns every entity in id
/// order, so the dense id spaces agree.
pub fn split_incremental(kg: &KnowledgeGraph, fraction: f64) -> (KnowledgeGraph, DeltaBatch) {
    let mut b = KgBuilder::new();
    // replicate the full dictionaries and all per-entity facets in id
    // order, so base ids equal source ids
    replicate_dictionaries(&mut b, kg);
    for e in kg.entity_ids() {
        replay_entity_facets(&mut b, kg, e);
    }
    let triples: Vec<_> = kg.entity_triples().collect();
    let cut = ((triples.len() as f64) * fraction.clamp(0.0, 1.0)) as usize;
    for t in &triples[..cut] {
        let o = t.object.as_entity().expect("entity triple");
        b.triple(t.subject, t.predicate, o);
    }
    let mut delta = DeltaBatch::new();
    for t in &triples[cut..] {
        let o = t.object.as_entity().expect("entity triple");
        delta.triple(
            kg.entity_name(t.subject),
            kg.predicate_name(t.predicate),
            kg.entity_name(o),
        );
    }
    (b.finish(), delta)
}

/// Split a finished graph into a base over its first `base_fraction`
/// entities plus **up to** `batches` ordered [`DeltaBatch`]es that each
/// *mint* the next slice of entities — the growth workload that
/// degenerates a [`ShardedGraph`](crate::ShardedGraph): every returned
/// batch introduces new entities, so the sharded apply appends one
/// trailing shard per batch. When the trailing slice holds fewer
/// entities than `batches` the list is shorter (no empty batches are
/// fabricated), and `base_fraction >= 1.0` yields an id-identical clone
/// of `kg` with no batches at all — callers wanting exactly `n`
/// trailing shards should check `batches.len()`.
///
/// The base replicates the full dictionaries (so dense
/// predicate/type/category ids never move) and holds entities
/// `0..cut` with all their facets plus every triple internal to them.
/// Batch `k` declares its entity slice **in ascending id order first**
/// (so the appended global ids equal the source ids), then the slice's
/// facets, then every triple whose later endpoint falls in the slice.
/// Applying all batches therefore reproduces the source graph's extents
/// — and hence its rankings — exactly, through the single-graph or the
/// sharded apply alike.
pub fn split_growth(
    kg: &KnowledgeGraph,
    base_fraction: f64,
    batches: usize,
) -> (KnowledgeGraph, Vec<DeltaBatch>) {
    let n = kg.entity_count();
    let cut = (((n as f64) * base_fraction.clamp(0.0, 1.0)) as usize).min(n);
    let mut b = KgBuilder::new();
    replicate_dictionaries(&mut b, kg);
    for raw in 0..cut as u32 {
        replay_entity_facets(&mut b, kg, EntityId::new(raw));
    }
    let triples: Vec<_> = kg.entity_triples().collect();
    for t in &triples {
        let o = t.object.as_entity().expect("entity triple");
        if (t.subject.index() < cut) && (o.index() < cut) {
            b.triple(t.subject, t.predicate, o);
        }
    }
    let base = b.finish();

    let batches = batches.max(1);
    let chunk = (n - cut).div_ceil(batches).max(1);
    let mut out: Vec<DeltaBatch> = Vec::with_capacity(batches);
    let mut lo = cut;
    while lo < n {
        let hi = (lo + chunk).min(n);
        let mut d = DeltaBatch::new();
        // entities first, ascending, so appended ids equal source ids
        for raw in lo as u32..hi as u32 {
            d.entity(kg.entity_name(EntityId::new(raw)));
        }
        for raw in lo as u32..hi as u32 {
            let e = EntityId::new(raw);
            if let Some(l) = kg.label(e) {
                d.label(kg.entity_name(e), l);
            }
            for t in kg.types_of(e) {
                d.typed(kg.entity_name(e), kg.type_name(t));
            }
            for c in kg.categories_of(e) {
                d.categorized(kg.entity_name(e), kg.category_name(c));
            }
            for (p, lit) in kg.literals(e) {
                d.literal(kg.entity_name(e), kg.predicate_name(p), lit.clone());
            }
            for a in kg.aliases(e) {
                d.redirect(a.clone(), kg.entity_name(e));
            }
        }
        // triples become appendable when their later endpoint exists
        for t in &triples {
            let o = t.object.as_entity().expect("entity triple");
            let latest = t.subject.index().max(o.index());
            if (lo..hi).contains(&latest) {
                d.triple(
                    kg.entity_name(t.subject),
                    kg.predicate_name(t.predicate),
                    kg.entity_name(o),
                );
            }
        }
        out.push(d);
        lo = hi;
    }
    (base, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_builder_records_ops_in_order() {
        let mut d = DeltaBatch::new();
        d.triple("a", "p", "b").typed("a", "T").label("a", "A");
        assert_eq!(d.len(), 3);
        assert!(matches!(d.ops()[0], DeltaOp::Triple { .. }));
        assert!(matches!(d.ops()[2], DeltaOp::Label { .. }));
    }

    #[test]
    fn apply_to_builder_replays_everything() {
        let mut d = DeltaBatch::new();
        d.triple("a", "p", "b")
            .literal("a", "len", Literal::integer(7))
            .typed("a", "T")
            .categorized("b", "C")
            .label("a", "The A")
            .redirect("Ay", "a");
        let mut b = KgBuilder::new();
        d.apply_to_builder(&mut b);
        let kg = b.finish();
        assert_eq!(kg.entity_count(), 2);
        assert_eq!(kg.relation_count(), 1);
        let a = kg.entity("a").unwrap();
        assert_eq!(kg.label(a), Some("The A"));
        assert_eq!(kg.aliases(a), &["Ay".to_owned()]);
        assert!(kg.has_type(a, kg.type_id("T").unwrap()));
    }

    #[test]
    fn split_growth_round_trips_and_grows_one_trailing_shard_per_batch() {
        let kg = crate::datagen::generate(&crate::datagen::DatagenConfig::tiny());
        let (base, batches) = split_growth(&kg, 0.7, 3);
        assert_eq!(batches.len(), 3);
        assert!(base.entity_count() < kg.entity_count());

        // single-graph apply reproduces ids, extents and facets exactly
        let mut single = split_growth(&kg, 0.7, 3).0;
        for d in &batches {
            single.apply(d);
        }
        assert_eq!(single.entity_count(), kg.entity_count());
        assert_eq!(single.relation_count(), kg.relation_count());
        assert_eq!(single.triple_count(), kg.triple_count());
        for e in kg.entity_ids() {
            assert_eq!(single.entity_name(e), kg.entity_name(e), "ids preserved");
            assert_eq!(single.label(e), kg.label(e));
            assert_eq!(single.aliases(e), kg.aliases(e));
            assert_eq!(single.literals(e).count(), kg.literals(e).count());
            for p in kg.out_predicates(e) {
                assert_eq!(single.objects(e, p), kg.objects(e, p));
            }
        }
        for t in kg.type_ids() {
            assert_eq!(single.type_extent(t), kg.type_extent(t));
        }

        // sharded apply: every batch mints entities, so each appends one
        // trailing shard — the degeneration compaction exists to undo
        let mut sg = crate::ShardedGraph::from_graph(&base, 2);
        for (i, d) in batches.iter().enumerate() {
            sg.apply(d);
            assert_eq!(sg.trailing_shard_count(), i + 1);
        }
        assert_eq!(sg.entity_count(), kg.entity_count());
        for t in kg.type_ids() {
            assert_eq!(sg.type_extent(t), kg.type_extent(t).to_vec());
        }
    }

    #[test]
    fn split_round_trips_through_apply() {
        let kg = crate::datagen::generate(&crate::datagen::DatagenConfig::tiny());
        let (mut base, delta) = split_incremental(&kg, 0.5);
        assert!(base.relation_count() < kg.relation_count());
        base.apply(&delta);
        assert_eq!(base.relation_count(), kg.relation_count());
        assert_eq!(base.entity_count(), kg.entity_count());
        for e in kg.entity_ids() {
            assert_eq!(base.entity_name(e), kg.entity_name(e));
            for p in kg.out_predicates(e) {
                assert_eq!(base.objects(e, p), kg.objects(e, p));
            }
        }
    }
}

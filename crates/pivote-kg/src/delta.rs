//! Delta batches: the unit of incremental growth for a live graph.
//!
//! A [`DeltaBatch`] is an ordered list of name-based statements — new
//! triples, literal statements, type/category assertions, labels and
//! aliases, possibly introducing brand-new entities, predicates, types or
//! categories. Names (not ids) keep a batch independent of any particular
//! graph's dictionary state, so one batch can be applied to a single
//! [`KnowledgeGraph`](crate::KnowledgeGraph), to a
//! [`ShardedGraph`](crate::ShardedGraph), or replayed into a fresh
//! [`KgBuilder`] — and because the ops are *ordered*, all three intern new
//! dictionary terms in exactly the same global order, which is what makes
//! append-then-query bit-identical to rebuild-then-query (the
//! `incremental_equivalence` suite enforces this).
//!
//! [`AppliedDelta`] is the receipt an apply returns: the new-entity id
//! range, exactly which feature extents and context extents were touched
//! (the cache-invalidation handle for the execution layers), and a work
//! counter proving the apply did splice-sized work, not a rebuild.

use crate::id::{CategoryId, EntityId, PredicateId, TypeId};
use crate::store::{KgBuilder, KnowledgeGraph};
use crate::triple::Literal;
use serde::{Deserialize, Serialize};

/// One ordered statement of a [`DeltaBatch`]. All references are by name;
/// unknown names intern new dictionary entries on apply, in op order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DeltaOp {
    /// Declare an entity (intern its name without asserting anything).
    Entity {
        /// Entity name.
        name: String,
    },
    /// Declare a predicate (intern without asserting any statement) —
    /// used by the sharded apply to replicate new dictionary terms into
    /// every shard in global order.
    DeclarePredicate {
        /// Predicate name.
        name: String,
    },
    /// Declare a type without asserting membership.
    DeclareType {
        /// Type name.
        name: String,
    },
    /// Declare a category without asserting membership.
    DeclareCategory {
        /// Category name.
        name: String,
    },
    /// An entity-to-entity statement `<s, p, o>`.
    Triple {
        /// Subject entity name.
        s: String,
        /// Predicate name.
        p: String,
        /// Object entity name.
        o: String,
    },
    /// A literal-valued statement `<s, p, "value">`.
    LiteralTriple {
        /// Subject entity name.
        s: String,
        /// Predicate name.
        p: String,
        /// Literal value.
        value: Literal,
    },
    /// An `rdf:type` assertion.
    Typed {
        /// Entity name.
        entity: String,
        /// Type name.
        type_name: String,
    },
    /// A category (`dct:subject`) assertion.
    Categorized {
        /// Entity name.
        entity: String,
        /// Category name.
        category: String,
    },
    /// Set (or overwrite) the `rdfs:label` of an entity.
    Label {
        /// Entity name.
        entity: String,
        /// The label.
        label: String,
    },
    /// A redirect alias pointing at `target`.
    Redirect {
        /// The alias string.
        alias: String,
        /// Target entity name.
        target: String,
    },
    /// A disambiguation alias pointing at `target`.
    Disambiguation {
        /// The alias string.
        alias: String,
        /// Target entity name.
        target: String,
    },
}

/// An ordered batch of statements to append to a live graph.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DeltaBatch {
    ops: Vec<DeltaOp>,
}

impl DeltaBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of ops in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch holds no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The ordered ops.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// Drop all ops, keeping the allocation (for batch reuse in
    /// streaming ingestion loops).
    pub fn clear(&mut self) {
        self.ops.clear();
    }

    /// Push a raw op.
    pub fn push(&mut self, op: DeltaOp) {
        self.ops.push(op);
    }

    /// Declare an entity by name.
    pub fn entity(&mut self, name: impl Into<String>) -> &mut Self {
        self.ops.push(DeltaOp::Entity { name: name.into() });
        self
    }

    /// Declare a predicate by name (dictionary entry only).
    pub fn declare_predicate(&mut self, name: impl Into<String>) -> &mut Self {
        self.ops
            .push(DeltaOp::DeclarePredicate { name: name.into() });
        self
    }

    /// Declare a type by name (dictionary entry only).
    pub fn declare_type(&mut self, name: impl Into<String>) -> &mut Self {
        self.ops.push(DeltaOp::DeclareType { name: name.into() });
        self
    }

    /// Declare a category by name (dictionary entry only).
    pub fn declare_category(&mut self, name: impl Into<String>) -> &mut Self {
        self.ops
            .push(DeltaOp::DeclareCategory { name: name.into() });
        self
    }

    /// Add an entity-to-entity statement `<s, p, o>`.
    pub fn triple(
        &mut self,
        s: impl Into<String>,
        p: impl Into<String>,
        o: impl Into<String>,
    ) -> &mut Self {
        self.ops.push(DeltaOp::Triple {
            s: s.into(),
            p: p.into(),
            o: o.into(),
        });
        self
    }

    /// Add a literal-valued statement.
    pub fn literal(
        &mut self,
        s: impl Into<String>,
        p: impl Into<String>,
        value: Literal,
    ) -> &mut Self {
        self.ops.push(DeltaOp::LiteralTriple {
            s: s.into(),
            p: p.into(),
            value,
        });
        self
    }

    /// Assert `rdf:type` membership.
    pub fn typed(&mut self, entity: impl Into<String>, type_name: impl Into<String>) -> &mut Self {
        self.ops.push(DeltaOp::Typed {
            entity: entity.into(),
            type_name: type_name.into(),
        });
        self
    }

    /// Assert category membership.
    pub fn categorized(
        &mut self,
        entity: impl Into<String>,
        category: impl Into<String>,
    ) -> &mut Self {
        self.ops.push(DeltaOp::Categorized {
            entity: entity.into(),
            category: category.into(),
        });
        self
    }

    /// Set the label of an entity.
    pub fn label(&mut self, entity: impl Into<String>, label: impl Into<String>) -> &mut Self {
        self.ops.push(DeltaOp::Label {
            entity: entity.into(),
            label: label.into(),
        });
        self
    }

    /// Record a redirect alias.
    pub fn redirect(&mut self, alias: impl Into<String>, target: impl Into<String>) -> &mut Self {
        self.ops.push(DeltaOp::Redirect {
            alias: alias.into(),
            target: target.into(),
        });
        self
    }

    /// Record a disambiguation alias.
    pub fn disambiguation(
        &mut self,
        alias: impl Into<String>,
        target: impl Into<String>,
    ) -> &mut Self {
        self.ops.push(DeltaOp::Disambiguation {
            alias: alias.into(),
            target: target.into(),
        });
        self
    }

    /// Replay the batch into a [`KgBuilder`], interning names in exactly
    /// the order [`KnowledgeGraph::apply`] does — the rebuild side of the
    /// append/rebuild equivalence contract: building `base ops + delta
    /// ops` from scratch yields the same dense ids (and therefore
    /// bit-identical rankings) as building `base` and applying the delta.
    pub fn apply_to_builder(&self, b: &mut KgBuilder) {
        for op in &self.ops {
            match op {
                DeltaOp::Entity { name } => {
                    b.entity(name);
                }
                DeltaOp::DeclarePredicate { name } => {
                    b.predicate(name);
                }
                DeltaOp::DeclareType { name } => {
                    b.declare_type(name);
                }
                DeltaOp::DeclareCategory { name } => {
                    b.declare_category(name);
                }
                DeltaOp::Triple { s, p, o } => {
                    let s = b.entity(s);
                    let p = b.predicate(p);
                    let o = b.entity(o);
                    b.triple(s, p, o);
                }
                DeltaOp::LiteralTriple { s, p, value } => {
                    let s = b.entity(s);
                    let p = b.predicate(p);
                    b.literal_triple(s, p, value.clone());
                }
                DeltaOp::Typed { entity, type_name } => {
                    let e = b.entity(entity);
                    b.typed(e, type_name);
                }
                DeltaOp::Categorized { entity, category } => {
                    let e = b.entity(entity);
                    b.categorized(e, category);
                }
                DeltaOp::Label { entity, label } => {
                    let e = b.entity(entity);
                    b.label(e, label.clone());
                }
                DeltaOp::Redirect { alias, target } => {
                    let t = b.entity(target);
                    b.redirect(alias.clone(), t);
                }
                DeltaOp::Disambiguation { alias, target } => {
                    let t = b.entity(target);
                    b.disambiguation(alias.clone(), t);
                }
            }
        }
    }
}

/// The receipt of one applied [`DeltaBatch`]: what changed, and how much
/// work the splice did. This is the invalidation handle the execution
/// layers consume — a cached `p(π|c)` must be dropped iff `π`'s extent
/// (`touched_out`/`touched_in`) or `c`'s extent
/// (`touched_types`/`touched_categories`) was touched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedDelta {
    /// The graph's generation after this apply (monotonic, starts at 0
    /// for a freshly built graph).
    pub generation: u64,
    /// Raw ids of entities created by this apply (`start..end`, appended
    /// at the top of the id space).
    pub new_entities: std::ops::Range<u32>,
    /// `(s, p)` pairs whose outgoing run gained edges — the extents of
    /// features `s:p→` that changed. Sorted, deduplicated.
    pub touched_out: Vec<(EntityId, PredicateId)>,
    /// `(o, p)` pairs whose incoming run gained edges — the extents of
    /// features `o:p←` that changed. Sorted, deduplicated.
    pub touched_in: Vec<(EntityId, PredicateId)>,
    /// Types whose extent grew. Sorted, deduplicated.
    pub touched_types: Vec<TypeId>,
    /// Categories whose extent grew. Sorted, deduplicated.
    pub touched_categories: Vec<CategoryId>,
    /// New (deduplicated) entity-to-entity statements actually inserted.
    pub added_relations: usize,
    /// Literal statements appended.
    pub added_literals: usize,
    /// Elements examined or moved while splicing rows and extents — the
    /// sublinearity witness: appending N triples to a graph of M ≫ N
    /// triples does work proportional to the touched rows, not to M.
    pub work: u64,
}

impl AppliedDelta {
    /// Whether the apply changed any extent the ranking model reads.
    pub fn touched_anything(&self) -> bool {
        !self.touched_out.is_empty()
            || !self.touched_in.is_empty()
            || !self.touched_types.is_empty()
            || !self.touched_categories.is_empty()
            || !self.new_entities.is_empty()
    }
}

/// Whether the `PIVOTE_INCREMENTAL=1` environment leg is active — the CI
/// hook that routes graph construction through the append path.
pub fn incremental_from_env() -> bool {
    std::env::var("PIVOTE_INCREMENTAL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Split a finished graph into a base graph plus a [`DeltaBatch`] holding
/// the trailing `1 - fraction` of its entity triples, such that applying
/// the delta to the base reproduces the original graph's extents (and
/// hence its rankings) exactly: the base interns every entity in id
/// order, so the dense id spaces agree.
pub fn split_incremental(kg: &KnowledgeGraph, fraction: f64) -> (KnowledgeGraph, DeltaBatch) {
    let mut b = KgBuilder::new();
    // replicate the full dictionaries and all per-entity facets in id
    // order, so base ids equal source ids
    for p in kg.predicate_ids() {
        b.predicate(kg.predicate_name(p));
    }
    for t in kg.type_ids() {
        b.declare_type(kg.type_name(t));
    }
    for c in kg.category_ids() {
        b.declare_category(kg.category_name(c));
    }
    for e in kg.entity_ids() {
        let le = b.entity(kg.entity_name(e));
        if let Some(l) = kg.label(e) {
            b.label(le, l);
        }
        for t in kg.types_of(e) {
            b.typed(le, kg.type_name(t));
        }
        for c in kg.categories_of(e) {
            b.categorized(le, kg.category_name(c));
        }
        for (p, lit) in kg.literals(e) {
            b.literal_triple(le, p, lit.clone());
        }
        for a in kg.aliases(e) {
            b.redirect(a.clone(), le);
        }
    }
    let triples: Vec<_> = kg.entity_triples().collect();
    let cut = ((triples.len() as f64) * fraction.clamp(0.0, 1.0)) as usize;
    for t in &triples[..cut] {
        let o = t.object.as_entity().expect("entity triple");
        b.triple(t.subject, t.predicate, o);
    }
    let mut delta = DeltaBatch::new();
    for t in &triples[cut..] {
        let o = t.object.as_entity().expect("entity triple");
        delta.triple(
            kg.entity_name(t.subject),
            kg.predicate_name(t.predicate),
            kg.entity_name(o),
        );
    }
    (b.finish(), delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_builder_records_ops_in_order() {
        let mut d = DeltaBatch::new();
        d.triple("a", "p", "b").typed("a", "T").label("a", "A");
        assert_eq!(d.len(), 3);
        assert!(matches!(d.ops()[0], DeltaOp::Triple { .. }));
        assert!(matches!(d.ops()[2], DeltaOp::Label { .. }));
    }

    #[test]
    fn apply_to_builder_replays_everything() {
        let mut d = DeltaBatch::new();
        d.triple("a", "p", "b")
            .literal("a", "len", Literal::integer(7))
            .typed("a", "T")
            .categorized("b", "C")
            .label("a", "The A")
            .redirect("Ay", "a");
        let mut b = KgBuilder::new();
        d.apply_to_builder(&mut b);
        let kg = b.finish();
        assert_eq!(kg.entity_count(), 2);
        assert_eq!(kg.relation_count(), 1);
        let a = kg.entity("a").unwrap();
        assert_eq!(kg.label(a), Some("The A"));
        assert_eq!(kg.aliases(a), &["Ay".to_owned()]);
        assert!(kg.has_type(a, kg.type_id("T").unwrap()));
    }

    #[test]
    fn split_round_trips_through_apply() {
        let kg = crate::datagen::generate(&crate::datagen::DatagenConfig::tiny());
        let (mut base, delta) = split_incremental(&kg, 0.5);
        assert!(base.relation_count() < kg.relation_count());
        base.apply(&delta);
        assert_eq!(base.relation_count(), kg.relation_count());
        assert_eq!(base.entity_count(), kg.entity_count());
        for e in kg.entity_ids() {
            assert_eq!(base.entity_name(e), kg.entity_name(e));
            for p in kg.out_predicates(e) {
                assert_eq!(base.objects(e, p), kg.objects(e, p));
            }
        }
    }
}

//! # pivote-eval — experiment harness for the PivotE reproduction
//!
//! The demo paper has no numeric tables; DESIGN.md §6 defines the quality
//! experiments that make its claims measurable. This crate provides:
//!
//! - [`metrics`]: MAP, P@k, recall, nDCG, MRR;
//! - [`groundtruth`]: ESE classes from planted categories and search
//!   cases from labels/aliases;
//! - [`harness`]: runners + table renderers for Q1 (ESE quality), Q2
//!   (search quality), Q4 (heat-map structure) and Q5 (pivot quality).
//!
//! The runnable experiment binaries live in `src/bin/exp_*.rs`.

#![warn(missing_docs)]

pub mod groundtruth;
pub mod harness;
pub mod metrics;

pub use groundtruth::{ese_classes, search_cases, seed_trials, EseClass, QueryKind, SearchCase};
pub use harness::{
    default_search_cases, eval_graph, render_ese_table, render_search_table, run_ese_eval,
    run_heatmap_report, run_pivot_eval, run_search_eval, EseEvalConfig, EseResult, HeatmapReport,
    PivotReport, SearchResult, SearchVariant,
};

//! Replication benchmark (`BENCH_9.json`).
//!
//! Drives a mixed insert/retract workload through a leader
//! [`pivote_core::LiveStore`] recording every write in a durable delta
//! log, with a follower [`pivote_core::ReplicaStore`] tailing the log on
//! a background thread. Measures the two numbers that matter for a read
//! replica:
//!
//! - **append → follower-visible lag**: per leader write, the time until
//!   the follower has applied it (p50 / max, µs);
//! - **recovery replay vs snapshot**: replaying the whole log from the
//!   base snapshot, against saving + loading a binary snapshot of the
//!   final graph — the durability trade the log buys.
//!
//! Every comparison is fingerprint-checked: the follower, the recovered
//! store and the snapshot roundtrip must all land on the leader's exact
//! state, so the bench doubles as an end-to-end replication probe.
//!
//! Output: `BENCH_9.json` (override with `BENCH9_OUT`; shrink with
//! `PIVOTE_REPLICA_FILMS`).

use pivote_core::{recover, LiveStore, ReplicaHandle, ReplicaStore};
use pivote_kg::{
    generate, split_growth, DatagenConfig, DeltaBatch, DeltaOp, KnowledgeGraph, ShardedGraph,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn backend_fp(store: &LiveStore) -> u64 {
    let reader = store.read();
    reader.backend().fingerprint()
}

/// The retract mirror of an insert batch's first `fraction` triples —
/// the same churn shape `exp_retract` sweeps.
fn retract_batch(insert: &DeltaBatch, fraction: f64) -> DeltaBatch {
    let triples: Vec<(&str, &str, &str)> = insert
        .ops()
        .iter()
        .filter_map(|op| match op {
            DeltaOp::Triple { s, p, o } => Some((s.as_str(), p.as_str(), o.as_str())),
            _ => None,
        })
        .collect();
    let keep = ((triples.len() as f64) * fraction).round() as usize;
    let mut d = DeltaBatch::new();
    for &(s, p, o) in triples.iter().take(keep) {
        d.retract_triple(s, p, o);
    }
    d
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let films: usize = std::env::var("PIVOTE_REPLICA_FILMS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let config = if films > 0 {
        DatagenConfig {
            films,
            ..DatagenConfig::small()
        }
    } else {
        DatagenConfig::small()
    };
    let kg = generate(&config);
    let (base, batches) = split_growth(&kg, 0.5, 12);
    let wal_path =
        std::env::temp_dir().join(format!("pivote_exp_replica_{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&wal_path);
    let snap_path =
        std::env::temp_dir().join(format!("pivote_exp_replica_{}.snap", std::process::id()));
    let _ = std::fs::remove_file(&snap_path);

    // leader: 2-shard live store, every write logged
    let leader = Arc::new(LiveStore::with_threads(
        ShardedGraph::from_graph(&base, 2),
        1,
    ));
    leader.log_to(&wal_path).expect("leader delta log opens");

    // follower: single-layout base, tailed on a 1ms tick
    let replica = ReplicaStore::open(base.clone(), 1, &wal_path).expect("follower opens");
    let tailer = ReplicaHandle::spawn(replica, Duration::from_millis(1));

    // the workload: every insert batch followed by a 20% retract mirror,
    // each append timed to follower visibility
    let mut lags_us: Vec<f64> = Vec::new();
    let mut applied_batches = 0usize;
    for batch in &batches {
        for delta in [batch.clone(), retract_batch(batch, 0.2)] {
            if delta.ops().is_empty() {
                continue;
            }
            let t = Instant::now();
            leader.append(&delta).expect("leader healthy");
            let target = leader.wal_generation().expect("leader logs");
            assert!(
                tailer.wait_for_generation(target, Duration::from_secs(30)),
                "follower never caught up: {:?}",
                tailer.last_error()
            );
            lags_us.push(t.elapsed().as_secs_f64() * 1e6);
            applied_batches += 1;
        }
    }
    // close with a logged compaction, shipped like any other record
    leader.compact_in_place(2).expect("leader compaction");
    let final_generation = leader.wal_generation().expect("leader logs");
    assert!(
        tailer.wait_for_generation(final_generation, Duration::from_secs(30)),
        "follower must apply the compaction"
    );

    let leader_fp = backend_fp(&leader);
    assert_eq!(
        backend_fp(tailer.store()),
        leader_fp,
        "follower must be fingerprint-equal to the leader"
    );

    lags_us.sort_by(|a, b| a.partial_cmp(b).expect("finite lags"));
    let lag_p50 = percentile(&lags_us, 0.5);
    let lag_p95 = percentile(&lags_us, 0.95);
    let lag_max = lags_us.last().copied().unwrap_or(0.0);

    // recovery: replay the whole log from the base snapshot…
    let t = Instant::now();
    let report = recover(base.clone(), 1, &wal_path).expect("recovery replays");
    let replay_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(report.synced_generation, final_generation);
    assert_eq!(
        backend_fp(&report.store),
        leader_fp,
        "recovery must land on the leader's exact state"
    );

    // …against saving + loading a binary snapshot of the final graph
    let final_graph: KnowledgeGraph = {
        let reader = leader.read();
        reader.backend().to_single()
    };
    let t = Instant::now();
    pivote_kg::save_to_path(&final_graph, &snap_path).expect("snapshot saves");
    let snapshot_save_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let reloaded = pivote_kg::load_from_path(&snap_path).expect("snapshot loads");
    let snapshot_load_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(pivote_kg::fingerprint(&reloaded), leader_fp);

    let log_bytes = std::fs::metadata(&wal_path).map(|m| m.len()).unwrap_or(0);
    let snap_bytes = std::fs::metadata(&snap_path).map(|m| m.len()).unwrap_or(0);

    println!(
        "{:>8} {:>9} {:>11} {:>11} {:>11} {:>10} {:>10} {:>9}",
        "appends",
        "records",
        "lag_p50_us",
        "lag_p95_us",
        "lag_max_us",
        "replay_ms",
        "snap_ms",
        "log_KiB"
    );
    println!(
        "{:>8} {:>9} {:>11.1} {:>11.1} {:>11.1} {:>10.3} {:>10.3} {:>9}",
        applied_batches,
        report.records_applied,
        lag_p50,
        lag_p95,
        lag_max,
        replay_ms,
        snapshot_save_ms + snapshot_load_ms,
        log_bytes / 1024
    );

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"pivote-replica/1\",");
    let _ = writeln!(
        out,
        "  \"label\": \"read replica over the durable delta log: mixed insert/retract batches through a 2-shard logging leader, follower tailing on a 1ms tick; per-append follower-visible lag, then crash-recovery replay of the whole log vs a binary snapshot save+load — every state fingerprint-checked against the leader\","
    );
    let _ = writeln!(out, "  \"films\": {},", config.films);
    let _ = writeln!(out, "  \"triples\": {},", kg.triple_count());
    let _ = writeln!(
        out,
        "  \"command\": \"cargo run --release -p pivote-eval --bin exp_replica\","
    );
    let _ = writeln!(out, "  \"results\": {{");
    let _ = writeln!(out, "    \"appends\": {applied_batches},");
    let _ = writeln!(out, "    \"log_records\": {},", report.records_applied);
    let _ = writeln!(out, "    \"final_generation\": {final_generation},");
    let _ = writeln!(out, "    \"lag_us_p50\": {lag_p50:.1},");
    let _ = writeln!(out, "    \"lag_us_p95\": {lag_p95:.1},");
    let _ = writeln!(out, "    \"lag_us_max\": {lag_max:.1},");
    let _ = writeln!(out, "    \"recovery_replay_ms\": {replay_ms:.3},");
    let _ = writeln!(out, "    \"snapshot_save_ms\": {snapshot_save_ms:.3},");
    let _ = writeln!(out, "    \"snapshot_load_ms\": {snapshot_load_ms:.3},");
    let _ = writeln!(out, "    \"log_bytes\": {log_bytes},");
    let _ = writeln!(out, "    \"snapshot_bytes\": {snap_bytes},");
    let _ = writeln!(out, "    \"fingerprint_equal\": true");
    let _ = writeln!(out, "  }}");
    out.push_str("}\n");

    let out_path = std::env::var("BENCH9_OUT").unwrap_or_else(|_| "BENCH_9.json".to_owned());
    match std::fs::write(&out_path, &out) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => eprintln!("warning: could not write {out_path}: {e}"),
    }
    let _ = std::fs::remove_file(&wal_path);
    let _ = std::fs::remove_file(&snap_path);
}

//! Mixed insert/delete workload benchmark (`BENCH_8.json`).
//!
//! Grows a generated graph through `split_growth` batches and, after
//! each insert batch, retracts a sweep-controlled fraction of the
//! triples that batch just introduced — the INSERT/DELETE stream the
//! retraction subsystem exists for. Per delete-fraction row it records
//! retract throughput, the tombstone mass the workload leaves behind,
//! whether the default `CompactionPolicy` tombstone trigger fires, the
//! `reclaim` cost that returns the memory, and the post-compaction rank
//! latency against a from-scratch rebuild of the same survivors — with
//! the scores checked bit-identical, so the bench doubles as an
//! end-to-end equivalence probe.
//!
//! Output: `BENCH_8.json` (override with `BENCH8_OUT`; shrink with
//! `PIVOTE_RETRACT_FILMS`).

use pivote_core::{Expander, GraphHandle, RankingConfig, SfQuery};
use pivote_kg::{
    generate, split_growth, CompactionPolicy, DatagenConfig, DeltaBatch, DeltaOp, KnowledgeGraph,
};
use std::fmt::Write as _;
use std::time::Instant;

const DELETE_FRACTIONS: [f64; 3] = [0.1, 0.3, 0.5];

fn rank_once(kg: &KnowledgeGraph, seeds: &[String]) -> (f64, Vec<(String, u64)>) {
    let handle = GraphHandle::single_with_threads(kg, 1);
    let ids: Vec<_> = seeds
        .iter()
        .map(|s| handle.entity(s).expect("seed survives the workload"))
        .collect();
    let expander = Expander::with_handle(handle.clone(), RankingConfig::default());
    let t = Instant::now();
    let res = expander.expand(&SfQuery::from_seeds(ids), 10, 10);
    let ms = t.elapsed().as_secs_f64() * 1e3;
    let scores = res
        .entities
        .iter()
        .map(|re| (handle.entity_name(re.entity).to_owned(), re.score.to_bits()))
        .collect();
    (ms, scores)
}

/// The retract mirror of an insert batch's first `fraction` triples.
fn retract_batch(insert: &DeltaBatch, fraction: f64) -> DeltaBatch {
    let triples: Vec<(&str, &str, &str)> = insert
        .ops()
        .iter()
        .filter_map(|op| match op {
            DeltaOp::Triple { s, p, o } => Some((s.as_str(), p.as_str(), o.as_str())),
            _ => None,
        })
        .collect();
    let keep = ((triples.len() as f64) * fraction).round() as usize;
    let mut d = DeltaBatch::new();
    for &(s, p, o) in triples.iter().take(keep) {
        d.retract_triple(s, p, o);
    }
    d
}

fn main() {
    let films: usize = std::env::var("PIVOTE_RETRACT_FILMS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let config = if films > 0 {
        DatagenConfig {
            films,
            ..DatagenConfig::small()
        }
    } else {
        DatagenConfig::small()
    };
    let kg = generate(&config);
    let film = kg.type_id("Film").expect("Film type");
    let seeds: Vec<String> = kg.type_extent(film)[..4]
        .iter()
        .map(|&e| kg.entity_name(e).to_owned())
        .collect();
    let seed_refs: Vec<String> = seeds.clone();
    let policy = CompactionPolicy::default();

    println!(
        "{:>6} {:>9} {:>9} {:>11} {:>10} {:>10} {:>10} {:>10}",
        "del%",
        "inserts",
        "retracts",
        "ret/s",
        "tombstones",
        "reclaim_ms",
        "rank_c_ms",
        "rank_f_ms"
    );
    let mut rows = Vec::new();
    for fraction in DELETE_FRACTIONS {
        let (base, batches) = split_growth(&kg, 0.5, 4);
        let mut live = base;
        let mut inserted_ops = 0usize;
        let mut retract_ops = 0usize;
        let mut insert_ms = 0.0f64;
        let mut retract_ms = 0.0f64;
        for batch in &batches {
            inserted_ops += batch.ops().len();
            let t = Instant::now();
            live.apply(batch);
            insert_ms += t.elapsed().as_secs_f64() * 1e3;

            let undo = retract_batch(batch, fraction);
            retract_ops += undo.ops().len();
            let t = Instant::now();
            live.apply(&undo);
            retract_ms += t.elapsed().as_secs_f64() * 1e3;
        }
        let tombstones = live.tombstone_count();
        let tripped = policy.tombstones_trip(tombstones, live.triple_count());
        let t = Instant::now();
        let reclaimed = live.reclaim();
        let reclaim_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            reclaimed.tombstone_count(),
            0,
            "reclaim must drop every tombstone"
        );

        // a from-scratch rebuild of the same survivors, via the
        // serialized dump — the freshest build there is
        let fresh = pivote_kg::parse(&pivote_kg::serialize(&reclaimed)).expect("dump reparses");
        let (rank_compacted_ms, scores_compacted) = rank_once(&reclaimed, &seed_refs);
        let (rank_fresh_ms, scores_fresh) = rank_once(&fresh, &seed_refs);
        assert_eq!(
            scores_compacted, scores_fresh,
            "post-compaction ranking must be bit-identical to the fresh build"
        );

        let retracts_per_sec = if retract_ms > 0.0 {
            retract_ops as f64 / (retract_ms / 1e3)
        } else {
            0.0
        };
        println!(
            "{:>6.2} {:>9} {:>9} {:>11.1} {:>10} {:>10.3} {:>10.3} {:>10.3}",
            fraction,
            inserted_ops,
            retract_ops,
            retracts_per_sec,
            tombstones,
            reclaim_ms,
            rank_compacted_ms,
            rank_fresh_ms
        );
        rows.push(format!(
            "    {{\"delete_fraction\": {fraction}, \"insert_ops\": {inserted_ops}, \
             \"retract_ops\": {retract_ops}, \"insert_ms\": {insert_ms:.3}, \
             \"retract_ms\": {retract_ms:.3}, \"retracts_per_sec\": {retracts_per_sec:.1}, \
             \"tombstones\": {tombstones}, \"policy_tripped\": {tripped}, \
             \"reclaim_ms\": {reclaim_ms:.3}, \"rank_ms_compacted\": {rank_compacted_ms:.3}, \
             \"rank_ms_fresh\": {rank_fresh_ms:.3}, \"rank_bit_identical\": true}}"
        ));
    }

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"pivote-retract-sweep/1\",");
    let _ = writeln!(
        out,
        "  \"label\": \"mixed insert/delete workload: split_growth batches with a per-batch retract of a swept fraction of the just-inserted triples; tombstone mass, default-policy trigger, reclaim cost, and post-compaction rank latency vs a from-scratch rebuild (scores bit-checked)\","
    );
    let _ = writeln!(out, "  \"films\": {},", config.films);
    let _ = writeln!(out, "  \"triples\": {},", kg.triple_count());
    let _ = writeln!(
        out,
        "  \"command\": \"cargo run --release -p pivote-eval --bin exp_retract\","
    );
    let _ = writeln!(out, "  \"results\": [");
    let n = rows.len();
    for (i, row) in rows.into_iter().enumerate() {
        let comma = if i + 1 == n { "" } else { "," };
        let _ = writeln!(out, "{row}{comma}");
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");

    let out_path = std::env::var("BENCH8_OUT").unwrap_or_else(|_| "BENCH_8.json".to_owned());
    match std::fs::write(&out_path, &out) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => eprintln!("warning: could not write {out_path}: {e}"),
    }
}

//! Experiment Q1 (+ ablations A1/A2): entity-set-expansion quality.
//!
//! Reproduces the paper's core claim — the path-based semantic-feature
//! ranking recommends relevant entities — by measuring MAP/P@10/nDCG
//! against the Jaccard, PPR and frequency-overlap baselines on classes
//! planted by the synthetic KG generator.
//!
//! Usage: `cargo run --release -p pivote-eval --bin exp_ese_quality [films]`

use pivote_baselines::{
    EntityExpansion, FreqOverlapExpansion, JaccardExpansion, PivotEExpansion, PprExpansion,
};
use pivote_eval::{render_ese_table, run_ese_eval, EseEvalConfig};
use pivote_kg::DatagenConfig;

fn main() {
    let films: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);
    eprintln!("generating synthetic KG ({films} films)…");
    let kg = pivote_eval::eval_graph(&DatagenConfig::scaled(films, 7));
    eprintln!(
        "kg: {} entities, {} triples, {} categories",
        kg.entity_count(),
        kg.triple_count(),
        kg.category_count()
    );

    let pivote = PivotEExpansion::default();
    let no_et = PivotEExpansion::without_error_tolerance();
    let no_d = PivotEExpansion::without_discriminability();
    let jaccard = JaccardExpansion;
    let ppr = PprExpansion::default();
    let freq = FreqOverlapExpansion;
    let methods: Vec<&dyn EntityExpansion> = vec![&pivote, &no_et, &no_d, &jaccard, &ppr, &freq];

    let cfg = EseEvalConfig::default();
    let results = run_ese_eval(&kg, &methods, &cfg);
    println!("== Q1/A1/A2: entity set expansion quality (k={}) ==", cfg.k);
    println!("{}", render_ese_table(&results));
    println!(
        "{}",
        serde_json::to_string_pretty(&results).expect("results serialize")
    );
}

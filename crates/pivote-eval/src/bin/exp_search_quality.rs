//! Experiment Q2: keyword entity-search quality.
//!
//! Compares the paper's mixture-of-LM retrieval over the five-field
//! representation against a names-only LM and BM25F, on label, alias
//! (misspelling) and label+type queries.
//!
//! Usage: `cargo run --release -p pivote-eval --bin exp_search_quality [films]`

use pivote_eval::{default_search_cases, render_search_table, run_search_eval, SearchVariant};
use pivote_kg::DatagenConfig;
use pivote_search::{Field, FieldWeights, Scorer, SearchConfig, SearchEngine};

fn main() {
    let films: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);
    eprintln!("generating synthetic KG ({films} films)…");
    let kg = pivote_eval::eval_graph(&DatagenConfig::scaled(films, 7));

    let full = SearchEngine::build(&kg, SearchConfig::default());
    let names_only = {
        let mut cfg = SearchConfig::default();
        cfg.lm.weights = FieldWeights::single(Field::Names);
        SearchEngine::build(&kg, cfg)
    };

    let cases = default_search_cases(&kg, 100);
    eprintln!("{} search cases", cases.len());
    let variants = [
        SearchVariant {
            name: "lm-mixture(5f)",
            engine: &full,
            scorer: Scorer::MixtureLm,
        },
        SearchVariant {
            name: "lm-names-only",
            engine: &names_only,
            scorer: Scorer::MixtureLm,
        },
        SearchVariant {
            name: "bm25f",
            engine: &full,
            scorer: Scorer::Bm25,
        },
    ];
    let results = run_search_eval(&variants, &cases, 50);
    println!("== Q2: entity search quality ==");
    println!("{}", render_search_table(&results));
    println!(
        "{}",
        serde_json::to_string_pretty(&results).expect("results serialize")
    );
}

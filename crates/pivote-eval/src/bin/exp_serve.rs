//! Serving-layer latency benchmark (`BENCH_7.json`).
//!
//! Spawns a real `pivote-serve` [`Server`] on an ephemeral port and
//! drives it over TCP with a mixed read+append load: reader clients
//! issue `rank` and `search` requests while a writer client appends
//! N-Triples deltas, all timed end to end (request line out → response
//! line in). Halfway through, the benchmark **stops the server
//! gracefully and restarts it from the warm-state sidecar**, asserting
//! through the `stats` probe that repeat queries recompute **zero**
//! `p(π|c)` densities — the cold-cache-free restart the serving layer
//! promises — then finishes the load against the second life.
//!
//! The final served state is diffed against a library-only replay of
//! the same deltas (exact serialized bit-identity: one writer means one
//! deterministic append order), so the CI serve leg doubles as an
//! end-to-end equivalence check.
//!
//! Output: p50/p99/max per op class to `BENCH_7.json` (override with
//! `BENCH7_OUT`; shrink the load with `PIVOTE_SERVE_OPS`).
//!
//! A second phase then A/Bs the **read path itself** (`BENCH_10.json`,
//! override with `BENCH10_OUT`): the same mixed load runs once against
//! a lock-path server (`snapshots: false` — every read takes the store
//! lock and builds its context per request, the pre-PR-10 behaviour)
//! and once against the prepared-snapshot path (generation-pinned
//! snapshots, response memo, pre-built search engines), followed by a
//! write-free concurrent-search burst per mode. The snapshot leg is
//! asserted to serve a nonzero memo hit rate and **zero** lock reads —
//! the serve-smoke contract.

use pivote_core::LiveStore;
use pivote_kg::{generate, DatagenConfig, KnowledgeGraph, ShardedGraph};
use pivote_serve::{
    num_field, response_ok, store_with_warm_state, Client, MaintenanceConfig, ServeConfig, Server,
};
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const READERS: usize = 2;

fn usize_env(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One timed request class.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Op {
    Rank,
    Search,
    Append,
}

impl Op {
    fn name(self) -> &'static str {
        match self {
            Op::Rank => "rank",
            Op::Search => "search",
            Op::Append => "append",
        }
    }
}

type Samples = Mutex<Vec<(Op, f64)>>;

fn timed(samples: &Samples, op: Op, f: impl FnOnce() -> serde::Value) {
    let t = Instant::now();
    let v = f();
    let ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(response_ok(&v), "{op:?} failed: {v:?}");
    samples.lock().expect("sample sink healthy").push((op, ms));
}

/// The N-Triples body of append number `i` of life `life`: a fresh
/// entity plus one edge onto an existing seed — deltas that commute and
/// replay deterministically.
fn append_body(life: usize, i: usize, seed: &str) -> String {
    format!(
        "<http://dbpedia.org/resource/ServedBench_{life}_{i}> \
         <http://dbpedia.org/ontology/servedBy> \
         <http://dbpedia.org/resource/{seed}> .\n"
    )
}

/// Drive one life's worth of mixed load: `READERS` reader connections
/// interleaving rank+search with one writer connection appending
/// `appends` deltas. `pace` sleeps the writer between appends and
/// `think` sleeps each reader between iterations, so the load models
/// steady traffic *pressure* (reads racing a continuous write stream)
/// rather than a stampede — on a single-core host an unpaced client
/// swarm turns every sample into a CPU-queueing measurement.
#[allow(clippy::too_many_arguments)]
fn mixed_load(
    addr: SocketAddr,
    seeds: &[String],
    queries: &[&str],
    reads_per_reader: usize,
    appends: usize,
    life: usize,
    pace: Option<Duration>,
    think: Option<Duration>,
    samples: &Samples,
) {
    std::thread::scope(|scope| {
        scope.spawn(move || {
            let mut client = Client::connect(addr).expect("writer connects");
            for i in 0..appends {
                let nt = append_body(life, i, &seeds[i % seeds.len()]);
                timed(samples, Op::Append, || {
                    client.append(&nt).expect("append answers")
                });
                if let Some(pace) = pace {
                    std::thread::sleep(pace);
                }
            }
        });
        for r in 0..READERS {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("reader connects");
                for i in 0..reads_per_reader {
                    let seed = &seeds[(r + i) % seeds.len()];
                    timed(samples, Op::Rank, || {
                        client.rank(&[seed], 10, 10).expect("rank answers")
                    });
                    let query = queries[(r + i) % queries.len()];
                    timed(samples, Op::Search, || {
                        client.search(query, 10).expect("search answers")
                    });
                    if let Some(think) = think {
                        std::thread::sleep(think);
                    }
                }
            });
        }
    });
}

/// Memoize (life 1) / replay (life 2) the fixed probe queries whose
/// densities the warm sidecar must carry across the restart.
fn probe_queries(addr: SocketAddr, seeds: &[String]) {
    let mut client = Client::connect(addr).expect("probe connects");
    for seed in seeds {
        let v = client.rank(&[seed], 10, 10).expect("probe rank");
        assert!(response_ok(&v), "{v:?}");
    }
}

fn cached_probabilities(addr: SocketAddr) -> u64 {
    let mut client = Client::connect(addr).expect("stats connects");
    let stats = client.stats().expect("stats answers");
    assert!(response_ok(&stats), "{stats:?}");
    num_field(&stats, "cached_probabilities").expect("cached_probabilities")
}

fn graceful_stop(server: Server) -> pivote_serve::ShutdownReport {
    let mut client = Client::connect(server.local_addr()).expect("shutdown connects");
    let ack = client.shutdown().expect("shutdown acked");
    assert!(response_ok(&ack), "{ack:?}");
    server.shutdown()
}

/// Nearest-rank percentile of an ascending-sorted slice. An empty slice
/// yields NaN instead of the `len() - 1` underflow panic the old
/// midpoint-rounding version hit.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = (p * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Sorted per-op latency rows `(op, n, p50, p99, max)` from a drained
/// sample sink.
fn op_rows(samples: Samples) -> Vec<(Op, usize, f64, f64, f64)> {
    let mut by_op: Vec<(Op, Vec<f64>)> = [Op::Rank, Op::Search, Op::Append]
        .into_iter()
        .map(|op| (op, Vec::new()))
        .collect();
    for (op, ms) in samples.into_inner().expect("sample sink healthy") {
        by_op
            .iter_mut()
            .find(|(o, _)| *o == op)
            .expect("known op")
            .1
            .push(ms);
    }
    by_op
        .into_iter()
        .map(|(op, mut ms)| {
            assert!(!ms.is_empty(), "no samples for {op:?}");
            ms.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
            let max = *ms.last().expect("non-empty");
            (
                op,
                ms.len(),
                percentile(&ms, 0.50),
                percentile(&ms, 0.99),
                max,
            )
        })
        .collect()
}

/// One mode's outcome in the lock-vs-snapshot A/B.
struct ModeOutcome {
    mode: &'static str,
    rows: Vec<(Op, usize, f64, f64, f64)>,
    memo_hits: u64,
    memo_misses: u64,
    snapshot_reads: u64,
    lock_reads: u64,
    searches_per_s: f64,
}

/// Run the full mixed load plus a write-free concurrent-search burst
/// against a fresh server in the given read-path mode.
#[allow(clippy::too_many_arguments)]
fn run_mode(
    kg: &KnowledgeGraph,
    cores: usize,
    seeds: &[String],
    queries: &[&str],
    reads_per_reader: usize,
    appends: usize,
    snapshots: bool,
    life: usize,
) -> ModeOutcome {
    let mode = if snapshots { "snapshot" } else { "lock" };
    let store = Arc::new(LiveStore::with_threads(
        ShardedGraph::from_graph(kg, 2),
        cores,
    ));
    let config = ServeConfig {
        workers: 4,
        snapshots,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", store, config).expect("bind A/B server");
    let addr = server.local_addr();
    println!("\nBENCH_10 {mode} path on {addr}");

    let samples: Samples = Mutex::new(Vec::new());
    // paced writer + reader think time: identical steady-state traffic
    // in both modes. The write pace spreads the append stream across
    // the whole read phase (~reads × think), so every percentile
    // measures reads *under write pressure* — a front-loaded append
    // burst would leave most samples in a write-free tail and hand the
    // p99 to scheduling luck inside a short churn window
    mixed_load(
        addr,
        seeds,
        queries,
        reads_per_reader,
        appends,
        life,
        Some(Duration::from_millis(40)),
        Some(Duration::from_millis(2)),
        &samples,
    );

    // write-free burst: READERS connections hammering the same queries
    // measures concurrent-search throughput (and, in snapshot mode,
    // guarantees repeat requests land inside one generation)
    let burst = (reads_per_reader * 2).max(8);
    let t = Instant::now();
    std::thread::scope(|scope| {
        for r in 0..READERS {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("burst connects");
                for i in 0..burst {
                    let v = client
                        .search(queries[(r + i) % queries.len()], 10)
                        .expect("burst search answers");
                    assert!(response_ok(&v), "{v:?}");
                }
            });
        }
    });
    let searches_per_s = (READERS * burst) as f64 / t.elapsed().as_secs_f64();

    let mut client = Client::connect(addr).expect("stats connects");
    let stats = client.stats().expect("stats answers");
    assert!(response_ok(&stats), "{stats:?}");
    let memo_hits = num_field(&stats, "memo_hits").expect("memo_hits");
    let memo_misses = num_field(&stats, "memo_misses").expect("memo_misses");
    let snapshot_reads = num_field(&stats, "snapshot_reads").expect("snapshot_reads");
    let lock_reads = num_field(&stats, "lock_reads").expect("lock_reads");
    if snapshots {
        // the serve-smoke contract: the snapshot leg must actually be
        // serving off the snapshot path, memo included
        assert!(
            memo_hits > 0,
            "snapshot mode must serve memo hits under this load: {stats:?}"
        );
        assert_eq!(
            lock_reads, 0,
            "snapshot mode must never take the store lock for a read: {stats:?}"
        );
    } else {
        assert_eq!(
            snapshot_reads, 0,
            "lock mode must never touch the snapshot path: {stats:?}"
        );
        assert_eq!(memo_hits, 0, "lock mode must bypass the memo: {stats:?}");
    }
    drop(graceful_stop(server));

    ModeOutcome {
        mode,
        rows: op_rows(samples),
        memo_hits,
        memo_misses,
        snapshot_reads,
        lock_reads,
        searches_per_s,
    }
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let reads_per_reader = usize_env("PIVOTE_SERVE_OPS", 40);
    let appends_per_life = usize_env("PIVOTE_SERVE_APPENDS", 30);

    let kg = generate(&DatagenConfig::small());
    let film = kg.type_id("Film").expect("Film type");
    let seed_ids: Vec<pivote_kg::EntityId> = kg.type_extent(film)[..4].to_vec();
    let seeds: Vec<String> = {
        let handle = pivote_core::GraphHandle::single_with_threads(&kg, 1);
        seed_ids
            .iter()
            .map(|&e| handle.entity_name(e).to_owned())
            .collect()
    };
    let queries = ["film actor", "director", "award film"];

    let warm_path = PathBuf::from(
        std::env::var("PIVOTE_SERVE_WARM")
            .unwrap_or_else(|_| format!("serve_bench_{}.warm", std::process::id())),
    );
    let _ = std::fs::remove_file(&warm_path);

    let maintenance = MaintenanceConfig {
        policy: pivote_kg::CompactionPolicy {
            max_trailing: 8,
            max_tail_fraction: 0.5,
            max_tombstone_fraction: 0.5,
        },
        target_shards: 2,
        tick: Duration::from_millis(5),
    };
    let config = ServeConfig {
        workers: 4,
        warm_path: Some(warm_path.clone()),
        maintenance: Some(maintenance),
        ..ServeConfig::default()
    };

    let samples: Samples = Mutex::new(Vec::new());

    // ---- life 1: cold start, first half of the load ----
    let store = Arc::new(LiveStore::with_threads(
        ShardedGraph::from_graph(&kg, 2),
        cores,
    ));
    let server =
        Server::bind("127.0.0.1:0", Arc::clone(&store), config.clone()).expect("bind life 1");
    let addr = server.local_addr();
    println!("life 1 (cold) on {addr}: {READERS} readers × {reads_per_reader} rank+search, 1 writer × {appends_per_life} appends");
    mixed_load(
        addr,
        &seeds,
        &queries,
        reads_per_reader,
        appends_per_life,
        1,
        None,
        None,
        &samples,
    );
    // memoize the probe set at the post-append content, then stop
    // gracefully so the sidecar carries exactly those densities
    probe_queries(addr, &seeds);
    let report = graceful_stop(server);
    let saved = report
        .warm_densities_saved
        .unwrap_or_else(|| panic!("warm save failed: {:?}", report.warm_error));
    println!(
        "life 1 stopped at generation {}; {saved} densities persisted",
        report.generation
    );
    let final_life1: KnowledgeGraph = {
        let reader = store.read();
        reader.backend().to_single()
    };
    drop(store);

    // ---- kill/restart mid-benchmark: resume from the warm sidecar ----
    let (store, started_warm) = store_with_warm_state(final_life1, cores, &warm_path);
    assert!(started_warm, "restart must resume from the warm sidecar");
    let server = Server::bind("127.0.0.1:0", Arc::clone(&store), config).expect("bind life 2");
    let addr = server.local_addr();
    let before = cached_probabilities(addr);
    assert_eq!(
        before, saved as u64,
        "the restarted cache must hold every persisted density"
    );
    probe_queries(addr, &seeds);
    let after = cached_probabilities(addr);
    assert_eq!(
        after, before,
        "repeat queries after a warm restart must recompute zero p(π|c) densities"
    );
    println!("life 2 (warm) on {addr}: {before} densities resumed, 0 recomputed");

    // ---- life 2: second half of the load ----
    mixed_load(
        addr,
        &seeds,
        &queries,
        reads_per_reader,
        appends_per_life,
        2,
        None,
        None,
        &samples,
    );
    let report = graceful_stop(server);
    println!("life 2 stopped at generation {}", report.generation);

    // ---- equivalence: served state == library-only replay ----
    // one writer per life ⇒ one deterministic append order ⇒ the
    // serialized graphs must be bit-identical, not merely set-equal
    let mut replay = kg;
    for life in 1..=2 {
        for i in 0..appends_per_life {
            let mut d = pivote_kg::DeltaBatch::new();
            d.triple(
                format!("ServedBench_{life}_{i}"),
                "servedBy",
                seeds[i % seeds.len()].clone(),
            );
            replay.apply(&d);
        }
    }
    let served = {
        let reader = store.read();
        pivote_kg::serialize(&reader.backend().to_single())
    };
    assert_eq!(
        served,
        pivote_kg::serialize(&replay),
        "served state must equal the library-only replay"
    );
    println!(
        "served state equals the library-only replay ({} entities)",
        replay.entity_count()
    );
    let _ = std::fs::remove_file(&warm_path);

    // ---- report ----
    let mut by_op: Vec<(Op, Vec<f64>)> = [Op::Rank, Op::Search, Op::Append]
        .into_iter()
        .map(|op| (op, Vec::new()))
        .collect();
    for (op, ms) in samples.into_inner().expect("sample sink healthy") {
        by_op
            .iter_mut()
            .find(|(o, _)| *o == op)
            .expect("known op")
            .1
            .push(ms);
    }

    println!(
        "\n{:>8} {:>6} {:>10} {:>10} {:>10}",
        "op", "n", "p50_ms", "p99_ms", "max_ms"
    );
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"pivote-serve-latency/1\",");
    let _ = writeln!(
        out,
        "  \"label\": \"serving-layer latency under mixed read+append load, with a warm kill/restart mid-benchmark\","
    );
    let _ = writeln!(out, "  \"host_cpus\": {cores},");
    let _ = writeln!(out, "  \"workers\": 4,");
    let _ = writeln!(out, "  \"readers\": {READERS},");
    let _ = writeln!(out, "  \"reads_per_reader_per_life\": {reads_per_reader},");
    let _ = writeln!(out, "  \"appends_per_life\": {appends_per_life},");
    let _ = writeln!(out, "  \"warm_densities_saved\": {saved},");
    let _ = writeln!(out, "  \"density_recomputes_after_restart\": 0,");
    let _ = writeln!(
        out,
        "  \"command\": \"cargo run --release -p pivote-eval --bin exp_serve\","
    );
    let _ = writeln!(out, "  \"results\": [");
    let groups = by_op.len();
    for (g, (op, mut ms)) in by_op.into_iter().enumerate() {
        assert!(!ms.is_empty(), "no samples for {op:?}");
        ms.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let (p50, p99, max) = (
            percentile(&ms, 0.50),
            percentile(&ms, 0.99),
            *ms.last().expect("non-empty"),
        );
        println!(
            "{:>8} {:>6} {:>10.3} {:>10.3} {:>10.3}",
            op.name(),
            ms.len(),
            p50,
            p99,
            max
        );
        let comma = if g + 1 == groups { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"op\": \"{}\", \"requests\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"max_ms\": {:.3}}}{comma}",
            op.name(),
            ms.len(),
            p50,
            p99,
            max
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");

    let out_path = std::env::var("BENCH7_OUT").unwrap_or_else(|_| "BENCH_7.json".to_owned());
    match std::fs::write(&out_path, &out) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => eprintln!("warning: could not write {out_path}: {e}"),
    }

    // ---- BENCH_10: lock path vs prepared-snapshot path, same load ----
    // 25× the BENCH_7 read count: with nearest-rank percentiles the
    // tail must be a population deep enough that the p99 is an
    // averaged quantile of steady-state behaviour, not a handful of
    // scheduler-jitter outliers (single-core hosts). The append count
    // scales with it — one append per ~12 read iterations per
    // connection — so the paced write stream spans the entire read
    // phase and every percentile measures reads under write pressure
    let ab_reads = usize_env("PIVOTE_SERVE_AB_OPS", reads_per_reader * 25);
    let ab_appends = (ab_reads / 12).max(appends_per_life);
    let modes = [
        run_mode(
            &replay, cores, &seeds, &queries, ab_reads, ab_appends, false, 3,
        ),
        run_mode(
            &replay, cores, &seeds, &queries, ab_reads, ab_appends, true, 4,
        ),
    ];

    println!(
        "\n{:>10} {:>8} {:>6} {:>10} {:>10} {:>10}",
        "mode", "op", "n", "p50_ms", "p99_ms", "max_ms"
    );
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"pivote-serve-snapshot-path/1\",");
    let _ = writeln!(
        out,
        "  \"label\": \"lock-path vs prepared-snapshot read path under the same mixed read+append load, plus a write-free concurrent-search burst\","
    );
    let _ = writeln!(out, "  \"host_cpus\": {cores},");
    let _ = writeln!(out, "  \"workers\": 4,");
    let _ = writeln!(out, "  \"readers\": {READERS},");
    let _ = writeln!(out, "  \"reads_per_reader\": {ab_reads},");
    let _ = writeln!(out, "  \"appends\": {ab_appends},");
    let _ = writeln!(
        out,
        "  \"search_burst_per_reader\": {},",
        (ab_reads * 2).max(8)
    );
    if cores == 1 {
        let _ = writeln!(
            out,
            "  \"cpu_caveat\": \"single-core host: snapshot-path wins come from memo hits, \
             pre-built search engines and lock avoidance, not from parallel search\","
        );
    }
    let _ = writeln!(
        out,
        "  \"command\": \"cargo run --release -p pivote-eval --bin exp_serve\","
    );
    let _ = writeln!(out, "  \"modes\": [");
    for (m, outcome) in modes.iter().enumerate() {
        let served = outcome.memo_hits + outcome.memo_misses;
        let hit_rate = if served == 0 {
            0.0
        } else {
            outcome.memo_hits as f64 / served as f64
        };
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"mode\": \"{}\",", outcome.mode);
        let _ = writeln!(out, "      \"memo_hits\": {},", outcome.memo_hits);
        let _ = writeln!(out, "      \"memo_misses\": {},", outcome.memo_misses);
        let _ = writeln!(out, "      \"memo_hit_rate\": {hit_rate:.4},");
        let _ = writeln!(out, "      \"snapshot_reads\": {},", outcome.snapshot_reads);
        let _ = writeln!(out, "      \"lock_reads\": {},", outcome.lock_reads);
        let _ = writeln!(
            out,
            "      \"concurrent_search_throughput_per_s\": {:.1},",
            outcome.searches_per_s
        );
        let _ = writeln!(out, "      \"results\": [");
        let rows = outcome.rows.len();
        for (g, (op, n, p50, p99, max)) in outcome.rows.iter().enumerate() {
            println!(
                "{:>10} {:>8} {:>6} {:>10.3} {:>10.3} {:>10.3}",
                outcome.mode,
                op.name(),
                n,
                p50,
                p99,
                max
            );
            let comma = if g + 1 == rows { "" } else { "," };
            let _ = writeln!(
                out,
                "        {{\"op\": \"{}\", \"requests\": {n}, \"p50_ms\": {p50:.3}, \
                 \"p99_ms\": {p99:.3}, \"max_ms\": {max:.3}}}{comma}",
                op.name()
            );
        }
        let _ = writeln!(out, "      ]");
        let comma = if m + 1 == modes.len() { "" } else { "," };
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");

    let out_path = std::env::var("BENCH10_OUT").unwrap_or_else(|_| "BENCH_10.json".to_owned());
    match std::fs::write(&out_path, &out) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => eprintln!("warning: could not write {out_path}: {e}"),
    }
}

//! Experiment Q4: heat-map structure (Fig. 3-f).
//!
//! Checks that the seven-level quantization is meaningful: the level
//! histogram, and — per level — the fraction of cells explained by a
//! *direct* feature match. Darker levels should be increasingly
//! dominated by direct matches; light levels by category-smoothed
//! correlation.
//!
//! Usage: `cargo run --release -p pivote-eval --bin exp_heatmap [films]`

use pivote_eval::run_heatmap_report;
use pivote_kg::DatagenConfig;

fn main() {
    let films: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);
    let kg = pivote_eval::eval_graph(&DatagenConfig::scaled(films, 7));
    let film = kg.type_id("Film").expect("Film type");
    let seeds = &kg.type_extent(film)[..2];
    let report = run_heatmap_report(&kg, seeds, 20, 15);

    println!(
        "== Q4: heat-map structure (matrix {}x{}) ==",
        report.dims.0, report.dims.1
    );
    println!("{:>5} {:>8} {:>14}", "level", "cells", "direct-match%");
    for l in 0..7 {
        println!(
            "{:>5} {:>8} {:>13.1}%",
            l,
            report.histogram[l],
            report.direct_fraction[l] * 100.0
        );
    }
    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("report serializes")
    );
}

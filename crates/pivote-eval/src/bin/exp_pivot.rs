//! Experiment Q5: pivot (browse) quality (§3.2).
//!
//! "Users can flexibly switch to the relevant entity domains (e.g., Actor
//! and Director) for exploration via the semantic features … rather than
//! blindly leap to irrelevant ones." Measures the fraction of pivots
//! from a source domain that land in a type statistically coupled to it.
//!
//! Usage: `cargo run --release -p pivote-eval --bin exp_pivot [films]`

use pivote_eval::run_pivot_eval;
use pivote_kg::DatagenConfig;

fn main() {
    let films: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);
    let kg = pivote_eval::eval_graph(&DatagenConfig::scaled(films, 7));

    println!("== Q5: pivot destinations vs type-coupling statistics ==");
    println!(
        "{:<14} {:>9} {:>9} {:>9}",
        "source type", "pivots", "coupled", "success"
    );
    for type_name in ["Film", "Actor", "Director", "Book"] {
        let Some(t) = kg.type_id(type_name) else {
            continue;
        };
        let report = run_pivot_eval(&kg, t, 50);
        println!(
            "{:<14} {:>9} {:>9} {:>8.1}%",
            type_name,
            report.attempted,
            report.coupled,
            report.success_rate() * 100.0
        );
    }
}

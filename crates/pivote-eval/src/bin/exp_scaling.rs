//! Experiment Q3: efficiency at knowledge-graph scale (the paper's
//! challenge (2): "millions of entities … recommend relevant entities and
//! semantic features effectively and efficiently").
//!
//! Sweeps the synthetic KG size and reports wall-clock latency of the
//! three interactive operations — feature ranking, entity ranking, and
//! the full matrix (both + heat map) — for:
//!
//! - the single-graph [`pivote_core::QueryContext`] at 1 thread and at
//!   all cores, and
//! - the sharded backend ([`pivote_core::ShardedContext`] over a
//!   [`pivote_kg::ShardedGraph`]) at 1, 2 and 4 shards,
//!
//! so both the thread-scaling and the shard-scaling of the shared
//! execution layer are visible per scale. All rows are also written as
//! JSON to `BENCH_2.json` (override the path with `BENCH_OUT`).
//!
//! A second sweep measures the **incremental store**: the trailing 10% of
//! each graph's entity triples are split off as a `DeltaBatch` and
//! appended via `KnowledgeGraph::apply`, against a from-scratch rebuild
//! of the same union. Each row records wall-clock, the apply's work
//! counter and its ratio to the graph size — the witness that appending
//! N triples to a graph of M ≫ N triples does splice-sized work, not an
//! O(M) rebuild. Rows go to `BENCH_3.json` (override with `BENCH3_OUT`).
//!
//! A third sweep measures **compaction** at the largest size: the
//! trailing 10% of the entities are re-applied as 1 / 8 / 32
//! entity-minting batches (`split_growth`), each appending a trailing
//! shard to a 2-shard partition. Rows record interactive-operation
//! latency on the degenerate partition, the wall-clock of
//! `ShardedGraph::compact(2)`, latency on the compacted partition, and —
//! the acceptance bar — latency on a *fresh* `ShardedGraph::from_graph`
//! at the same shard count: post-compaction must sit within noise of
//! fresh. Rows go to `BENCH_4.json` (override with `BENCH4_OUT`).
//!
//! A fifth sweep measures **streaming ingest** at the 1M+-triple scale:
//! each size's dump is serialized to a temp file, dropped from memory,
//! and streamed back through `StreamingIngest` over a `LiveStore` in
//! bounded batches — recording triples/sec, peak/final resident bytes
//! (via a counting global allocator), the stream-side overhead above the
//! store (the bounded-by-batch witness), and `rank_entities` latency
//! sampled from live readers *during* the ingest. A `per_op` row
//! (`max_ops = 1`) at the ~100k-triple scale is the pre-batching
//! baseline the intern/splice optimization is measured against, and a
//! `maintained` row streams through a 2-shard partition with the
//! background maintenance thread absorbing trailing shards mid-ingest.
//! Rows go to `BENCH_6.json` (override with `BENCH6_OUT`; cap the sweep
//! with `PIVOTE_SCALE_FILMS`).
//!
//! Usage: `cargo run --release -p pivote-eval --bin exp_scaling [max_films]`

use pivote_core::{
    Expander, GraphHandle, HeatMap, LiveStore, MaintenanceHandle, RankingConfig, SfQuery,
    StreamingIngest,
};
use pivote_kg::{
    generate, ntriples, split_growth, split_incremental, CompactionPolicy, DatagenConfig, EntityId,
    KgBuilder, KnowledgeGraph, ShardedGraph,
};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Counting wrapper over the system allocator: tracks current and peak
/// resident bytes so the streaming sweep can report real memory numbers
/// without an external profiler. Relaxed atomics — the bench is
/// effectively single-threaded and the counters are indicative, not a
/// synchronization mechanism.
mod alloc_counter {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicUsize, Ordering};

    pub struct CountingAlloc;

    static CURRENT: AtomicUsize = AtomicUsize::new(0);
    static PEAK: AtomicUsize = AtomicUsize::new(0);

    // SAFETY: delegates every allocation verbatim to `System`; the
    // default `realloc`/`alloc_zeroed` route through `alloc`/`dealloc`,
    // so the counters see every byte.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = unsafe { System.alloc(layout) };
            if !p.is_null() {
                let now = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
                PEAK.fetch_max(now, Ordering::Relaxed);
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) };
            CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
        }
    }

    /// Bytes currently allocated.
    pub fn current() -> usize {
        CURRENT.load(Ordering::Relaxed)
    }

    /// High-water mark since the last [`reset_peak`].
    pub fn peak() -> usize {
        PEAK.load(Ordering::Relaxed)
    }

    /// Restart peak tracking from the current level.
    pub fn reset_peak() {
        PEAK.store(current(), Ordering::Relaxed);
    }
}

#[global_allocator]
static ALLOC: alloc_counter::CountingAlloc = alloc_counter::CountingAlloc;

/// The shared JSON preamble of every `BENCH_*.json` this binary writes:
/// schema, label, host cpu count, the thread accounting, and the
/// single-core caveat — uniform across writers so no bench file ships
/// without its host context again.
///
/// Schema and label collisions are a **hard error**: two writers
/// claiming the same identity means two bench files shadowing each
/// other (exactly how the serving bench almost shipped as the already
/// taken `BENCH_6.json`), so the process aborts rather than publishing
/// ambiguous results.
fn bench_header(schema: &str, label: &str, cores: usize, threads: &str) -> String {
    use std::sync::Mutex;
    static CLAIMED: Mutex<Vec<(String, String)>> = Mutex::new(Vec::new());
    {
        let mut claimed = CLAIMED.lock().expect("bench registry healthy");
        for (s, l) in claimed.iter() {
            assert!(
                s != schema,
                "bench_header schema collision: {schema:?} already written under label {l:?}"
            );
            assert!(
                l != label,
                "bench_header label collision: {label:?} already written under schema {s:?}"
            );
        }
        claimed.push((schema.to_owned(), label.to_owned()));
    }
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"{schema}\",");
    let _ = writeln!(out, "  \"label\": \"{label}\",");
    let _ = writeln!(out, "  \"host_cpus\": {cores},");
    let _ = writeln!(out, "  \"threads\": {threads},");
    let caveat = if cores == 1 {
        "measured on a single-core host: every parallel fan-out (threads, shards, background \
         maintenance) serializes, so scaling rows measure overhead rather than speedup and no \
         threads_{1,N} pair exists"
            .to_owned()
    } else {
        format!(
            "measured on a {cores}-core host; threads_{{1,N}} pairs record genuine parallel \
             speedup"
        )
    };
    let _ = writeln!(out, "  \"cpu_caveat\": \"{caveat}\",");
    let _ = writeln!(
        out,
        "  \"command\": \"cargo run --release -p pivote-eval --bin exp_scaling\","
    );
    out
}

#[derive(Clone, Copy)]
struct Measured {
    feat_ms: f64,
    ent_ms: f64,
    matrix_ms: f64,
}

/// One reported configuration: `shards == 0` is the single-graph backend.
struct Row {
    films: usize,
    entities: usize,
    triples: usize,
    shards: usize,
    threads: usize,
    m: Measured,
}

fn measure(handle: &GraphHandle<'_>, seeds: &[EntityId]) -> Measured {
    let expander = Expander::with_handle(handle.clone(), RankingConfig::default());
    // warm the context cache once so measurements reflect steady state
    let _ = expander.ranker().rank_features(seeds);

    let t = Instant::now();
    let features = expander.ranker().rank_features(seeds);
    let feat_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let entities = expander.ranker().rank_entities(seeds, &features);
    let ent_ms = t.elapsed().as_secs_f64() * 1e3;
    let _ = entities;

    let t = Instant::now();
    let res = expander.expand(&SfQuery::from_seeds(seeds.to_vec()), 20, 15);
    let axis: Vec<EntityId> = res.entities.iter().map(|re| re.entity).collect();
    let _hm = HeatMap::compute(expander.ranker(), &axis, &res.features);
    let matrix_ms = t.elapsed().as_secs_f64() * 1e3;

    Measured {
        feat_ms,
        ent_ms,
        matrix_ms,
    }
}

fn print_row(r: &Row) {
    let backend = if r.shards == 0 {
        "single".to_owned()
    } else {
        format!("shard-{}", r.shards)
    };
    println!(
        "{:>8} {:>9} {:>9} {:>8} {:>4} {:>13.2} {:>13.2} {:>13.2}",
        r.films, r.entities, r.triples, backend, r.threads, r.m.feat_ms, r.m.ent_ms, r.m.matrix_ms
    );
}

fn write_json(rows: &[Row], cores: usize, path: &str) {
    let mut out = bench_header(
        "pivote-shard-scaling/3",
        "Q3 scaling sweep: single vs sharded backend (shards=0 means single)",
        cores,
        "\"per-row (threads field)\"",
    );
    let _ = writeln!(out, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"films\": {}, \"entities\": {}, \"triples\": {}, \"shards\": {}, \
             \"threads\": {}, \"rank_features_ms\": {:.3}, \"rank_entities_ms\": {:.3}, \
             \"matrix_ms\": {:.3}}}{comma}",
            r.films,
            r.entities,
            r.triples,
            r.shards,
            r.threads,
            r.m.feat_ms,
            r.m.ent_ms,
            r.m.matrix_ms
        );
    }
    let _ = writeln!(out, "  ],");
    // `thread_pairs` joins each configuration's 1-thread row with its
    // full-fan-out row so a multi-core host records *speedup* directly
    // (ROADMAP: every bench host so far was single-core, where these
    // pairs cannot exist and the cpu_caveat explains the absence).
    let pairs: Vec<(&Row, &Row)> = rows
        .iter()
        .filter(|lo| lo.threads == 1)
        .filter_map(|lo| {
            rows.iter()
                .find(|hi| hi.films == lo.films && hi.shards == lo.shards && hi.threads > 1)
                .map(|hi| (lo, hi))
        })
        .collect();
    let _ = writeln!(out, "  \"thread_pairs\": [");
    for (i, (lo, hi)) in pairs.iter().enumerate() {
        let comma = if i + 1 == pairs.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"films\": {}, \"shards\": {}, \"threads_hi\": {}, \
             \"rank_entities_threads_1_ms\": {:.3}, \"rank_entities_threads_{}_ms\": {:.3}, \
             \"rank_entities_speedup\": {:.3}}}{comma}",
            lo.films,
            lo.shards,
            hi.threads,
            lo.m.ent_ms,
            hi.threads,
            hi.m.ent_ms,
            if hi.m.ent_ms > 0.0 {
                lo.m.ent_ms / hi.m.ent_ms
            } else {
                0.0
            }
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("\nwrote {} rows to {path}", rows.len());
    }
}

fn sweep(kg: &KnowledgeGraph, films: usize, cores: usize, rows: &mut Vec<Row>) {
    let film = kg.type_id("Film").expect("Film type");
    let seeds: Vec<EntityId> = kg.type_extent(film)[..3].to_vec();
    let (entities, triples) = (kg.entity_count(), kg.triple_count());

    // single backend: sequential and all-cores
    let mut thread_counts = vec![1];
    if cores > 1 {
        thread_counts.push(cores);
    }
    for &threads in &thread_counts {
        let handle = GraphHandle::single_with_threads(kg, threads);
        let row = Row {
            films,
            entities,
            triples,
            shards: 0,
            threads,
            m: measure(&handle, &seeds),
        };
        print_row(&row);
        rows.push(row);
    }

    // sharded backend: 1, 2 and 4 shards. On a multi-core host each
    // shard count is measured at 1 thread AND at the full fan-out
    // (min(shards, cores)), so every sharded configuration carries a
    // threads_{1,N} pair and the first multi-core run records speedup;
    // on a single-core host only the 1-thread row exists and the
    // cpu_caveat says why
    for shards in [1usize, 2, 4] {
        let sg = ShardedGraph::from_graph(kg, shards);
        let mut shard_threads = vec![1usize];
        let fanout = shards.min(cores.max(1));
        if fanout > 1 {
            shard_threads.push(fanout);
        }
        for &threads in &shard_threads {
            let handle = GraphHandle::sharded_with_threads(&sg, threads);
            let row = Row {
                films,
                entities,
                triples,
                shards,
                threads,
                m: measure(&handle, &seeds),
            };
            print_row(&row);
            rows.push(row);
        }
    }
}

/// One append-throughput measurement: delta size, wall-clock of the
/// in-place apply vs a from-scratch rebuild of the union, and the
/// apply's work counter.
struct AppendRow {
    films: usize,
    /// Fraction of the entity triples the delta holds (`1 - split`).
    delta_fraction: f64,
    base_triples: usize,
    delta_triples: usize,
    append_ms: f64,
    rebuild_ms: f64,
    work: u64,
    /// `work / union relation count` — stays ≪ 1 when the splice is
    /// doing row-proportional work instead of a rebuild.
    work_ratio: f64,
}

fn append_sweep(kg: &KnowledgeGraph, films: usize, fraction: f64) -> AppendRow {
    let (mut base, delta) = split_incremental(kg, fraction);
    let base_triples = base.relation_count();
    let t = Instant::now();
    let receipt = base.apply(&delta);
    let append_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(base.relation_count(), kg.relation_count(), "union restored");

    // the alternative the incremental store replaces: rebuild everything
    let t = Instant::now();
    let rebuilt = split_incremental(kg, 1.0).0;
    let rebuild_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(rebuilt.relation_count(), kg.relation_count());

    AppendRow {
        films,
        delta_fraction: 1.0 - fraction,
        base_triples,
        delta_triples: receipt.added_relations,
        append_ms,
        rebuild_ms,
        work: receipt.work,
        work_ratio: receipt.work as f64 / kg.relation_count().max(1) as f64,
    }
}

fn print_append_row(r: &AppendRow) {
    println!(
        "{:>8} {:>7.1}% {:>12} {:>12} {:>11.2} {:>11.2} {:>10} {:>10.4}",
        r.films,
        r.delta_fraction * 100.0,
        r.base_triples,
        r.delta_triples,
        r.append_ms,
        r.rebuild_ms,
        r.work,
        r.work_ratio
    );
}

fn write_append_json(rows: &[AppendRow], cores: usize, path: &str) {
    let mut out = bench_header(
        "pivote-append-throughput/2",
        "incremental store: apply() of the trailing delta_fraction of the entity triples \
         (bulk 10% and small-batch 0.2% rows per size) vs from-scratch rebuild; work is \
         the splice's element counter",
        cores,
        "1",
    );
    let _ = writeln!(out, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"films\": {}, \"delta_fraction\": {:.3}, \"base_triples\": {}, \
             \"delta_triples\": {}, \"append_ms\": {:.3}, \"rebuild_ms\": {:.3}, \
             \"append_work\": {}, \"work_over_union_triples\": {:.5}}}{comma}",
            r.films,
            r.delta_fraction,
            r.base_triples,
            r.delta_triples,
            r.append_ms,
            r.rebuild_ms,
            r.work,
            r.work_ratio
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("\nwrote {} rows to {path}", rows.len());
    }
}

/// One compaction measurement: the same interactive operations on the
/// degenerate (grown) partition, on the compacted partition, and on a
/// fresh partition of the union, plus the compaction pass's wall-clock.
struct CompactRow {
    films: usize,
    trailing: usize,
    shards_before: usize,
    target: usize,
    threads: usize,
    pre: Measured,
    post: Measured,
    fresh: Measured,
    compact_ms: f64,
}

fn compaction_sweep(kg: &KnowledgeGraph, films: usize, cores: usize) -> Vec<CompactRow> {
    let film = kg.type_id("Film").expect("Film type");
    let seeds: Vec<EntityId> = kg.type_extent(film)[..3].to_vec();
    let target = 2usize;
    let threads = target.min(cores.max(1));
    // the acceptance bar: a fresh partition of the union at the target
    // shard count (what compaction is supposed to restore)
    let fresh_sg = ShardedGraph::from_graph(kg, target);
    let fresh = measure(
        &GraphHandle::sharded_with_threads(&fresh_sg, threads),
        &seeds,
    );

    [1usize, 8, 32]
        .into_iter()
        .map(|trailing| {
            let (base, batches) = split_growth(kg, 0.9, trailing);
            let mut sg = ShardedGraph::from_graph(&base, target);
            for b in &batches {
                sg.apply(b);
            }
            let shards_before = sg.shard_count();
            // same worker-thread count as the post/fresh measurements,
            // so the rows isolate partition shape, not parallelism
            let pre = measure(&GraphHandle::sharded_with_threads(&sg, threads), &seeds);
            let t = Instant::now();
            let sg = sg.compact(target);
            let compact_ms = t.elapsed().as_secs_f64() * 1e3;
            let post = measure(&GraphHandle::sharded_with_threads(&sg, threads), &seeds);
            CompactRow {
                films,
                trailing: batches.len(),
                shards_before,
                target,
                threads,
                pre,
                post,
                fresh,
                compact_ms,
            }
        })
        .collect()
}

fn print_compact_row(r: &CompactRow) {
    println!(
        "{:>8} {:>9} {:>7} {:>7} {:>12.2} {:>12.2} {:>12.2} {:>11.2}",
        r.films,
        r.trailing,
        r.shards_before,
        r.target,
        r.pre.ent_ms,
        r.post.ent_ms,
        r.fresh.ent_ms,
        r.compact_ms
    );
}

fn write_compact_json(rows: &[CompactRow], cores: usize, path: &str) {
    let mut out = bench_header(
        "pivote-compaction/2",
        "live shard compaction: rank latency on a partition grown by N trailing shards \
         (pre), after ShardedGraph::compact(2) (post), and on a fresh from_graph at the \
         same shard count; compact_ms is the re-partition wall-clock",
        cores,
        "\"per-row (threads field)\"",
    );
    let _ = writeln!(out, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"films\": {}, \"trailing_shards\": {}, \"shards_before\": {}, \
             \"target_shards\": {}, \"threads\": {}, \
             \"pre_rank_features_ms\": {:.3}, \"pre_rank_entities_ms\": {:.3}, \
             \"post_rank_features_ms\": {:.3}, \"post_rank_entities_ms\": {:.3}, \
             \"fresh_rank_features_ms\": {:.3}, \"fresh_rank_entities_ms\": {:.3}, \
             \"compact_ms\": {:.3}}}{comma}",
            r.films,
            r.trailing,
            r.shards_before,
            r.target,
            r.threads,
            r.pre.feat_ms,
            r.pre.ent_ms,
            r.post.feat_ms,
            r.post.ent_ms,
            r.fresh.feat_ms,
            r.fresh.ent_ms,
            r.compact_ms
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("\nwrote {} rows to {path}", rows.len());
    }
}

/// One blocked-time measurement: queries hammering a live store while a
/// compaction pass runs, under the stop-the-world path
/// (`compact_in_place`) vs the off-lock path (`compact_concurrent`).
/// On a single-core host throughput is meaningless, so the row reports
/// **blocked time**: how long each query waited to acquire its read
/// guard while the pass was in flight.
struct LiveCompactRow {
    films: usize,
    mode: &'static str,
    trailing: usize,
    compact_ms: f64,
    queries: usize,
    max_blocked_ms: f64,
    mean_blocked_ms: f64,
}

fn live_compaction_sweep(kg: &KnowledgeGraph, films: usize) -> Vec<LiveCompactRow> {
    let film = kg.type_id("Film").expect("Film type");
    let seeds: Vec<EntityId> = kg.type_extent(film)[..3].to_vec();
    let cfg = RankingConfig::default();
    ["in_place", "concurrent"]
        .into_iter()
        .map(|mode| {
            let (base, batches) = split_growth(kg, 0.9, 32);
            let store = LiveStore::with_threads(ShardedGraph::from_graph(&base, 2), 1);
            for b in &batches {
                store.append(b).expect("store healthy");
            }
            let trailing = store.trailing_shard_count();
            // warm the shared cache so the racing queries measure lock
            // acquisition + steady-state ranking, not first-touch fills
            {
                let reader = store.read();
                let handle = reader.handle();
                let f = handle.rank_features(&cfg, &seeds);
                let _ = handle.rank_entities(&cfg, &seeds, &f);
            }
            let done = AtomicBool::new(false);
            let mut blocked_ms: Vec<f64> = Vec::new();
            let mut compact_ms = 0.0f64;
            std::thread::scope(|scope| {
                let compactor = scope.spawn(|| {
                    let t = Instant::now();
                    let receipt = match mode {
                        "in_place" => store.compact_in_place(2),
                        _ => store.compact_concurrent(2),
                    }
                    .expect("store healthy");
                    let ms = t.elapsed().as_secs_f64() * 1e3;
                    done.store(true, Ordering::SeqCst);
                    assert_eq!(receipt.shards_after, 2);
                    ms
                });
                // issue queries until the pass lands, timing how long
                // each one waits for its read guard
                while !done.load(Ordering::SeqCst) {
                    let t0 = Instant::now();
                    let reader = store.read();
                    blocked_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                    let _ = reader.handle().rank_features(&cfg, &seeds);
                    drop(reader);
                    // yield so the compactor makes progress on a
                    // single-core host
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                compact_ms = compactor.join().expect("compactor thread");
            });
            let queries = blocked_ms.len();
            let max_blocked_ms = blocked_ms.iter().copied().fold(0.0, f64::max);
            let mean_blocked_ms = if queries == 0 {
                0.0
            } else {
                blocked_ms.iter().sum::<f64>() / queries as f64
            };
            LiveCompactRow {
                films,
                mode,
                trailing,
                compact_ms,
                queries,
                max_blocked_ms,
                mean_blocked_ms,
            }
        })
        .collect()
}

fn print_live_compact_row(r: &LiveCompactRow) {
    println!(
        "{:>8} {:>11} {:>9} {:>11.2} {:>8} {:>15.2} {:>15.3}",
        r.films, r.mode, r.trailing, r.compact_ms, r.queries, r.max_blocked_ms, r.mean_blocked_ms
    );
}

fn write_live_compact_json(rows: &[LiveCompactRow], cores: usize, path: &str) {
    let mut out = bench_header(
        "pivote-live-compaction-blocked-time/2",
        "query blocked-time while a live compaction pass runs: stop-the-world \
         LiveStore::compact_in_place (rebuild under the write lock) vs \
         LiveStore::compact_concurrent (off-lock rebuild, generation-validated swap); \
         single-core host, so blocked-time — not throughput — is the comparable metric",
        cores,
        "\"2 (1 query thread + 1 compactor)\"",
    );
    let _ = writeln!(out, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"films\": {}, \"mode\": \"{}\", \"trailing_shards\": {}, \
             \"compact_ms\": {:.3}, \"queries_during_pass\": {}, \
             \"max_blocked_ms\": {:.3}, \"mean_blocked_ms\": {:.3}}}{comma}",
            r.films,
            r.mode,
            r.trailing,
            r.compact_ms,
            r.queries,
            r.max_blocked_ms,
            r.mean_blocked_ms
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("\nwrote {} rows to {path}", rows.len());
    }
}

/// One streaming-ingest measurement. `mode` is `stream` (batched ingest,
/// single-graph store), `per_op` (`max_ops = 1` — the pre-batching
/// baseline every per-statement apply pays), or `maintained` (2-shard
/// store with the background maintenance thread absorbing trailing
/// shards mid-ingest).
struct ScaleRow {
    films: usize,
    triples: usize,
    mode: &'static str,
    batch_ops: usize,
    shards: usize,
    ingest_ms: f64,
    triples_per_sec: f64,
    /// High-water allocation during the ingest, store included.
    peak_resident_bytes: usize,
    /// Allocation level once the store holds the whole dump.
    final_resident_bytes: usize,
    /// `peak - final`: what the streaming pipeline transiently needs
    /// *above* the store itself. Bounded by batch size, not dump size.
    ingest_overhead_bytes: usize,
    /// `final / triples` — the store's marginal cost per statement.
    bytes_per_triple: f64,
    rank_samples: usize,
    rank_entities_mean_ms: f64,
    maintenance_passes: u64,
    work: u64,
}

/// Serialize a generated graph of `films` films to a temp file and
/// return its path — the dump leaves memory before the ingest starts, so
/// resident measurements see only the streaming pipeline and the store.
fn write_scale_dump(films: usize) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("pivote_scale_{films}.nt"));
    let kg = generate(&DatagenConfig::scaled(films, 7));
    let dump = ntriples::serialize(&kg);
    std::fs::write(&path, &dump).expect("write scale dump");
    path
}

fn scale_ingest(films: usize, mode: &'static str, batch_ops: usize) -> ScaleRow {
    let path = write_scale_dump(films);
    let file = std::fs::File::open(&path).expect("open scale dump");
    let reader = std::io::BufReader::with_capacity(1 << 16, file);

    alloc_counter::reset_peak();
    let before = alloc_counter::current();

    let shards = if mode == "maintained" { 2 } else { 0 };
    let store = if mode == "maintained" {
        Arc::new(LiveStore::with_threads(
            ShardedGraph::from_graph(&KgBuilder::new().finish(), 2),
            1,
        ))
    } else {
        Arc::new(LiveStore::with_threads(KgBuilder::new().finish(), 1))
    };
    let mut maintenance = (mode == "maintained").then(|| {
        MaintenanceHandle::spawn(
            Arc::clone(&store),
            CompactionPolicy::default(),
            2,
            Duration::from_millis(1),
        )
    });

    // sample rank_entities from a live reader at most every 100ms — the
    // latency queries see while the ingest keeps invalidating the cache.
    // Seeds spread over the already-ingested id range so the candidate
    // pool grows with the store, like Q3's seed selection does.
    let cfg = RankingConfig::default();
    let sample_every = Duration::from_millis(100);
    let mut last_sample = Instant::now();
    let mut rank_ms: Vec<f64> = Vec::new();
    // wall time the sampler itself spends (cold-cache rank_features +
    // rank_entities), excluded from the throughput denominator so the
    // sampling cadence doesn't skew triples/sec
    let mut sample_overhead = Duration::ZERO;
    let ingest = StreamingIngest::with_batch_size(Arc::clone(&store), batch_ops);
    let t = Instant::now();
    let report = ingest
        .ingest_with(reader, |_| {
            if last_sample.elapsed() >= sample_every {
                let s0 = Instant::now();
                let reader = store.read();
                let handle = reader.handle();
                // seed like Q3's sweep does — the first films of the
                // (partially ingested) Film extent — so the sample is the
                // real interactive operation, not a degenerate no-feature
                // query
                let seeds: Vec<EntityId> = handle
                    .type_id("Film")
                    .map(|t| handle.type_extent(t).iter().take(3).copied().collect())
                    .unwrap_or_default();
                if !seeds.is_empty() {
                    let f = handle.rank_features(&cfg, &seeds);
                    let t0 = Instant::now();
                    let _ = handle.rank_entities(&cfg, &seeds, &f);
                    rank_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                }
                sample_overhead += s0.elapsed();
                last_sample = Instant::now();
            }
        })
        .expect("scale ingest");
    let ingest_ms = t.elapsed().saturating_sub(sample_overhead).as_secs_f64() * 1e3;

    let mut passes = 0;
    if let Some(m) = maintenance.as_mut() {
        let deadline = Instant::now() + Duration::from_secs(300);
        while store.trailing_shard_count() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        m.stop();
        passes = m.passes();
        assert_eq!(store.trailing_shard_count(), 0, "maintenance fell behind");
    }

    let peak = alloc_counter::peak().saturating_sub(before);
    let final_resident = alloc_counter::current().saturating_sub(before);
    drop(ingest);
    drop(maintenance);
    drop(store);
    let _ = std::fs::remove_file(&path);

    let triples = report.stats.statements;
    let rank_samples = rank_ms.len();
    ScaleRow {
        films,
        triples,
        mode,
        batch_ops,
        shards,
        ingest_ms,
        triples_per_sec: triples as f64 / (ingest_ms / 1e3).max(1e-9),
        peak_resident_bytes: peak,
        final_resident_bytes: final_resident,
        ingest_overhead_bytes: peak.saturating_sub(final_resident),
        bytes_per_triple: final_resident as f64 / triples.max(1) as f64,
        rank_samples,
        rank_entities_mean_ms: if rank_samples == 0 {
            0.0
        } else {
            rank_ms.iter().sum::<f64>() / rank_samples as f64
        },
        maintenance_passes: passes,
        work: report.work,
    }
}

fn print_scale_row(r: &ScaleRow) {
    println!(
        "{:>8} {:>9} {:>10} {:>9} {:>10.0} {:>11.1} {:>11.1} {:>10.1} {:>7.1} {:>8} {:>9.3}",
        r.films,
        r.triples,
        r.mode,
        r.batch_ops,
        r.triples_per_sec,
        r.peak_resident_bytes as f64 / 1e6,
        r.final_resident_bytes as f64 / 1e6,
        r.ingest_overhead_bytes as f64 / 1e6,
        r.bytes_per_triple,
        r.rank_samples,
        r.rank_entities_mean_ms
    );
}

fn write_scale_json(rows: &[ScaleRow], cores: usize, path: &str) {
    let mut out = bench_header(
        "pivote-streaming-ingest/1",
        "streaming N-Triples ingest from a temp-file dump through StreamingIngest over a \
         LiveStore: batched stream rows (single store), batch-size sweep (overhead must \
         track batch_ops, not dump size), a per_op baseline (max_ops=1 — what every \
         statement-at-a-time apply pays), and a maintained row (2-shard store, background \
         maintenance absorbing trailing shards mid-ingest); rank_entities sampled from \
         live readers during the ingest",
        cores,
        "\"1 ingest thread (+1 maintenance thread in maintained rows)\"",
    );
    let _ = writeln!(out, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"films\": {}, \"triples\": {}, \"mode\": \"{}\", \"batch_ops\": {}, \
             \"shards\": {}, \"ingest_ms\": {:.3}, \"triples_per_sec\": {:.1}, \
             \"peak_resident_bytes\": {}, \"final_resident_bytes\": {}, \
             \"ingest_overhead_bytes\": {}, \"bytes_per_triple\": {:.2}, \
             \"rank_samples\": {}, \"rank_entities_mean_ms\": {:.3}, \
             \"maintenance_passes\": {}, \"apply_work\": {}}}{comma}",
            r.films,
            r.triples,
            r.mode,
            r.batch_ops,
            r.shards,
            r.ingest_ms,
            r.triples_per_sec,
            r.peak_resident_bytes,
            r.final_resident_bytes,
            r.ingest_overhead_bytes,
            r.bytes_per_triple,
            r.rank_samples,
            r.rank_entities_mean_ms,
            r.maintenance_passes,
            r.work
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("\nwrote {} rows to {path}", rows.len());
    }
}

fn scale_sweep(scale_max: usize) -> Vec<ScaleRow> {
    let mut rows = Vec::new();
    // the throughput/memory ladder up to 1M+ triples (32k films)
    for films in [4_000usize, 8_000, 16_000, 32_000] {
        if films > scale_max {
            continue;
        }
        rows.push(scale_ingest(films, "stream", 16_384));
    }
    if scale_max >= 8_000 {
        // batch-size sweep at a fixed scale: the overhead column must
        // move with batch_ops while final resident stays put
        rows.push(scale_ingest(8_000, "stream", 1_024));
        rows.push(scale_ingest(8_000, "stream", 131_072));
    }
    if scale_max >= 4_000 {
        // the 100k+-scale baseline the intern/splice batching is
        // measured against: one append per statement
        rows.push(scale_ingest(4_000, "per_op", 1));
    }
    if scale_max >= 8_000 {
        rows.push(scale_ingest(8_000, "maintained", 16_384));
    }
    rows
}

fn main() {
    let max_films: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(16_000);
    let mut sizes = vec![1_000usize, 2_000, 4_000, 8_000, 16_000, 32_000];
    sizes.retain(|&s| s <= max_films);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let out_path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_2.json".to_owned());

    println!("== Q3: interactive-operation latency vs KG size and backend ==");
    println!(
        "{:>8} {:>9} {:>9} {:>8} {:>4} {:>13} {:>13} {:>13}",
        "films",
        "entities",
        "triples",
        "backend",
        "thr",
        "rank_feat_ms",
        "rank_ent_ms",
        "matrix_ms"
    );
    let mut rows: Vec<Row> = Vec::new();
    let mut append_rows: Vec<AppendRow> = Vec::new();
    let mut compact_rows: Vec<CompactRow> = Vec::new();
    let mut live_compact_rows: Vec<LiveCompactRow> = Vec::new();
    let last_size = sizes.last().copied();
    for films in sizes {
        let kg = generate(&DatagenConfig::scaled(films, 7));
        sweep(&kg, films, cores, &mut rows);
        // a bulk delta (trailing 10% of the triples) and a small batch
        // (trailing 0.2%) — the latter is the M ≫ N regime where the
        // splice's work counter must stay far below the graph size
        append_rows.push(append_sweep(&kg, films, 0.9));
        append_rows.push(append_sweep(&kg, films, 0.998));
        // compaction sweeps only at the largest size, inside the loop so
        // the graph is dropped with its iteration (no doubled peak RSS)
        if Some(films) == last_size {
            compact_rows = compaction_sweep(&kg, films, cores);
            live_compact_rows = live_compaction_sweep(&kg, films);
        }
    }
    write_json(&rows, cores, &out_path);

    println!("\n== incremental store: append (10% and 0.2% deltas) vs from-scratch rebuild ==");
    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>11} {:>11} {:>10} {:>10}",
        "films", "delta", "base_tripl", "delta_tripl", "append_ms", "rebuild_ms", "work", "work/M"
    );
    for r in &append_rows {
        print_append_row(r);
    }
    let append_out = std::env::var("BENCH3_OUT").unwrap_or_else(|_| "BENCH_3.json".to_owned());
    write_append_json(&append_rows, cores, &append_out);

    // compaction (measured at the largest size, in its loop iteration):
    // a partition grown degenerate by 1/8/32 trailing shards, compacted
    // back, against a fresh partition — post-compaction must match fresh
    if !compact_rows.is_empty() {
        println!("\n== compaction: degenerate partition vs compact(2) vs fresh from_graph ==");
        println!(
            "{:>8} {:>9} {:>7} {:>7} {:>12} {:>12} {:>12} {:>11}",
            "films",
            "trailing",
            "before",
            "target",
            "pre_ent_ms",
            "post_ent_ms",
            "fresh_ent_ms",
            "compact_ms"
        );
        for r in &compact_rows {
            print_compact_row(r);
        }
        let compact_out = std::env::var("BENCH4_OUT").unwrap_or_else(|_| "BENCH_4.json".to_owned());
        write_compact_json(&compact_rows, cores, &compact_out);
    }

    // blocked-time during a live compaction pass: stop-the-world
    // compact_in_place vs off-lock compact_concurrent — the payoff of
    // moving the rebuild off the write lock
    if !live_compact_rows.is_empty() {
        println!("\n== live compaction: query blocked-time, in_place vs concurrent ==");
        println!(
            "{:>8} {:>11} {:>9} {:>11} {:>8} {:>15} {:>15}",
            "films",
            "mode",
            "trailing",
            "compact_ms",
            "queries",
            "max_blocked_ms",
            "mean_blocked_ms"
        );
        for r in &live_compact_rows {
            print_live_compact_row(r);
        }
        let live_out = std::env::var("BENCH5_OUT").unwrap_or_else(|_| "BENCH_5.json".to_owned());
        write_live_compact_json(&live_compact_rows, cores, &live_out);
    }

    // streaming ingest at the 1M+-triple scale: throughput, resident
    // memory (peak vs final — overhead must track batch size, not dump
    // size), mid-ingest rank latency, and the per_op baseline
    let scale_max: usize = std::env::var("PIVOTE_SCALE_FILMS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32_000);
    println!("\n== streaming ingest: throughput and resident memory vs scale and batch size ==");
    println!(
        "{:>8} {:>9} {:>10} {:>9} {:>10} {:>11} {:>11} {:>10} {:>7} {:>8} {:>9}",
        "films",
        "triples",
        "mode",
        "batch_ops",
        "tripl/s",
        "peak_MB",
        "final_MB",
        "ovhd_MB",
        "B/tripl",
        "samples",
        "rank_ms"
    );
    let mut scale_rows = Vec::new();
    for row in scale_sweep(scale_max) {
        print_scale_row(&row);
        scale_rows.push(row);
    }
    if !scale_rows.is_empty() {
        let scale_out = std::env::var("BENCH6_OUT").unwrap_or_else(|_| "BENCH_6.json".to_owned());
        write_scale_json(&scale_rows, cores, &scale_out);
    }
}

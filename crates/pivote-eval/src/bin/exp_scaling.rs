//! Experiment Q3: efficiency at knowledge-graph scale (the paper's
//! challenge (2): "millions of entities … recommend relevant entities and
//! semantic features effectively and efficiently").
//!
//! Sweeps the synthetic KG size and reports wall-clock latency of the
//! three interactive operations — feature ranking, entity ranking, and
//! the full matrix (both + heat map) — for:
//!
//! - the single-graph [`pivote_core::QueryContext`] at 1 thread and at
//!   all cores, and
//! - the sharded backend ([`pivote_core::ShardedContext`] over a
//!   [`pivote_kg::ShardedGraph`]) at 1, 2 and 4 shards,
//!
//! so both the thread-scaling and the shard-scaling of the shared
//! execution layer are visible per scale. All rows are also written as
//! JSON to `BENCH_2.json` (override the path with `BENCH_OUT`).
//!
//! A second sweep measures the **incremental store**: the trailing 10% of
//! each graph's entity triples are split off as a `DeltaBatch` and
//! appended via `KnowledgeGraph::apply`, against a from-scratch rebuild
//! of the same union. Each row records wall-clock, the apply's work
//! counter and its ratio to the graph size — the witness that appending
//! N triples to a graph of M ≫ N triples does splice-sized work, not an
//! O(M) rebuild. Rows go to `BENCH_3.json` (override with `BENCH3_OUT`).
//!
//! A third sweep measures **compaction** at the largest size: the
//! trailing 10% of the entities are re-applied as 1 / 8 / 32
//! entity-minting batches (`split_growth`), each appending a trailing
//! shard to a 2-shard partition. Rows record interactive-operation
//! latency on the degenerate partition, the wall-clock of
//! `ShardedGraph::compact(2)`, latency on the compacted partition, and —
//! the acceptance bar — latency on a *fresh* `ShardedGraph::from_graph`
//! at the same shard count: post-compaction must sit within noise of
//! fresh. Rows go to `BENCH_4.json` (override with `BENCH4_OUT`).
//!
//! Usage: `cargo run --release -p pivote-eval --bin exp_scaling [max_films]`

use pivote_core::{Expander, GraphHandle, HeatMap, LiveStore, RankingConfig, SfQuery};
use pivote_kg::{
    generate, split_growth, split_incremental, DatagenConfig, EntityId, KnowledgeGraph,
    ShardedGraph,
};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

#[derive(Clone, Copy)]
struct Measured {
    feat_ms: f64,
    ent_ms: f64,
    matrix_ms: f64,
}

/// One reported configuration: `shards == 0` is the single-graph backend.
struct Row {
    films: usize,
    entities: usize,
    triples: usize,
    shards: usize,
    threads: usize,
    m: Measured,
}

fn measure(handle: &GraphHandle<'_>, seeds: &[EntityId]) -> Measured {
    let expander = Expander::with_handle(handle.clone(), RankingConfig::default());
    // warm the context cache once so measurements reflect steady state
    let _ = expander.ranker().rank_features(seeds);

    let t = Instant::now();
    let features = expander.ranker().rank_features(seeds);
    let feat_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let entities = expander.ranker().rank_entities(seeds, &features);
    let ent_ms = t.elapsed().as_secs_f64() * 1e3;
    let _ = entities;

    let t = Instant::now();
    let res = expander.expand(&SfQuery::from_seeds(seeds.to_vec()), 20, 15);
    let axis: Vec<EntityId> = res.entities.iter().map(|re| re.entity).collect();
    let _hm = HeatMap::compute(expander.ranker(), &axis, &res.features);
    let matrix_ms = t.elapsed().as_secs_f64() * 1e3;

    Measured {
        feat_ms,
        ent_ms,
        matrix_ms,
    }
}

fn print_row(r: &Row) {
    let backend = if r.shards == 0 {
        "single".to_owned()
    } else {
        format!("shard-{}", r.shards)
    };
    println!(
        "{:>8} {:>9} {:>9} {:>8} {:>4} {:>13.2} {:>13.2} {:>13.2}",
        r.films, r.entities, r.triples, backend, r.threads, r.m.feat_ms, r.m.ent_ms, r.m.matrix_ms
    );
}

fn write_json(rows: &[Row], cores: usize, path: &str) {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"pivote-shard-scaling/1\",");
    let _ = writeln!(
        out,
        "  \"label\": \"Q3 scaling sweep: single vs sharded backend (shards=0 means single)\","
    );
    let _ = writeln!(out, "  \"host_cpus\": {cores},");
    let _ = writeln!(
        out,
        "  \"command\": \"cargo run --release -p pivote-eval --bin exp_scaling\","
    );
    let _ = writeln!(out, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"films\": {}, \"entities\": {}, \"triples\": {}, \"shards\": {}, \
             \"threads\": {}, \"rank_features_ms\": {:.3}, \"rank_entities_ms\": {:.3}, \
             \"matrix_ms\": {:.3}}}{comma}",
            r.films,
            r.entities,
            r.triples,
            r.shards,
            r.threads,
            r.m.feat_ms,
            r.m.ent_ms,
            r.m.matrix_ms
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("\nwrote {} rows to {path}", rows.len());
    }
}

fn sweep(kg: &KnowledgeGraph, films: usize, cores: usize, rows: &mut Vec<Row>) {
    let film = kg.type_id("Film").expect("Film type");
    let seeds: Vec<EntityId> = kg.type_extent(film)[..3].to_vec();
    let (entities, triples) = (kg.entity_count(), kg.triple_count());

    // single backend: sequential and all-cores
    let mut thread_counts = vec![1];
    if cores > 1 {
        thread_counts.push(cores);
    }
    for &threads in &thread_counts {
        let handle = GraphHandle::single_with_threads(kg, threads);
        let row = Row {
            films,
            entities,
            triples,
            shards: 0,
            threads,
            m: measure(&handle, &seeds),
        };
        print_row(&row);
        rows.push(row);
    }

    // sharded backend: 1, 2 and 4 shards (threads = min(shards, cores)
    // workers drive the per-shard fan-out; on a single-core host this
    // measures the sharded layer's overhead, not a speedup)
    for shards in [1usize, 2, 4] {
        let sg = ShardedGraph::from_graph(kg, shards);
        let threads = shards.min(cores.max(1));
        let handle = GraphHandle::sharded_with_threads(&sg, threads);
        let row = Row {
            films,
            entities,
            triples,
            shards,
            threads,
            m: measure(&handle, &seeds),
        };
        print_row(&row);
        rows.push(row);
    }
}

/// One append-throughput measurement: delta size, wall-clock of the
/// in-place apply vs a from-scratch rebuild of the union, and the
/// apply's work counter.
struct AppendRow {
    films: usize,
    /// Fraction of the entity triples the delta holds (`1 - split`).
    delta_fraction: f64,
    base_triples: usize,
    delta_triples: usize,
    append_ms: f64,
    rebuild_ms: f64,
    work: u64,
    /// `work / union relation count` — stays ≪ 1 when the splice is
    /// doing row-proportional work instead of a rebuild.
    work_ratio: f64,
}

fn append_sweep(kg: &KnowledgeGraph, films: usize, fraction: f64) -> AppendRow {
    let (mut base, delta) = split_incremental(kg, fraction);
    let base_triples = base.relation_count();
    let t = Instant::now();
    let receipt = base.apply(&delta);
    let append_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(base.relation_count(), kg.relation_count(), "union restored");

    // the alternative the incremental store replaces: rebuild everything
    let t = Instant::now();
    let rebuilt = split_incremental(kg, 1.0).0;
    let rebuild_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(rebuilt.relation_count(), kg.relation_count());

    AppendRow {
        films,
        delta_fraction: 1.0 - fraction,
        base_triples,
        delta_triples: receipt.added_relations,
        append_ms,
        rebuild_ms,
        work: receipt.work,
        work_ratio: receipt.work as f64 / kg.relation_count().max(1) as f64,
    }
}

fn print_append_row(r: &AppendRow) {
    println!(
        "{:>8} {:>7.1}% {:>12} {:>12} {:>11.2} {:>11.2} {:>10} {:>10.4}",
        r.films,
        r.delta_fraction * 100.0,
        r.base_triples,
        r.delta_triples,
        r.append_ms,
        r.rebuild_ms,
        r.work,
        r.work_ratio
    );
}

fn write_append_json(rows: &[AppendRow], cores: usize, path: &str) {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"pivote-append-throughput/1\",");
    let _ = writeln!(
        out,
        "  \"label\": \"incremental store: apply() of the trailing delta_fraction of the \
         entity triples (bulk 10% and small-batch 0.2% rows per size) vs from-scratch \
         rebuild; work is the splice's element counter\","
    );
    let _ = writeln!(out, "  \"host_cpus\": {cores},");
    let _ = writeln!(
        out,
        "  \"command\": \"cargo run --release -p pivote-eval --bin exp_scaling\","
    );
    let _ = writeln!(out, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"films\": {}, \"delta_fraction\": {:.3}, \"base_triples\": {}, \
             \"delta_triples\": {}, \"append_ms\": {:.3}, \"rebuild_ms\": {:.3}, \
             \"append_work\": {}, \"work_over_union_triples\": {:.5}}}{comma}",
            r.films,
            r.delta_fraction,
            r.base_triples,
            r.delta_triples,
            r.append_ms,
            r.rebuild_ms,
            r.work,
            r.work_ratio
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("\nwrote {} rows to {path}", rows.len());
    }
}

/// One compaction measurement: the same interactive operations on the
/// degenerate (grown) partition, on the compacted partition, and on a
/// fresh partition of the union, plus the compaction pass's wall-clock.
struct CompactRow {
    films: usize,
    trailing: usize,
    shards_before: usize,
    target: usize,
    threads: usize,
    pre: Measured,
    post: Measured,
    fresh: Measured,
    compact_ms: f64,
}

fn compaction_sweep(kg: &KnowledgeGraph, films: usize, cores: usize) -> Vec<CompactRow> {
    let film = kg.type_id("Film").expect("Film type");
    let seeds: Vec<EntityId> = kg.type_extent(film)[..3].to_vec();
    let target = 2usize;
    let threads = target.min(cores.max(1));
    // the acceptance bar: a fresh partition of the union at the target
    // shard count (what compaction is supposed to restore)
    let fresh_sg = ShardedGraph::from_graph(kg, target);
    let fresh = measure(
        &GraphHandle::sharded_with_threads(&fresh_sg, threads),
        &seeds,
    );

    [1usize, 8, 32]
        .into_iter()
        .map(|trailing| {
            let (base, batches) = split_growth(kg, 0.9, trailing);
            let mut sg = ShardedGraph::from_graph(&base, target);
            for b in &batches {
                sg.apply(b);
            }
            let shards_before = sg.shard_count();
            // same worker-thread count as the post/fresh measurements,
            // so the rows isolate partition shape, not parallelism
            let pre = measure(&GraphHandle::sharded_with_threads(&sg, threads), &seeds);
            let t = Instant::now();
            let sg = sg.compact(target);
            let compact_ms = t.elapsed().as_secs_f64() * 1e3;
            let post = measure(&GraphHandle::sharded_with_threads(&sg, threads), &seeds);
            CompactRow {
                films,
                trailing: batches.len(),
                shards_before,
                target,
                threads,
                pre,
                post,
                fresh,
                compact_ms,
            }
        })
        .collect()
}

fn print_compact_row(r: &CompactRow) {
    println!(
        "{:>8} {:>9} {:>7} {:>7} {:>12.2} {:>12.2} {:>12.2} {:>11.2}",
        r.films,
        r.trailing,
        r.shards_before,
        r.target,
        r.pre.ent_ms,
        r.post.ent_ms,
        r.fresh.ent_ms,
        r.compact_ms
    );
}

fn write_compact_json(rows: &[CompactRow], cores: usize, path: &str) {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"pivote-compaction/1\",");
    let _ = writeln!(
        out,
        "  \"label\": \"live shard compaction: rank latency on a partition grown by N \
         trailing shards (pre), after ShardedGraph::compact(2) (post), and on a fresh \
         from_graph at the same shard count; compact_ms is the re-partition wall-clock\","
    );
    let _ = writeln!(out, "  \"host_cpus\": {cores},");
    let _ = writeln!(
        out,
        "  \"command\": \"cargo run --release -p pivote-eval --bin exp_scaling\","
    );
    let _ = writeln!(out, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"films\": {}, \"trailing_shards\": {}, \"shards_before\": {}, \
             \"target_shards\": {}, \"threads\": {}, \
             \"pre_rank_features_ms\": {:.3}, \"pre_rank_entities_ms\": {:.3}, \
             \"post_rank_features_ms\": {:.3}, \"post_rank_entities_ms\": {:.3}, \
             \"fresh_rank_features_ms\": {:.3}, \"fresh_rank_entities_ms\": {:.3}, \
             \"compact_ms\": {:.3}}}{comma}",
            r.films,
            r.trailing,
            r.shards_before,
            r.target,
            r.threads,
            r.pre.feat_ms,
            r.pre.ent_ms,
            r.post.feat_ms,
            r.post.ent_ms,
            r.fresh.feat_ms,
            r.fresh.ent_ms,
            r.compact_ms
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("\nwrote {} rows to {path}", rows.len());
    }
}

/// One blocked-time measurement: queries hammering a live store while a
/// compaction pass runs, under the stop-the-world path
/// (`compact_in_place`) vs the off-lock path (`compact_concurrent`).
/// On a single-core host throughput is meaningless, so the row reports
/// **blocked time**: how long each query waited to acquire its read
/// guard while the pass was in flight.
struct LiveCompactRow {
    films: usize,
    mode: &'static str,
    trailing: usize,
    compact_ms: f64,
    queries: usize,
    max_blocked_ms: f64,
    mean_blocked_ms: f64,
}

fn live_compaction_sweep(kg: &KnowledgeGraph, films: usize) -> Vec<LiveCompactRow> {
    let film = kg.type_id("Film").expect("Film type");
    let seeds: Vec<EntityId> = kg.type_extent(film)[..3].to_vec();
    let cfg = RankingConfig::default();
    ["in_place", "concurrent"]
        .into_iter()
        .map(|mode| {
            let (base, batches) = split_growth(kg, 0.9, 32);
            let store = LiveStore::with_threads(ShardedGraph::from_graph(&base, 2), 1);
            for b in &batches {
                store.append(b);
            }
            let trailing = store.trailing_shard_count();
            // warm the shared cache so the racing queries measure lock
            // acquisition + steady-state ranking, not first-touch fills
            {
                let reader = store.read();
                let handle = reader.handle();
                let f = handle.rank_features(&cfg, &seeds);
                let _ = handle.rank_entities(&cfg, &seeds, &f);
            }
            let done = AtomicBool::new(false);
            let mut blocked_ms: Vec<f64> = Vec::new();
            let mut compact_ms = 0.0f64;
            std::thread::scope(|scope| {
                let compactor = scope.spawn(|| {
                    let t = Instant::now();
                    let receipt = match mode {
                        "in_place" => store.compact_in_place(2),
                        _ => store.compact_concurrent(2),
                    };
                    let ms = t.elapsed().as_secs_f64() * 1e3;
                    done.store(true, Ordering::SeqCst);
                    assert_eq!(receipt.shards_after, 2);
                    ms
                });
                // issue queries until the pass lands, timing how long
                // each one waits for its read guard
                while !done.load(Ordering::SeqCst) {
                    let t0 = Instant::now();
                    let reader = store.read();
                    blocked_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                    let _ = reader.handle().rank_features(&cfg, &seeds);
                    drop(reader);
                    // yield so the compactor makes progress on a
                    // single-core host
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                compact_ms = compactor.join().expect("compactor thread");
            });
            let queries = blocked_ms.len();
            let max_blocked_ms = blocked_ms.iter().copied().fold(0.0, f64::max);
            let mean_blocked_ms = if queries == 0 {
                0.0
            } else {
                blocked_ms.iter().sum::<f64>() / queries as f64
            };
            LiveCompactRow {
                films,
                mode,
                trailing,
                compact_ms,
                queries,
                max_blocked_ms,
                mean_blocked_ms,
            }
        })
        .collect()
}

fn print_live_compact_row(r: &LiveCompactRow) {
    println!(
        "{:>8} {:>11} {:>9} {:>11.2} {:>8} {:>15.2} {:>15.3}",
        r.films, r.mode, r.trailing, r.compact_ms, r.queries, r.max_blocked_ms, r.mean_blocked_ms
    );
}

fn write_live_compact_json(rows: &[LiveCompactRow], cores: usize, path: &str) {
    let mut out = String::from("{\n");
    let _ = writeln!(
        out,
        "  \"schema\": \"pivote-live-compaction-blocked-time/1\","
    );
    let _ = writeln!(
        out,
        "  \"label\": \"query blocked-time while a live compaction pass runs: \
         stop-the-world LiveStore::compact_in_place (rebuild under the write lock) vs \
         LiveStore::compact_concurrent (off-lock rebuild, generation-validated swap); \
         single-core host, so blocked-time — not throughput — is the comparable metric\","
    );
    let _ = writeln!(out, "  \"host_cpus\": {cores},");
    let _ = writeln!(
        out,
        "  \"command\": \"cargo run --release -p pivote-eval --bin exp_scaling\","
    );
    let _ = writeln!(out, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"films\": {}, \"mode\": \"{}\", \"trailing_shards\": {}, \
             \"compact_ms\": {:.3}, \"queries_during_pass\": {}, \
             \"max_blocked_ms\": {:.3}, \"mean_blocked_ms\": {:.3}}}{comma}",
            r.films,
            r.mode,
            r.trailing,
            r.compact_ms,
            r.queries,
            r.max_blocked_ms,
            r.mean_blocked_ms
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("\nwrote {} rows to {path}", rows.len());
    }
}

fn main() {
    let max_films: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(16_000);
    let mut sizes = vec![1_000usize, 2_000, 4_000, 8_000, 16_000, 32_000];
    sizes.retain(|&s| s <= max_films);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let out_path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_2.json".to_owned());

    println!("== Q3: interactive-operation latency vs KG size and backend ==");
    println!(
        "{:>8} {:>9} {:>9} {:>8} {:>4} {:>13} {:>13} {:>13}",
        "films",
        "entities",
        "triples",
        "backend",
        "thr",
        "rank_feat_ms",
        "rank_ent_ms",
        "matrix_ms"
    );
    let mut rows: Vec<Row> = Vec::new();
    let mut append_rows: Vec<AppendRow> = Vec::new();
    let mut compact_rows: Vec<CompactRow> = Vec::new();
    let mut live_compact_rows: Vec<LiveCompactRow> = Vec::new();
    let last_size = sizes.last().copied();
    for films in sizes {
        let kg = generate(&DatagenConfig::scaled(films, 7));
        sweep(&kg, films, cores, &mut rows);
        // a bulk delta (trailing 10% of the triples) and a small batch
        // (trailing 0.2%) — the latter is the M ≫ N regime where the
        // splice's work counter must stay far below the graph size
        append_rows.push(append_sweep(&kg, films, 0.9));
        append_rows.push(append_sweep(&kg, films, 0.998));
        // compaction sweeps only at the largest size, inside the loop so
        // the graph is dropped with its iteration (no doubled peak RSS)
        if Some(films) == last_size {
            compact_rows = compaction_sweep(&kg, films, cores);
            live_compact_rows = live_compaction_sweep(&kg, films);
        }
    }
    write_json(&rows, cores, &out_path);

    println!("\n== incremental store: append (10% and 0.2% deltas) vs from-scratch rebuild ==");
    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>11} {:>11} {:>10} {:>10}",
        "films", "delta", "base_tripl", "delta_tripl", "append_ms", "rebuild_ms", "work", "work/M"
    );
    for r in &append_rows {
        print_append_row(r);
    }
    let append_out = std::env::var("BENCH3_OUT").unwrap_or_else(|_| "BENCH_3.json".to_owned());
    write_append_json(&append_rows, cores, &append_out);

    // compaction (measured at the largest size, in its loop iteration):
    // a partition grown degenerate by 1/8/32 trailing shards, compacted
    // back, against a fresh partition — post-compaction must match fresh
    if !compact_rows.is_empty() {
        println!("\n== compaction: degenerate partition vs compact(2) vs fresh from_graph ==");
        println!(
            "{:>8} {:>9} {:>7} {:>7} {:>12} {:>12} {:>12} {:>11}",
            "films",
            "trailing",
            "before",
            "target",
            "pre_ent_ms",
            "post_ent_ms",
            "fresh_ent_ms",
            "compact_ms"
        );
        for r in &compact_rows {
            print_compact_row(r);
        }
        let compact_out = std::env::var("BENCH4_OUT").unwrap_or_else(|_| "BENCH_4.json".to_owned());
        write_compact_json(&compact_rows, cores, &compact_out);
    }

    // blocked-time during a live compaction pass: stop-the-world
    // compact_in_place vs off-lock compact_concurrent — the payoff of
    // moving the rebuild off the write lock
    if !live_compact_rows.is_empty() {
        println!("\n== live compaction: query blocked-time, in_place vs concurrent ==");
        println!(
            "{:>8} {:>11} {:>9} {:>11} {:>8} {:>15} {:>15}",
            "films",
            "mode",
            "trailing",
            "compact_ms",
            "queries",
            "max_blocked_ms",
            "mean_blocked_ms"
        );
        for r in &live_compact_rows {
            print_live_compact_row(r);
        }
        let live_out = std::env::var("BENCH5_OUT").unwrap_or_else(|_| "BENCH_5.json".to_owned());
        write_live_compact_json(&live_compact_rows, cores, &live_out);
    }
}

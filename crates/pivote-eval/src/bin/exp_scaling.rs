//! Experiment Q3: efficiency at knowledge-graph scale (the paper's
//! challenge (2): "millions of entities … recommend relevant entities and
//! semantic features effectively and efficiently").
//!
//! Sweeps the synthetic KG size and reports wall-clock latency of the
//! three interactive operations: feature ranking, entity ranking, and
//! the full matrix (both + heat map) — for the sequential (1-thread) and
//! parallel (all-cores) [`pivote_core::QueryContext`], so the speedup of
//! the shared execution layer is visible per scale.
//!
//! Usage: `cargo run --release -p pivote-eval --bin exp_scaling [max_films]`

use pivote_core::{Expander, HeatMap, QueryContext, RankingConfig, SfQuery};
use pivote_kg::{generate, DatagenConfig, EntityId, KnowledgeGraph};
use std::sync::Arc;
use std::time::Instant;

struct Measured {
    feat_ms: f64,
    ent_ms: f64,
    matrix_ms: f64,
}

fn measure(kg: &KnowledgeGraph, seeds: &[EntityId], threads: usize) -> Measured {
    let expander = Expander::with_context(
        Arc::new(QueryContext::with_threads(kg, threads)),
        RankingConfig::default(),
    );
    // warm the context cache once so measurements reflect steady state
    let _ = expander.ranker().rank_features(seeds);

    let t = Instant::now();
    let features = expander.ranker().rank_features(seeds);
    let feat_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let entities = expander.ranker().rank_entities(seeds, &features);
    let ent_ms = t.elapsed().as_secs_f64() * 1e3;
    let _ = entities;

    let t = Instant::now();
    let res = expander.expand(&SfQuery::from_seeds(seeds.to_vec()), 20, 15);
    let axis: Vec<EntityId> = res.entities.iter().map(|re| re.entity).collect();
    let _hm = HeatMap::compute(expander.ranker(), &axis, &res.features);
    let matrix_ms = t.elapsed().as_secs_f64() * 1e3;

    Measured {
        feat_ms,
        ent_ms,
        matrix_ms,
    }
}

fn main() {
    let max_films: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(16_000);
    let mut sizes = vec![1_000usize, 2_000, 4_000, 8_000, 16_000, 32_000];
    sizes.retain(|&s| s <= max_films);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("== Q3: interactive-operation latency vs KG size ==");
    println!(
        "{:>8} {:>9} {:>9} {:>4} {:>13} {:>13} {:>13}",
        "films", "entities", "triples", "thr", "rank_feat_ms", "rank_ent_ms", "matrix_ms"
    );
    for films in sizes {
        let kg = generate(&DatagenConfig::scaled(films, 7));
        let film = kg.type_id("Film").expect("Film type");
        let seeds: Vec<EntityId> = kg.type_extent(film)[..3].to_vec();

        for threads in [1, cores] {
            let m = measure(&kg, &seeds, threads);
            println!(
                "{:>8} {:>9} {:>9} {:>4} {:>13.2} {:>13.2} {:>13.2}",
                films,
                kg.entity_count(),
                kg.triple_count(),
                threads,
                m.feat_ms,
                m.ent_ms,
                m.matrix_ms
            );
            if cores == 1 {
                break;
            }
        }
    }
}

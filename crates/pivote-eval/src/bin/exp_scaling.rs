//! Experiment Q3: efficiency at knowledge-graph scale (the paper's
//! challenge (2): "millions of entities … recommend relevant entities and
//! semantic features effectively and efficiently").
//!
//! Sweeps the synthetic KG size and reports wall-clock latency of the
//! three interactive operations: feature ranking, entity ranking, and
//! the full matrix (both + heat map).
//!
//! Usage: `cargo run --release -p pivote-eval --bin exp_scaling [max_films]`

use pivote_core::{Expander, HeatMap, RankingConfig, SfQuery};
use pivote_kg::{generate, DatagenConfig, EntityId};
use std::time::Instant;

fn main() {
    let max_films: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(16_000);
    let mut sizes = vec![1_000usize, 2_000, 4_000, 8_000, 16_000, 32_000];
    sizes.retain(|&s| s <= max_films);

    println!("== Q3: interactive-operation latency vs KG size ==");
    println!(
        "{:>8} {:>9} {:>9} {:>13} {:>13} {:>13}",
        "films", "entities", "triples", "rank_feat_ms", "rank_ent_ms", "matrix_ms"
    );
    for films in sizes {
        let kg = generate(&DatagenConfig::scaled(films, 7));
        let expander = Expander::new(&kg, RankingConfig::default());
        let film = kg.type_id("Film").expect("Film type");
        let seeds: Vec<EntityId> = kg.type_extent(film)[..3].to_vec();

        // warm the context cache once so measurements reflect steady state
        let _ = expander.ranker().rank_features(&seeds);

        let t = Instant::now();
        let features = expander.ranker().rank_features(&seeds);
        let feat_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let entities = expander.ranker().rank_entities(&seeds, &features);
        let ent_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let res = expander.expand(&SfQuery::from_seeds(seeds.clone()), 20, 15);
        let axis: Vec<EntityId> = res.entities.iter().map(|re| re.entity).collect();
        let _hm = HeatMap::compute(expander.ranker(), &axis, &res.features);
        let matrix_ms = t.elapsed().as_secs_f64() * 1e3;

        println!(
            "{:>8} {:>9} {:>9} {:>13.2} {:>13.2} {:>13.2}",
            films,
            kg.entity_count(),
            kg.triple_count(),
            feat_ms,
            ent_ms,
            matrix_ms
        );
        let _ = entities;
    }
}

//! Experiment A3: field-weight sweep for the mixture of language models.
//!
//! The paper fixes one weighting; this ablation sweeps the mass given to
//! the names field vs the other four, exposing the robustness/precision
//! trade-off documented in EXPERIMENTS.md Q2 (name-heavy weights sharpen
//! exact-label queries, distributed weights rescue alias queries).
//!
//! Usage: `cargo run --release -p pivote-eval --bin exp_field_weights [films]`

use pivote_eval::{default_search_cases, render_search_table, run_search_eval, SearchVariant};
use pivote_kg::DatagenConfig;
use pivote_search::{FieldWeights, Scorer, SearchConfig, SearchEngine};

fn main() {
    let films: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);
    eprintln!("generating synthetic KG ({films} films)…");
    let kg = pivote_eval::eval_graph(&DatagenConfig::scaled(films, 7));
    let cases = default_search_cases(&kg, 60);

    // sweep the names-field mass; the remainder is split over the other
    // four fields in the default proportions (attr:cat:similar:related =
    // 2:4:3:3)
    let sweeps: [(&str, f64); 5] = [
        ("names=0.2", 0.2),
        ("names=0.4", 0.4),
        ("names=0.6", 0.6),
        ("names=0.8", 0.8),
        ("names=1.0", 1.0),
    ];
    let engines: Vec<(String, SearchEngine)> = sweeps
        .iter()
        .map(|(name, w_names)| {
            let rest = 1.0 - w_names;
            let mut cfg = SearchConfig::default();
            cfg.lm.weights = FieldWeights([
                *w_names,
                rest * 2.0 / 12.0,
                rest * 4.0 / 12.0,
                rest * 3.0 / 12.0,
                rest * 3.0 / 12.0,
            ]);
            (name.to_string(), SearchEngine::build(&kg, cfg))
        })
        .collect();
    let variants: Vec<SearchVariant<'_>> = engines
        .iter()
        .map(|(name, engine)| SearchVariant {
            name: name.as_str(),
            engine,
            scorer: Scorer::MixtureLm,
        })
        .collect();
    let results = run_search_eval(&variants, &cases, 50);
    println!("== A3: names-field weight sweep (mixture of LMs) ==");
    println!("{}", render_search_table(&results));
}

//! Ground-truth derivation from the synthetic knowledge graph.
//!
//! The generator plants Wikipedia-style categories ("American films",
//! "Films directed by X", "1990s films", …). Each sufficiently large
//! category is an entity-set-expansion evaluation class: hold out a few
//! members as seeds, measure how well a method recovers the rest.
//! Search ground truth pairs a query string (label, alias, or
//! label+context) with the entity it should retrieve.

use pivote_kg::{EntityId, KnowledgeGraph};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One ESE evaluation class.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EseClass {
    /// Category name the class came from.
    pub name: String,
    /// All members, sorted by entity id.
    pub members: Vec<EntityId>,
}

/// Categories with `min_size..=max_size` members, at most `limit`,
/// deterministic.
///
/// When more classes qualify than `limit`, the selection is *stratified*:
/// classes are sorted by descending size and sampled at even strides, so
/// the evaluation mixes broad attribute classes ("American films") with
/// narrow path-shaped ones ("Films directed by X") — matching the
/// entity-list style of the underlying ESE evaluations \[1\]\[6\].
pub fn ese_classes(
    kg: &KnowledgeGraph,
    min_size: usize,
    max_size: usize,
    limit: usize,
) -> Vec<EseClass> {
    let mut classes: Vec<EseClass> = kg
        .category_ids()
        .filter_map(|c| {
            let members = kg.category_extent(c);
            (min_size..=max_size)
                .contains(&members.len())
                .then(|| EseClass {
                    name: kg.category_name(c).to_owned(),
                    members: members.to_vec(),
                })
        })
        .collect();
    classes.sort_by(|a, b| {
        b.members
            .len()
            .cmp(&a.members.len())
            .then_with(|| a.name.cmp(&b.name))
    });
    if classes.len() > limit && limit > 0 {
        let stride = classes.len() as f64 / limit as f64;
        classes = (0..limit)
            .map(|i| classes[(i as f64 * stride) as usize].clone())
            .collect();
    }
    classes
}

/// Deterministically draw `trials` seed subsets of size `m` from a class.
/// Trials are distinct permutations; classes smaller than `m` produce no
/// trials.
pub fn seed_trials(class: &EseClass, m: usize, trials: usize, seed: u64) -> Vec<Vec<EntityId>> {
    if class.members.len() <= m {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed ^ class.members.len() as u64);
    (0..trials)
        .map(|_| {
            let mut pool = class.members.clone();
            pool.shuffle(&mut rng);
            pool.truncate(m);
            pool.sort_unstable();
            pool
        })
        .collect()
}

/// The flavour of a search test query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryKind {
    /// The entity's exact display label.
    Label,
    /// A redirect/disambiguation alias (misspelling).
    Alias,
    /// The label plus the entity's type name — a "mixed" query.
    LabelWithContext,
}

/// One search evaluation case.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchCase {
    /// The keyword query a user would type.
    pub query: String,
    /// The entity the query should retrieve.
    pub target: EntityId,
    /// How the query was constructed.
    pub kind: QueryKind,
}

/// Build up to `n` search cases per [`QueryKind`], deterministically.
pub fn search_cases(kg: &KnowledgeGraph, n: usize, seed: u64) -> Vec<SearchCase> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut entities: Vec<EntityId> = kg.entity_ids().collect();
    entities.shuffle(&mut rng);

    let mut cases = Vec::new();
    let mut label_cases = 0usize;
    let mut alias_cases = 0usize;
    let mut ctx_cases = 0usize;
    for &e in &entities {
        if label_cases >= n && alias_cases >= n && ctx_cases >= n {
            break;
        }
        let label = kg.display_name(e);
        if label.is_empty() {
            continue;
        }
        if label_cases < n {
            cases.push(SearchCase {
                query: label.clone(),
                target: e,
                kind: QueryKind::Label,
            });
            label_cases += 1;
        }
        if alias_cases < n {
            if let Some(alias) = kg.aliases(e).first() {
                cases.push(SearchCase {
                    query: alias.clone(),
                    target: e,
                    kind: QueryKind::Alias,
                });
                alias_cases += 1;
            }
        }
        if ctx_cases < n {
            if let Some(t) = kg.types_of(e).next() {
                cases.push(SearchCase {
                    query: format!("{label} {}", kg.type_name(t)),
                    target: e,
                    kind: QueryKind::LabelWithContext,
                });
                ctx_cases += 1;
            }
        }
    }
    cases
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivote_kg::{generate, DatagenConfig};

    #[test]
    fn classes_respect_size_bounds_and_limit() {
        let kg = generate(&DatagenConfig::small());
        let classes = ese_classes(&kg, 10, 200, 8);
        assert!(!classes.is_empty());
        assert!(classes.len() <= 8);
        for c in &classes {
            assert!((10..=200).contains(&c.members.len()), "{}", c.name);
            assert!(c.members.windows(2).all(|w| w[0] < w[1]));
        }
        // sorted by descending size
        assert!(classes
            .windows(2)
            .all(|w| w[0].members.len() >= w[1].members.len()));
    }

    #[test]
    fn seed_trials_are_deterministic_and_within_class() {
        let kg = generate(&DatagenConfig::small());
        let classes = ese_classes(&kg, 10, 200, 1);
        let class = &classes[0];
        let a = seed_trials(class, 3, 4, 7);
        let b = seed_trials(class, 3, 4, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        for trial in &a {
            assert_eq!(trial.len(), 3);
            assert!(trial.iter().all(|e| class.members.contains(e)));
        }
    }

    #[test]
    fn tiny_class_produces_no_trials() {
        let class = EseClass {
            name: "tiny".into(),
            members: vec![EntityId::new(0), EntityId::new(1)],
        };
        assert!(seed_trials(&class, 2, 3, 1).is_empty());
        assert!(seed_trials(&class, 5, 3, 1).is_empty());
    }

    #[test]
    fn search_cases_cover_kinds() {
        let kg = generate(&DatagenConfig::small());
        let cases = search_cases(&kg, 10, 42);
        assert!(cases.iter().any(|c| c.kind == QueryKind::Label));
        assert!(cases.iter().any(|c| c.kind == QueryKind::Alias));
        assert!(cases.iter().any(|c| c.kind == QueryKind::LabelWithContext));
        // deterministic
        let again = search_cases(&kg, 10, 42);
        assert_eq!(cases.len(), again.len());
        assert!(cases
            .iter()
            .zip(&again)
            .all(|(a, b)| a.query == b.query && a.target == b.target));
    }
}

//! Experiment harness: runs the quality experiments (Q1/Q2/Q4/Q5 of
//! DESIGN.md) and renders fixed-width tables for EXPERIMENTS.md.

use crate::groundtruth::{ese_classes, search_cases, seed_trials, QueryKind, SearchCase};
use crate::metrics;
use pivote_baselines::EntityExpansion;
use pivote_core::{
    explain_cell, CellExplanation, Expander, GraphHandle, HeatMap, RankingConfig, SfQuery,
};
use pivote_kg::{EntityId, KnowledgeGraph, TypeCouplingStats};
use pivote_search::{Scorer, SearchEngine};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Build the experiment graph for `cfg` — the one graph-construction
/// seam every experiment runner and binary goes through. Under
/// `PIVOTE_INCREMENTAL=1` (the CI incremental leg) the graph is built
/// through the **append path**: generate, split off the trailing half of
/// the entity triples as a [`pivote_kg::DeltaBatch`], and splice them
/// back with `KnowledgeGraph::apply`. Append-then-query is bit-identical
/// to rebuild-then-query (see `tests/incremental_equivalence.rs`), so
/// every metric the harness reports must come out unchanged — which is
/// exactly what the leg verifies.
///
/// Under `PIVOTE_COMPACT=1` (the CI compaction leg, taking precedence)
/// the graph takes the full **append-then-compact** route instead:
/// generate, split off the trailing 40% of the *entities* as three
/// entity-minting batches ([`pivote_kg::split_growth`]), apply them
/// through a 2-shard [`pivote_kg::ShardedGraph`] (each batch appends a
/// trailing shard), re-partition with `ShardedGraph::compact`, and
/// union-rebuild with `ShardedGraph::to_graph`. Compaction is
/// answer-preserving (see `tests/compaction_equivalence.rs`), so this
/// leg too must reproduce every metric and golden ranking unchanged.
///
/// Under `PIVOTE_MAINTENANCE=1` (taking precedence over both) the same
/// growth batches are driven through a live
/// [`pivote_core::LiveStore`] with a background
/// [`pivote_core::MaintenanceHandle`] ticking an aggressive
/// [`pivote_kg::CompactionPolicy`]: the maintenance thread — not the
/// append path — absorbs every trailing shard via the off-lock
/// concurrent compaction, and the union the store then holds must
/// still reproduce every metric and golden ranking unchanged.
///
/// Under `PIVOTE_RETRACT=1` (highest precedence) the graph takes a full
/// **mixed insert/delete** route: the same growth batches are
/// interleaved with generated churn — noise statements (edges, literals,
/// type and category assertions on existing entities under churn-only
/// dictionary names) inserted and then retracted batch by batch — and
/// the store finishes with a [`KnowledgeGraph::reclaim`] that must hold
/// zero tombstones. Retraction is exact (`tests/retraction_equivalence.rs`),
/// so the surviving graph — and therefore every metric and golden
/// ranking — must come out unchanged.
///
/// Under `PIVOTE_REPLICA=1` (highest precedence) the graph is the one a
/// **read replica** serves: the growth batches are applied through a
/// 2-shard leader [`pivote_core::LiveStore`] that records every write
/// (and the closing compaction) in a durable delta log
/// ([`pivote_kg::wal`]), a follower [`pivote_core::ReplicaStore`] tails
/// the log from the single-layout base, and the follower's graph — which
/// must be fingerprint-equal to the leader's — is what every experiment
/// then runs on. Replication is exact (`tests/replica_equivalence.rs`),
/// so this leg too must reproduce every metric and golden ranking
/// unchanged.
///
/// Under `PIVOTE_SNAPSHOT=1` (highest precedence of all) the graph is
/// the one the **prepared-snapshot read path** serves: the growth
/// batches are applied through a 2-shard live store with
/// [`pivote_core::LiveStore::enable_snapshots`] on, publication is
/// asserted to track every write, and the graph handed to the
/// experiments is the published snapshot's pinned backend — with its
/// prepared-context answers asserted bit-identical to a fresh context
/// over the union rebuild first. Snapshot serving is exact
/// (`tests/snapshot_equivalence.rs`), so this leg too must reproduce
/// every metric and golden ranking unchanged.
pub fn eval_graph(cfg: &pivote_kg::DatagenConfig) -> KnowledgeGraph {
    let kg = pivote_kg::generate(cfg);
    if pivote_core::snapshot_from_env() {
        let (base, batches) = pivote_kg::split_growth(&kg, 0.6, 3);
        let store =
            pivote_core::LiveStore::with_threads(pivote_kg::ShardedGraph::from_graph(&base, 2), 1);
        store.enable_snapshots();
        for batch in &batches {
            store.append(batch).expect("store healthy");
            let snap = store.snapshot().expect("publication enabled");
            assert_eq!(
                snap.generation(),
                store.generation(),
                "publication must track every append"
            );
        }
        store
            .compact_in_place(2)
            .expect("snapshot-leg compaction succeeds");
        let snap = store.snapshot().expect("publication enabled");
        assert_eq!(
            snap.generation(),
            store.generation(),
            "publication must track the compaction"
        );
        let out = snap.backend().to_single();
        // the prepared context answers bit-identically to a fresh
        // single-layout context over the union rebuild — the snapshot
        // read path must not change a single score
        let probe = vec![EntityId::new(0), EntityId::new(1)];
        let rcfg = RankingConfig::default();
        let fresh = pivote_core::QueryContext::with_threads(&out, 1);
        let want_f = fresh.rank_features(&rcfg, &probe);
        let got_f = snap.handle().rank_features(&rcfg, &probe);
        assert_eq!(got_f, want_f, "snapshot features diverged from fresh");
        let want_e = fresh.rank_entities(&rcfg, &probe, &want_f);
        let got_e = snap.handle().rank_entities(&rcfg, &probe, &got_f);
        assert_eq!(got_e, want_e, "snapshot entities diverged from fresh");
        assert_eq!(
            out.triple_count(),
            kg.triple_count(),
            "snapshot eval graph must reconstruct the generated graph"
        );
        assert_eq!(out.entity_count(), kg.entity_count());
        out
    } else if pivote_kg::replica_from_env() {
        let (base, batches) = pivote_kg::split_growth(&kg, 0.6, 3);
        let wal_path = std::env::temp_dir().join(format!(
            "pivote_eval_replica_{}_{:?}.wal",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&wal_path);
        let leader =
            pivote_core::LiveStore::with_threads(pivote_kg::ShardedGraph::from_graph(&base, 2), 1);
        leader.log_to(&wal_path).expect("leader delta log opens");
        let mut follower =
            pivote_core::ReplicaStore::open(base, 1, &wal_path).expect("follower opens the log");
        for batch in &batches {
            leader.append(batch).expect("leader healthy");
        }
        leader
            .compact_in_place(2)
            .expect("leader compaction succeeds");
        let applied = follower.sync().expect("follower replays the log");
        assert_eq!(
            applied,
            batches.len() + 1,
            "every growth batch plus the compaction must ship"
        );
        let (leader_fp, follower_fp) = {
            let lr = leader.read();
            let fr = follower.store().read();
            (lr.backend().fingerprint(), fr.backend().fingerprint())
        };
        assert_eq!(
            follower_fp, leader_fp,
            "the follower must be fingerprint-equal to the leader"
        );
        let out = {
            let reader = follower.store().read();
            reader.backend().to_single()
        };
        let _ = std::fs::remove_file(&wal_path);
        assert_eq!(
            out.triple_count(),
            kg.triple_count(),
            "replica eval graph must reconstruct the generated graph"
        );
        assert_eq!(out.entity_count(), kg.entity_count());
        out
    } else if pivote_kg::retract_from_env() {
        let (base, batches) = pivote_kg::split_growth(&kg, 0.6, 3);
        let mut out = base;
        let churn_targets = out.entity_count().min(32);
        for batch in &batches {
            out.apply(batch);
            // churn: noise statements on long-existing entities, under
            // dictionary names no real statement uses (so the retract
            // can never swallow a genuine statement deduplicated away
            // by the insert)
            let mut noise = pivote_kg::DeltaBatch::new();
            let mut undo = pivote_kg::DeltaBatch::new();
            for i in 0..churn_targets {
                let s = kg.entity_name(EntityId::new(i as u32)).to_owned();
                let o = kg
                    .entity_name(EntityId::new(((i + 7) % churn_targets) as u32))
                    .to_owned();
                noise.triple(&s, "churn_retract_leg", &o);
                undo.retract_triple(&s, "churn_retract_leg", &o);
                if i % 2 == 0 {
                    let v = pivote_kg::Literal::integer(i as i64);
                    noise.literal(&s, "churn_retract_leg", v.clone());
                    undo.retract_literal(&s, "churn_retract_leg", v);
                }
                if i % 3 == 0 {
                    noise.typed(&s, "Churn_Retract_Type");
                    undo.retract_typed(&s, "Churn_Retract_Type");
                }
                if i % 4 == 0 {
                    noise.categorized(&s, "Churn retract category");
                    undo.retract_categorized(&s, "Churn retract category");
                }
            }
            out.apply(&noise);
            out.apply(&undo);
        }
        assert!(
            out.tombstone_count() > 0,
            "the churn batches must have left tombstones"
        );
        let out = out.reclaim();
        assert_eq!(
            out.tombstone_count(),
            0,
            "reclaim must drop every tombstone"
        );
        assert_eq!(
            out.triple_count(),
            kg.triple_count(),
            "retract eval graph must reconstruct the generated graph"
        );
        assert_eq!(out.entity_count(), kg.entity_count());
        out
    } else if pivote_core::maintenance_from_env() {
        use std::sync::Arc;
        use std::time::{Duration, Instant};
        let (base, batches) = pivote_kg::split_growth(&kg, 0.6, 3);
        let store = Arc::new(pivote_core::LiveStore::with_threads(
            pivote_kg::ShardedGraph::from_graph(&base, 2),
            1,
        ));
        let mut maintenance = pivote_core::MaintenanceHandle::spawn(
            Arc::clone(&store),
            pivote_kg::CompactionPolicy {
                max_trailing: 0,
                max_tail_fraction: 1.0,
                max_tombstone_fraction: 1.0,
            },
            2,
            Duration::from_millis(1),
        );
        for batch in &batches {
            store.append(batch).expect("store healthy");
        }
        let deadline = Instant::now() + Duration::from_secs(60);
        while store.trailing_shard_count() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        maintenance.stop();
        assert_eq!(
            store.trailing_shard_count(),
            0,
            "the maintenance thread must absorb every trailing shard"
        );
        assert!(maintenance.passes() >= 1, "at least one background pass");
        let out = Arc::try_unwrap(store)
            .ok()
            .expect("maintenance thread joined — no other store owners")
            .into_inner()
            .into_single();
        assert_eq!(
            out.triple_count(),
            kg.triple_count(),
            "maintained eval graph must reconstruct the generated graph"
        );
        assert_eq!(out.entity_count(), kg.entity_count());
        out
    } else if pivote_kg::compact_from_env() {
        let (base, batches) = pivote_kg::split_growth(&kg, 0.6, 3);
        let mut sg = pivote_kg::ShardedGraph::from_graph(&base, 2);
        for batch in &batches {
            sg.apply(batch);
        }
        assert!(
            sg.trailing_shard_count() > 0,
            "the growth batches must have appended trailing shards"
        );
        let out = sg.compact(2).to_graph();
        assert_eq!(
            out.triple_count(),
            kg.triple_count(),
            "compacted eval graph must reconstruct the generated graph"
        );
        assert_eq!(out.entity_count(), kg.entity_count());
        out
    } else if pivote_kg::incremental_from_env() {
        let (mut base, delta) = pivote_kg::split_incremental(&kg, 0.5);
        let receipt = base.apply(&delta);
        assert_eq!(
            base.triple_count(),
            kg.triple_count(),
            "incremental eval graph must reconstruct the generated graph"
        );
        assert!(receipt.added_relations > 0 || delta.is_empty());
        base
    } else {
        kg
    }
}

/// Configuration of the ESE quality experiment (Q1, A1, A2).
#[derive(Debug, Clone)]
pub struct EseEvalConfig {
    /// Seed-set sizes to sweep (paper-style m ∈ {1,2,3,5}).
    pub seed_sizes: Vec<usize>,
    /// Ranking cutoff.
    pub k: usize,
    /// Random trials per class per seed size.
    pub trials_per_class: usize,
    /// How many ground-truth classes to use.
    pub max_classes: usize,
    /// Class size bounds.
    pub class_size: (usize, usize),
    /// RNG seed for the seed-subset draws.
    pub seed: u64,
}

impl Default for EseEvalConfig {
    fn default() -> Self {
        Self {
            seed_sizes: vec![1, 2, 3, 5],
            k: 50,
            trials_per_class: 3,
            max_classes: 12,
            class_size: (10, 400),
            seed: 42,
        }
    }
}

/// Aggregated quality of one method at one seed-set size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EseResult {
    /// Method identifier.
    pub method: String,
    /// Seed-set size m.
    pub m: usize,
    /// Mean average precision.
    pub map: f64,
    /// Mean precision at 10.
    pub p10: f64,
    /// Mean nDCG at `k`.
    pub ndcg: f64,
    /// Mean recall at `k`.
    pub recall: f64,
    /// Number of (class × trial) queries aggregated.
    pub queries: usize,
}

/// Run the entity-set-expansion evaluation for every method on a fresh
/// single-graph context.
///
/// All methods (and all PivotE ablations) execute on one shared
/// [`GraphHandle`]: the `p(π|c)` densities memoized by the first trial
/// are cache hits for every later trial, method and seed-set size.
pub fn run_ese_eval(
    kg: &KnowledgeGraph,
    methods: &[&dyn EntityExpansion],
    cfg: &EseEvalConfig,
) -> Vec<EseResult> {
    run_ese_eval_on(&GraphHandle::single(kg), kg, methods, cfg)
}

/// [`run_ese_eval`] on an explicit backend handle — the sharded-matrix
/// entry point. Ground-truth classes are always derived from the source
/// graph `kg`; only query execution goes through `handle`, so single and
/// sharded backends are scored on identical queries (and, because the
/// rankings are bit-identical, produce identical metrics).
pub fn run_ese_eval_on(
    handle: &GraphHandle<'_>,
    kg: &KnowledgeGraph,
    methods: &[&dyn EntityExpansion],
    cfg: &EseEvalConfig,
) -> Vec<EseResult> {
    let classes = ese_classes(kg, cfg.class_size.0, cfg.class_size.1, cfg.max_classes);
    let mut out = Vec::new();
    for method in methods {
        for &m in &cfg.seed_sizes {
            let mut aps = Vec::new();
            let mut p10s = Vec::new();
            let mut ndcgs = Vec::new();
            let mut recalls = Vec::new();
            for class in &classes {
                for seeds in seed_trials(class, m, cfg.trials_per_class, cfg.seed) {
                    let relevant: HashSet<EntityId> = class
                        .members
                        .iter()
                        .copied()
                        .filter(|e| !seeds.contains(e))
                        .collect();
                    if relevant.is_empty() {
                        continue;
                    }
                    let ranked: Vec<EntityId> = method
                        .expand_in(handle, &seeds, cfg.k)
                        .into_iter()
                        .map(|(e, _)| e)
                        .collect();
                    aps.push(metrics::average_precision(&ranked, &relevant));
                    p10s.push(metrics::precision_at_k(&ranked, &relevant, 10));
                    ndcgs.push(metrics::ndcg_at_k(&ranked, &relevant, cfg.k));
                    recalls.push(metrics::recall_at_k(&ranked, &relevant, cfg.k));
                }
            }
            out.push(EseResult {
                method: method.name().to_owned(),
                m,
                map: metrics::mean(&aps),
                p10: metrics::mean(&p10s),
                ndcg: metrics::mean(&ndcgs),
                recall: metrics::mean(&recalls),
                queries: aps.len(),
            });
        }
    }
    out
}

/// Render ESE results as a fixed-width table.
pub fn render_ese_table(results: &[EseResult]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>3} {:>8} {:>8} {:>8} {:>8} {:>7}",
        "method", "m", "MAP", "P@10", "nDCG", "recall", "queries"
    );
    let _ = writeln!(out, "{}", "-".repeat(62));
    for r in results {
        let _ = writeln!(
            out,
            "{:<14} {:>3} {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>7}",
            r.method, r.m, r.map, r.p10, r.ndcg, r.recall, r.queries
        );
    }
    out
}

/// Aggregated quality of one search scorer on one query kind.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchResult {
    /// Scorer identifier.
    pub scorer: String,
    /// Query kind label.
    pub kind: String,
    /// Mean reciprocal rank.
    pub mrr: f64,
    /// Success at rank 1.
    pub s1: f64,
    /// Success within the top 10.
    pub s10: f64,
    /// Number of cases.
    pub cases: usize,
}

/// A named search configuration to evaluate.
pub struct SearchVariant<'a> {
    /// Table label.
    pub name: &'a str,
    /// The engine (owns the index).
    pub engine: &'a SearchEngine,
    /// Which scorer to invoke.
    pub scorer: Scorer,
}

/// Run the search quality evaluation (Q2).
pub fn run_search_eval(
    variants: &[SearchVariant<'_>],
    cases: &[SearchCase],
    k: usize,
) -> Vec<SearchResult> {
    let kinds = [
        (QueryKind::Label, "label"),
        (QueryKind::Alias, "alias"),
        (QueryKind::LabelWithContext, "label+type"),
    ];
    let mut out = Vec::new();
    for v in variants {
        for (kind, kind_name) in kinds {
            let subset: Vec<&SearchCase> = cases.iter().filter(|c| c.kind == kind).collect();
            if subset.is_empty() {
                continue;
            }
            let mut rrs = Vec::new();
            let mut s1 = 0usize;
            let mut s10 = 0usize;
            for case in &subset {
                let ranked: Vec<EntityId> = v
                    .engine
                    .search_with(&case.query, k, v.scorer)
                    .into_iter()
                    .map(|h| h.entity)
                    .collect();
                let rr = metrics::reciprocal_rank(&ranked, case.target);
                rrs.push(rr);
                if rr == 1.0 {
                    s1 += 1;
                }
                if rr >= 0.1 {
                    s10 += 1;
                }
            }
            out.push(SearchResult {
                scorer: v.name.to_owned(),
                kind: kind_name.to_owned(),
                mrr: metrics::mean(&rrs),
                s1: s1 as f64 / subset.len() as f64,
                s10: s10 as f64 / subset.len() as f64,
                cases: subset.len(),
            });
        }
    }
    out
}

/// Render search results as a fixed-width table.
pub fn render_search_table(results: &[SearchResult]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:<12} {:>8} {:>8} {:>8} {:>7}",
        "scorer", "query kind", "MRR", "S@1", "S@10", "cases"
    );
    let _ = writeln!(out, "{}", "-".repeat(66));
    for r in results {
        let _ = writeln!(
            out,
            "{:<18} {:<12} {:>8.4} {:>8.4} {:>8.4} {:>7}",
            r.scorer, r.kind, r.mrr, r.s1, r.s10, r.cases
        );
    }
    out
}

/// Convenience: build `cases` with defaults (used by the Q2 binary and
/// tests).
pub fn default_search_cases(kg: &KnowledgeGraph, n: usize) -> Vec<SearchCase> {
    search_cases(kg, n, 42)
}

/// Q4: heat-map structure report — level histogram plus, per level, the
/// fraction of cells explained by a direct match.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeatmapReport {
    /// Cells per level 0..=6.
    pub histogram: [usize; 7],
    /// Per level: fraction of cells whose explanation is a direct match.
    pub direct_fraction: [f64; 7],
    /// Matrix dimensions (entities, features).
    pub dims: (usize, usize),
}

/// Compute the heat-map report for a seed query on a fresh single-graph
/// context.
pub fn run_heatmap_report(
    kg: &KnowledgeGraph,
    seeds: &[EntityId],
    k_entities: usize,
    k_features: usize,
) -> HeatmapReport {
    run_heatmap_report_on(&GraphHandle::single(kg), seeds, k_entities, k_features)
}

/// [`run_heatmap_report`] on an explicit backend handle.
///
/// Expansion, heat-map computation and the per-cell explanations all run
/// on one handle, so the explanation pass below is pure cache hits over
/// the densities the heat map already computed.
pub fn run_heatmap_report_on(
    handle: &GraphHandle<'_>,
    seeds: &[EntityId],
    k_entities: usize,
    k_features: usize,
) -> HeatmapReport {
    let expander = Expander::with_handle(handle.clone(), RankingConfig::default());
    let res = expander.expand(&SfQuery::from_seeds(seeds.to_vec()), k_entities, k_features);
    let entities: Vec<EntityId> = res.entities.iter().map(|re| re.entity).collect();
    let hm = HeatMap::compute(expander.ranker(), &entities, &res.features);
    let histogram = hm.level_histogram();
    let mut direct = [0usize; 7];
    for (row, rf) in hm.features.iter().enumerate() {
        for (col, &e) in hm.entities.iter().enumerate() {
            let level = hm.level(row, col) as usize;
            if matches!(
                explain_cell(expander.ranker(), rf.feature, e),
                CellExplanation::DirectMatch
            ) {
                direct[level] += 1;
            }
        }
    }
    let mut direct_fraction = [0.0f64; 7];
    for l in 0..7 {
        if histogram[l] > 0 {
            direct_fraction[l] = direct[l] as f64 / histogram[l] as f64;
        }
    }
    HeatmapReport {
        histogram,
        direct_fraction,
        dims: (hm.width(), hm.height()),
    }
}

/// Q5: pivot quality — fraction of pivots from a domain that land in a
/// type statistically coupled to it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PivotReport {
    /// Pivots attempted.
    pub attempted: usize,
    /// Pivots whose destination type is coupled to the source type.
    pub coupled: usize,
}

impl PivotReport {
    /// Success fraction.
    pub fn success_rate(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.coupled as f64 / self.attempted as f64
        }
    }
}

/// Evaluate pivots: for `n` entities of `source_type`, pivot through each
/// of their features and check the landing domain against the
/// type-coupling statistics.
pub fn run_pivot_eval(
    kg: &KnowledgeGraph,
    source_type: pivote_kg::TypeId,
    n: usize,
) -> PivotReport {
    use pivote_core::features_of;
    let stats = TypeCouplingStats::compute(kg);
    let coupled_types: HashSet<pivote_kg::TypeId> = stats
        .coupled_types(source_type)
        .into_iter()
        .map(|(t, _)| t)
        .chain(
            // incoming couplings count too: X —p→ source
            kg.type_ids().filter(|&t| {
                stats
                    .coupled_types(t)
                    .iter()
                    .any(|&(ot, _)| ot == source_type)
            }),
        )
        .collect();
    let mut attempted = 0usize;
    let mut coupled = 0usize;
    for &e in kg.type_extent(source_type).iter().take(n) {
        for sf in features_of(kg, e) {
            // dominant type of the feature's *anchor* — the domain a pivot
            // through this feature switches to
            let anchor_types: Vec<pivote_kg::TypeId> = kg.types_of(sf.anchor).collect();
            if anchor_types.is_empty() {
                continue;
            }
            attempted += 1;
            if anchor_types.iter().any(|t| coupled_types.contains(t)) {
                coupled += 1;
            }
        }
    }
    PivotReport { attempted, coupled }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivote_baselines::{FreqOverlapExpansion, JaccardExpansion, PivotEExpansion};
    use pivote_kg::DatagenConfig;
    use pivote_search::SearchConfig;

    fn kg() -> KnowledgeGraph {
        // routed through the construction seam so the PIVOTE_INCREMENTAL
        // CI leg runs the whole harness suite on the append path
        eval_graph(&DatagenConfig::small())
    }

    #[test]
    fn ese_eval_produces_rows_for_every_method_and_m() {
        let kg = kg();
        let pivote = PivotEExpansion::default();
        let jaccard = JaccardExpansion;
        let methods: Vec<&dyn EntityExpansion> = vec![&pivote, &jaccard];
        let cfg = EseEvalConfig {
            seed_sizes: vec![1, 2],
            max_classes: 3,
            trials_per_class: 1,
            ..EseEvalConfig::default()
        };
        let results = run_ese_eval(&kg, &methods, &cfg);
        assert_eq!(results.len(), 4);
        assert!(results.iter().all(|r| r.queries > 0));
        assert!(results.iter().all(|r| (0.0..=1.0).contains(&r.map)));
        let table = render_ese_table(&results);
        assert!(table.contains("pivote"));
        assert!(table.contains("jaccard"));
    }

    #[test]
    fn pivote_beats_freq_overlap_on_planted_classes() {
        // The headline shape: the paper's weighted model should beat raw
        // overlap counting on MAP.
        let kg = kg();
        let pivote = PivotEExpansion::default();
        let freq = FreqOverlapExpansion;
        let methods: Vec<&dyn EntityExpansion> = vec![&pivote, &freq];
        let cfg = EseEvalConfig {
            seed_sizes: vec![2],
            max_classes: 6,
            trials_per_class: 2,
            ..EseEvalConfig::default()
        };
        let results = run_ese_eval(&kg, &methods, &cfg);
        let map_of = |name: &str| {
            results
                .iter()
                .find(|r| r.method == name)
                .map(|r| r.map)
                .unwrap()
        };
        assert!(
            map_of("pivote") > map_of("freq-overlap"),
            "pivote {} <= freq {}",
            map_of("pivote"),
            map_of("freq-overlap")
        );
    }

    #[test]
    fn search_eval_scores_all_kinds() {
        let kg = kg();
        let engine = SearchEngine::build(&kg, SearchConfig::default());
        let cases = default_search_cases(&kg, 10);
        let variants = [
            SearchVariant {
                name: "lm-mixture",
                engine: &engine,
                scorer: Scorer::MixtureLm,
            },
            SearchVariant {
                name: "bm25f",
                engine: &engine,
                scorer: Scorer::Bm25,
            },
        ];
        let results = run_search_eval(&variants, &cases, 20);
        assert_eq!(results.len(), 6); // 2 scorers × 3 kinds
        for r in &results {
            assert!((0.0..=1.0).contains(&r.mrr));
            assert!(r.s1 <= r.s10 + 1e-12);
        }
        let label_lm = results
            .iter()
            .find(|r| r.scorer == "lm-mixture" && r.kind == "label")
            .unwrap();
        assert!(
            label_lm.mrr > 0.3,
            "label queries should mostly work: {}",
            label_lm.mrr
        );
        assert!(!render_search_table(&results).is_empty());
    }

    #[test]
    fn heatmap_report_is_consistent() {
        let kg = kg();
        let film = kg.type_id("Film").unwrap();
        let seeds = &kg.type_extent(film)[..2];
        let rep = run_heatmap_report(&kg, seeds, 10, 8);
        assert_eq!(rep.histogram.iter().sum::<usize>(), rep.dims.0 * rep.dims.1);
        // level 6 cells should be direct matches far more often than level 1
        assert!(rep
            .direct_fraction
            .iter()
            .all(|&f| (0.0..=1.0).contains(&f)));
    }

    #[test]
    fn pivot_eval_mostly_lands_in_coupled_domains() {
        let kg = kg();
        let film = kg.type_id("Film").unwrap();
        let rep = run_pivot_eval(&kg, film, 20);
        assert!(rep.attempted > 0);
        assert!(
            rep.success_rate() > 0.9,
            "pivots from Film should land in coupled types: {}",
            rep.success_rate()
        );
    }
}

//! Standard ranked-retrieval metrics (binary relevance).

use pivote_kg::EntityId;
use std::collections::HashSet;

/// Precision at cutoff `k`: relevant among the first `k` / `k`.
pub fn precision_at_k(ranked: &[EntityId], relevant: &HashSet<EntityId>, k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let hits = ranked
        .iter()
        .take(k)
        .filter(|e| relevant.contains(e))
        .count();
    hits as f64 / k as f64
}

/// Recall at cutoff `k`: relevant among the first `k` / total relevant.
pub fn recall_at_k(ranked: &[EntityId], relevant: &HashSet<EntityId>, k: usize) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let hits = ranked
        .iter()
        .take(k)
        .filter(|e| relevant.contains(e))
        .count();
    hits as f64 / relevant.len() as f64
}

/// R-precision: precision at `R = |relevant|`.
pub fn r_precision(ranked: &[EntityId], relevant: &HashSet<EntityId>) -> f64 {
    precision_at_k(ranked, relevant, relevant.len())
}

/// Average precision over the full ranking (normalized by `|relevant|`).
pub fn average_precision(ranked: &[EntityId], relevant: &HashSet<EntityId>) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (i, e) in ranked.iter().enumerate() {
        if relevant.contains(e) {
            hits += 1;
            sum += hits as f64 / (i + 1) as f64;
        }
    }
    sum / relevant.len() as f64
}

/// Normalized discounted cumulative gain at cutoff `k` with binary gains.
pub fn ndcg_at_k(ranked: &[EntityId], relevant: &HashSet<EntityId>, k: usize) -> f64 {
    if relevant.is_empty() || k == 0 {
        return 0.0;
    }
    let dcg: f64 = ranked
        .iter()
        .take(k)
        .enumerate()
        .filter(|(_, e)| relevant.contains(*e))
        .map(|(i, _)| 1.0 / ((i + 2) as f64).log2())
        .sum();
    let ideal: f64 = (0..relevant.len().min(k))
        .map(|i| 1.0 / ((i + 2) as f64).log2())
        .sum();
    dcg / ideal
}

/// Reciprocal rank of the single `target` (0 when absent).
pub fn reciprocal_rank(ranked: &[EntityId], target: EntityId) -> f64 {
    ranked
        .iter()
        .position(|&e| e == target)
        .map(|i| 1.0 / (i + 1) as f64)
        .unwrap_or(0.0)
}

/// Arithmetic mean (0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().map(|&x| EntityId::new(x)).collect()
    }

    fn set(v: &[u32]) -> HashSet<EntityId> {
        v.iter().map(|&x| EntityId::new(x)).collect()
    }

    #[test]
    fn precision_recall_hand_computed() {
        let ranked = ids(&[1, 9, 2, 8, 3]);
        let rel = set(&[1, 2, 3]);
        assert!((precision_at_k(&ranked, &rel, 2) - 0.5).abs() < 1e-12);
        assert!((precision_at_k(&ranked, &rel, 5) - 0.6).abs() < 1e-12);
        assert!((recall_at_k(&ranked, &rel, 2) - 1.0 / 3.0).abs() < 1e-12);
        assert!((recall_at_k(&ranked, &rel, 5) - 1.0).abs() < 1e-12);
        assert!((r_precision(&ranked, &rel) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn average_precision_hand_computed() {
        let ranked = ids(&[1, 9, 2]);
        let rel = set(&[1, 2, 3]);
        // hits at ranks 1 (1/1) and 3 (2/3); divided by |rel| = 3
        let expected = (1.0 + 2.0 / 3.0) / 3.0;
        assert!((average_precision(&ranked, &rel) - expected).abs() < 1e-12);
    }

    #[test]
    fn perfect_ranking_scores_one() {
        let ranked = ids(&[1, 2, 3]);
        let rel = set(&[1, 2, 3]);
        assert!((average_precision(&ranked, &rel) - 1.0).abs() < 1e-12);
        assert!((ndcg_at_k(&ranked, &rel, 3) - 1.0).abs() < 1e-12);
        assert!((r_precision(&ranked, &rel) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_prefers_early_hits() {
        let rel = set(&[1]);
        let early = ndcg_at_k(&ids(&[1, 2, 3]), &rel, 3);
        let late = ndcg_at_k(&ids(&[2, 3, 1]), &rel, 3);
        assert!(early > late);
        assert!(late > 0.0);
    }

    #[test]
    fn reciprocal_rank_cases() {
        let ranked = ids(&[5, 6, 7]);
        assert_eq!(reciprocal_rank(&ranked, EntityId::new(5)), 1.0);
        assert!((reciprocal_rank(&ranked, EntityId::new(7)) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(reciprocal_rank(&ranked, EntityId::new(99)), 0.0);
    }

    #[test]
    fn empty_edge_cases() {
        let rel = set(&[1]);
        assert_eq!(precision_at_k(&[], &rel, 0), 0.0);
        assert_eq!(recall_at_k(&[], &HashSet::new(), 5), 0.0);
        assert_eq!(average_precision(&[], &HashSet::new()), 0.0);
        assert_eq!(ndcg_at_k(&[], &rel, 0), 0.0);
        assert_eq!(mean(&[]), 0.0);
    }

    proptest! {
        /// All metrics stay within [0, 1] for duplicate-free rankings
        /// (the precondition every retrieval method in this repo meets).
        #[test]
        fn prop_metrics_bounded(
            ranked in proptest::collection::hash_set(0u32..50, 0..30),
            rel in proptest::collection::hash_set(0u32..50, 0..20),
            k in 0usize..40,
        ) {
            let ranked: Vec<u32> = ranked.into_iter().collect();
            let ranked = ids(&ranked);
            let rel: HashSet<EntityId> = rel.into_iter().map(EntityId::new).collect();
            for v in [
                precision_at_k(&ranked, &rel, k),
                recall_at_k(&ranked, &rel, k),
                average_precision(&ranked, &rel),
                ndcg_at_k(&ranked, &rel, k),
                r_precision(&ranked, &rel),
            ] {
                prop_assert!((0.0..=1.0 + 1e-9).contains(&v), "metric out of range: {v}");
            }
        }
    }
}

//! Live graphs: append-while-querying ownership wrappers.
//!
//! [`LiveGraph`] (and its sharded sibling [`LiveShardedGraph`]) owns a
//! graph behind an `RwLock` plus one [`SharedCache`], and coordinates the
//! two halves of the live-store contract:
//!
//! - **Queries** take a read guard ([`LiveGraph::read`]) and build a
//!   cheap [`QueryContext`] over the locked graph sharing the persistent
//!   cache — so every density memoized by any earlier query (on any
//!   generation whose extents were not touched since) is a hit.
//! - **Appends** ([`LiveGraph::append`]) take the write lock, splice the
//!   [`DeltaBatch`] into the store in place, and invalidate exactly the
//!   cached densities the [`AppliedDelta`] receipt names — all before any
//!   new reader can observe the new graph, so a reader's context and the
//!   cache are always mutually consistent. Readers admitted before the
//!   append finish against the old extents (they hold the read lock; the
//!   writer waits), readers admitted after see the new extents and a
//!   cache scrubbed of everything the delta touched.
//!
//! The guard-scoped context is what makes this safe in Rust without
//! copying the graph: extent slices borrowed by a context can never
//! outlive the read guard, so no query ever observes a half-spliced row.

use crate::context::{QueryContext, SharedCache};
use crate::sharded::ShardedContext;
use pivote_kg::{
    AppliedDelta, CompactionPolicy, CompactionReceipt, DeltaBatch, KnowledgeGraph, ShardedGraph,
};
use std::sync::{Arc, RwLock, RwLockReadGuard};

/// A single in-memory [`KnowledgeGraph`] that can grow while sessions
/// query it.
pub struct LiveGraph {
    kg: RwLock<KnowledgeGraph>,
    cache: Arc<SharedCache>,
    threads: usize,
}

impl LiveGraph {
    /// Wrap a graph with one worker per available core for its contexts.
    pub fn new(kg: KnowledgeGraph) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::with_threads(kg, threads)
    }

    /// Wrap a graph with an explicit per-context worker-thread count.
    pub fn with_threads(kg: KnowledgeGraph, threads: usize) -> Self {
        Self {
            kg: RwLock::new(kg),
            cache: Arc::new(SharedCache::new()),
            threads: threads.max(1),
        }
    }

    /// The persistent cross-generation cache (observability: generation
    /// counter, cached density count, probe methods).
    pub fn cache(&self) -> &Arc<SharedCache> {
        &self.cache
    }

    /// The graph's current mutation generation.
    pub fn generation(&self) -> u64 {
        self.kg.read().expect("live graph poisoned").generation()
    }

    /// Append a batch: write-locks the graph, splices the delta in place
    /// and drops exactly the touched cache entries before readers can see
    /// the new extents.
    pub fn append(&self, delta: &DeltaBatch) -> AppliedDelta {
        let mut kg = self.kg.write().expect("live graph poisoned");
        let applied = kg.apply(delta);
        self.cache.invalidate(&applied);
        applied
    }

    /// Take a read guard for one query (or a batch of queries). Appends
    /// block until every outstanding reader is done.
    pub fn read(&self) -> LiveReader<'_> {
        LiveReader {
            guard: self.kg.read().expect("live graph poisoned"),
            cache: Arc::clone(&self.cache),
            threads: self.threads,
        }
    }

    /// Unwrap the owned graph (consumes the wrapper).
    pub fn into_inner(self) -> KnowledgeGraph {
        self.kg.into_inner().expect("live graph poisoned")
    }
}

/// A read guard over a [`LiveGraph`]: the entry point for querying one
/// consistent graph snapshot.
pub struct LiveReader<'a> {
    guard: RwLockReadGuard<'a, KnowledgeGraph>,
    cache: Arc<SharedCache>,
    threads: usize,
}

impl LiveReader<'_> {
    /// The locked graph snapshot.
    pub fn kg(&self) -> &KnowledgeGraph {
        &self.guard
    }

    /// The snapshot's generation.
    pub fn generation(&self) -> u64 {
        self.guard.generation()
    }

    /// A [`QueryContext`] over this snapshot sharing the live graph's
    /// persistent cache. Cheap to build (the heavy state lives in the
    /// cache); scoped to the guard, so it can never observe an append.
    pub fn ctx(&self) -> QueryContext<'_> {
        QueryContext::with_cache(&self.guard, self.threads, Arc::clone(&self.cache))
    }

    /// A backend-agnostic [`GraphHandle`](crate::GraphHandle) over this
    /// snapshot — every engine in the workspace runs on it unchanged.
    pub fn handle(&self) -> crate::GraphHandle<'_> {
        crate::GraphHandle::Single(Arc::new(self.ctx()))
    }
}

/// A [`ShardedGraph`] that can grow while sessions query it — the same
/// contract as [`LiveGraph`], with deltas routed to the owning shard(s).
pub struct LiveShardedGraph {
    sg: RwLock<ShardedGraph>,
    cache: Arc<SharedCache>,
    threads: usize,
}

impl LiveShardedGraph {
    /// Wrap a sharded graph with one worker per available core.
    pub fn new(sg: ShardedGraph) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::with_threads(sg, threads)
    }

    /// Wrap a sharded graph with an explicit worker-thread count.
    pub fn with_threads(sg: ShardedGraph, threads: usize) -> Self {
        Self {
            sg: RwLock::new(sg),
            cache: Arc::new(SharedCache::new()),
            threads: threads.max(1),
        }
    }

    /// The persistent cross-generation cache.
    pub fn cache(&self) -> &Arc<SharedCache> {
        &self.cache
    }

    /// The graph's current mutation generation.
    pub fn generation(&self) -> u64 {
        self.sg.read().expect("live graph poisoned").generation()
    }

    /// Append a batch under the write lock and invalidate exactly the
    /// touched cache entries.
    pub fn append(&self, delta: &DeltaBatch) -> AppliedDelta {
        let mut sg = self.sg.write().expect("live graph poisoned");
        let applied = sg.apply(delta);
        self.cache.invalidate(&applied);
        applied
    }

    /// Re-partition the grown graph into `target_shards` fresh
    /// entity-id-range shards and swap it in under the write lock — the
    /// background-reorganization half of the live-store contract.
    ///
    /// Readers admitted before the swap finish against the old partition
    /// (they hold the read lock; the compactor waits); readers admitted
    /// after see the fresh partition and a **new generation stamp** on
    /// both the graph and the shared cache. The cache itself migrates
    /// wholesale: every surviving `p(π|c)` density is an exact global
    /// quantity independent of the partitioning, and feature ids are
    /// append-stable, so nothing is dropped
    /// ([`SharedCache::note_compaction`]) — only each reader context's
    /// shard-local resolved extents die with their read guards. Because
    /// compaction changes no extent, answers before and after the swap
    /// are bit-identical (`tests/compaction_equivalence.rs`).
    ///
    /// The offline union rebuild runs under the write lock, so this is a
    /// stop-the-world pass of roughly `ShardedGraph::from_graph` cost —
    /// schedule it via [`LiveShardedGraph::maybe_compact`] when the
    /// [`CompactionPolicy`] says the tail dominates.
    pub fn compact_in_place(&self, target_shards: usize) -> CompactionReceipt {
        let mut sg = self.sg.write().expect("live graph poisoned");
        self.compact_locked(&mut sg, target_shards)
    }

    /// Compact to `target_shards` iff `policy` judges the graph
    /// degenerate; returns the receipt when a pass ran. The policy check
    /// runs under the same write lock as the swap, so a decision is
    /// never based on a partition another writer just replaced.
    pub fn maybe_compact(
        &self,
        policy: &CompactionPolicy,
        target_shards: usize,
    ) -> Option<CompactionReceipt> {
        let mut sg = self.sg.write().expect("live graph poisoned");
        if !policy.needs_compaction(&sg) {
            return None;
        }
        Some(self.compact_locked(&mut sg, target_shards))
    }

    /// The swap itself, under an already-held write guard: re-partition,
    /// stamp the cache, assemble the receipt.
    fn compact_locked(&self, sg: &mut ShardedGraph, target_shards: usize) -> CompactionReceipt {
        let shards_before = sg.shard_count();
        let trailing_before = sg.trailing_shard_count();
        *sg = sg.compact(target_shards);
        self.cache.note_compaction();
        CompactionReceipt {
            generation: sg.generation(),
            shards_before,
            shards_after: sg.shard_count(),
            trailing_before,
            entities: sg.entity_count(),
        }
    }

    /// The current shard count (base + trailing).
    pub fn shard_count(&self) -> usize {
        self.sg.read().expect("live graph poisoned").shard_count()
    }

    /// Take a read guard for querying one consistent snapshot.
    pub fn read(&self) -> LiveShardedReader<'_> {
        LiveShardedReader {
            guard: self.sg.read().expect("live graph poisoned"),
            cache: Arc::clone(&self.cache),
            threads: self.threads,
        }
    }

    /// Unwrap the owned sharded graph.
    pub fn into_inner(self) -> ShardedGraph {
        self.sg.into_inner().expect("live graph poisoned")
    }
}

/// A read guard over a [`LiveShardedGraph`].
pub struct LiveShardedReader<'a> {
    guard: RwLockReadGuard<'a, ShardedGraph>,
    cache: Arc<SharedCache>,
    threads: usize,
}

impl LiveShardedReader<'_> {
    /// The locked sharded-graph snapshot.
    pub fn graph(&self) -> &ShardedGraph {
        &self.guard
    }

    /// The snapshot's generation.
    pub fn generation(&self) -> u64 {
        self.guard.generation()
    }

    /// A [`ShardedContext`] over this snapshot sharing the persistent
    /// cache.
    pub fn ctx(&self) -> ShardedContext<'_> {
        ShardedContext::with_cache(&self.guard, self.threads, Arc::clone(&self.cache))
    }

    /// A backend-agnostic [`GraphHandle`](crate::GraphHandle) over this
    /// snapshot.
    pub fn handle(&self) -> crate::GraphHandle<'_> {
        crate::GraphHandle::Sharded(Arc::new(self.ctx()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RankingConfig;
    use pivote_kg::{generate, DatagenConfig, EntityId};

    fn seeds(kg: &KnowledgeGraph, n: usize) -> Vec<EntityId> {
        let film = kg.type_id("Film").unwrap();
        kg.type_extent(film)[..n].to_vec()
    }

    #[test]
    fn append_then_query_equals_rebuild_then_query() {
        let live = LiveGraph::with_threads(generate(&DatagenConfig::tiny()), 1);
        let (s, names) = {
            let reader = live.read();
            let s = seeds(reader.kg(), 2);
            let names: Vec<String> = (0..4)
                .map(|i| reader.kg().entity_name(EntityId::new(i)).to_owned())
                .collect();
            (s, names)
        };
        let mut delta = DeltaBatch::new();
        delta.triple(&names[0], "brand_new_link", &names[1]).triple(
            &names[2],
            "brand_new_link",
            &names[3],
        );
        let receipt = live.append(&delta);
        assert_eq!(receipt.generation, 1);
        assert_eq!(live.generation(), 1);
        assert_eq!(live.cache().generation(), 1);

        // union rebuild: regenerate the base and replay the delta
        let union = {
            let mut kg = generate(&DatagenConfig::tiny());
            kg.apply(&delta);
            kg
        };
        let cfg = RankingConfig::default();
        let reader = live.read();
        let live_ctx = reader.ctx();
        let fresh_ctx = QueryContext::with_threads(&union, 1);
        let lf = live_ctx.rank_features(&cfg, &s);
        let ff = fresh_ctx.rank_features(&cfg, &s);
        assert_eq!(lf, ff, "feature rankings must match the rebuilt union");
        let le = live_ctx.rank_entities(&cfg, &s, &lf);
        let fe = fresh_ctx.rank_entities(&cfg, &s, &ff);
        assert_eq!(le.len(), fe.len());
        for (a, b) in le.iter().zip(&fe) {
            assert_eq!(a.entity, b.entity);
            assert!((a.score - b.score).abs() == 0.0, "score drifted");
        }
    }

    #[test]
    fn sharded_live_graph_appends_and_answers() {
        let kg = generate(&DatagenConfig::tiny());
        let s = seeds(&kg, 2);
        let cfg = RankingConfig::default();
        let single = QueryContext::with_threads(&kg, 1);
        let base_features = single.rank_features(&cfg, &s);

        let live = LiveShardedGraph::with_threads(ShardedGraph::from_graph(&kg, 3), 1);
        {
            let reader = live.read();
            let ctx = reader.ctx();
            assert_eq!(ctx.rank_features(&cfg, &s), base_features);
        }
        let mut delta = DeltaBatch::new();
        delta.triple(
            kg.entity_name(s[0]).to_owned(),
            "fresh_live_pred",
            "Fresh_Live_Entity",
        );
        live.append(&delta);
        assert_eq!(live.generation(), 1);

        let mut union = generate(&DatagenConfig::tiny());
        union.apply(&delta);
        let fresh = QueryContext::with_threads(&union, 1);
        let want = fresh.rank_features(&cfg, &s);
        let reader = live.read();
        let got = reader.ctx().rank_features(&cfg, &s);
        assert_eq!(got, want, "sharded live append must match rebuilt union");
    }

    #[test]
    fn compact_in_place_swaps_the_partition_and_keeps_the_cache_warm() {
        let kg = generate(&DatagenConfig::tiny());
        let s = seeds(&kg, 2);
        let cfg = RankingConfig::default();
        let live = LiveShardedGraph::with_threads(ShardedGraph::from_graph(&kg, 2), 1);
        // grow three trailing shards
        for i in 0..3 {
            let mut d = DeltaBatch::new();
            d.triple(
                format!("Live_Grown_{i}"),
                "fresh_live_pred",
                kg.entity_name(s[0]).to_owned(),
            );
            live.append(&d);
        }
        assert_eq!(live.shard_count(), 5);
        // warm the cache and take the pre-compaction answer
        let (before_f, before_e) = {
            let reader = live.read();
            let ctx = reader.ctx();
            let f = ctx.rank_features(&cfg, &s);
            let e = ctx.rank_entities(&cfg, &s, &f);
            (f, e)
        };
        let warm = live.cache().cached_probability_count();
        assert!(warm > 0, "queries must have filled the cache");
        let gen_before = live.cache().generation();

        let receipt = live.compact_in_place(2);
        assert_eq!(receipt.shards_before, 5);
        assert_eq!(receipt.shards_after, 2);
        assert_eq!(receipt.trailing_before, 3);
        assert_eq!(live.shard_count(), 2);
        assert_eq!(live.generation(), 4, "3 appends + 1 compaction");
        assert_eq!(receipt.generation, 4);
        // the cache migrated: new generation stamp, zero densities lost
        assert_eq!(live.cache().generation(), gen_before + 1);
        assert_eq!(
            live.cache().cached_probability_count(),
            warm,
            "compaction must not drop any surviving density"
        );

        // post-compaction answers are bit-identical to pre-compaction
        let reader = live.read();
        let ctx = reader.ctx();
        let after_f = ctx.rank_features(&cfg, &s);
        assert_eq!(after_f, before_f);
        let after_e = ctx.rank_entities(&cfg, &s, &after_f);
        assert_eq!(after_e.len(), before_e.len());
        for (a, b) in after_e.iter().zip(&before_e) {
            assert_eq!(a.entity, b.entity);
            assert!((a.score - b.score).abs() == 0.0, "score drifted");
        }
        // and no recompute happened for the re-ranking above
        assert_eq!(live.cache().cached_probability_count(), warm);
    }

    #[test]
    fn maybe_compact_obeys_the_policy() {
        use pivote_kg::CompactionPolicy;
        let kg = generate(&DatagenConfig::tiny());
        let live = LiveShardedGraph::with_threads(ShardedGraph::from_graph(&kg, 2), 1);
        let policy = CompactionPolicy {
            max_trailing: 1,
            max_tail_fraction: 1.0,
        };
        assert!(live.maybe_compact(&policy, 2).is_none(), "fresh partition");
        for i in 0..2 {
            let mut d = DeltaBatch::new();
            d.entity(format!("Policy_Grown_{i}"));
            live.append(&d);
        }
        let receipt = live
            .maybe_compact(&policy, 3)
            .expect("2 trailing > max_trailing=1");
        assert_eq!(receipt.shards_after, 3);
        assert_eq!(live.shard_count(), 3);
        assert!(live.maybe_compact(&policy, 2).is_none(), "tail absorbed");
    }
}

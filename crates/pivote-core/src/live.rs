//! The live store: one append-while-querying wrapper for both backends.
//!
//! [`LiveStore`] owns a [`GraphBackend`] (single [`KnowledgeGraph`] |
//! [`ShardedGraph`]) behind an `RwLock` plus one [`SharedCache`], and
//! coordinates the three halves of the live-store contract:
//!
//! - **Queries** take a read guard ([`LiveStore::read`]) and build a
//!   cheap backend-agnostic [`GraphHandle`] over the locked store sharing
//!   the persistent cache — so every density memoized by any earlier
//!   query (on any generation whose extents were not touched since) is a
//!   hit, whichever physical layout answers.
//! - **Appends** ([`LiveStore::append`]) take the write lock, splice the
//!   [`DeltaBatch`] in place, and invalidate exactly the cached densities
//!   the [`AppliedDelta`] receipt names — all before any new reader can
//!   observe the new graph, so a reader's context and the cache are
//!   always mutually consistent.
//! - **Maintenance** re-partitions a degenerate sharded layout. The
//!   interactive-path variant is [`LiveStore::compact_concurrent`]: the
//!   expensive union rebuild runs **off the write lock** against a clone
//!   taken under a read guard, and the write lock is held only for a
//!   generation check and a pointer swap — a query issued mid-compaction
//!   never waits on the rebuild. A [`MaintenanceHandle`] drives
//!   [`LiveStore::maybe_compact`] from a background thread on a policy
//!   tick, so nothing on the query or append path ever schedules
//!   compaction either.
//!
//! The guard-scoped handle is what makes this safe in Rust without
//! copying the graph per query: extent slices borrowed by a context can
//! never outlive the read guard, so no query ever observes a
//! half-spliced row or a half-swapped partition.
//!
//! The former per-backend wrappers survive as thin deprecated aliases
//! (`LiveGraph`, `LiveShardedGraph`) so downstream code migrates
//! file-by-file.

use crate::context::{QueryContext, SharedCache};
use crate::handle::GraphHandle;
use crate::prepared::PreparedSnapshot;
use crate::sharded::ShardedContext;
use pivote_kg::wal::{WalEvent, WalHeader, WalWriter};
use pivote_kg::{
    AppliedDelta, CompactionPolicy, CompactionReceipt, DeltaBatch, GraphBackend, KnowledgeGraph,
    ShardedGraph,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard};
use std::time::Duration;

/// Whether the `PIVOTE_MAINTENANCE=1` environment leg is active — the CI
/// hook that routes the eval harness' graph construction through a
/// [`LiveStore`] with a background [`MaintenanceHandle`] compacting the
/// growing partition off the query path. (Re-exported from
/// [`pivote_kg::maintenance_from_env`], the one parser behind every
/// `PIVOTE_*` CI-leg flag.)
pub use pivote_kg::maintenance_from_env;

/// Whether the `PIVOTE_SNAPSHOT=1` environment leg is active — the CI
/// hook that routes the eval harness' queries through the
/// prepared-snapshot read path ([`LiveStore::enable_snapshots`] +
/// [`LiveStore::snapshot`]) instead of fresh lock-scoped contexts.
/// (Re-exported from [`pivote_kg::snapshot_from_env`].)
pub use pivote_kg::snapshot_from_env;

/// Why a live-store write was refused.
///
/// The store's poisoning policy (exercised by
/// `tests/failure_injection.rs`): when a writer thread panics while
/// holding the write lock, **writes fail closed** — every subsequent
/// [`LiveStore::append`] and compaction returns
/// [`StoreError::Poisoned`] instead of splicing into state the store can
/// no longer vouch for — while **reads recover** and keep serving the
/// snapshot behind the lock. The read side is safe to serve because the
/// graph's delta splice completes before the append path runs anything
/// else (cache invalidation, hooks), so a panic on those trailing steps
/// leaves a fully consistent store; refusing reads would turn one
/// poisoned writer into a full outage for no integrity gain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A writer panicked while holding the store's write lock; the store
    /// is read-only until the process restarts (e.g. from a warm-state
    /// snapshot).
    Poisoned,
    /// The store's durable delta log refused the record (disk full,
    /// permissions, …). The write is **not** applied — the log is
    /// written ahead of the splice, so the log never lags the store and
    /// a follower can always reach every state the leader served.
    Wal(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Poisoned => {
                write!(
                    f,
                    "live store poisoned: a writer panicked; store is read-only"
                )
            }
            StoreError::Wal(m) => {
                write!(f, "delta log append failed, write refused: {m}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// An in-memory knowledge-graph store — single or sharded layout — that
/// can grow (and be re-partitioned) while sessions query it.
pub struct LiveStore {
    store: RwLock<GraphBackend>,
    cache: Arc<SharedCache>,
    threads: usize,
    /// The optional durable delta log. Lock order: store write lock
    /// first, then this mutex — every writer appends the record *before*
    /// splicing, under the store lock, so log order equals apply order.
    wal: Mutex<Option<WalWriter>>,
    /// The serving read path ([`LiveStore::enable_snapshots`]): the
    /// current [`PreparedSnapshot`], republished by every writer under
    /// the store write lock *after* apply + invalidation, acquired by
    /// readers with one read-and-clone — never the store lock.
    published: RwLock<Option<Arc<PreparedSnapshot>>>,
    /// Whether publication is on. Off by default: publication clones the
    /// backend once per write, which bulk ingest shouldn't pay for.
    publish: AtomicBool,
}

impl LiveStore {
    /// Wrap a store with one worker per available core for its contexts.
    /// Accepts a [`KnowledgeGraph`], a [`ShardedGraph`] or a prebuilt
    /// [`GraphBackend`].
    pub fn new(store: impl Into<GraphBackend>) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::with_threads(store, threads)
    }

    /// Wrap a store with an explicit per-context worker-thread count.
    pub fn with_threads(store: impl Into<GraphBackend>, threads: usize) -> Self {
        Self::with_cache(store, threads, Arc::new(SharedCache::new()))
    }

    /// Wrap a store around an **existing** shared cache — the warm-restart
    /// path: pair a freshly opened snapshot with the cache rebuilt from
    /// its warm-state sidecar ([`crate::load_warm_state`]), so the first
    /// queries after a restart hit memoized densities instead of
    /// recomputing every `p(π|c)` from the extents.
    pub fn with_cache(
        store: impl Into<GraphBackend>,
        threads: usize,
        cache: Arc<SharedCache>,
    ) -> Self {
        Self {
            store: RwLock::new(store.into()),
            cache,
            threads: threads.max(1),
            wal: Mutex::new(None),
            published: RwLock::new(None),
            publish: AtomicBool::new(false),
        }
    }

    // ---- prepared-snapshot publication ---------------------------------

    /// Opt this store into generation-pinned snapshot publication and
    /// publish the current state immediately. From here on every
    /// successful write republishes under the write lock it already
    /// holds, *after* the splice and the cache invalidation — so
    /// [`LiveStore::snapshot`] always reflects every completed write
    /// (strict read-your-writes), and the prepared context is born at
    /// the post-invalidation cache generation, keeping its shared-cache
    /// reads trusted until the next write.
    ///
    /// The cost is one backend clone per write; leave it off for bulk
    /// ingest and turn it on when the store starts serving.
    pub fn enable_snapshots(&self) {
        self.publish.store(true, Ordering::SeqCst);
        // a read guard excludes writers, so the state published here is
        // current; a writer admitted later republishes on its own
        let store = self.read_store();
        self.republish(&store);
    }

    /// Whether snapshot publication is on.
    pub fn snapshots_enabled(&self) -> bool {
        self.publish.load(Ordering::SeqCst)
    }

    /// The current prepared snapshot — the serving read path. One
    /// read-and-clone of the publication slot; never touches the store
    /// lock, so a request served from here cannot wait behind an append
    /// doing WAL IO under the write lock. `None` until
    /// [`LiveStore::enable_snapshots`].
    pub fn snapshot(&self) -> Option<Arc<PreparedSnapshot>> {
        self.published
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Publish a fresh snapshot of `store`. Called by every writer while
    /// it still holds the store write lock (and by `enable_snapshots`
    /// under a read guard), so publications are totally ordered with
    /// mutations and the slot never lags a completed write.
    fn republish(&self, store: &GraphBackend) {
        if !self.publish.load(Ordering::SeqCst) {
            return;
        }
        let snap = PreparedSnapshot::prepare(
            Arc::new(store.clone()),
            store.generation(),
            self.threads,
            Arc::clone(&self.cache),
        );
        *self.published.write().unwrap_or_else(|p| p.into_inner()) = Some(snap);
    }

    /// The WAL mutex, recovering from a poisoned lock: the log file is
    /// only ever touched by whole-record `write_all` calls, so a panic
    /// between them cannot leave a writer mid-frame.
    fn wal_guard(&self) -> MutexGuard<'_, Option<WalWriter>> {
        self.wal.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Start logging every write to a fresh durable delta log at `path`
    /// (truncating any existing file), based at the store's **current**
    /// state: the log header records the current [`snapshot
    /// fingerprint`](pivote_kg::snapshot::fingerprint) and generation,
    /// and a follower must start from a snapshot with that exact
    /// fingerprint. Holds the write lock while fingerprinting so no
    /// append can slip between the fingerprint and the first record.
    ///
    /// Returns the header the log was created with. Pair it with
    /// [`GraphBackend::save_snapshot`] of the same state to give
    /// followers (and crash recovery) their starting point.
    pub fn log_to(&self, path: impl AsRef<std::path::Path>) -> Result<WalHeader, StoreError> {
        let store = self.store.write().map_err(|_| StoreError::Poisoned)?;
        let writer = WalWriter::create(path, store.generation(), store.fingerprint())
            .map_err(|e| StoreError::Wal(e.to_string()))?;
        let header = writer.header();
        *self.wal_guard() = Some(writer);
        Ok(header)
    }

    /// Attach an already-positioned [`WalWriter`] — the leader-restart
    /// path: recover the store by replaying the log (see
    /// `pivote_core::replica`), then [`WalWriter::resume`] the file and
    /// hand it here so new writes continue the same log. The write lock
    /// is held so no append can slip in unlogged.
    pub fn attach_wal(&self, writer: WalWriter) -> Result<(), StoreError> {
        let _store = self.store.write().map_err(|_| StoreError::Poisoned)?;
        *self.wal_guard() = Some(writer);
        Ok(())
    }

    /// Whether writes are currently being logged.
    pub fn wal_enabled(&self) -> bool {
        self.wal_guard().is_some()
    }

    /// Generation stamp of the last record written to the delta log
    /// (`None` when logging is off). Equals the store generation on a
    /// leader that has logged from birth; stays monotonic across leader
    /// restarts even though the in-memory generation resets.
    pub fn wal_generation(&self) -> Option<u64> {
        self.wal_guard().as_ref().map(|w| w.last_generation())
    }

    /// Append `event` to the log if one is attached. Called under the
    /// store write lock, *before* the mutation is applied — so an IO
    /// failure refuses the write and the log never lags the store.
    fn log_event(&self, event: impl FnOnce() -> WalEvent) -> Result<(), StoreError> {
        let mut wal = self.wal_guard();
        if let Some(writer) = wal.as_mut() {
            writer
                .append_event(event())
                .map_err(|e| StoreError::Wal(e.to_string()))?;
        }
        Ok(())
    }

    /// The persistent cross-generation cache (observability: generation
    /// counter, cached density count, probe methods).
    pub fn cache(&self) -> &Arc<SharedCache> {
        &self.cache
    }

    /// Read-side lock acquisition under the poisoning policy: reads
    /// recover ([`StoreError`] explains why that is sound) and keep the
    /// store queryable after a writer panic.
    fn read_store(&self) -> RwLockReadGuard<'_, GraphBackend> {
        self.store.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Whether a writer panic has poisoned the store (reads still work;
    /// writes return [`StoreError::Poisoned`]).
    pub fn is_poisoned(&self) -> bool {
        self.store.is_poisoned()
    }

    /// The store's current mutation generation.
    pub fn generation(&self) -> u64 {
        self.read_store().generation()
    }

    /// The current shard count (1 for the single layout).
    pub fn shard_count(&self) -> usize {
        self.read_store().shard_count()
    }

    /// Trailing shards appended by deltas since the last deliberate
    /// partition (always 0 for the single layout).
    pub fn trailing_shard_count(&self) -> usize {
        self.read_store().trailing_shard_count()
    }

    /// Append a batch: write-locks the store, splices the delta in place
    /// and drops exactly the touched cache entries before readers can see
    /// the new extents. Fails closed with [`StoreError::Poisoned`] after
    /// a writer panic — the store is read-only from then on.
    pub fn append(&self, delta: &DeltaBatch) -> Result<AppliedDelta, StoreError> {
        self.append_hooked(delta, |_| {})
    }

    /// [`LiveStore::append`] with a test seam: `hook` runs under the
    /// write lock *after* the splice and the cache invalidation, at a
    /// point where the store is complete and consistent. The
    /// failure-injection suite panics inside it to poison the lock
    /// deterministically; production code wants [`LiveStore::append`].
    pub fn append_hooked(
        &self,
        delta: &DeltaBatch,
        hook: impl FnOnce(&AppliedDelta),
    ) -> Result<AppliedDelta, StoreError> {
        let mut store = self.store.write().map_err(|_| StoreError::Poisoned)?;
        // write-ahead: the record lands in the log before the splice, so
        // a crash between the two leaves a logged-but-unapplied batch —
        // recovery replays it, and the log never misses a served state
        self.log_event(|| WalEvent::Delta(delta.clone()))?;
        let applied = store.apply(delta);
        self.cache.invalidate(&applied);
        hook(&applied);
        self.republish(&store);
        Ok(applied)
    }

    /// Take a read guard for one query (or a batch of queries). Appends
    /// and compaction swaps block until every outstanding reader is done;
    /// the concurrent compaction *rebuild* does not take the write lock,
    /// so it never blocks on readers nor readers on it. Reads survive a
    /// writer panic (see [`StoreError`]).
    pub fn read(&self) -> LiveReader<'_> {
        // cheap when publication is off (one atomic load); when on, carry
        // the current snapshot so handle() can reuse its prepared context
        // instead of building one per call
        let prepared = if self.publish.load(Ordering::SeqCst) {
            self.snapshot()
        } else {
            None
        };
        LiveReader {
            guard: self.read_store(),
            cache: Arc::clone(&self.cache),
            threads: self.threads,
            prepared,
        }
    }

    /// Unwrap the owned backend (consumes the wrapper).
    pub fn into_inner(self) -> GraphBackend {
        self.store.into_inner().unwrap_or_else(|p| p.into_inner())
    }

    // ---- compaction ----------------------------------------------------

    /// Stop-the-world re-partition: the union rebuild runs **under the
    /// write lock**, so every query issued during the pass blocks for
    /// its full duration (roughly `ShardedGraph::from_graph` cost — the
    /// ~330ms measured in `BENCH_4.json` at 16k films). Kept as the
    /// baseline the blocked-time benchmarks compare against; interactive
    /// deployments should use [`LiveStore::compact_concurrent`], which
    /// holds the write lock only for a generation check and a pointer
    /// swap.
    ///
    /// On the single layout compaction is the identity (a single graph
    /// is always one partition): no generation bump, a 1→1 receipt —
    /// *unless* the graph holds tombstones from retractions, in which
    /// case the pass is an id-preserving reclaim rebuild (same answers,
    /// dead rows returned, generation bumped).
    ///
    /// Like every write, compaction fails closed with
    /// [`StoreError::Poisoned`] after a writer panic.
    pub fn compact_in_place(&self, target_shards: usize) -> Result<CompactionReceipt, StoreError> {
        let mut store = self.store.write().map_err(|_| StoreError::Poisoned)?;
        if let GraphBackend::Single(kg) = &*store {
            if kg.tombstone_count() == 0 {
                return Ok(single_noop_receipt(kg));
            }
        }
        let shards_before = store.shard_count();
        let trailing_before = store.trailing_shard_count();
        self.log_event(|| WalEvent::Compact { target_shards })?;
        *store = store.compact(target_shards);
        self.cache.note_compaction();
        self.republish(&store);
        Ok(CompactionReceipt {
            generation: store.generation(),
            shards_before,
            shards_after: store.shard_count(),
            trailing_before,
            entities: store.entity_count(),
            attempts: 1,
        })
    }

    /// Off-lock re-partition: clone the store under a read guard (cheap
    /// relative to the rebuild), run the union rebuild + fresh partition
    /// entirely **off the write lock**, then take the write lock only to
    /// validate that the generation is still the one the clone was taken
    /// at and swap the pointer. A racing append moves the generation and
    /// the losing rebuild is discarded and retried against the new state
    /// — appends always win, compaction pays the retry. Progress is
    /// still guaranteed under a sustained append stream: after
    /// [`MAX_OFFLOCK_ATTEMPTS`] lost races the pass finishes under the
    /// write lock (one stop-the-world rebuild), so maintenance can
    /// never livelock behind writers.
    ///
    /// Readers admitted before the swap finish against the old partition;
    /// readers admitted after see the fresh partition and a new
    /// generation stamp on both the store and the shared cache. The cache
    /// migrates wholesale ([`SharedCache::note_compaction`]): every
    /// `p(π|c)` density is an exact global quantity independent of the
    /// partitioning, so nothing is dropped and answers before and after
    /// the swap are bit-identical (`tests/compaction_equivalence.rs`,
    /// `tests/failure_injection.rs`).
    pub fn compact_concurrent(
        &self,
        target_shards: usize,
    ) -> Result<CompactionReceipt, StoreError> {
        self.compact_concurrent_hooked(target_shards, |_| {})
    }

    /// [`LiveStore::compact_concurrent`] with a test/bench hook: after
    /// each attempt's off-lock rebuild completes — mid-compaction, with
    /// **no lock held** — `mid_rebuild` is called with the generation the
    /// attempt is based on, *before* the swap is attempted. The
    /// failure-injection suite uses this to race appends and queries
    /// against the swap deterministically; production code wants
    /// [`LiveStore::compact_concurrent`].
    pub fn compact_concurrent_hooked(
        &self,
        target_shards: usize,
        mut mid_rebuild: impl FnMut(u64),
    ) -> Result<CompactionReceipt, StoreError> {
        let mut attempts = 0u64;
        loop {
            attempts += 1;
            // phase 1: consistent snapshot under a read guard
            let (clone, base_generation) = {
                let guard = self.read_store();
                if let GraphBackend::Single(kg) = &*guard {
                    if kg.tombstone_count() == 0 {
                        return Ok(single_noop_receipt(kg));
                    }
                }
                (guard.clone(), guard.generation())
            };
            let shards_before = clone.shard_count();
            let trailing_before = clone.trailing_shard_count();

            // phase 2: the expensive rebuild, off every lock — appends
            // and queries proceed freely while this runs
            let fresh = clone.compact(target_shards);
            mid_rebuild(base_generation);

            // phase 3: validate + swap under the write lock (a write, so
            // a poisoned lock fails the pass closed)
            let mut store = self.store.write().map_err(|_| StoreError::Poisoned)?;
            if store.generation() != base_generation {
                if attempts < MAX_OFFLOCK_ATTEMPTS {
                    continue; // a racing append won; rebuild against the new state
                }
                // appends keep winning: guarantee progress by finishing
                // this pass under the write lock we already hold (one
                // bounded stop-the-world rebuild instead of a livelock)
                let shards_before = store.shard_count();
                let trailing_before = store.trailing_shard_count();
                self.log_event(|| WalEvent::Compact { target_shards })?;
                *store = store.compact(target_shards);
                self.cache.note_compaction();
                self.republish(&store);
                return Ok(CompactionReceipt {
                    generation: store.generation(),
                    shards_before,
                    shards_after: store.shard_count(),
                    trailing_before,
                    entities: store.entity_count(),
                    attempts: attempts + 1,
                });
            }
            self.log_event(|| WalEvent::Compact { target_shards })?;
            *store = fresh;
            self.cache.note_compaction();
            self.republish(&store);
            return Ok(CompactionReceipt {
                generation: store.generation(),
                shards_before,
                shards_after: store.shard_count(),
                trailing_before,
                entities: store.entity_count(),
                attempts,
            });
        }
    }

    /// Compact concurrently to `target_shards` iff `policy` judges the
    /// store degenerate; returns the receipt when a pass ran. The policy
    /// check runs under a read lock against the same snapshot the rebuild
    /// clones, and the swap re-validates the generation — so a decision
    /// is never *applied* to a partition another writer replaced, even
    /// though the rebuild itself runs off-lock.
    pub fn maybe_compact(
        &self,
        policy: &CompactionPolicy,
        target_shards: usize,
    ) -> Option<CompactionReceipt> {
        {
            // a poisoned store is read-only: never schedule a compaction
            // for it (the maintenance thread keeps ticking harmlessly)
            let guard = match self.store.read() {
                Ok(guard) => guard,
                Err(_) => return None,
            };
            if !guard.needs_compaction(policy) {
                return None;
            }
        }
        self.compact_concurrent(target_shards).ok()
    }
}

/// How many off-lock rebuilds [`LiveStore::compact_concurrent`] discards
/// to racing appends before it finishes the pass under the write lock —
/// the bound that keeps a sustained append stream from livelocking
/// maintenance with ever-larger wasted rebuilds.
pub const MAX_OFFLOCK_ATTEMPTS: u64 = 4;

/// The identity receipt for compaction on the single layout.
fn single_noop_receipt(kg: &KnowledgeGraph) -> CompactionReceipt {
    CompactionReceipt {
        generation: kg.generation(),
        shards_before: 1,
        shards_after: 1,
        trailing_before: 0,
        entities: kg.entity_count(),
        attempts: 1,
    }
}

/// A read guard over a [`LiveStore`]: the entry point for querying one
/// consistent store snapshot, on either layout.
pub struct LiveReader<'a> {
    guard: RwLockReadGuard<'a, GraphBackend>,
    cache: Arc<SharedCache>,
    threads: usize,
    /// The published snapshot at acquisition time, when the store has
    /// snapshots on — [`LiveReader::handle`] reuses its prepared context
    /// when the generations agree instead of building one per call.
    prepared: Option<Arc<PreparedSnapshot>>,
}

impl LiveReader<'_> {
    /// The locked store snapshot.
    pub fn backend(&self) -> &GraphBackend {
        &self.guard
    }

    /// The snapshot's generation.
    pub fn generation(&self) -> u64 {
        self.guard.generation()
    }

    /// The locked single-layout graph.
    ///
    /// # Panics
    /// When the store is sharded; use [`LiveReader::backend`] or
    /// [`LiveReader::handle`] for layout-agnostic access.
    pub fn kg(&self) -> &KnowledgeGraph {
        self.guard
            .as_single()
            .expect("LiveReader::kg is single-layout only; use handle()")
    }

    /// The locked sharded-layout graph.
    ///
    /// # Panics
    /// When the store is single; use [`LiveReader::backend`] or
    /// [`LiveReader::handle`] for layout-agnostic access.
    pub fn graph(&self) -> &ShardedGraph {
        self.guard
            .as_sharded()
            .expect("LiveReader::graph is sharded-layout only; use handle()")
    }

    /// A backend-agnostic [`GraphHandle`] over this snapshot sharing the
    /// live store's persistent cache. Cheap to build (the heavy state
    /// lives in the cache); scoped to the guard, so it can never observe
    /// an append or a compaction swap. When the store publishes prepared
    /// snapshots and the published generation matches the locked one —
    /// publication happens under the write lock, so it always does in
    /// practice — the snapshot's prepared context is reused outright and
    /// this is a clone, not a construction.
    pub fn handle(&self) -> GraphHandle<'_> {
        if let Some(snap) = &self.prepared {
            if snap.generation() == self.guard.generation() {
                return snap.handle();
            }
        }
        match &*self.guard {
            GraphBackend::Single(kg) => GraphHandle::Single(Arc::new(QueryContext::with_cache(
                kg,
                self.threads,
                Arc::clone(&self.cache),
            ))),
            GraphBackend::Sharded(sg) => GraphHandle::Sharded(Arc::new(
                ShardedContext::with_cache(sg, self.threads, Arc::clone(&self.cache)),
            )),
        }
    }

    /// Alias for [`LiveReader::handle`] — the query entry point the
    /// per-backend readers used to spell `ctx()`.
    pub fn ctx(&self) -> GraphHandle<'_> {
        self.handle()
    }
}

/// A background maintenance thread driving [`LiveStore::maybe_compact`]
/// on a policy tick, so compaction is scheduled off the query *and*
/// append paths entirely: the tick checks the policy under a read lock,
/// rebuilds off-lock when it fires, and swaps under a momentary write
/// lock.
///
/// Stop it explicitly with [`MaintenanceHandle::stop`] (also invoked on
/// drop), which wakes the thread and joins it.
pub struct MaintenanceHandle {
    stop: Arc<AtomicBool>,
    passes: Arc<AtomicU64>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl MaintenanceHandle {
    /// Spawn the maintenance thread: every `tick`, compact `store` to
    /// `target_shards` iff `policy` says the tail degenerated.
    pub fn spawn(
        store: Arc<LiveStore>,
        policy: CompactionPolicy,
        target_shards: usize,
        tick: Duration,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let passes = Arc::new(AtomicU64::new(0));
        let thread = {
            let stop = Arc::clone(&stop);
            let passes = Arc::clone(&passes);
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    if store.maybe_compact(&policy, target_shards).is_some() {
                        passes.fetch_add(1, Ordering::SeqCst);
                    }
                    std::thread::park_timeout(tick);
                }
            })
        };
        Self {
            stop,
            passes,
            thread: Some(thread),
        }
    }

    /// How many compaction passes the thread has completed.
    pub fn passes(&self) -> u64 {
        self.passes.load(Ordering::SeqCst)
    }

    /// Signal the thread to stop and join it (idempotent).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            thread.thread().unpark();
            let _ = thread.join();
        }
    }
}

impl Drop for MaintenanceHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Deprecated name of [`LiveStore`] from before the single/sharded live
/// stacks were unified. `LiveGraph::new` took a [`KnowledgeGraph`];
/// [`LiveStore::new`] accepts it unchanged.
#[deprecated(since = "0.5.0", note = "use LiveStore — one store, both layouts")]
pub type LiveGraph = LiveStore;

/// Deprecated name of [`LiveStore`] from before the single/sharded live
/// stacks were unified. `LiveShardedGraph::new` took a [`ShardedGraph`];
/// [`LiveStore::new`] accepts it unchanged.
#[deprecated(since = "0.5.0", note = "use LiveStore — one store, both layouts")]
pub type LiveShardedGraph = LiveStore;

/// Deprecated name of [`LiveReader`] from before the readers were
/// unified; `ctx()` and `handle()` both hand out a [`GraphHandle`] now.
#[deprecated(since = "0.5.0", note = "use LiveReader — one reader, both layouts")]
pub type LiveShardedReader<'a> = LiveReader<'a>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RankingConfig;
    use pivote_kg::{generate, DatagenConfig, EntityId};

    fn seeds(kg: &KnowledgeGraph, n: usize) -> Vec<EntityId> {
        let film = kg.type_id("Film").unwrap();
        kg.type_extent(film)[..n].to_vec()
    }

    #[test]
    fn append_then_query_equals_rebuild_then_query() {
        let live = LiveStore::with_threads(generate(&DatagenConfig::tiny()), 1);
        let (s, names) = {
            let reader = live.read();
            let s = seeds(reader.kg(), 2);
            let names: Vec<String> = (0..4)
                .map(|i| reader.kg().entity_name(EntityId::new(i)).to_owned())
                .collect();
            (s, names)
        };
        let mut delta = DeltaBatch::new();
        delta.triple(&names[0], "brand_new_link", &names[1]).triple(
            &names[2],
            "brand_new_link",
            &names[3],
        );
        let receipt = live.append(&delta).expect("store healthy");
        assert_eq!(receipt.generation, 1);
        assert_eq!(live.generation(), 1);
        assert_eq!(live.cache().generation(), 1);

        // union rebuild: regenerate the base and replay the delta
        let union = {
            let mut kg = generate(&DatagenConfig::tiny());
            kg.apply(&delta);
            kg
        };
        let cfg = RankingConfig::default();
        let reader = live.read();
        let live_ctx = reader.ctx();
        let fresh_ctx = QueryContext::with_threads(&union, 1);
        let lf = live_ctx.rank_features(&cfg, &s);
        let ff = fresh_ctx.rank_features(&cfg, &s);
        assert_eq!(lf, ff, "feature rankings must match the rebuilt union");
        let le = live_ctx.rank_entities(&cfg, &s, &lf);
        let fe = fresh_ctx.rank_entities(&cfg, &s, &ff);
        assert_eq!(le.len(), fe.len());
        for (a, b) in le.iter().zip(&fe) {
            assert_eq!(a.entity, b.entity);
            assert!((a.score - b.score).abs() == 0.0, "score drifted");
        }
    }

    #[test]
    fn sharded_live_store_appends_and_answers() {
        let kg = generate(&DatagenConfig::tiny());
        let s = seeds(&kg, 2);
        let cfg = RankingConfig::default();
        let single = QueryContext::with_threads(&kg, 1);
        let base_features = single.rank_features(&cfg, &s);

        let live = LiveStore::with_threads(ShardedGraph::from_graph(&kg, 3), 1);
        {
            let reader = live.read();
            let ctx = reader.ctx();
            assert_eq!(ctx.rank_features(&cfg, &s), base_features);
        }
        let mut delta = DeltaBatch::new();
        delta.triple(
            kg.entity_name(s[0]).to_owned(),
            "fresh_live_pred",
            "Fresh_Live_Entity",
        );
        live.append(&delta).expect("store healthy");
        assert_eq!(live.generation(), 1);

        let mut union = generate(&DatagenConfig::tiny());
        union.apply(&delta);
        let fresh = QueryContext::with_threads(&union, 1);
        let want = fresh.rank_features(&cfg, &s);
        let reader = live.read();
        let got = reader.ctx().rank_features(&cfg, &s);
        assert_eq!(got, want, "sharded live append must match rebuilt union");
    }

    /// Shared body for the in-place and concurrent compaction paths —
    /// both must swap the partition, keep every density, and answer
    /// bit-identically before and after.
    fn compaction_keeps_cache_and_answers(
        compact: impl Fn(&LiveStore, usize) -> CompactionReceipt,
    ) {
        let kg = generate(&DatagenConfig::tiny());
        let s = seeds(&kg, 2);
        let cfg = RankingConfig::default();
        let live = LiveStore::with_threads(ShardedGraph::from_graph(&kg, 2), 1);
        // grow three trailing shards
        for i in 0..3 {
            let mut d = DeltaBatch::new();
            d.triple(
                format!("Live_Grown_{i}"),
                "fresh_live_pred",
                kg.entity_name(s[0]).to_owned(),
            );
            live.append(&d).expect("store healthy");
        }
        assert_eq!(live.shard_count(), 5);
        // warm the cache and take the pre-compaction answer
        let (before_f, before_e) = {
            let reader = live.read();
            let ctx = reader.ctx();
            let f = ctx.rank_features(&cfg, &s);
            let e = ctx.rank_entities(&cfg, &s, &f);
            (f, e)
        };
        let warm = live.cache().cached_probability_count();
        assert!(warm > 0, "queries must have filled the cache");
        let gen_before = live.cache().generation();

        let receipt = compact(&live, 2);
        assert_eq!(receipt.shards_before, 5);
        assert_eq!(receipt.shards_after, 2);
        assert_eq!(receipt.trailing_before, 3);
        assert_eq!(receipt.attempts, 1, "no contention, no retries");
        assert_eq!(live.shard_count(), 2);
        assert_eq!(live.generation(), 4, "3 appends + 1 compaction");
        assert_eq!(receipt.generation, 4);
        // the cache migrated: new generation stamp, zero densities lost
        assert_eq!(live.cache().generation(), gen_before + 1);
        assert_eq!(
            live.cache().cached_probability_count(),
            warm,
            "compaction must not drop any surviving density"
        );

        // post-compaction answers are bit-identical to pre-compaction
        let reader = live.read();
        let ctx = reader.ctx();
        let after_f = ctx.rank_features(&cfg, &s);
        assert_eq!(after_f, before_f);
        let after_e = ctx.rank_entities(&cfg, &s, &after_f);
        assert_eq!(after_e.len(), before_e.len());
        for (a, b) in after_e.iter().zip(&before_e) {
            assert_eq!(a.entity, b.entity);
            assert!((a.score - b.score).abs() == 0.0, "score drifted");
        }
        // and no recompute happened for the re-ranking above
        assert_eq!(live.cache().cached_probability_count(), warm);
    }

    #[test]
    fn compact_in_place_swaps_the_partition_and_keeps_the_cache_warm() {
        compaction_keeps_cache_and_answers(|live, target| live.compact_in_place(target).unwrap());
    }

    #[test]
    fn compact_concurrent_swaps_the_partition_and_keeps_the_cache_warm() {
        compaction_keeps_cache_and_answers(|live, target| live.compact_concurrent(target).unwrap());
    }

    #[test]
    fn compact_concurrent_retries_when_an_append_races_the_swap() {
        let kg = generate(&DatagenConfig::tiny());
        let live = LiveStore::with_threads(ShardedGraph::from_graph(&kg, 2), 1);
        let mut d = DeltaBatch::new();
        d.entity("Race_Seed_Entity");
        live.append(&d).expect("store healthy");
        assert_eq!(live.shard_count(), 3);

        // inject an append between the rebuild and the swap: the first
        // attempt must lose, the second must land on the grown state
        let mut injected = false;
        let receipt = live.compact_concurrent_hooked(2, |base_generation| {
            if !injected {
                injected = true;
                assert_eq!(base_generation, 1);
                let mut d = DeltaBatch::new();
                d.entity("Racing_Append_Entity");
                live.append(&d).expect("store healthy");
            }
        });
        let receipt = receipt.unwrap();
        assert_eq!(receipt.attempts, 2, "the losing rebuild must retry");
        assert_eq!(receipt.shards_after, 2);
        assert_eq!(live.shard_count(), 2);
        // both entities survived the swap: appends always win
        let reader = live.read();
        assert!(reader.backend().entity("Race_Seed_Entity").is_some());
        assert!(reader.backend().entity("Racing_Append_Entity").is_some());
        assert_eq!(reader.generation(), 3, "2 appends + 1 (winning) compaction");
    }

    #[test]
    fn compact_concurrent_falls_back_to_the_write_lock_under_sustained_appends() {
        let kg = generate(&DatagenConfig::tiny());
        let live = LiveStore::with_threads(ShardedGraph::from_graph(&kg, 2), 1);
        // an adversarial writer that wins EVERY race: the pass must not
        // livelock — after MAX_OFFLOCK_ATTEMPTS lost rebuilds it
        // finishes under the write lock
        let mut appended = 0u32;
        let receipt = live.compact_concurrent_hooked(2, |_| {
            let mut d = DeltaBatch::new();
            d.entity(format!("Sustained_Append_{appended}"));
            live.append(&d).expect("store healthy");
            appended += 1;
        });
        let receipt = receipt.unwrap();
        assert_eq!(
            receipt.attempts,
            MAX_OFFLOCK_ATTEMPTS + 1,
            "bounded fallback, not a livelock"
        );
        assert_eq!(appended as u64, MAX_OFFLOCK_ATTEMPTS);
        assert_eq!(receipt.shards_after, 2);
        assert_eq!(live.shard_count(), 2);
        assert_eq!(live.trailing_shard_count(), 0, "the tail was absorbed");
        // every racing append survived the winning pass
        let reader = live.read();
        for i in 0..appended {
            assert!(reader
                .backend()
                .entity(&format!("Sustained_Append_{i}"))
                .is_some());
        }
    }

    #[test]
    fn compaction_is_the_identity_on_the_single_layout() {
        let live = LiveStore::with_threads(generate(&DatagenConfig::tiny()), 1);
        let cache_gen = live.cache().generation();
        for receipt in [
            live.compact_in_place(4).unwrap(),
            live.compact_concurrent(4).unwrap(),
        ] {
            assert_eq!(receipt.shards_before, 1);
            assert_eq!(receipt.shards_after, 1);
            assert_eq!(receipt.generation, 0, "no generation bump on single");
        }
        assert_eq!(live.generation(), 0);
        assert_eq!(live.cache().generation(), cache_gen, "cache untouched");
        let policy = CompactionPolicy {
            max_trailing: 0,
            max_tail_fraction: 0.0,
            max_tombstone_fraction: 0.0,
        };
        assert!(live.maybe_compact(&policy, 2).is_none());
    }

    #[test]
    fn maybe_compact_obeys_the_policy() {
        let kg = generate(&DatagenConfig::tiny());
        let live = LiveStore::with_threads(ShardedGraph::from_graph(&kg, 2), 1);
        let policy = CompactionPolicy {
            max_trailing: 1,
            max_tail_fraction: 1.0,
            max_tombstone_fraction: 1.0,
        };
        assert!(live.maybe_compact(&policy, 2).is_none(), "fresh partition");
        assert_eq!(live.generation(), 0, "a declined pass must not bump");
        for i in 0..2 {
            let mut d = DeltaBatch::new();
            d.entity(format!("Policy_Grown_{i}"));
            live.append(&d).expect("store healthy");
        }
        let receipt = live
            .maybe_compact(&policy, 3)
            .expect("2 trailing > max_trailing=1");
        assert_eq!(receipt.shards_after, 3);
        assert_eq!(live.shard_count(), 3);
        assert!(live.maybe_compact(&policy, 2).is_none(), "tail absorbed");
    }

    #[test]
    fn maintenance_thread_compacts_off_the_append_path() {
        let kg = generate(&DatagenConfig::tiny());
        let live = Arc::new(LiveStore::with_threads(ShardedGraph::from_graph(&kg, 2), 1));
        let mut maintenance = MaintenanceHandle::spawn(
            Arc::clone(&live),
            CompactionPolicy {
                max_trailing: 0,
                max_tail_fraction: 1.0,
                max_tombstone_fraction: 1.0,
            },
            2,
            Duration::from_millis(1),
        );
        for i in 0..3 {
            let mut d = DeltaBatch::new();
            d.entity(format!("Maintained_{i}"));
            live.append(&d).expect("store healthy");
        }
        // the background thread must absorb the tail without any caller
        // ever invoking a compaction entry point
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        while live.trailing_shard_count() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        maintenance.stop();
        assert_eq!(live.trailing_shard_count(), 0, "tail never absorbed");
        assert!(maintenance.passes() >= 1);
        assert_eq!(live.shard_count(), 2);
        // all appended entities survived every background swap
        let reader = live.read();
        for i in 0..3 {
            assert!(reader
                .backend()
                .entity(&format!("Maintained_{i}"))
                .is_some());
        }
    }

    /// Retract through the live store: the receipt-named invalidation
    /// drops the stale densities (append+retract answers equal a rebuild
    /// from the surviving triples), and compaction on the single layout
    /// is no longer the identity when tombstones are held — it reclaims
    /// them with a generation bump, bit-identical answers, and a live
    /// cache.
    #[test]
    fn retract_then_compact_reclaims_on_the_single_layout() {
        let live = LiveStore::with_threads(generate(&DatagenConfig::tiny()), 1);
        let (s, names) = {
            let reader = live.read();
            let s = seeds(reader.kg(), 2);
            let names: Vec<String> = (0..2)
                .map(|i| reader.kg().entity_name(EntityId::new(i)).to_owned())
                .collect();
            (s, names)
        };
        let cfg = RankingConfig::default();
        // insert an edge, warm the cache on it, then retract it
        let mut d = DeltaBatch::new();
        d.triple(&names[0], "ephemeral_link", &names[1]);
        live.append(&d).expect("store healthy");
        {
            let reader = live.read();
            let f = reader.ctx().rank_features(&cfg, &s);
            reader.ctx().rank_entities(&cfg, &s, &f);
        }
        let mut r = DeltaBatch::new();
        r.retract_triple(&names[0], "ephemeral_link", &names[1]);
        let receipt = live.append(&r).expect("store healthy");
        assert_eq!(receipt.removed_relations, 1);
        assert_eq!(live.generation(), 2);

        // answers equal a fresh build from the surviving statements
        let union = generate(&DatagenConfig::tiny());
        let fresh = QueryContext::with_threads(&union, 1);
        let want_f = fresh.rank_features(&cfg, &s);
        let want_e = fresh.rank_entities(&cfg, &s, &want_f);
        {
            let reader = live.read();
            let got_f = reader.ctx().rank_features(&cfg, &s);
            assert_eq!(got_f, want_f, "retract must invalidate stale densities");
            let got_e = reader.ctx().rank_entities(&cfg, &s, &got_f);
            for (a, b) in got_e.iter().zip(&want_e) {
                assert_eq!(a.entity, b.entity);
                assert!((a.score - b.score).abs() == 0.0);
            }
        }

        // the tombstone trips the policy and compaction reclaims it
        let policy = CompactionPolicy {
            max_trailing: usize::MAX,
            max_tail_fraction: 1.0,
            max_tombstone_fraction: 0.0,
        };
        let receipt = live
            .maybe_compact(&policy, 1)
            .expect("a held tombstone must trip the tombstone axis");
        assert_eq!(receipt.shards_before, 1);
        assert_eq!(receipt.shards_after, 1);
        assert_eq!(receipt.generation, 3, "reclaim bumps the generation");
        {
            let reader = live.read();
            assert_eq!(reader.backend().tombstone_count(), 0);
            let got_f = reader.ctx().rank_features(&cfg, &s);
            assert_eq!(got_f, want_f, "reclaim must not change answers");
        }
        // a tombstone-free single store is the identity again
        let receipt = live.compact_in_place(1).unwrap();
        assert_eq!(receipt.generation, 3, "no bump without tombstones");
    }

    #[test]
    fn snapshots_are_off_by_default_and_publish_once_enabled() {
        let live = LiveStore::with_threads(generate(&DatagenConfig::tiny()), 1);
        assert!(!live.snapshots_enabled());
        assert!(live.snapshot().is_none());
        let mut d = DeltaBatch::new();
        d.entity("Unpublished_Entity");
        live.append(&d).expect("store healthy");
        assert!(live.snapshot().is_none(), "no publication while disabled");

        live.enable_snapshots();
        let snap = live.snapshot().expect("enabling publishes current state");
        assert_eq!(snap.generation(), 1);
        assert!(snap.backend().entity("Unpublished_Entity").is_some());
    }

    /// Every write path republishes: the published snapshot tracks the
    /// store generation through appends, retractions and both compaction
    /// entry points, and old snapshots stay queryable after the slot
    /// moves on (that is the whole point — a served request pins its
    /// generation for its own duration).
    #[test]
    fn every_write_republishes_and_old_snapshots_stay_queryable() {
        let kg = generate(&DatagenConfig::tiny());
        let s = seeds(&kg, 2);
        let cfg = RankingConfig::default();
        let live = LiveStore::with_threads(ShardedGraph::from_graph(&kg, 2), 1);
        live.enable_snapshots();

        let mut d = DeltaBatch::new();
        d.triple(
            kg.entity_name(s[0]).to_owned(),
            "snapshot_pred",
            "Snapshot_Entity",
        );
        live.append(&d).expect("store healthy");
        let at_append = live.snapshot().unwrap();
        assert_eq!(at_append.generation(), 1);
        let before_f = at_append.handle().rank_features(&cfg, &s);

        let mut r = DeltaBatch::new();
        r.retract_triple(
            kg.entity_name(s[0]).to_owned(),
            "snapshot_pred",
            "Snapshot_Entity",
        );
        live.append(&r).expect("store healthy");
        let at_retract = live.snapshot().unwrap();
        assert_eq!(at_retract.generation(), 2);

        let receipt = live.compact_concurrent(2).expect("store healthy");
        let at_compact = live.snapshot().unwrap();
        assert_eq!(at_compact.generation(), receipt.generation);
        let receipt = live.compact_in_place(3).expect("store healthy");
        assert_eq!(live.snapshot().unwrap().generation(), receipt.generation);

        // the generation-1 snapshot still answers — pinned, immutable,
        // bit-identical to what a fresh context over that state computes
        let mut union = generate(&DatagenConfig::tiny());
        union.apply(&d);
        let fresh = QueryContext::with_threads(&union, 1);
        assert_eq!(before_f, fresh.rank_features(&cfg, &s));
        assert_eq!(at_append.handle().rank_features(&cfg, &s), before_f);
    }

    /// The snapshot path and the lock path agree bit-for-bit at the same
    /// generation, and the reader's handle() reuses the prepared context
    /// when snapshots are on.
    #[test]
    fn snapshot_answers_match_the_lock_path() {
        let kg = generate(&DatagenConfig::tiny());
        let s = seeds(&kg, 2);
        for backend in [
            GraphBackend::Single(kg.clone()),
            GraphBackend::Sharded(ShardedGraph::from_graph(&kg, 3)),
        ] {
            let live = LiveStore::with_threads(backend, 1);
            live.enable_snapshots();
            let mut d = DeltaBatch::new();
            d.entity("Snapshot_Vs_Lock_Entity");
            live.append(&d).expect("store healthy");

            let cfg = RankingConfig::default();
            let snap = live.snapshot().unwrap();
            let reader = live.read();
            assert_eq!(snap.generation(), reader.generation());
            let want_f = reader.handle().rank_features(&cfg, &s);
            let got_f = snap.handle().rank_features(&cfg, &s);
            assert_eq!(got_f, want_f);
            let want_e = reader.handle().rank_entities(&cfg, &s, &want_f);
            let got_e = snap.handle().rank_entities(&cfg, &s, &got_f);
            assert_eq!(got_e.len(), want_e.len());
            for (a, b) in got_e.iter().zip(&want_e) {
                assert_eq!(a.entity, b.entity);
                assert!((a.score - b.score).abs() == 0.0);
            }
        }
    }
}

//! The explanation heat map (paper Fig. 3-f).
//!
//! "We divide the correlation of entities and semantic features into seven
//! levels, and visualize them with a heat-map." The correlation of entity
//! `e` (x-axis) and feature `π` (y-axis) is `p(π|e) · r(π, Q)` — how
//! strongly the feature applies to the entity, weighted by how relevant
//! the feature is to the query. Raw values are quantized into levels
//! `0..=6` (0 = no correlation, 6 = strongest in this matrix).

use crate::ranking::{RankedFeature, Ranker};
use pivote_kg::EntityId;
use serde::{Deserialize, Serialize};

/// Number of heat levels (paper: seven).
pub const HEAT_LEVELS: u8 = 7;

/// A dense entities × features correlation matrix with quantized levels.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeatMap {
    /// X-axis: the recommended entities, in rank order.
    pub entities: Vec<EntityId>,
    /// Y-axis: the recommended features, in rank order.
    pub features: Vec<RankedFeature>,
    /// Row-major raw correlations: `values[f * entities.len() + e]`.
    pub values: Vec<f64>,
    /// Quantized levels, same layout, each in `0..HEAT_LEVELS`.
    pub levels: Vec<u8>,
}

impl HeatMap {
    /// Compute the matrix for the given axes.
    ///
    /// `features` should be the query's ranked features (carrying
    /// `r(π, Q)` in their `score`); `entities` the recommended entities.
    /// Rows are computed in parallel on the ranker's shared
    /// [`crate::handle::GraphHandle`] — single or sharded backend alike;
    /// the memoized `p(π|c)` densities mean cells explaining
    /// already-ranked entities are cache hits.
    pub fn compute(ranker: &Ranker<'_>, entities: &[EntityId], features: &[RankedFeature]) -> Self {
        let handle = ranker.handle();
        let config = ranker.config();
        let rows = handle.par_map(features, |rf| {
            entities
                .iter()
                .map(|&e| handle.p_feature_given_entity(config, rf.feature, e) * rf.score)
                .collect::<Vec<f64>>()
        });
        let values: Vec<f64> = rows.into_iter().flatten().collect();
        let levels = quantize(&values);
        Self {
            entities: entities.to_vec(),
            features: features.to_vec(),
            values,
            levels,
        }
    }

    /// Number of columns (entities).
    pub fn width(&self) -> usize {
        self.entities.len()
    }

    /// Number of rows (features).
    pub fn height(&self) -> usize {
        self.features.len()
    }

    /// Raw correlation at (feature row, entity column).
    pub fn value(&self, feature_row: usize, entity_col: usize) -> f64 {
        self.values[feature_row * self.width() + entity_col]
    }

    /// Quantized level at (feature row, entity column), in `0..=6`.
    pub fn level(&self, feature_row: usize, entity_col: usize) -> u8 {
        self.levels[feature_row * self.width() + entity_col]
    }

    /// Histogram of levels: `out[l]` = number of cells at level `l`.
    pub fn level_histogram(&self) -> [usize; HEAT_LEVELS as usize] {
        let mut hist = [0usize; HEAT_LEVELS as usize];
        for &l in &self.levels {
            hist[l as usize] += 1;
        }
        hist
    }
}

/// Quantize raw correlations to `0..=6`: zero stays 0; positive values are
/// binned linearly between 1 and 6 relative to the matrix maximum.
fn quantize(values: &[f64]) -> Vec<u8> {
    let max = values.iter().copied().fold(0.0f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if v <= 0.0 || max <= 0.0 {
                0
            } else {
                let bin = (5.0 * v / max).floor() as u8;
                1 + bin.min(5)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RankingConfig;
    use pivote_kg::{KgBuilder, KnowledgeGraph};

    fn kg() -> KnowledgeGraph {
        let mut b = KgBuilder::new();
        let f1 = b.entity("f1");
        let f2 = b.entity("f2");
        let f3 = b.entity("f3");
        let a = b.entity("A");
        let bb = b.entity("B");
        let starring = b.predicate("starring");
        b.triple(f1, starring, a);
        b.triple(f1, starring, bb);
        b.triple(f2, starring, a);
        b.triple(f2, starring, bb);
        b.triple(f3, starring, bb);
        for f in [f1, f2, f3] {
            b.categorized(f, "films");
        }
        b.finish()
    }

    fn build() -> (KnowledgeGraph, Vec<EntityId>, Vec<RankedFeature>, HeatMap) {
        let kg = kg();
        let ranker = Ranker::new(&kg, RankingConfig::default());
        let f1 = kg.entity("f1").unwrap();
        let features = ranker.rank_features(&[f1]);
        let entities = ranker
            .rank_entities(&[f1], &features)
            .into_iter()
            .map(|re| re.entity)
            .collect::<Vec<_>>();
        let hm = HeatMap::compute(&ranker, &entities, &features);
        (kg, entities, features, hm)
    }

    #[test]
    fn dimensions_match_axes() {
        let (_, entities, features, hm) = build();
        assert_eq!(hm.width(), entities.len());
        assert_eq!(hm.height(), features.len());
        assert_eq!(hm.values.len(), hm.width() * hm.height());
        assert_eq!(hm.levels.len(), hm.values.len());
    }

    #[test]
    fn levels_are_in_range_and_consistent_with_values() {
        let (_, _, _, hm) = build();
        let max = hm.values.iter().copied().fold(0.0f64, f64::max);
        for row in 0..hm.height() {
            for col in 0..hm.width() {
                let l = hm.level(row, col);
                assert!(l < HEAT_LEVELS);
                let v = hm.value(row, col);
                if v == max && max > 0.0 {
                    assert_eq!(l, 6, "max cell must be darkest");
                }
                if v <= 0.0 {
                    assert_eq!(l, 0);
                }
            }
        }
    }

    #[test]
    fn stronger_correlation_never_gets_lighter_level() {
        let (_, _, _, hm) = build();
        let mut cells: Vec<(f64, u8)> = hm
            .values
            .iter()
            .copied()
            .zip(hm.levels.iter().copied())
            .collect();
        cells.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        assert!(cells.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn exact_match_cell_beats_smoothed_cell() {
        let (kg, entities, features, hm) = build();
        let f2 = kg.entity("f2").unwrap();
        let f3 = kg.entity("f3").unwrap();
        let col_f2 = entities.iter().position(|&e| e == f2).unwrap();
        let col_f3 = entities.iter().position(|&e| e == f3).unwrap();
        // row 0 is sf_a (A:starring); f2 matches exactly, f3 only via category
        let row = 0;
        assert_eq!(features[row].feature.display(&kg), "A:starring");
        assert!(hm.value(row, col_f2) > hm.value(row, col_f3));
    }

    #[test]
    fn empty_axes_give_empty_matrix() {
        let kg = kg();
        let ranker = Ranker::new(&kg, RankingConfig::default());
        let hm = HeatMap::compute(&ranker, &[], &[]);
        assert_eq!(hm.width(), 0);
        assert_eq!(hm.height(), 0);
        assert_eq!(hm.level_histogram(), [0; 7]);
    }

    #[test]
    fn histogram_sums_to_cell_count() {
        let (_, _, _, hm) = build();
        let hist = hm.level_histogram();
        assert_eq!(hist.iter().sum::<usize>(), hm.values.len());
    }
}

//! Read replicas: follower stores that tail a leader's durable delta
//! log ([`pivote_kg::wal`]) and provably reach the leader's state.
//!
//! A [`ReplicaStore`] pairs a follower [`LiveStore`] with a
//! [`WalReader`] over the leader's log. [`ReplicaStore::open`] starts
//! from the same base state the log's header names (refusing any other
//! — [`ReplicaError::StaleBase`]), then [`ReplicaStore::sync`] /
//! [`ReplicaStore::poll_step`] apply records in log order through the
//! *same* write path the leader used: `Delta` records go through
//! [`LiveStore::append`], `Compact` records through
//! [`LiveStore::compact_in_place`]. Because append==rebuild is
//! bit-identical and compaction is answer-preserving, a follower synced
//! through log generation `G` holds the same logical graph as the
//! leader did at `G` — the replica suites assert
//! [`pivote_kg::snapshot::fingerprint`] equality at every synced
//! generation.
//!
//! The follower's own mutation generation is deliberately **not** the
//! sync cursor: a single-layout follower replaying a leader's sharded
//! `Compact` may take the no-op path (no tombstones, no bump), and a
//! restarted process resets its in-memory generation entirely. The
//! cursor is [`ReplicaStore::synced_generation`], tracked from the log
//! records themselves; records at or below it are skipped on resume, so
//! a follower restart mid-stream is safe from any starting point whose
//! state matches its cursor.
//!
//! Crash recovery is the same loop run to the end: [`recover`] loads a
//! base snapshot, replays every complete record (ignoring a torn tail
//! from a leader crash mid-append), and reports what it applied. A
//! leader that recovers this way reattaches a resumed writer
//! ([`pivote_kg::WalWriter::resume`] + [`LiveStore::attach_wal`]) and
//! keeps serving; logged-but-unapplied batches from a crash between the
//! log write and the splice are *included* — the log is written ahead
//! of the store, so the log is authoritative.
//!
//! [`ReplicaHandle`] is the deployment shape: a background thread
//! (poll-based, std-only — modeled on
//! [`MaintenanceHandle`](crate::MaintenanceHandle)) that tails the log
//! on a tick and publishes the synced generation atomically.

use crate::live::{LiveStore, StoreError};
use pivote_kg::wal::{WalError, WalEvent, WalReader, WalRecord};
use pivote_kg::GraphBackend;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Why a replica could not open or advance.
#[derive(Debug)]
pub enum ReplicaError {
    /// The log itself failed (IO, format, mid-log corruption).
    Wal(WalError),
    /// The follower store refused a write while applying a record.
    Store(StoreError),
    /// The log continues from a different base state than the follower
    /// loaded — replaying it would diverge silently, so the follower
    /// refuses to start.
    StaleBase {
        /// Base fingerprint recorded in the log header.
        stored: u64,
        /// Fingerprint of the state the follower actually loaded.
        expected: u64,
    },
}

impl std::fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicaError::Wal(e) => write!(f, "replica log error: {e}"),
            ReplicaError::Store(e) => write!(f, "replica store error: {e}"),
            ReplicaError::StaleBase { stored, expected } => write!(
                f,
                "delta log is based at fingerprint {stored:#x}, but the follower \
                 loaded {expected:#x} — load the matching snapshot first"
            ),
        }
    }
}

impl std::error::Error for ReplicaError {}

impl From<WalError> for ReplicaError {
    fn from(e: WalError) -> Self {
        ReplicaError::Wal(e)
    }
}

impl From<StoreError> for ReplicaError {
    fn from(e: StoreError) -> Self {
        ReplicaError::Store(e)
    }
}

/// A follower [`LiveStore`] plus its position in the leader's delta
/// log. Poll-driven: call [`ReplicaStore::sync`] (or run a
/// [`ReplicaHandle`]) to apply whatever the leader has appended since.
pub struct ReplicaStore {
    store: Arc<LiveStore>,
    reader: WalReader,
    synced_generation: u64,
}

impl ReplicaStore {
    /// Open a replica over the log at `path`, starting from `base` —
    /// which must be the exact state the log is based at: its
    /// [`fingerprint`](GraphBackend::fingerprint) is checked against the
    /// log header and a mismatch is refused.
    pub fn open(
        base: impl Into<GraphBackend>,
        threads: usize,
        path: impl AsRef<Path>,
    ) -> Result<ReplicaStore, ReplicaError> {
        let backend = base.into();
        let reader = WalReader::open(path)?;
        let expected = backend.fingerprint();
        let header = reader.header();
        if header.base_fingerprint != expected {
            return Err(ReplicaError::StaleBase {
                stored: header.base_fingerprint,
                expected,
            });
        }
        Ok(ReplicaStore {
            store: Arc::new(LiveStore::with_threads(backend, threads)),
            reader,
            synced_generation: header.base_generation,
        })
    }

    /// Re-attach a log to a follower that already holds the state at
    /// `synced_generation` — the follower-restart-mid-stream path (the
    /// in-memory store survived; only the reader was lost). The reader
    /// rescans from the log head and [`ReplicaStore::poll_step`] skips
    /// every record at or below the cursor, so replay is idempotent.
    pub fn attach(
        store: Arc<LiveStore>,
        path: impl AsRef<Path>,
        synced_generation: u64,
    ) -> Result<ReplicaStore, ReplicaError> {
        let reader = WalReader::open(path)?;
        Ok(ReplicaStore {
            store,
            reader,
            synced_generation,
        })
    }

    /// The follower store (read it, serve from it — never write to it
    /// directly: the log is the only writer that keeps the replica
    /// provably equal to the leader).
    pub fn store(&self) -> &Arc<LiveStore> {
        &self.store
    }

    /// The log generation this replica has applied through.
    pub fn synced_generation(&self) -> u64 {
        self.synced_generation
    }

    /// Whether bytes exist past the last complete record — a torn tail
    /// from a leader crash mid-append, if the leader is known dead.
    pub fn has_partial_tail(&self) -> Result<bool, ReplicaError> {
        Ok(self.reader.has_partial_tail()?)
    }

    fn apply(&mut self, record: WalRecord) -> Result<(), ReplicaError> {
        match record.event {
            WalEvent::Delta(batch) => {
                self.store.append(&batch)?;
            }
            WalEvent::Compact { target_shards } => {
                self.store.compact_in_place(target_shards)?;
            }
        }
        self.synced_generation = record.generation;
        Ok(())
    }

    /// Apply the next unapplied record. `Ok(false)` means the log holds
    /// nothing new (or only an incomplete tail — retried next poll).
    pub fn poll_step(&mut self) -> Result<bool, ReplicaError> {
        loop {
            match self.reader.poll()? {
                None => return Ok(false),
                Some(record) if record.generation <= self.synced_generation => continue,
                Some(record) => {
                    self.apply(record)?;
                    return Ok(true);
                }
            }
        }
    }

    /// Apply every record currently in the log; returns how many were
    /// applied this call.
    pub fn sync(&mut self) -> Result<usize, ReplicaError> {
        let mut applied = 0;
        while self.poll_step()? {
            applied += 1;
        }
        Ok(applied)
    }
}

/// What [`recover`] rebuilt.
pub struct RecoveryReport {
    /// The recovered store, caught up to the last complete log record.
    pub store: Arc<LiveStore>,
    /// Complete records replayed on top of the base snapshot.
    pub records_applied: usize,
    /// Log generation the store now corresponds to.
    pub synced_generation: u64,
    /// Whether the log ended in a torn record (leader crashed
    /// mid-append) that was ignored. [`pivote_kg::WalWriter::resume`]
    /// truncates it before the leader writes again.
    pub truncated_tail: bool,
}

/// Crash recovery: rebuild a store from its last snapshot (`base`) plus
/// a full replay of the delta log at `path`. Batches the crashed leader
/// logged but never applied are included — the log is written ahead of
/// the store, so every logged record is a write the leader accepted.
pub fn recover(
    base: impl Into<GraphBackend>,
    threads: usize,
    path: impl AsRef<Path>,
) -> Result<RecoveryReport, ReplicaError> {
    let mut replica = ReplicaStore::open(base, threads, path)?;
    let records_applied = replica.sync()?;
    let truncated_tail = replica.has_partial_tail()?;
    Ok(RecoveryReport {
        synced_generation: replica.synced_generation(),
        store: Arc::clone(replica.store()),
        records_applied,
        truncated_tail,
    })
}

/// A background tailer: polls the log every `tick`, applies what it
/// finds, and publishes the synced generation atomically — the follower
/// process's main loop. Stop it explicitly with [`ReplicaHandle::stop`]
/// (also invoked on drop), which wakes the thread and joins it.
pub struct ReplicaHandle {
    store: Arc<LiveStore>,
    stop: Arc<AtomicBool>,
    synced: Arc<AtomicU64>,
    last_error: Arc<Mutex<Option<String>>>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ReplicaHandle {
    /// Spawn the tailer over `replica`.
    pub fn spawn(mut replica: ReplicaStore, tick: Duration) -> ReplicaHandle {
        let store = Arc::clone(replica.store());
        let stop = Arc::new(AtomicBool::new(false));
        let synced = Arc::new(AtomicU64::new(replica.synced_generation()));
        let last_error = Arc::new(Mutex::new(None));
        let thread = {
            let stop = Arc::clone(&stop);
            let synced = Arc::clone(&synced);
            let last_error = Arc::clone(&last_error);
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    match replica.sync() {
                        Ok(_) => {
                            synced.store(replica.synced_generation(), Ordering::SeqCst);
                        }
                        Err(e) => {
                            // transient IO is retried next tick; the last
                            // failure stays observable either way
                            let mut slot = last_error.lock().unwrap_or_else(|p| p.into_inner());
                            *slot = Some(e.to_string());
                        }
                    }
                    std::thread::park_timeout(tick);
                }
            })
        };
        ReplicaHandle {
            store,
            stop,
            synced,
            last_error,
            thread: Some(thread),
        }
    }

    /// The follower store being kept in sync.
    pub fn store(&self) -> &Arc<LiveStore> {
        &self.store
    }

    /// The log generation the tailer has applied through.
    pub fn synced_generation(&self) -> u64 {
        self.synced.load(Ordering::SeqCst)
    }

    /// The most recent tailing error, if any (the thread keeps ticking
    /// through transient failures).
    pub fn last_error(&self) -> Option<String> {
        self.last_error
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Block until the tailer has applied through `generation`, or
    /// `timeout` elapses. Returns whether the target was reached.
    pub fn wait_for_generation(&self, generation: u64, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while self.synced_generation() < generation {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            if let Some(thread) = &self.thread {
                thread.thread().unpark();
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        true
    }

    /// Signal the thread to stop and join it (idempotent).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            thread.thread().unpark();
            let _ = thread.join();
        }
    }
}

impl Drop for ReplicaHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivote_kg::snapshot::fingerprint;
    use pivote_kg::{generate, split_growth, DatagenConfig, ShardedGraph};
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pivote_replica_{tag}_{}.pvwl", std::process::id()))
    }

    #[test]
    fn follower_tails_the_leader_to_fingerprint_equality() {
        let kg = generate(&DatagenConfig::tiny());
        let (base, batches) = split_growth(&kg, 0.5, 3);
        let path = temp_path("tail");

        let leader = LiveStore::with_threads(ShardedGraph::from_graph(&base, 2), 1);
        leader.log_to(&path).unwrap();
        let mut follower = ReplicaStore::open(base.clone(), 1, &path).unwrap();

        for batch in &batches {
            leader.append(batch).unwrap();
        }
        leader.compact_in_place(2).unwrap();

        let applied = follower.sync().unwrap();
        assert_eq!(applied, batches.len() + 1, "3 deltas + 1 compact");
        assert_eq!(follower.synced_generation(), leader.generation());
        let leader_fp = leader.read().backend().fingerprint();
        let follower_fp = follower.store().read().backend().fingerprint();
        assert_eq!(follower_fp, leader_fp, "replica must equal the leader");
        // and both equal the graph the batches came from
        assert_eq!(leader_fp, fingerprint(&kg));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_base_is_refused() {
        let kg = generate(&DatagenConfig::tiny());
        let (base, _) = split_growth(&kg, 0.5, 2);
        let path = temp_path("base");
        let leader = LiveStore::with_threads(base, 1);
        leader.log_to(&path).unwrap();
        // a follower loading the *full* graph (not the base) must refuse
        let err = match ReplicaStore::open(kg, 1, &path) {
            Err(e) => e,
            Ok(_) => panic!("a mismatched base must be refused"),
        };
        assert!(matches!(err, ReplicaError::StaleBase { .. }), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn background_tailer_follows_appends() {
        let kg = generate(&DatagenConfig::tiny());
        let (base, batches) = split_growth(&kg, 0.5, 2);
        let path = temp_path("handle");
        let leader = LiveStore::with_threads(base.clone(), 1);
        leader.log_to(&path).unwrap();
        let replica = ReplicaStore::open(base, 1, &path).unwrap();
        let mut handle = ReplicaHandle::spawn(replica, Duration::from_millis(1));

        for batch in &batches {
            leader.append(batch).unwrap();
        }
        let target = leader.wal_generation().unwrap();
        assert!(
            handle.wait_for_generation(target, Duration::from_secs(20)),
            "tailer never caught up: {:?}",
            handle.last_error()
        );
        assert_eq!(
            handle.store().read().backend().fingerprint(),
            leader.read().backend().fingerprint()
        );
        handle.stop();
        std::fs::remove_file(&path).ok();
    }
}

//! Streaming N-Triples ingest over a [`LiveStore`].
//!
//! [`StreamingIngest`] couples [`pivote_kg::parse_stream`] to
//! [`LiveStore::append`]: the dump flows from any [`io::BufRead`] through
//! a reused line buffer into bounded [`DeltaBatch`]es, each applied under
//! the store's write lock as it completes. Peak ingest-side memory is
//! O(batch), never O(dump) — the document is never held in memory, and
//! the batch is cleared and reused after every append.
//!
//! Queries keep running throughout (readers take the lock only per
//! batch), and a [`MaintenanceHandle`](crate::MaintenanceHandle) spawned
//! on the same store absorbs the trailing shards each batch leaves
//! behind, so a sharded backend stays balanced *during* the ingest rather
//! than after it:
//!
//! ```
//! use pivote_core::{LiveStore, MaintenanceHandle, StreamingIngest};
//! use pivote_kg::{CompactionPolicy, KgBuilder, ShardedGraph};
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! let empty = KgBuilder::new().finish();
//! let store = Arc::new(LiveStore::new(ShardedGraph::from_graph(&empty, 2)));
//! let mut maintenance = MaintenanceHandle::spawn(
//!     Arc::clone(&store),
//!     CompactionPolicy::default(),
//!     2,
//!     Duration::from_millis(1),
//! );
//! let dump = "<http://s> <http://p> <http://o> .\n";
//! let report = StreamingIngest::new(Arc::clone(&store))
//!     .ingest(dump.as_bytes())
//!     .unwrap();
//! maintenance.stop();
//! assert_eq!(report.added_relations, 1);
//! ```

use crate::live::{LiveStore, StoreError};
use pivote_kg::{parse_removed_stream, parse_stream, AppliedDelta, StreamError, StreamStats};
use std::io;
use std::sync::Arc;

/// Why a streaming ingest stopped.
#[derive(Debug)]
pub enum IngestError {
    /// Reading or parsing the N-Triples stream failed (line-numbered
    /// parse errors surface here).
    Stream(StreamError),
    /// The store refused an append — it was poisoned by a writer panic.
    /// Batches applied before the refusal remain applied; no further
    /// batch is attempted.
    Store(StoreError),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Stream(e) => e.fmt(f),
            IngestError::Store(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Stream(e) => Some(e),
            IngestError::Store(e) => Some(e),
        }
    }
}

impl From<StreamError> for IngestError {
    fn from(e: StreamError) -> Self {
        IngestError::Stream(e)
    }
}

impl From<StoreError> for IngestError {
    fn from(e: StoreError) -> Self {
        IngestError::Store(e)
    }
}

/// Default ops per batch: large enough to amortize lock acquisition and
/// per-extent splices, small enough that the in-flight batch stays a few
/// MB for DBpedia-shaped statements.
pub const DEFAULT_BATCH_OPS: usize = 16_384;

/// What a completed streaming ingest did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Parser-side stream statistics (lines, statements, batches).
    pub stats: StreamStats,
    /// New entities the appends introduced.
    pub new_entities: usize,
    /// Entity-to-entity relations actually inserted (duplicates of
    /// existing edges don't count).
    pub added_relations: usize,
    /// Literal statements inserted.
    pub added_literals: usize,
    /// Entity-to-entity relations retracted (retracts of statements the
    /// store never held don't count).
    pub removed_relations: usize,
    /// Literal statement copies retracted.
    pub removed_literals: usize,
    /// Type/category assertions retracted.
    pub removed_assertions: usize,
    /// Total splice work across all appends (see
    /// [`AppliedDelta::work`](pivote_kg::AppliedDelta)).
    pub work: u64,
    /// Store generation after the final batch (0 if the stream was
    /// empty).
    pub final_generation: u64,
}

/// Reader-driven bounded-memory ingest into a [`LiveStore`].
///
/// Batch boundaries fall at fixed op counts, so ingesting a document
/// through any reader chunking produces the same append sequence — and
/// therefore (by the append==rebuild guarantee) a graph bit-identical to
/// parsing and applying the whole document at once.
pub struct StreamingIngest {
    store: Arc<LiveStore>,
    max_ops: usize,
}

impl StreamingIngest {
    /// Ingest into `store` with [`DEFAULT_BATCH_OPS`]-op batches.
    pub fn new(store: Arc<LiveStore>) -> Self {
        Self::with_batch_size(store, DEFAULT_BATCH_OPS)
    }

    /// Ingest with a custom bound on ops per batch (clamped to ≥ 1).
    /// Larger batches amortize locking and splicing better; smaller
    /// batches bound in-flight memory tighter and give queries and
    /// maintenance more frequent turns at the store.
    pub fn with_batch_size(store: Arc<LiveStore>, max_ops: usize) -> Self {
        Self {
            store,
            max_ops: max_ops.max(1),
        }
    }

    /// The configured ops-per-batch bound.
    pub fn batch_size(&self) -> usize {
        self.max_ops
    }

    /// The store this ingests into.
    pub fn store(&self) -> &Arc<LiveStore> {
        &self.store
    }

    /// Stream an N-Triples document from `reader` into the store.
    pub fn ingest<R: io::BufRead>(&self, reader: R) -> Result<IngestReport, IngestError> {
        self.ingest_with(reader, |_| {})
    }

    /// Stream with an observer called after every applied batch — the
    /// hook mid-ingest latency sampling and progress reporting attach to.
    pub fn ingest_with<R, F>(&self, reader: R, observer: F) -> Result<IngestReport, IngestError>
    where
        R: io::BufRead,
        F: FnMut(&AppliedDelta),
    {
        self.run(reader, observer, false)
    }

    /// Stream a *removed-triples* document (the `removed.nt` half of a
    /// DBpedia-Live style changeset) from `reader`: every statement is
    /// applied as a retract ([`pivote_kg::parse_removed_stream`]), with
    /// the same bounded-memory batching as [`StreamingIngest::ingest`].
    /// Statements the store never held are no-ops.
    pub fn ingest_removed<R: io::BufRead>(&self, reader: R) -> Result<IngestReport, IngestError> {
        self.ingest_removed_with(reader, |_| {})
    }

    /// [`StreamingIngest::ingest_removed`] with a per-batch observer.
    pub fn ingest_removed_with<R, F>(
        &self,
        reader: R,
        observer: F,
    ) -> Result<IngestReport, IngestError>
    where
        R: io::BufRead,
        F: FnMut(&AppliedDelta),
    {
        self.run(reader, observer, true)
    }

    fn run<R, F>(
        &self,
        reader: R,
        mut observer: F,
        removed: bool,
    ) -> Result<IngestReport, IngestError>
    where
        R: io::BufRead,
        F: FnMut(&AppliedDelta),
    {
        let mut report = IngestReport::default();
        // a refused append (poisoned store) stops all further appends;
        // the error is surfaced after the parse loop unwinds
        let mut store_error: Option<StoreError> = None;
        let sink = |batch: &mut pivote_kg::DeltaBatch| {
            if store_error.is_some() {
                return;
            }
            match self.store.append(batch) {
                Ok(applied) => {
                    report.new_entities +=
                        (applied.new_entities.end - applied.new_entities.start) as usize;
                    report.added_relations += applied.added_relations;
                    report.added_literals += applied.added_literals;
                    report.removed_relations += applied.removed_relations;
                    report.removed_literals += applied.removed_literals;
                    report.removed_assertions += applied.removed_assertions;
                    report.work += applied.work;
                    report.final_generation = applied.generation;
                    observer(&applied);
                }
                Err(e) => store_error = Some(e),
            }
        };
        let stats = if removed {
            parse_removed_stream(reader, self.max_ops, sink)?
        } else {
            parse_stream(reader, self.max_ops, sink)?
        };
        if let Some(e) = store_error {
            return Err(e.into());
        }
        report.stats = stats;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivote_kg::{ntriples, parse_into_delta, KgBuilder, ShardedGraph};

    fn dump(n: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for i in 0..n {
            let _ = writeln!(
                out,
                "<http://dbpedia.org/resource/e{i}> <http://dbpedia.org/ontology/linksTo> \
                 <http://dbpedia.org/resource/e{}> .",
                (i + 1) % n
            );
        }
        out
    }

    #[test]
    fn streamed_ingest_matches_bulk_apply() {
        let src = dump(100);
        // bulk: one parse, one apply
        let mut bulk = KgBuilder::new().finish();
        bulk.apply(&parse_into_delta(&src).unwrap());
        // streamed: 7-op batches through a LiveStore
        let store = Arc::new(LiveStore::new(KgBuilder::new().finish()));
        let report = StreamingIngest::with_batch_size(Arc::clone(&store), 7)
            .ingest(src.as_bytes())
            .unwrap();
        assert_eq!(report.stats.statements, 100);
        assert_eq!(report.added_relations, 100);
        assert_eq!(report.new_entities, 100);
        let streamed = Arc::try_unwrap(store)
            .unwrap_or_else(|_| panic!("store still shared"))
            .into_inner()
            .into_single();
        assert_eq!(ntriples::serialize(&streamed), ntriples::serialize(&bulk));
    }

    #[test]
    fn ingest_into_sharded_store_preserves_content() {
        let src = dump(60);
        let store = Arc::new(LiveStore::new(ShardedGraph::from_graph(
            &KgBuilder::new().finish(),
            2,
        )));
        let ingest = StreamingIngest::with_batch_size(Arc::clone(&store), 16);
        let mut batches_seen = 0;
        ingest
            .ingest_with(src.as_bytes(), |applied| {
                assert!(applied.generation > 0);
                batches_seen += 1;
            })
            .unwrap();
        assert_eq!(batches_seen, 60usize.div_ceil(16));
        let reader = store.read();
        assert_eq!(reader.handle().entity_count(), 60);
    }

    /// Ingesting a changeset's `added` half then its `removed` half
    /// leaves the store bit-identical to never having held the removed
    /// statements at all (modulo tombstones, which compaction reclaims).
    #[test]
    fn removed_ingest_undoes_the_added_half() {
        let base = dump(40);
        let churn = {
            use std::fmt::Write as _;
            let mut out = String::new();
            for i in 0..25 {
                let _ = writeln!(
                    out,
                    "<http://dbpedia.org/resource/e{i}> <http://dbpedia.org/ontology/churn> \
                     <http://dbpedia.org/resource/e{}> .",
                    (i + 3) % 40
                );
            }
            out
        };
        let store = Arc::new(LiveStore::new(KgBuilder::new().finish()));
        let ingest = StreamingIngest::with_batch_size(Arc::clone(&store), 9);
        ingest.ingest(base.as_bytes()).unwrap();
        ingest.ingest(churn.as_bytes()).unwrap();
        let report = ingest.ingest_removed(churn.as_bytes()).unwrap();
        assert_eq!(report.stats.statements, 25);
        assert_eq!(report.removed_relations, 25);
        assert_eq!(report.new_entities, 0, "retracts never intern");
        drop(ingest);

        // a build that never saw the churn serializes identically — the
        // live view excludes tombstones, and reclaim drops them outright
        let mut clean = KgBuilder::new().finish();
        clean.apply(&parse_into_delta(&base).unwrap());
        let got = Arc::try_unwrap(store)
            .unwrap_or_else(|_| panic!("store still shared"))
            .into_inner()
            .into_single();
        assert!(got.tombstone_count() > 0);
        assert_eq!(ntriples::serialize(&got), ntriples::serialize(&clean));
        assert_eq!(
            ntriples::serialize(&got.reclaim()),
            ntriples::serialize(&clean)
        );
    }

    #[test]
    fn empty_stream_is_a_no_op() {
        let store = Arc::new(LiveStore::new(KgBuilder::new().finish()));
        let report = StreamingIngest::new(Arc::clone(&store))
            .ingest("# nothing but comments\n\n".as_bytes())
            .unwrap();
        assert_eq!(report.stats.lines, 2);
        assert_eq!(report.stats.statements, 0);
        assert_eq!(report.stats.batches, 0);
        assert_eq!(report.new_entities, 0);
        assert_eq!(report.final_generation, 0, "no batch, no generation bump");
    }
}

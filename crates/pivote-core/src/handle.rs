//! [`GraphHandle`] — one handle, two backends.
//!
//! Every query engine in the workspace (ranker, expander, heat map,
//! explanations, sessions, baselines, eval harness) holds a
//! [`GraphHandle`] instead of a concrete context, so the same engine code
//! runs unchanged over a single in-memory [`KnowledgeGraph`] (through
//! [`QueryContext`]) or over a range-partitioned [`ShardedGraph`]
//! (through [`ShardedContext`]). The two backends produce bit-identical
//! rankings — see `crate::sharded` for why — so switching backends is a
//! deployment decision, not a semantics decision.
//!
//! The handle exposes two API families:
//!
//! - the **query API** (`rank_features`, `rank_entities_top_k`,
//!   `p_feature_given_entity`, …) dispatching to the backend's execution
//!   substrate, and
//! - a **graph-lookup API** (`display_name`, `types_of`, `out_edges`, …)
//!   mirroring the [`KnowledgeGraph`] read surface with global entity
//!   ids, so engines never need the concrete store type.

use crate::config::RankingConfig;
use crate::context::QueryContext;
use crate::feature::{features_of, SemanticFeature};
use crate::ranking::{RankedEntity, RankedFeature};
use crate::sharded::ShardedContext;
use pivote_kg::{CategoryId, EntityId, KnowledgeGraph, Literal, PredicateId, ShardedGraph, TypeId};
use std::borrow::Cow;
use std::sync::Arc;

/// A backend-agnostic handle to one knowledge graph and its execution
/// context. Cheap to clone (`Arc` inside); all memoized state is shared
/// between clones.
#[derive(Clone)]
pub enum GraphHandle<'g> {
    /// One in-memory graph behind the shared [`QueryContext`].
    Single(Arc<QueryContext<'g>>),
    /// A range-sharded graph behind the [`ShardedContext`].
    Sharded(Arc<ShardedContext<'g>>),
}

impl<'g> From<Arc<QueryContext<'g>>> for GraphHandle<'g> {
    fn from(ctx: Arc<QueryContext<'g>>) -> Self {
        GraphHandle::Single(ctx)
    }
}

impl<'g> From<Arc<ShardedContext<'g>>> for GraphHandle<'g> {
    fn from(ctx: Arc<ShardedContext<'g>>) -> Self {
        GraphHandle::Sharded(ctx)
    }
}

impl<'g> GraphHandle<'g> {
    /// Handle over a single graph with a fresh auto-threaded context.
    pub fn single(kg: &'g KnowledgeGraph) -> Self {
        GraphHandle::Single(Arc::new(QueryContext::new(kg)))
    }

    /// Handle over a single graph with an explicit thread count.
    pub fn single_with_threads(kg: &'g KnowledgeGraph, threads: usize) -> Self {
        GraphHandle::Single(Arc::new(QueryContext::with_threads(kg, threads)))
    }

    /// Handle over a sharded graph with a fresh auto-threaded context.
    pub fn sharded(sg: &'g ShardedGraph) -> Self {
        GraphHandle::Sharded(Arc::new(ShardedContext::new(sg)))
    }

    /// Handle over a sharded graph with an explicit thread count.
    pub fn sharded_with_threads(sg: &'g ShardedGraph, threads: usize) -> Self {
        GraphHandle::Sharded(Arc::new(ShardedContext::with_threads(sg, threads)))
    }

    /// The underlying single graph, when this handle is single-backend
    /// (`None` for sharded handles — there is no one graph to borrow).
    pub fn kg(&self) -> Option<&'g KnowledgeGraph> {
        match self {
            GraphHandle::Single(ctx) => Some(ctx.kg()),
            GraphHandle::Sharded(_) => None,
        }
    }

    /// The underlying sharded graph, when this handle is sharded.
    pub fn sharded_graph(&self) -> Option<&'g ShardedGraph> {
        match self {
            GraphHandle::Single(_) => None,
            GraphHandle::Sharded(ctx) => Some(ctx.graph()),
        }
    }

    /// Short backend label for logs and experiment tables.
    pub fn backend_name(&self) -> String {
        match self {
            GraphHandle::Single(_) => "single".to_owned(),
            GraphHandle::Sharded(ctx) => format!("sharded-{}", ctx.graph().shard_count()),
        }
    }

    /// Configured worker-thread count.
    pub fn threads(&self) -> usize {
        match self {
            GraphHandle::Single(ctx) => ctx.threads(),
            GraphHandle::Sharded(ctx) => ctx.threads(),
        }
    }

    /// Number of cached `p(π|c)` probabilities (diagnostics).
    pub fn cached_probability_count(&self) -> usize {
        match self {
            GraphHandle::Single(ctx) => ctx.cached_probability_count(),
            GraphHandle::Sharded(ctx) => ctx.cached_probability_count(),
        }
    }

    // ---- query API -----------------------------------------------------

    /// Cached `p(π|c)` for one category context.
    pub fn p_for_category(&self, sf: SemanticFeature, c: CategoryId) -> f64 {
        match self {
            GraphHandle::Single(ctx) => ctx.p_for_category(sf, c),
            GraphHandle::Sharded(ctx) => ctx.p_for_category(sf, c),
        }
    }

    /// Cached `p(π|t)` for one type context.
    pub fn p_for_type(&self, sf: SemanticFeature, t: TypeId) -> f64 {
        match self {
            GraphHandle::Single(ctx) => ctx.p_for_type(sf, t),
            GraphHandle::Sharded(ctx) => ctx.p_for_type(sf, t),
        }
    }

    /// `p(π|c*)` over `e`'s contexts.
    pub fn p_feature_given_best_context(
        &self,
        config: &RankingConfig,
        sf: SemanticFeature,
        e: EntityId,
    ) -> f64 {
        match self {
            GraphHandle::Single(ctx) => ctx.p_feature_given_best_context(config, sf, e),
            GraphHandle::Sharded(ctx) => ctx.p_feature_given_best_context(config, sf, e),
        }
    }

    /// `p(π|e)`: 1 for an exact match, else the error-tolerant estimate.
    pub fn p_feature_given_entity(
        &self,
        config: &RankingConfig,
        sf: SemanticFeature,
        e: EntityId,
    ) -> f64 {
        match self {
            GraphHandle::Single(ctx) => ctx.p_feature_given_entity(config, sf, e),
            GraphHandle::Sharded(ctx) => ctx.p_feature_given_entity(config, sf, e),
        }
    }

    /// `d(π)`: inverse extent size (or 1 under the A2 ablation).
    pub fn discriminability(&self, config: &RankingConfig, sf: SemanticFeature) -> f64 {
        match self {
            GraphHandle::Single(ctx) => ctx.discriminability(config, sf),
            GraphHandle::Sharded(ctx) => ctx.discriminability(config, sf),
        }
    }

    /// `c(π, Q) = ∏ p(π|e)`.
    pub fn commonality(
        &self,
        config: &RankingConfig,
        sf: SemanticFeature,
        seeds: &[EntityId],
    ) -> f64 {
        match self {
            GraphHandle::Single(ctx) => ctx.commonality(config, sf, seeds),
            GraphHandle::Sharded(ctx) => ctx.commonality(config, sf, seeds),
        }
    }

    /// The candidate feature pool of a query.
    pub fn candidate_features(
        &self,
        config: &RankingConfig,
        seeds: &[EntityId],
    ) -> Vec<SemanticFeature> {
        match self {
            GraphHandle::Single(ctx) => ctx.candidate_features(config, seeds),
            GraphHandle::Sharded(ctx) => ctx.candidate_features(config, seeds),
        }
    }

    /// Rank all candidate features of the query.
    pub fn rank_features(&self, config: &RankingConfig, seeds: &[EntityId]) -> Vec<RankedFeature> {
        match self {
            GraphHandle::Single(ctx) => ctx.rank_features(config, seeds),
            GraphHandle::Sharded(ctx) => ctx.rank_features(config, seeds),
        }
    }

    /// The best `k` features, via bounded heap selection.
    pub fn rank_features_top_k(
        &self,
        config: &RankingConfig,
        seeds: &[EntityId],
        k: usize,
    ) -> Vec<RankedFeature> {
        match self {
            GraphHandle::Single(ctx) => ctx.rank_features_top_k(config, seeds, k),
            GraphHandle::Sharded(ctx) => ctx.rank_features_top_k(config, seeds, k),
        }
    }

    /// Gather candidate entities for a scored feature set.
    pub fn candidate_entities(
        &self,
        config: &RankingConfig,
        seeds: &[EntityId],
        features: &[RankedFeature],
    ) -> Vec<EntityId> {
        match self {
            GraphHandle::Single(ctx) => ctx.candidate_entities(config, seeds, features),
            GraphHandle::Sharded(ctx) => ctx.candidate_entities(config, seeds, features),
        }
    }

    /// `r(e, Q)` for one entity.
    pub fn score_entity(
        &self,
        config: &RankingConfig,
        e: EntityId,
        features: &[RankedFeature],
    ) -> f64 {
        match self {
            GraphHandle::Single(ctx) => ctx.score_entity(config, e, features),
            GraphHandle::Sharded(ctx) => ctx.score_entity(config, e, features),
        }
    }

    /// Rank candidate entities by `r(e, Q)`.
    pub fn rank_entities(
        &self,
        config: &RankingConfig,
        seeds: &[EntityId],
        features: &[RankedFeature],
    ) -> Vec<RankedEntity> {
        match self {
            GraphHandle::Single(ctx) => ctx.rank_entities(config, seeds, features),
            GraphHandle::Sharded(ctx) => ctx.rank_entities(config, seeds, features),
        }
    }

    /// Rank candidate entities with a pre-score filter and bounded top-k.
    pub fn rank_entities_top_k<F>(
        &self,
        config: &RankingConfig,
        seeds: &[EntityId],
        features: &[RankedFeature],
        k: usize,
        filter: F,
    ) -> Vec<RankedEntity>
    where
        F: Fn(EntityId) -> bool + Sync,
    {
        match self {
            GraphHandle::Single(ctx) => ctx.rank_entities_top_k(config, seeds, features, k, filter),
            GraphHandle::Sharded(ctx) => {
                ctx.rank_entities_top_k(config, seeds, features, k, filter)
            }
        }
    }

    /// Score an explicit candidate set and select the top `k`.
    pub fn score_and_select(
        &self,
        config: &RankingConfig,
        candidates: Vec<EntityId>,
        features: &[RankedFeature],
        k: usize,
    ) -> Vec<RankedEntity> {
        match self {
            GraphHandle::Single(ctx) => ctx.score_and_select(config, candidates, features, k),
            GraphHandle::Sharded(ctx) => ctx.score_and_select(config, candidates, features, k),
        }
    }

    /// Map a pure function over a slice on the backend's worker threads
    /// (deterministic chunk order — identical to a sequential map).
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        match self {
            GraphHandle::Single(ctx) => ctx.par_map(items, f),
            GraphHandle::Sharded(ctx) => ctx.par_map(items, f),
        }
    }

    /// [`GraphHandle::par_map`] with an explicit thread count.
    pub fn par_map_with<T, U, F>(&self, threads: usize, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        match self {
            GraphHandle::Single(ctx) => ctx.par_map_with(threads, items, f),
            GraphHandle::Sharded(ctx) => ctx.par_map_with(threads, items, f),
        }
    }

    // ---- semantic features over the handle -----------------------------

    /// The extent `E(π)` as global entity ids (borrowed on the single
    /// backend, assembled from owned per-shard prefixes on the sharded
    /// one).
    pub fn feature_extent(&self, sf: SemanticFeature) -> Cow<'g, [EntityId]> {
        match self {
            GraphHandle::Single(ctx) => Cow::Borrowed(sf.extent(ctx.kg())),
            GraphHandle::Sharded(ctx) => Cow::Owned(ctx.extent_global(sf)),
        }
    }

    /// `‖E(π)‖`.
    pub fn feature_extent_len(&self, sf: SemanticFeature) -> usize {
        match self {
            GraphHandle::Single(ctx) => sf.extent_size(ctx.kg()),
            GraphHandle::Sharded(ctx) => ctx.extent_len(sf),
        }
    }

    /// Whether `e ⊨ π`.
    pub fn feature_matches(&self, sf: SemanticFeature, e: EntityId) -> bool {
        match self {
            GraphHandle::Single(ctx) => sf.matches(ctx.kg(), e),
            GraphHandle::Sharded(ctx) => ctx.matches(sf, e),
        }
    }

    /// All semantic features of `e`, sorted (global anchors).
    pub fn features_of(&self, e: EntityId) -> Vec<SemanticFeature> {
        match self {
            GraphHandle::Single(ctx) => features_of(ctx.kg(), e),
            GraphHandle::Sharded(ctx) => ctx.features_of_entity(e),
        }
    }

    /// Render a feature in the paper's `anchor:predicate` notation —
    /// one formatting implementation for both backends (the sharded arm
    /// renders through the anchor's home shard, whose names and
    /// dictionaries match the global graph).
    pub fn feature_display(&self, sf: SemanticFeature) -> String {
        match self {
            GraphHandle::Single(ctx) => sf.display(ctx.kg()),
            GraphHandle::Sharded(ctx) => {
                let (shard, local) = ctx.graph().home(sf.anchor);
                SemanticFeature {
                    anchor: local,
                    ..sf
                }
                .display(shard.graph())
            }
        }
    }

    // ---- graph-lookup API (global ids) ---------------------------------

    /// Number of entities.
    pub fn entity_count(&self) -> usize {
        match self {
            GraphHandle::Single(ctx) => ctx.kg().entity_count(),
            GraphHandle::Sharded(ctx) => ctx.graph().entity_count(),
        }
    }

    /// Iterate every entity id.
    pub fn entity_ids(&self) -> impl Iterator<Item = EntityId> {
        (0..self.entity_count() as u32).map(EntityId::new)
    }

    /// Resolve an entity by name.
    pub fn entity(&self, name: &str) -> Option<EntityId> {
        match self {
            GraphHandle::Single(ctx) => ctx.kg().entity(name),
            GraphHandle::Sharded(ctx) => ctx.graph().entity(name),
        }
    }

    /// The canonical name of an entity.
    pub fn entity_name(&self, e: EntityId) -> &'g str {
        match self {
            GraphHandle::Single(ctx) => ctx.kg().entity_name(e),
            GraphHandle::Sharded(ctx) => ctx.graph().entity_name(e),
        }
    }

    /// The `rdfs:label` of an entity, if set.
    pub fn label(&self, e: EntityId) -> Option<&'g str> {
        match self {
            GraphHandle::Single(ctx) => ctx.kg().label(e),
            GraphHandle::Sharded(ctx) => ctx.graph().label(e),
        }
    }

    /// Display name (label, else the name with underscores as spaces).
    pub fn display_name(&self, e: EntityId) -> String {
        match self.label(e) {
            Some(l) => l.to_owned(),
            None => self.entity_name(e).replace('_', " "),
        }
    }

    /// Redirect/disambiguation aliases of an entity.
    pub fn aliases(&self, e: EntityId) -> &'g [String] {
        match self {
            GraphHandle::Single(ctx) => ctx.kg().aliases(e),
            GraphHandle::Sharded(ctx) => ctx.graph().aliases(e),
        }
    }

    /// Literal statements `(predicate, literal)` of an entity.
    pub fn literals(&self, e: EntityId) -> Vec<(PredicateId, &'g Literal)> {
        match self {
            GraphHandle::Single(ctx) => ctx.kg().literals(e).collect(),
            GraphHandle::Sharded(ctx) => ctx.graph().literals(e).collect(),
        }
    }

    /// Resolve a predicate by name.
    pub fn predicate(&self, name: &str) -> Option<PredicateId> {
        match self {
            GraphHandle::Single(ctx) => ctx.kg().predicate(name),
            GraphHandle::Sharded(ctx) => ctx.graph().predicate(name),
        }
    }

    /// The name of a predicate.
    pub fn predicate_name(&self, p: PredicateId) -> &'g str {
        match self {
            GraphHandle::Single(ctx) => ctx.kg().predicate_name(p),
            GraphHandle::Sharded(ctx) => ctx.graph().predicate_name(p),
        }
    }

    /// Resolve a type by name.
    pub fn type_id(&self, name: &str) -> Option<TypeId> {
        match self {
            GraphHandle::Single(ctx) => ctx.kg().type_id(name),
            GraphHandle::Sharded(ctx) => ctx.graph().type_id(name),
        }
    }

    /// The name of a type.
    pub fn type_name(&self, t: TypeId) -> &'g str {
        match self {
            GraphHandle::Single(ctx) => ctx.kg().type_name(t),
            GraphHandle::Sharded(ctx) => ctx.graph().type_name(t),
        }
    }

    /// Resolve a category by name.
    pub fn category_id(&self, name: &str) -> Option<CategoryId> {
        match self {
            GraphHandle::Single(ctx) => ctx.kg().category_id(name),
            GraphHandle::Sharded(ctx) => ctx.graph().category_id(name),
        }
    }

    /// The name of a category.
    pub fn category_name(&self, c: CategoryId) -> &'g str {
        match self {
            GraphHandle::Single(ctx) => ctx.kg().category_name(c),
            GraphHandle::Sharded(ctx) => ctx.graph().category_name(c),
        }
    }

    /// Types of an entity, sorted by type id.
    pub fn types_of(&self, e: EntityId) -> Vec<TypeId> {
        match self {
            GraphHandle::Single(ctx) => ctx.kg().types_of(e).collect(),
            GraphHandle::Sharded(ctx) => ctx.graph().types_of(e).collect(),
        }
    }

    /// Categories of an entity, sorted by category id.
    pub fn categories_of(&self, e: EntityId) -> Vec<CategoryId> {
        match self {
            GraphHandle::Single(ctx) => ctx.kg().categories_of(e).collect(),
            GraphHandle::Sharded(ctx) => ctx.graph().categories_of(e).collect(),
        }
    }

    /// Whether `e` has type `t`.
    pub fn has_type(&self, e: EntityId, t: TypeId) -> bool {
        match self {
            GraphHandle::Single(ctx) => ctx.kg().has_type(e, t),
            GraphHandle::Sharded(ctx) => ctx.graph().has_type(e, t),
        }
    }

    /// Whether `e` is in category `c`.
    pub fn has_category(&self, e: EntityId, c: CategoryId) -> bool {
        match self {
            GraphHandle::Single(ctx) => ctx.kg().has_category(e, c),
            GraphHandle::Sharded(ctx) => ctx.graph().has_category(e, c),
        }
    }

    /// Degree of an entity over entity edges (both directions).
    pub fn degree(&self, e: EntityId) -> usize {
        match self {
            GraphHandle::Single(ctx) => ctx.kg().degree(e),
            GraphHandle::Sharded(ctx) => ctx.graph().degree(e),
        }
    }

    /// Outgoing `(predicate, object)` pairs of `e`. Complete on both
    /// backends; pair order may differ between backends (shard-local
    /// target order), so order-sensitive callers must sort.
    pub fn out_edges(&self, e: EntityId) -> Vec<(PredicateId, EntityId)> {
        match self {
            GraphHandle::Single(ctx) => ctx.kg().out_edges(e).collect(),
            GraphHandle::Sharded(ctx) => ctx.graph().out_edges(e),
        }
    }

    /// Incoming `(predicate, subject)` pairs of `e`.
    pub fn in_edges(&self, e: EntityId) -> Vec<(PredicateId, EntityId)> {
        match self {
            GraphHandle::Single(ctx) => ctx.kg().in_edges(e).collect(),
            GraphHandle::Sharded(ctx) => ctx.graph().in_edges(e),
        }
    }

    /// Visit every edge of `e` — outgoing `(p, object)` pairs first, then
    /// incoming `(p, subject)` pairs — without allocating. This is the
    /// hot-loop variant of [`GraphHandle::out_edges`]/[`GraphHandle::in_edges`]
    /// for per-iteration graph scatters (e.g. the PPR power iteration);
    /// visit order within a direction is backend-dependent (shard-local
    /// target order on the sharded backend).
    pub fn for_each_edge(&self, e: EntityId, mut visit: impl FnMut(PredicateId, EntityId)) {
        match self {
            GraphHandle::Single(ctx) => {
                let kg = ctx.kg();
                for (p, o) in kg.out_edges(e) {
                    visit(p, o);
                }
                for (p, s) in kg.in_edges(e) {
                    visit(p, s);
                }
            }
            GraphHandle::Sharded(ctx) => {
                let (shard, local) = ctx.graph().home(e);
                for (p, o) in shard.graph().out_edges(local) {
                    visit(p, shard.to_global(o));
                }
                for (p, s) in shard.graph().in_edges(local) {
                    visit(p, shard.to_global(s));
                }
            }
        }
    }

    /// Sorted, deduplicated neighbour ids of `e` (both directions, any
    /// predicate) — identical on both backends.
    pub fn neighbours(&self, e: EntityId) -> Vec<EntityId> {
        let mut out: Vec<EntityId> = self
            .out_edges(e)
            .into_iter()
            .map(|(_, o)| o)
            .chain(self.in_edges(e).into_iter().map(|(_, s)| s))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// All entities of type `t`, sorted by global entity id.
    pub fn type_extent(&self, t: TypeId) -> Cow<'g, [EntityId]> {
        match self {
            GraphHandle::Single(ctx) => Cow::Borrowed(ctx.kg().type_extent(t)),
            GraphHandle::Sharded(ctx) => Cow::Owned(ctx.graph().type_extent(t)),
        }
    }

    /// `‖E(t)‖` without materializing the extent.
    pub fn type_extent_len(&self, t: TypeId) -> usize {
        match self {
            GraphHandle::Single(ctx) => ctx.kg().type_extent(t).len(),
            GraphHandle::Sharded(ctx) => ctx.graph().type_extent_len(t),
        }
    }

    /// Number of distinct types.
    pub fn type_count(&self) -> usize {
        match self {
            GraphHandle::Single(ctx) => ctx.kg().type_count(),
            GraphHandle::Sharded(ctx) => ctx.graph().type_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivote_kg::{generate, DatagenConfig};

    #[test]
    fn both_backends_answer_the_lookup_api_identically() {
        let kg = generate(&DatagenConfig::tiny());
        let sg = ShardedGraph::from_graph(&kg, 3);
        let single = GraphHandle::single_with_threads(&kg, 1);
        let sharded = GraphHandle::sharded_with_threads(&sg, 1);
        assert_eq!(single.entity_count(), sharded.entity_count());
        assert_eq!(single.type_count(), sharded.type_count());
        for e in kg.entity_ids().take(80) {
            assert_eq!(single.entity_name(e), sharded.entity_name(e));
            assert_eq!(single.display_name(e), sharded.display_name(e));
            assert_eq!(single.types_of(e), sharded.types_of(e));
            assert_eq!(single.categories_of(e), sharded.categories_of(e));
            assert_eq!(single.degree(e), sharded.degree(e));
            assert_eq!(single.neighbours(e), sharded.neighbours(e));
            assert_eq!(single.features_of(e), sharded.features_of(e));
            for sf in single.features_of(e).into_iter().take(4) {
                assert_eq!(
                    single.feature_extent_len(sf),
                    sharded.feature_extent_len(sf)
                );
                assert_eq!(
                    single.feature_extent(sf).as_ref(),
                    sharded.feature_extent(sf).as_ref()
                );
                assert_eq!(single.feature_display(sf), sharded.feature_display(sf));
            }
        }
        for t in kg.type_ids() {
            assert_eq!(
                single.type_extent(t).as_ref(),
                sharded.type_extent(t).as_ref()
            );
            assert_eq!(single.type_extent_len(t), sharded.type_extent_len(t));
            assert_eq!(single.type_name(t), sharded.type_name(t));
        }
    }

    #[test]
    fn backend_names_are_distinct() {
        let kg = generate(&DatagenConfig::tiny());
        let sg = ShardedGraph::from_graph(&kg, 2);
        assert_eq!(GraphHandle::single(&kg).backend_name(), "single");
        assert_eq!(GraphHandle::sharded(&sg).backend_name(), "sharded-2");
    }
}

//! Generation-pinned prepared query snapshots — the serving read path.
//!
//! A [`PreparedSnapshot`] is an immutable, generation-stamped bundle of
//! everything one query needs, built **once per store generation**
//! instead of once per request:
//!
//! - an `Arc<GraphBackend>` clone of the graph at that generation (the
//!   backends have been `Clone` since the PR-5 unification — publication
//!   clones the graph once per *write*, never per read);
//! - a pre-built [`GraphHandle`] (query context) over that clone,
//!   sharing the store's [`SharedCache`] so densities and global extent
//!   resolutions stay warm across generations;
//! - a slot for a pre-built keyword-search component (typed as
//!   `dyn Any` because the search engines live in `pivote-explore`,
//!   which depends on this crate — the explore layer downcasts).
//!
//! [`LiveStore`](crate::LiveStore) publishes a fresh
//! `Arc<PreparedSnapshot>` under the write lock after every successful
//! mutation ([`LiveStore::enable_snapshots`](crate::LiveStore::enable_snapshots)
//! opts a store in); readers acquire the current snapshot with a single
//! read-and-clone of an `RwLock<Arc<...>>` — no store lock, no context
//! construction, no extent re-resolution — and answers are bit-identical
//! to the lock path at the same generation (pinned by
//! `tests/snapshot_equivalence.rs`).
//!
//! ## Safety architecture
//!
//! The prepared context borrows the snapshot's own backend allocation.
//! That self-reference is expressed by extending the borrow to
//! `'static` at construction and never letting the `'static` handle
//! escape: the only accessor, [`PreparedSnapshot::handle`], re-shortens
//! the lifetime to the `&self` borrow, so user code cannot outlive the
//! snapshot with it. Field order puts the context before the backend,
//! so on drop the borrower is gone before the borrowed allocation.

use crate::context::{QueryContext, SharedCache};
use crate::handle::GraphHandle;
use crate::sharded::ShardedContext;
use pivote_kg::GraphBackend;
use std::any::Any;
use std::sync::{Arc, OnceLock};

/// An immutable, generation-stamped, ready-to-query view of a live
/// store. See the module docs for the publication contract.
pub struct PreparedSnapshot {
    /// Store generation this snapshot was prepared at.
    generation: u64,
    /// Prepared query context over `backend`. Declared before `backend`
    /// so it drops first — it borrows the allocation `backend` owns.
    ctx: GraphHandle<'static>,
    /// Pre-built search component, attached lazily by the explore layer
    /// (`dyn Any` keeps the dependency arrow pointing the right way).
    search: OnceLock<Arc<dyn Any + Send + Sync>>,
    /// The pinned graph. Keeps the allocation `ctx` borrows alive.
    backend: Arc<GraphBackend>,
}

impl std::fmt::Debug for PreparedSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedSnapshot")
            .field("generation", &self.generation)
            .field("shards", &self.backend.shard_count())
            .field("search_attached", &self.search.get().is_some())
            .finish()
    }
}

impl PreparedSnapshot {
    /// Prepare a snapshot of `backend` at `generation`: build the query
    /// context once, up front, so every request served from this
    /// snapshot skips per-request setup entirely.
    pub fn prepare(
        backend: Arc<GraphBackend>,
        generation: u64,
        threads: usize,
        cache: Arc<SharedCache>,
    ) -> Arc<PreparedSnapshot> {
        // SAFETY: `backend` is an `Arc`, so the `GraphBackend` allocation
        // is stable for as long as any clone lives; this struct holds a
        // clone for its whole lifetime, the borrowing context is dropped
        // before it (field order), and the `'static` handle is never
        // exposed — `handle()` re-ties it to `&self`.
        let ctx = unsafe {
            let pinned: &'static GraphBackend = &*Arc::as_ptr(&backend);
            match pinned {
                GraphBackend::Single(kg) => {
                    GraphHandle::Single(Arc::new(QueryContext::with_cache(kg, threads, cache)))
                }
                GraphBackend::Sharded(sg) => {
                    GraphHandle::Sharded(Arc::new(ShardedContext::with_cache(sg, threads, cache)))
                }
            }
        };
        Arc::new(PreparedSnapshot {
            generation,
            ctx,
            search: OnceLock::new(),
            backend,
        })
    }

    /// The store generation this snapshot is pinned to.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The pinned graph backend.
    pub fn backend(&self) -> &GraphBackend {
        &self.backend
    }

    /// The prepared query context, ready for immediate use — no
    /// per-request `Arc::new`, no lazy extent re-resolution beyond the
    /// first query at this generation.
    pub fn handle(&self) -> GraphHandle<'_> {
        // SAFETY: lifetime-only transmute, shortening `'static` to the
        // `&self` borrow (the context types are invariant over their
        // graph lifetime, so this cannot be a plain coercion). The
        // borrowed backend outlives the result because `self` does.
        unsafe { std::mem::transmute::<GraphHandle<'static>, GraphHandle<'_>>(self.ctx.clone()) }
    }

    /// Attach a pre-built search component (first writer wins; the slot
    /// is write-once per snapshot). Returns whether this call attached.
    pub fn attach_search(&self, search: Arc<dyn Any + Send + Sync>) -> bool {
        self.search.set(search).is_ok()
    }

    /// The attached search component, if any layer prepared one.
    pub fn attached_search(&self) -> Option<Arc<dyn Any + Send + Sync>> {
        self.search.get().cloned()
    }

    /// The attached search component, initializing the slot with
    /// `build` when no layer attached one yet. Concurrent callers
    /// coordinate on the write-once slot: exactly one runs `build`, the
    /// others **block until the component is ready** and share it — so
    /// a generation's engines are built once no matter how many
    /// requests race the background warmer to a fresh snapshot (racing
    /// duplicate builds halve each other's speed on small hosts).
    pub fn search_or_init(
        &self,
        build: impl FnOnce() -> Arc<dyn Any + Send + Sync>,
    ) -> Arc<dyn Any + Send + Sync> {
        self.search.get_or_init(build).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RankingConfig;
    use pivote_kg::{generate, DatagenConfig, ShardedGraph};

    #[test]
    fn prepared_answers_match_fresh_context_bitwise() {
        let kg = generate(&DatagenConfig::tiny());
        let film = kg.type_id("Film").unwrap();
        let seeds = kg.type_extent(film)[..2].to_vec();
        let cfg = RankingConfig::default();
        let fresh = crate::context::QueryContext::with_threads(&kg, 1);
        let want_f = fresh.rank_features(&cfg, &seeds);
        let want_e = fresh.rank_entities(&cfg, &seeds, &want_f);

        for backend in [
            GraphBackend::Single(kg.clone()),
            GraphBackend::Sharded(ShardedGraph::from_graph(&kg, 3)),
        ] {
            let snap =
                PreparedSnapshot::prepare(Arc::new(backend), 7, 1, Arc::new(SharedCache::new()));
            assert_eq!(snap.generation(), 7);
            let handle = snap.handle();
            let got_f = handle.rank_features(&cfg, &seeds);
            let got_e = handle.rank_entities(&cfg, &seeds, &got_f);
            assert_eq!(got_f, want_f);
            assert_eq!(got_e.len(), want_e.len());
            for (a, b) in got_e.iter().zip(&want_e) {
                assert_eq!(a.entity, b.entity);
                assert!((a.score - b.score).abs() == 0.0);
            }
            // the handle is reusable: a second query hits the prepared
            // context's memoized state, same answers
            let again = snap.handle().rank_features(&cfg, &seeds);
            assert_eq!(again, want_f);
        }
    }

    #[test]
    fn search_slot_is_write_once() {
        let kg = generate(&DatagenConfig::tiny());
        let snap = PreparedSnapshot::prepare(
            Arc::new(GraphBackend::Single(kg)),
            0,
            1,
            Arc::new(SharedCache::new()),
        );
        assert!(snap.attached_search().is_none());
        assert!(snap.attach_search(Arc::new(41u64)));
        assert!(!snap.attach_search(Arc::new(42u64)));
        let got = snap
            .attached_search()
            .unwrap()
            .downcast::<u64>()
            .expect("attached type");
        assert_eq!(*got, 41);
    }
}

//! # pivote-core — the PivotE recommendation engine (paper §2.3)
//!
//! The primary contribution of the paper: path-based ranking of semantic
//! features and entities for entity-oriented exploratory search.
//!
//! - [`feature`]: semantic features `anchor:predicate` in both directions
//!   and their extents `E(π)`;
//! - [`extent`]: sorted-set algebra over extents (the ranking hot loop),
//!   including the k-way union/intersection primitives;
//! - [`context`]: the shared [`QueryContext`] execution layer — interned
//!   extents, the sharded `p(π|c)` probability cache, parallel candidate
//!   scoring and bounded top-k selection — that every query engine in the
//!   workspace (core, explore, baselines, eval) runs through;
//! - [`sharded`]: the multi-graph twin — [`ShardedContext`] over a
//!   `pivote_kg::ShardedGraph`, fanning scoring out per shard and merging
//!   per-shard top-k heaps into bit-identical global rankings;
//! - [`handle`]: [`GraphHandle`], the backend-agnostic enum (single |
//!   sharded) every engine holds;
//! - [`live`]: [`LiveStore`] — the append-while-querying wrapper over
//!   either backend whose guard-scoped handles share one
//!   generation-stamped [`SharedCache`] across queries, sessions,
//!   appends *and* compactions, with off-lock concurrent compaction and
//!   a background [`MaintenanceHandle`];
//! - [`ingest`]: [`StreamingIngest`] — bounded-memory N-Triples ingest
//!   from any reader into a [`LiveStore`], composing with the
//!   maintenance thread so shards stay balanced mid-ingest;
//! - [`prepared`]: [`PreparedSnapshot`] — the generation-pinned serving
//!   read path: an immutable graph + prebuilt context (+ search slot)
//!   published once per write and acquired by readers with one atomic
//!   load, off the store lock and off per-request setup;
//! - [`warm`]: persisted context warm-state — the `p(π|c)` cache as a
//!   generation-checked sidecar next to the graph snapshot;
//! - [`replica`]: read replicas and crash recovery — follower
//!   [`ReplicaStore`]s tail a leader's durable delta log
//!   ([`pivote_kg::wal`]) and are provably fingerprint-equal to the
//!   leader at every synced generation;
//! - [`ranking`]: `r(π,Q) = d(π)·c(π,Q)` and
//!   `r(e,Q) = Σ p(π|e)·r(π,Q)` with error-tolerant category smoothing;
//! - [`expansion`]: entity set expansion over structured queries (seeds +
//!   required features + type filter) — the *investigation* operation;
//! - [`heatmap`]: the seven-level entity × feature correlation matrix of
//!   Fig. 3-f;
//! - [`explain`]: textual explanations of entity-pair and cell
//!   correlations;
//! - [`config`]: model switches, including the A1/A2 ablations.
//!
//! ```
//! use pivote_core::{Expander, RankingConfig, SfQuery};
//! use pivote_kg::{generate, DatagenConfig};
//!
//! let kg = generate(&DatagenConfig::tiny());
//! let film = kg.type_id("Film").unwrap();
//! let seed = kg.type_extent(film)[0];
//! let expander = Expander::new(&kg, RankingConfig::default());
//! let result = expander.expand(&SfQuery::from_seeds(vec![seed]), 10, 10);
//! assert!(!result.features.is_empty());
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod context;
pub mod expansion;
pub mod explain;
pub mod extent;
pub mod feature;
pub mod handle;
pub mod heatmap;
pub mod ingest;
pub mod live;
pub mod prepared;
pub mod ranking;
pub mod replica;
pub mod sharded;
pub mod warm;

pub use config::RankingConfig;
pub use context::{top_k_ranked, FeatureId, QueryContext, SharedCache};
pub use expansion::{diversify_features, Expander, ExpansionResult, SfQuery};
pub use explain::{explain_cell, explain_pair, CellExplanation, PairExplanation};
pub use feature::{features_of, Direction, SemanticFeature};
pub use handle::GraphHandle;
pub use heatmap::{HeatMap, HEAT_LEVELS};
pub use ingest::{IngestError, IngestReport, StreamingIngest, DEFAULT_BATCH_OPS};
pub use live::{
    maintenance_from_env, snapshot_from_env, LiveReader, LiveStore, MaintenanceHandle, StoreError,
    MAX_OFFLOCK_ATTEMPTS,
};
#[allow(deprecated)]
pub use live::{LiveGraph, LiveShardedGraph, LiveShardedReader};
pub use prepared::PreparedSnapshot;
pub use ranking::{RankedEntity, RankedFeature, Ranker};
pub use replica::{recover, RecoveryReport, ReplicaError, ReplicaHandle, ReplicaStore};
pub use sharded::ShardedContext;
pub use warm::{load_warm_state, save_warm_state, warm_sidecar_path, WarmStateError};

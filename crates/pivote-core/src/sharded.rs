//! The sharded query-execution layer.
//!
//! [`ShardedContext`] is the multi-graph sibling of
//! [`QueryContext`](crate::context::QueryContext): one execution substrate
//! over a [`ShardedGraph`], exposing the same ranking primitives with the
//! same semantics — and, crucially, **bit-identical results**. Global
//! model quantities decompose exactly over the range partition
//! (`pivote_kg::shard` documents the invariants):
//!
//! - `‖E(π)‖ = Σᵢ ‖Eᵢ(π) ∩ rangeᵢ‖` — integer sums, so
//!   `d(π) = 1/‖E(π)‖` is the same `f64` as on the single graph;
//! - `p(π|c) = (Σᵢ ‖Eᵢ(π) ∩ Eᵢ(c)‖) / (Σᵢ ‖Eᵢ(c)‖)` — per-shard context
//!   extents are owned-only, so the partial intersections are disjoint
//!   and the numerator/denominator are the exact global integers;
//! - `e ⊨ π` is a binary search in `e`'s home shard, which stores every
//!   triple incident to `e`.
//!
//! Entity scoring fans out **per shard** on scoped threads (each shard's
//! candidates are scored against the shared global probability cache and
//! reduced to a local bounded top-k heap), and the per-shard heaps are
//! merged into the global top-k under the same total order
//! `(score desc, entity-id asc)` — so the merged result equals the
//! single-graph sort-then-truncate, deterministically, for any shard
//! count and any `k` (including `k` larger than the candidate count and
//! shards that own no candidates at all).

use crate::config::RankingConfig;
use crate::context::{fan_out, par_map_slice, prob_key, top_k_ranked, Ctx, SharedCache};
use crate::extent::{intersect_len, union_k};
use crate::feature::{features_of, SemanticFeature};
use crate::ranking::{RankedEntity, RankedFeature};
use pivote_kg::{CategoryId, EntityId, ShardedGraph, TypeId};
use std::sync::{Arc, OnceLock, RwLock};

/// A feature resolved against every shard.
struct FeatureEntry<'g> {
    /// Per shard: the feature's local extent slice (empty when the anchor
    /// is not present in that shard).
    extents: Vec<&'g [EntityId]>,
    /// Per shard: length of the owned prefix, `‖E(π) ∩ rangeᵢ‖`.
    owned_lens: Vec<usize>,
    /// `‖E(π)‖ = Σᵢ owned_lens[i]`.
    global_len: usize,
    /// The materialized global extent, filled on first use — candidate
    /// gathering over popular features re-reads it instead of re-running
    /// the per-shard remap every query.
    global: OnceLock<Arc<[EntityId]>>,
}

/// Per-context feature resolutions over the shard set, indexed by the
/// shared cache's dense feature ids.
struct FeatureTable<'g> {
    entries: Vec<Option<Arc<FeatureEntry<'g>>>>,
}

/// A top feature resolved for one candidate-scoring pass: the dense id
/// keys the shared probability cache, the entry snapshot serves the
/// per-candidate match check without re-taking the interner lock.
struct ResolvedFeature<'g> {
    fid: u32,
    score: f64,
    entry: Arc<FeatureEntry<'g>>,
}

/// The shared, memoized execution substrate over a [`ShardedGraph`].
///
/// Cheap to construct; all interior state is lazily filled and
/// thread-safe, so one context (behind an [`std::sync::Arc`]) serves
/// every engine and every concurrent session, exactly like the
/// single-graph [`QueryContext`](crate::context::QueryContext).
pub struct ShardedContext<'g> {
    sg: &'g ShardedGraph,
    threads: usize,
    /// Shared (possibly cross-context, append-surviving) memoized state:
    /// the feature-id registry and the global `p(π|c)` cache (values are
    /// exact global quantities, independent of shard count and
    /// `RankingConfig`).
    cache: Arc<SharedCache>,
    /// Cache generation at construction — same seqlock-style staleness
    /// gate as `QueryContext::born_gen`: once the shared cache moves past
    /// it, this context computes locally and neither trusts nor writes
    /// the shared maps.
    born_gen: u64,
    features: RwLock<FeatureTable<'g>>,
}

impl<'g> ShardedContext<'g> {
    /// Context over `sg` with one worker per available core.
    pub fn new(sg: &'g ShardedGraph) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::with_threads(sg, threads)
    }

    /// Context with an explicit worker-thread count (`0` clamps to 1).
    pub fn with_threads(sg: &'g ShardedGraph, threads: usize) -> Self {
        Self::with_cache(sg, threads, Arc::new(SharedCache::new()))
    }

    /// Context on an existing [`SharedCache`] — the live-graph entry
    /// point, sharing densities across queries, sessions and appends
    /// exactly like the single-graph `QueryContext::with_cache`.
    pub fn with_cache(sg: &'g ShardedGraph, threads: usize, cache: Arc<SharedCache>) -> Self {
        let born_gen = cache.generation();
        Self {
            sg,
            threads: threads.max(1),
            cache,
            born_gen,
            features: RwLock::new(FeatureTable {
                entries: Vec::new(),
            }),
        }
    }

    /// The sharded graph this context reads.
    #[inline]
    pub fn graph(&self) -> &'g ShardedGraph {
        self.sg
    }

    /// Configured worker-thread count.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The shared memoized state behind this context.
    pub fn cache(&self) -> &Arc<SharedCache> {
        &self.cache
    }

    /// Number of cached `p(π|c)` probabilities (diagnostics).
    pub fn cached_probability_count(&self) -> usize {
        self.cache.cached_probability_count()
    }

    // ---- feature interning ---------------------------------------------

    /// Intern a (global-id) feature, resolving its per-shard extents and
    /// the exact global extent size on first sight.
    fn intern(&self, sf: SemanticFeature) -> u32 {
        let fid = self.cache.feature_id(sf);
        self.ensure_entry(fid, sf);
        fid
    }

    /// This context's resolution of feature `fid` against the shard set,
    /// resolving lazily (ids can arrive from sibling contexts sharing the
    /// cache).
    fn entry(&self, fid: u32) -> Arc<FeatureEntry<'g>> {
        {
            let table = self.features.read().expect("feature table poisoned");
            if let Some(Some(entry)) = table.entries.get(fid as usize) {
                return Arc::clone(entry);
            }
        }
        self.ensure_entry(fid, self.cache.feature(fid))
    }

    fn ensure_entry(&self, fid: u32, sf: SemanticFeature) -> Arc<FeatureEntry<'g>> {
        {
            let table = self.features.read().expect("feature table poisoned");
            if let Some(Some(entry)) = table.entries.get(fid as usize) {
                return Arc::clone(entry);
            }
        }
        // resolve outside the write lock; double-check after acquiring
        let shards = self.sg.shards();
        let mut extents: Vec<&'g [EntityId]> = Vec::with_capacity(shards.len());
        let mut owned_lens = Vec::with_capacity(shards.len());
        let mut global_len = 0usize;
        for shard in shards {
            let extent: &'g [EntityId] = match shard.to_local(sf.anchor) {
                Some(local) => SemanticFeature {
                    anchor: local,
                    ..sf
                }
                .extent(shard.graph()),
                None => &[],
            };
            let owned = shard.owned_prefix_len(extent);
            global_len += owned;
            extents.push(extent);
            owned_lens.push(owned);
        }
        let mut table = self.features.write().expect("feature table poisoned");
        if table.entries.len() <= fid as usize {
            table.entries.resize_with(fid as usize + 1, || None);
        }
        if let Some(entry) = &table.entries[fid as usize] {
            return Arc::clone(entry);
        }
        let entry = Arc::new(FeatureEntry {
            extents,
            owned_lens,
            global_len,
            global: OnceLock::new(),
        });
        table.entries[fid as usize] = Some(Arc::clone(&entry));
        entry
    }

    /// `‖E(π)‖` — the exact global extent size.
    pub fn extent_len(&self, sf: SemanticFeature) -> usize {
        self.entry(self.intern(sf)).global_len
    }

    /// Materialize the global extent `E(π)`, sorted by global entity id:
    /// per-shard owned prefixes remapped and concatenated in shard order.
    pub fn extent_global(&self, sf: SemanticFeature) -> Vec<EntityId> {
        self.extent_global_shared(sf).to_vec()
    }

    /// [`ShardedContext::extent_global`] as a shared, memoized slice —
    /// the remap runs at most once per feature *per cache*, not per
    /// context: resolutions are promoted to the [`SharedCache`]'s global
    /// extent registry, so a fresh context over the same logical graph
    /// (a new read guard, a new prepared snapshot) reuses the `Arc`
    /// instead of re-running the per-shard remap. The registry is
    /// invalidated receipt-exactly when a delta touches the feature's
    /// extent and survives compaction (global ids are partition-
    /// independent).
    fn extent_global_shared(&self, sf: SemanticFeature) -> Arc<[EntityId]> {
        let fid = self.intern(sf);
        let entry = self.entry(fid);
        entry
            .global
            .get_or_init(|| {
                // seqlock-style validity check — see QueryContext::p_by_fid
                if let Some(shared) = self.cache.extent_get(fid) {
                    if self.cache.generation() == self.born_gen {
                        return shared;
                    }
                }
                let mut out = Vec::with_capacity(entry.global_len);
                for ((shard, &extent), &owned) in self
                    .sg
                    .shards()
                    .iter()
                    .zip(&entry.extents)
                    .zip(&entry.owned_lens)
                {
                    out.extend(extent[..owned].iter().map(|&e| shard.to_global(e)));
                }
                let out: Arc<[EntityId]> = out.into();
                self.cache
                    .extent_insert_if_current(fid, Arc::clone(&out), self.born_gen);
                out
            })
            .clone()
    }

    /// Whether `e ⊨ π` — a binary search in `e`'s home shard.
    pub fn matches(&self, sf: SemanticFeature, e: EntityId) -> bool {
        let entry = self.entry(self.intern(sf));
        let si = self.sg.shard_of(e);
        let local = self.sg.shard(si).to_local(e).expect("owned entity");
        entry.extents[si].binary_search(&local).is_ok()
    }

    /// All semantic features of `e` (global anchors), sorted — identical
    /// to `features_of` on the unsharded graph.
    pub fn features_of_entity(&self, e: EntityId) -> Vec<SemanticFeature> {
        let (shard, local) = self.sg.home(e);
        let mut out: Vec<SemanticFeature> = features_of(shard.graph(), local)
            .into_iter()
            .map(|sf| SemanticFeature {
                anchor: shard.to_global(sf.anchor),
                ..sf
            })
            .collect();
        out.sort_unstable();
        out
    }

    // ---- probability cache ---------------------------------------------

    /// Cached global `p(π|c) = ‖E(π) ∩ E(c)‖ / ‖E(c)‖`, assembled from
    /// exact per-shard partial intersection counts.
    fn p_feature_given_ctx(&self, sf: SemanticFeature, ctx: Ctx) -> f64 {
        self.p_by_fid(self.intern(sf), ctx)
    }

    /// [`ShardedContext::p_feature_given_ctx`] by dense feature id — the
    /// hot-loop entry that skips re-hashing the feature into the
    /// interner.
    fn p_by_fid(&self, fid: u32, ctx: Ctx) -> f64 {
        let key = prob_key(fid, ctx);
        // seqlock-style validity check — see QueryContext::p_by_fid
        if let Some(p) = self.cache.prob_get(key) {
            if self.cache.generation() == self.born_gen {
                return p;
            }
        }
        let entry = self.entry(fid);
        let mut num = 0usize;
        let mut den = 0usize;
        for (gs, &extent) in self.sg.shards().iter().zip(&entry.extents) {
            let ctx_extent = match ctx {
                Ctx::Cat(c) => gs.graph().category_extent(c),
                Ctx::Type(t) => gs.graph().type_extent(t),
            };
            // context extents are owned-only, so the intersection
            // counts exactly the in-range members of E(π)
            den += ctx_extent.len();
            num += intersect_len(extent, ctx_extent);
        }
        let p = if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        };
        self.cache.prob_insert_if_current(key, p, self.born_gen);
        p
    }

    /// Cached `p(π|c)` for one category context.
    pub fn p_for_category(&self, sf: SemanticFeature, c: CategoryId) -> f64 {
        self.p_feature_given_ctx(sf, Ctx::Cat(c))
    }

    /// Cached `p(π|t)` for one type context.
    pub fn p_for_type(&self, sf: SemanticFeature, t: TypeId) -> f64 {
        self.p_feature_given_ctx(sf, Ctx::Type(t))
    }

    /// `p(π|c*) = max_c p(π|c)` over the categories (and, when configured,
    /// types) of `e` — contexts enumerated from `e`'s home shard in global
    /// dictionary order.
    pub fn p_feature_given_best_context(
        &self,
        config: &RankingConfig,
        sf: SemanticFeature,
        e: EntityId,
    ) -> f64 {
        self.p_best_ctx_by_fid(config, self.intern(sf), e)
    }

    /// [`ShardedContext::p_feature_given_best_context`] by dense feature
    /// id (the probability cache and the per-shard extent table are both
    /// fid-indexed, so the smoothing loop never re-interns).
    fn p_best_ctx_by_fid(&self, config: &RankingConfig, fid: u32, e: EntityId) -> f64 {
        let (shard, local) = self.sg.home(e);
        let mut best = 0.0f64;
        for c in shard.graph().categories_of(local) {
            best = best.max(self.p_by_fid(fid, Ctx::Cat(c)));
        }
        if config.use_types_as_context {
            for t in shard.graph().types_of(local) {
                best = best.max(self.p_by_fid(fid, Ctx::Type(t)));
            }
        }
        best
    }

    /// `p(π|e)`: 1 for an exact match, otherwise the error-tolerant
    /// context estimate (or 0 when error tolerance is disabled).
    pub fn p_feature_given_entity(
        &self,
        config: &RankingConfig,
        sf: SemanticFeature,
        e: EntityId,
    ) -> f64 {
        if self.matches(sf, e) {
            return 1.0;
        }
        if !config.error_tolerant {
            return 0.0;
        }
        self.p_feature_given_best_context(config, sf, e)
    }

    // ---- ranking model -------------------------------------------------
    //
    // LOCKSTEP: the method bodies below (candidate_features,
    // rank_features_top_k, commonality, discriminability, score_entity,
    // candidate_entities cap accounting) mirror QueryContext's in
    // context.rs line for line, differing only in the extent/membership
    // primitives. Any edit to the model logic must be made in BOTH files
    // — the bit-identity contract is enforced by
    // tests/sharded_equivalence.rs and tests/golden_sharded.rs.

    /// `d(π)`: inverse global extent size (or 1 under the A2 ablation).
    pub fn discriminability(&self, config: &RankingConfig, sf: SemanticFeature) -> f64 {
        if !config.use_discriminability {
            return 1.0;
        }
        let n = self.extent_len(sf);
        if n == 0 {
            0.0
        } else {
            1.0 / n as f64
        }
    }

    /// `c(π, Q) = ∏_{e∈Q} p(π|e)`.
    pub fn commonality(
        &self,
        config: &RankingConfig,
        sf: SemanticFeature,
        seeds: &[EntityId],
    ) -> f64 {
        let mut c = 1.0;
        for &e in seeds {
            c *= self.p_feature_given_entity(config, sf, e);
            if c == 0.0 {
                break;
            }
        }
        c
    }

    /// The candidate feature pool — same construction, same order, same
    /// extent-size filter as the single-graph context.
    pub fn candidate_features(
        &self,
        config: &RankingConfig,
        seeds: &[EntityId],
    ) -> Vec<SemanticFeature> {
        let mut all: Vec<SemanticFeature> = seeds
            .iter()
            .flat_map(|&e| self.features_of_entity(e))
            .collect();
        all.sort_unstable();
        all.dedup();
        all.retain(|sf| {
            let n = self.extent_len(*sf);
            n >= config.min_extent.max(1) && n <= config.max_extent
        });
        all
    }

    /// Rank all candidate features of the query.
    pub fn rank_features(&self, config: &RankingConfig, seeds: &[EntityId]) -> Vec<RankedFeature> {
        self.rank_features_top_k(config, seeds, usize::MAX)
    }

    /// [`ShardedContext::rank_features`] with bounded heap selection.
    pub fn rank_features_top_k(
        &self,
        config: &RankingConfig,
        seeds: &[EntityId],
        k: usize,
    ) -> Vec<RankedFeature> {
        let candidates = self.candidate_features(config, seeds);
        let scored = par_map_slice(self.threads, &candidates, |&sf| {
            let d = self.discriminability(config, sf);
            let c = if d > 0.0 {
                self.commonality(config, sf, seeds)
            } else {
                0.0
            };
            RankedFeature {
                feature: sf,
                score: d * c,
                discriminability: d,
                commonality: c,
            }
        });
        top_k_ranked(
            scored.into_iter().filter(|rf| rf.score > 0.0),
            k,
            |rf| rf.score,
            |a, b| a.feature.cmp(&b.feature),
        )
    }

    /// Gather candidate entities — global extents in feature-score order,
    /// with the same cap accounting as the single-graph context.
    pub fn candidate_entities(
        &self,
        config: &RankingConfig,
        seeds: &[EntityId],
        features: &[RankedFeature],
    ) -> Vec<EntityId> {
        let top = &features[..features.len().min(config.top_features)];
        let cap = config.max_candidates.saturating_mul(4);
        let mut picked: Vec<Arc<[EntityId]>> = Vec::with_capacity(top.len());
        let mut total = 0usize;
        for rf in top {
            let extent = self.extent_global_shared(rf.feature);
            total += extent.len();
            picked.push(extent);
            if total >= cap {
                break;
            }
        }
        let views: Vec<&[EntityId]> = picked.iter().map(|v| v.as_ref()).collect();
        let mut cands = union_k(&views);
        if config.exclude_seeds {
            cands.retain(|e| !seeds.contains(e));
        }
        cands.truncate(config.max_candidates);
        cands
    }

    /// `r(e, Q)` for one entity over a scored feature set.
    pub fn score_entity(
        &self,
        config: &RankingConfig,
        e: EntityId,
        features: &[RankedFeature],
    ) -> f64 {
        let mut score = 0.0;
        for rf in features {
            let p = if self.matches(rf.feature, e) {
                1.0
            } else if config.error_tolerant && config.smooth_candidates {
                self.p_feature_given_best_context(config, rf.feature, e)
            } else {
                0.0
            };
            score += p * rf.score;
        }
        score
    }

    /// Rank candidate entities by `r(e, Q)`.
    pub fn rank_entities(
        &self,
        config: &RankingConfig,
        seeds: &[EntityId],
        features: &[RankedFeature],
    ) -> Vec<RankedEntity> {
        self.rank_entities_top_k(config, seeds, features, usize::MAX, |_| true)
    }

    /// Rank candidate entities with a pre-score filter and bounded top-k
    /// selection — the sharded twin of the single-graph method, with the
    /// same guarantees.
    pub fn rank_entities_top_k<F>(
        &self,
        config: &RankingConfig,
        seeds: &[EntityId],
        features: &[RankedFeature],
        k: usize,
        filter: F,
    ) -> Vec<RankedEntity>
    where
        F: Fn(EntityId) -> bool + Sync,
    {
        let top = &features[..features.len().min(config.top_features)];
        let mut candidates = self.candidate_entities(config, seeds, features);
        candidates.retain(|&e| filter(e));
        self.score_and_select(config, candidates, top, k)
    }

    /// Score an explicit candidate set and select the top `k`: candidates
    /// are routed to their home shards, each shard scores its slice and
    /// keeps a local bounded top-k heap (on a scoped thread per shard when
    /// the context is multi-threaded), and the per-shard heaps are merged
    /// under the total order `(score desc, entity asc)`.
    ///
    /// Because the order is total and scores are pure global quantities,
    /// the merge equals single-graph sort-then-truncate bit-for-bit — for
    /// empty shards, shards owning no candidates, and `k` exceeding the
    /// total candidate count alike.
    pub fn score_and_select(
        &self,
        config: &RankingConfig,
        candidates: Vec<EntityId>,
        features: &[RankedFeature],
        k: usize,
    ) -> Vec<RankedEntity> {
        // resolve the fixed feature set once: dense ids for the shared
        // probability cache, a per-shard extent snapshot for the match
        // check — the per-candidate loop then never touches the feature
        // interner lock or re-routes the entity
        let resolved: Vec<ResolvedFeature<'g>> = features
            .iter()
            .map(|rf| {
                let fid = self.intern(rf.feature);
                ResolvedFeature {
                    fid,
                    score: rf.score,
                    entry: self.entry(fid),
                }
            })
            .collect();
        let n = self.sg.shard_count();
        let mut by_shard: Vec<(usize, Vec<EntityId>)> = (0..n).map(|i| (i, Vec::new())).collect();
        for &e in &candidates {
            by_shard[self.sg.shard_of(e)].1.push(e);
        }
        let score_shard = |&(si, ref cands): &(usize, Vec<EntityId>)| -> Vec<RankedEntity> {
            let shard = self.sg.shard(si);
            top_k_ranked(
                cands.iter().map(|&e| {
                    let local = shard.to_local(e).expect("owned entity");
                    RankedEntity {
                        entity: e,
                        score: self.score_resolved(config, si, local, e, &resolved),
                    }
                }),
                k,
                |re| re.score,
                |a, b| a.entity.cmp(&b.entity),
            )
        };
        let shard_tops: Vec<Vec<RankedEntity>> = fan_out(self.threads, &by_shard, score_shard);
        top_k_ranked(
            shard_tops.into_iter().flatten(),
            k,
            |re| re.score,
            |a, b| a.entity.cmp(&b.entity),
        )
    }

    /// The inner scoring loop of [`ShardedContext::score_and_select`]:
    /// the same math as [`ShardedContext::score_entity`] (bit-identical
    /// by construction — same extents, same cached probabilities), but
    /// over pre-resolved features and a pre-routed candidate.
    fn score_resolved(
        &self,
        config: &RankingConfig,
        si: usize,
        local: EntityId,
        e: EntityId,
        features: &[ResolvedFeature<'_>],
    ) -> f64 {
        let mut score = 0.0;
        for rf in features {
            let p = if rf.entry.extents[si].binary_search(&local).is_ok() {
                1.0
            } else if config.error_tolerant && config.smooth_candidates {
                self.p_best_ctx_by_fid(config, rf.fid, e)
            } else {
                0.0
            };
            score += p * rf.score;
        }
        score
    }

    // ---- parallel substrate --------------------------------------------

    /// Map a pure function over a slice using the context's worker
    /// threads, in deterministic chunk order.
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        par_map_slice(self.threads, items, f)
    }

    /// [`ShardedContext::par_map`] with an explicit thread count.
    pub fn par_map_with<T, U, F>(&self, threads: usize, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        par_map_slice(threads, items, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::QueryContext;
    use pivote_kg::{generate, DatagenConfig, KnowledgeGraph};

    fn fixture() -> KnowledgeGraph {
        generate(&DatagenConfig::tiny())
    }

    fn seeds(kg: &KnowledgeGraph, n: usize) -> Vec<EntityId> {
        let film = kg.type_id("Film").unwrap();
        kg.type_extent(film)[..n].to_vec()
    }

    #[test]
    fn extent_sizes_match_single_graph() {
        let kg = fixture();
        let sg = ShardedGraph::from_graph(&kg, 3);
        let ctx = ShardedContext::with_threads(&sg, 1);
        for e in kg.entity_ids().take(60) {
            for sf in features_of(&kg, e) {
                assert_eq!(
                    ctx.extent_len(sf),
                    sf.extent_size(&kg),
                    "extent size of {}",
                    sf.display(&kg)
                );
                assert_eq!(ctx.extent_global(sf), sf.extent(&kg).to_vec());
            }
        }
    }

    #[test]
    fn probabilities_match_single_graph_bitwise() {
        let kg = fixture();
        let sg = ShardedGraph::from_graph(&kg, 4);
        let sharded = ShardedContext::with_threads(&sg, 1);
        let single = QueryContext::with_threads(&kg, 1);
        let cfg = RankingConfig::default();
        for e in kg.entity_ids().take(40) {
            for sf in features_of(&kg, e).into_iter().take(6) {
                for c in kg.categories_of(e) {
                    assert!(
                        (single.p_for_category(sf, c) - sharded.p_for_category(sf, c)).abs() == 0.0
                    );
                }
                for probe in kg.entity_ids().take(20) {
                    let a = single.p_feature_given_entity(&cfg, sf, probe);
                    let b = sharded.p_feature_given_entity(&cfg, sf, probe);
                    assert!((a - b).abs() == 0.0, "p(π|e) diverged: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn rankings_match_single_graph_bitwise() {
        let kg = fixture();
        let cfg = RankingConfig::default();
        let single = QueryContext::with_threads(&kg, 1);
        let seeds = seeds(&kg, 2);
        let sf_single = single.rank_features(&cfg, &seeds);
        let re_single = single.rank_entities(&cfg, &seeds, &sf_single);
        for n in [1, 2, 3, 4] {
            let sg = ShardedGraph::from_graph(&kg, n);
            for threads in [1, 2] {
                let sharded = ShardedContext::with_threads(&sg, threads);
                let sf = sharded.rank_features(&cfg, &seeds);
                assert_eq!(sf, sf_single, "features n={n} threads={threads}");
                let re = sharded.rank_entities(&cfg, &seeds, &sf);
                assert_eq!(re.len(), re_single.len());
                for (a, b) in re.iter().zip(&re_single) {
                    assert_eq!(a.entity, b.entity, "n={n} threads={threads}");
                    assert!(
                        (a.score - b.score).abs() == 0.0,
                        "score not bit-identical: {} vs {}",
                        a.score,
                        b.score
                    );
                }
            }
        }
    }

    #[test]
    fn top_k_merge_handles_k_beyond_candidates_and_empty_shards() {
        let kg = fixture();
        // more shards than strictly needed → some shards own few/no
        // candidates; k far beyond the candidate pool
        let sg = ShardedGraph::from_graph(&kg, 4);
        let sharded = ShardedContext::with_threads(&sg, 2);
        let single = QueryContext::with_threads(&kg, 1);
        let cfg = RankingConfig::default();
        let seeds = seeds(&kg, 1);
        let features = single.rank_features(&cfg, &seeds);
        let full = single.rank_entities(&cfg, &seeds, &features);
        for k in [0, 1, 3, full.len(), full.len() + 500, usize::MAX] {
            let got = sharded.rank_entities_top_k(&cfg, &seeds, &features, k, |_| true);
            let want = &full[..k.min(full.len())];
            assert_eq!(got.len(), want.len(), "k={k}");
            for (a, b) in got.iter().zip(want) {
                assert_eq!(a.entity, b.entity, "k={k}");
                assert!((a.score - b.score).abs() == 0.0);
            }
        }
    }

    #[test]
    fn caches_fill_and_hit() {
        let kg = fixture();
        let sg = ShardedGraph::from_graph(&kg, 2);
        let ctx = ShardedContext::new(&sg);
        let cfg = RankingConfig::default();
        let seeds = seeds(&kg, 2);
        let _ = ctx.rank_features(&cfg, &seeds);
        let filled = ctx.cached_probability_count();
        assert!(filled > 0, "smoothing must populate the global cache");
        let _ = ctx.rank_features(&cfg, &seeds);
        assert_eq!(ctx.cached_probability_count(), filled, "no recompute");
    }

    /// The global-extent resolutions a sharded context computes are
    /// promoted to the shared cache: a second context on the same cache
    /// gets the **same allocation** back (`Arc::ptr_eq`), not a re-merge.
    #[test]
    fn global_extent_registry_is_shared_across_contexts() {
        let kg = fixture();
        let sg = ShardedGraph::from_graph(&kg, 3);
        let cache = Arc::new(SharedCache::new());
        let sf = features_of(&kg, seeds(&kg, 1)[0])[0];

        let first = {
            let ctx = ShardedContext::with_cache(&sg, 1, Arc::clone(&cache));
            ctx.extent_global_shared(sf)
        };
        assert!(cache.cached_extent_count() > 0, "resolution must register");
        let second = {
            let ctx = ShardedContext::with_cache(&sg, 1, Arc::clone(&cache));
            ctx.extent_global_shared(sf)
        };
        assert!(
            Arc::ptr_eq(&first, &second),
            "second context must reuse the registered allocation"
        );
        assert_eq!(first.to_vec(), sf.extent(&kg).to_vec());
    }
}

//! Sorted-set operations over extent slices.
//!
//! Extents (`E(π)`, `E(c)`, `E(t)`) are sorted, deduplicated `EntityId`
//! slices. The ranking model's hot loop is `‖E(π) ∩ E(c*)‖`; this module
//! provides merge intersections that switch to galloping (exponential
//! probe + binary search) when one side is much smaller, which is the
//! common case (a specific feature against a broad category), plus the
//! k-way union/intersection primitives the [`crate::context::QueryContext`]
//! execution layer builds candidate pools and required-feature filters
//! from.

use pivote_kg::EntityId;

/// When `|small| * GALLOP_FACTOR < |large|`, gallop instead of merging.
const GALLOP_FACTOR: usize = 16;

/// Size of the intersection of two sorted, deduplicated slices.
pub fn intersect_len(a: &[EntityId], b: &[EntityId]) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return 0;
    }
    if small.len() * GALLOP_FACTOR < large.len() {
        gallop_intersect::<false>(small, large, &mut Vec::new())
    } else {
        merge_intersect::<false>(small, large, &mut Vec::new())
    }
}

/// Materialized intersection of two sorted, deduplicated slices.
///
/// Uses the same gallop/merge size heuristic as [`intersect_len`]: linear
/// merge for similar sizes, galloping probes only when one side is much
/// smaller. (An earlier version always binary-probed, degrading to
/// O(n log n) on similar-sized inputs.)
pub fn intersect(a: &[EntityId], b: &[EntityId]) -> Vec<EntityId> {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(small.len());
    if small.is_empty() {
        return out;
    }
    if small.len() * GALLOP_FACTOR < large.len() {
        gallop_intersect::<true>(small, large, &mut out);
    } else {
        merge_intersect::<true>(small, large, &mut out);
    }
    out
}

/// Shared merge loop; materializes matches when `COLLECT`, counts always.
fn merge_intersect<const COLLECT: bool>(
    a: &[EntityId],
    b: &[EntityId],
    out: &mut Vec<EntityId>,
) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut n = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                if COLLECT {
                    out.push(a[i]);
                }
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Shared gallop loop (exponential probe + binary search in the larger
/// side); materializes matches when `COLLECT`, counts always.
fn gallop_intersect<const COLLECT: bool>(
    small: &[EntityId],
    large: &[EntityId],
    out: &mut Vec<EntityId>,
) -> usize {
    let mut n = 0;
    let mut rest = large;
    for &x in small {
        // exponential probe
        let mut hi = 1;
        while hi < rest.len() && rest[hi] < x {
            hi *= 2;
        }
        let window = &rest[..hi.min(rest.len())];
        let lo = window.partition_point(|&y| y < x);
        rest = &rest[lo..];
        if rest.first() == Some(&x) {
            if COLLECT {
                out.push(x);
            }
            n += 1;
            rest = &rest[1..];
        }
        if rest.is_empty() {
            break;
        }
    }
    n
}

/// Intersection of `k` sorted, deduplicated slices.
///
/// Sorts the inputs smallest-first so every step intersects the running
/// result (never larger than the smallest input) against the next slice,
/// letting the gallop path kick in as the running result shrinks. An
/// empty input list yields an empty result (there is no universe set to
/// return).
pub fn intersect_k(sets: &[&[EntityId]]) -> Vec<EntityId> {
    match sets {
        [] => Vec::new(),
        [only] => only.to_vec(),
        _ => {
            let mut order: Vec<&[EntityId]> = sets.to_vec();
            order.sort_by_key(|s| s.len());
            let mut acc = intersect(order[0], order[1]);
            for s in &order[2..] {
                if acc.is_empty() {
                    break;
                }
                acc = intersect(&acc, s);
            }
            acc
        }
    }
}

/// Union of two sorted, deduplicated slices.
pub fn union(a: &[EntityId], b: &[EntityId]) -> Vec<EntityId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut i = 0;
    let mut j = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Union of `k` sorted, deduplicated slices.
///
/// Small fan-ins use pairwise merging in a size-balanced (tournament)
/// order; large fan-ins fall back to concat + sort + dedup, which beats a
/// deep merge tree once allocation churn dominates.
pub fn union_k(sets: &[&[EntityId]]) -> Vec<EntityId> {
    match sets.len() {
        0 => Vec::new(),
        1 => sets[0].to_vec(),
        2 => union(sets[0], sets[1]),
        n if n <= 8 => {
            // tournament merge: repeatedly merge the two smallest
            let mut heads: Vec<Vec<EntityId>> = sets.iter().map(|s| s.to_vec()).collect();
            while heads.len() > 1 {
                heads.sort_by_key(|v| std::cmp::Reverse(v.len()));
                let a = heads.pop().expect("len > 1");
                let b = heads.pop().expect("len > 1");
                heads.push(union(&a, &b));
            }
            heads.pop().expect("one merged set")
        }
        _ => {
            let total: usize = sets.iter().map(|s| s.len()).sum();
            let mut out = Vec::with_capacity(total);
            for s in sets {
                out.extend_from_slice(s);
            }
            out.sort_unstable();
            out.dedup();
            out
        }
    }
}

/// Whether a sorted slice contains `x`.
#[inline]
pub fn contains(a: &[EntityId], x: EntityId) -> bool {
    a.binary_search(&x).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().map(|&x| EntityId::new(x)).collect()
    }

    #[test]
    fn small_cases() {
        assert_eq!(intersect_len(&ids(&[]), &ids(&[1, 2])), 0);
        assert_eq!(intersect_len(&ids(&[1]), &ids(&[1])), 1);
        assert_eq!(intersect_len(&ids(&[1, 3, 5]), &ids(&[2, 3, 4, 5])), 2);
        assert_eq!(
            intersect(&ids(&[1, 3, 5]), &ids(&[2, 3, 4, 5])),
            ids(&[3, 5])
        );
    }

    #[test]
    fn gallop_path_is_exercised() {
        let small = ids(&[0, 500, 999]);
        let large: Vec<EntityId> = (0..1000).map(EntityId::new).collect();
        assert_eq!(intersect_len(&small, &large), 3);
        assert_eq!(intersect(&small, &large), small);
        let miss = ids(&[1000, 2000]);
        assert_eq!(intersect_len(&miss, &large), 0);
        assert!(intersect(&miss, &large).is_empty());
    }

    #[test]
    fn union_merges() {
        assert_eq!(union(&ids(&[1, 3]), &ids(&[2, 3, 4])), ids(&[1, 2, 3, 4]));
        assert_eq!(union(&ids(&[]), &ids(&[1])), ids(&[1]));
    }

    #[test]
    fn k_way_edge_cases() {
        assert!(intersect_k(&[]).is_empty());
        assert!(union_k(&[]).is_empty());
        let a = ids(&[1, 2, 3]);
        assert_eq!(intersect_k(&[&a]), a);
        assert_eq!(union_k(&[&a]), a);
        let b = ids(&[2, 3, 4]);
        let c = ids(&[3, 4, 5]);
        assert_eq!(intersect_k(&[&a, &b, &c]), ids(&[3]));
        assert_eq!(union_k(&[&a, &b, &c]), ids(&[1, 2, 3, 4, 5]));
        // an empty member annihilates the intersection
        assert!(intersect_k(&[&a, &[], &b]).is_empty());
    }

    #[test]
    fn contains_works() {
        let a = ids(&[1, 4, 9]);
        assert!(contains(&a, EntityId::new(4)));
        assert!(!contains(&a, EntityId::new(5)));
    }

    fn sorted_ids() -> impl Strategy<Value = Vec<EntityId>> {
        proptest::collection::btree_set(0u32..500, 0..100)
            .prop_map(|s| s.into_iter().map(EntityId::new).collect())
    }

    /// Adversarial size ratios around the gallop threshold: tiny sets
    /// against wide dense ranges, so both the merge and gallop paths run.
    fn skewed_pair() -> impl Strategy<Value = (Vec<EntityId>, Vec<EntityId>)> {
        (
            proptest::collection::btree_set(0u32..4000, 0..8),
            (0u32..64, 500usize..3000),
        )
            .prop_map(|(small, (start, len))| {
                let small: Vec<EntityId> = small.into_iter().map(EntityId::new).collect();
                let large: Vec<EntityId> = (start..start + len as u32).map(EntityId::new).collect();
                (small, large)
            })
    }

    fn naive_intersect(a: &[EntityId], b: &[EntityId]) -> Vec<EntityId> {
        let bs: BTreeSet<EntityId> = b.iter().copied().collect();
        a.iter().copied().filter(|x| bs.contains(x)).collect()
    }

    fn naive_union(sets: &[&[EntityId]]) -> Vec<EntityId> {
        let mut all: BTreeSet<EntityId> = BTreeSet::new();
        for s in sets {
            all.extend(s.iter().copied());
        }
        all.into_iter().collect()
    }

    proptest! {
        /// Both intersection paths agree with the naive definition.
        #[test]
        fn prop_intersect_matches_naive(a in sorted_ids(), b in sorted_ids()) {
            let naive = naive_intersect(&a, &b);
            prop_assert_eq!(intersect_len(&a, &b), naive.len());
            prop_assert_eq!(intersect(&a, &b), naive);
        }

        /// The gallop/merge heuristic agrees with the naive definition on
        /// adversarial size ratios, for both directions of skew.
        #[test]
        fn prop_intersect_skewed_matches_naive((small, large) in skewed_pair()) {
            let naive = naive_intersect(&small, &large);
            prop_assert_eq!(intersect(&small, &large), naive.clone());
            prop_assert_eq!(intersect(&large, &small), naive.clone());
            prop_assert_eq!(intersect_len(&small, &large), naive.len());
            prop_assert_eq!(intersect_len(&large, &small), naive.len());
        }

        /// Union matches the naive definition and stays sorted/deduped.
        #[test]
        fn prop_union_matches_naive(a in sorted_ids(), b in sorted_ids()) {
            let mut naive: Vec<EntityId> = a.iter().chain(b.iter()).copied().collect();
            naive.sort_unstable();
            naive.dedup();
            prop_assert_eq!(union(&a, &b), naive);
        }

        /// Intersection is symmetric and bounded by the smaller side.
        #[test]
        fn prop_intersect_symmetric(a in sorted_ids(), b in sorted_ids()) {
            prop_assert_eq!(intersect_len(&a, &b), intersect_len(&b, &a));
            prop_assert!(intersect_len(&a, &b) <= a.len().min(b.len()));
        }

        /// K-way ops agree with BTreeSet references for any fan-in,
        /// including adversarially skewed member sizes.
        #[test]
        fn prop_k_way_matches_naive(
            sets in proptest::collection::vec(sorted_ids(), 0..12),
            (skew_small, skew_large) in skewed_pair(),
        ) {
            let mut views: Vec<&[EntityId]> = sets.iter().map(|v| v.as_slice()).collect();
            views.push(&skew_small);
            views.push(&skew_large);

            prop_assert_eq!(union_k(&views), naive_union(&views));

            let mut naive_inter: BTreeSet<EntityId> =
                views[0].iter().copied().collect();
            for s in &views[1..] {
                let keep: BTreeSet<EntityId> = s.iter().copied().collect();
                naive_inter.retain(|x| keep.contains(x));
            }
            prop_assert_eq!(
                intersect_k(&views),
                naive_inter.into_iter().collect::<Vec<_>>()
            );
        }
    }
}

//! Sorted-set operations over extent slices.
//!
//! Extents (`E(π)`, `E(c)`, `E(t)`) are sorted, deduplicated `EntityId`
//! slices. The ranking model's hot loop is `‖E(π) ∩ E(c*)‖`; this module
//! provides a merge intersection that switches to galloping (exponential
//! probe + binary search) when one side is much smaller, which is the
//! common case (a specific feature against a broad category).

use pivote_kg::EntityId;

/// When `|small| * GALLOP_FACTOR < |large|`, gallop instead of merging.
const GALLOP_FACTOR: usize = 16;

/// Size of the intersection of two sorted, deduplicated slices.
pub fn intersect_len(a: &[EntityId], b: &[EntityId]) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return 0;
    }
    if small.len() * GALLOP_FACTOR < large.len() {
        gallop_intersect_len(small, large)
    } else {
        merge_intersect_len(small, large)
    }
}

/// Materialized intersection of two sorted, deduplicated slices.
pub fn intersect(a: &[EntityId], b: &[EntityId]) -> Vec<EntityId> {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(small.len().min(large.len()));
    let mut rest = large;
    for &x in small {
        let pos = rest.partition_point(|&y| y < x);
        rest = &rest[pos..];
        if rest.first() == Some(&x) {
            out.push(x);
            rest = &rest[1..];
        }
    }
    out
}

fn merge_intersect_len(a: &[EntityId], b: &[EntityId]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut n = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

fn gallop_intersect_len(small: &[EntityId], large: &[EntityId]) -> usize {
    let mut n = 0;
    let mut rest = large;
    for &x in small {
        // exponential probe
        let mut hi = 1;
        while hi < rest.len() && rest[hi] < x {
            hi *= 2;
        }
        let window = &rest[..hi.min(rest.len())];
        let lo = window.partition_point(|&y| y < x);
        rest = &rest[lo..];
        if rest.first() == Some(&x) {
            n += 1;
            rest = &rest[1..];
        }
        if rest.is_empty() {
            break;
        }
    }
    n
}

/// Union of two sorted, deduplicated slices.
pub fn union(a: &[EntityId], b: &[EntityId]) -> Vec<EntityId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut i = 0;
    let mut j = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Whether a sorted slice contains `x`.
#[inline]
pub fn contains(a: &[EntityId], x: EntityId) -> bool {
    a.binary_search(&x).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().map(|&x| EntityId::new(x)).collect()
    }

    #[test]
    fn small_cases() {
        assert_eq!(intersect_len(&ids(&[]), &ids(&[1, 2])), 0);
        assert_eq!(intersect_len(&ids(&[1]), &ids(&[1])), 1);
        assert_eq!(intersect_len(&ids(&[1, 3, 5]), &ids(&[2, 3, 4, 5])), 2);
        assert_eq!(intersect(&ids(&[1, 3, 5]), &ids(&[2, 3, 4, 5])), ids(&[3, 5]));
    }

    #[test]
    fn gallop_path_is_exercised() {
        let small = ids(&[0, 500, 999]);
        let large: Vec<EntityId> = (0..1000).map(EntityId::new).collect();
        assert_eq!(intersect_len(&small, &large), 3);
        let miss = ids(&[1000, 2000]);
        assert_eq!(intersect_len(&miss, &large), 0);
    }

    #[test]
    fn union_merges() {
        assert_eq!(union(&ids(&[1, 3]), &ids(&[2, 3, 4])), ids(&[1, 2, 3, 4]));
        assert_eq!(union(&ids(&[]), &ids(&[1])), ids(&[1]));
    }

    #[test]
    fn contains_works() {
        let a = ids(&[1, 4, 9]);
        assert!(contains(&a, EntityId::new(4)));
        assert!(!contains(&a, EntityId::new(5)));
    }

    fn sorted_ids() -> impl Strategy<Value = Vec<EntityId>> {
        proptest::collection::btree_set(0u32..500, 0..100)
            .prop_map(|s| s.into_iter().map(EntityId::new).collect())
    }

    proptest! {
        /// Both intersection paths agree with the naive definition.
        #[test]
        fn prop_intersect_matches_naive(a in sorted_ids(), b in sorted_ids()) {
            let naive: Vec<EntityId> =
                a.iter().copied().filter(|x| b.contains(x)).collect();
            prop_assert_eq!(intersect_len(&a, &b), naive.len());
            prop_assert_eq!(intersect(&a, &b), naive);
        }

        /// Union matches the naive definition and stays sorted/deduped.
        #[test]
        fn prop_union_matches_naive(a in sorted_ids(), b in sorted_ids()) {
            let mut naive: Vec<EntityId> = a.iter().chain(b.iter()).copied().collect();
            naive.sort_unstable();
            naive.dedup();
            prop_assert_eq!(union(&a, &b), naive);
        }

        /// Intersection is symmetric and bounded by the smaller side.
        #[test]
        fn prop_intersect_symmetric(a in sorted_ids(), b in sorted_ids()) {
            prop_assert_eq!(intersect_len(&a, &b), intersect_len(&b, &a));
            prop_assert!(intersect_len(&a, &b) <= a.len().min(b.len()));
        }
    }
}

//! Textual explanations of semantic correlations (paper §3.2).
//!
//! "If the system explains the semantic correlation between Forrest_Gump
//! and Apollo_13_(film) is that both of them are performed by Tom_Hanks
//! and Gary_Sinise, users may have a better understanding about the
//! search context."
//!
//! Two kinds of explanation:
//! - between two entities: their shared semantic features, most
//!   discriminative first ([`explain_pair`]);
//! - between an entity and a feature (one heat-map cell): an exact match,
//!   or the category context that carries the smoothed probability
//!   ([`explain_cell`]).

use crate::feature::SemanticFeature;
use crate::ranking::Ranker;
use pivote_kg::{EntityId, KnowledgeGraph};
use serde::{Deserialize, Serialize};

/// Shared-feature explanation between two entities.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PairExplanation {
    /// First entity.
    pub a: EntityId,
    /// Second entity.
    pub b: EntityId,
    /// Shared features with their discriminability, strongest first.
    pub shared: Vec<(SemanticFeature, f64)>,
}

impl PairExplanation {
    /// Render as a sentence using graph labels.
    pub fn render(&self, kg: &KnowledgeGraph) -> String {
        if self.shared.is_empty() {
            return format!(
                "{} and {} share no semantic feature.",
                kg.display_name(self.a),
                kg.display_name(self.b)
            );
        }
        let feats: Vec<String> = self
            .shared
            .iter()
            .map(|(sf, _)| {
                format!(
                    "{} {}",
                    kg.predicate_name(sf.predicate),
                    kg.display_name(sf.anchor)
                )
            })
            .collect();
        format!(
            "Both {} and {}: {}.",
            kg.display_name(self.a),
            kg.display_name(self.b),
            feats.join("; ")
        )
    }
}

/// Explain the correlation between two entities by their shared semantic
/// features, ranked by discriminability (`1/‖E(π)‖`), truncated to
/// `limit`.
pub fn explain_pair(
    ranker: &Ranker<'_>,
    a: EntityId,
    b: EntityId,
    limit: usize,
) -> PairExplanation {
    let handle = ranker.handle();
    let fa = handle.features_of(a);
    let fb = handle.features_of(b);
    // both lists are sorted; merge-intersect
    let mut shared: Vec<(SemanticFeature, f64)> = Vec::new();
    let mut i = 0;
    let mut j = 0;
    while i < fa.len() && j < fb.len() {
        match fa[i].cmp(&fb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                shared.push((fa[i], ranker.discriminability(fa[i])));
                i += 1;
                j += 1;
            }
        }
    }
    shared.sort_by(|x, y| {
        y.1.partial_cmp(&x.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| x.0.cmp(&y.0))
    });
    shared.truncate(limit);
    PairExplanation { a, b, shared }
}

/// Why one heat-map cell (entity × feature) is non-zero.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CellExplanation {
    /// The entity matches the feature directly (`e ⊨ π`).
    DirectMatch,
    /// The entity is correlated through a category/type context: `p(π|c*)`
    /// with the context's display name and the probability.
    ViaContext {
        /// Display name of the best context `c*`.
        context: String,
        /// `p(π|c*)`.
        probability: f64,
    },
    /// No correlation.
    None,
}

/// Explain one cell of the heat map.
///
/// The per-context densities come from the shared
/// [`crate::context::QueryContext`] probability cache, so explaining a
/// cell of an already-computed heat map costs only the argmax scan.
pub fn explain_cell(ranker: &Ranker<'_>, sf: SemanticFeature, e: EntityId) -> CellExplanation {
    let handle = ranker.handle();
    if handle.feature_matches(sf, e) {
        return CellExplanation::DirectMatch;
    }
    if !ranker.config().error_tolerant {
        return CellExplanation::None;
    }
    // the ranker caches only the max density; rescan for the argmax name
    let mut best: Option<(String, f64)> = None;
    for c in handle.categories_of(e) {
        let p = handle.p_for_category(sf, c);
        if best.as_ref().map(|(_, bp)| p > *bp).unwrap_or(p > 0.0) {
            best = Some((handle.category_name(c).to_owned(), p));
        }
    }
    if ranker.config().use_types_as_context {
        for t in handle.types_of(e) {
            let p = handle.p_for_type(sf, t);
            if best.as_ref().map(|(_, bp)| p > *bp).unwrap_or(p > 0.0) {
                best = Some((handle.type_name(t).to_owned(), p));
            }
        }
    }
    match best {
        Some((context, probability)) => CellExplanation::ViaContext {
            context,
            probability,
        },
        None => CellExplanation::None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RankingConfig;
    use pivote_kg::KgBuilder;

    /// The paper's example: Forrest Gump and Apollo 13 share Hanks and
    /// Sinise.
    fn kg() -> KnowledgeGraph {
        let mut b = KgBuilder::new();
        let gump = b.entity("Forrest_Gump");
        let apollo = b.entity("Apollo_13_(film)");
        let other = b.entity("Cast_Away");
        let hanks = b.entity("Tom_Hanks");
        let sinise = b.entity("Gary_Sinise");
        let starring = b.predicate("starring");
        b.label(gump, "Forrest Gump");
        b.label(apollo, "Apollo 13");
        b.triple(gump, starring, hanks);
        b.triple(gump, starring, sinise);
        b.triple(apollo, starring, hanks);
        b.triple(apollo, starring, sinise);
        b.triple(other, starring, hanks);
        for f in [gump, apollo, other] {
            b.categorized(f, "American films");
        }
        b.finish()
    }

    #[test]
    fn paper_example_pair_explanation() {
        let kg = kg();
        let ranker = Ranker::new(&kg, RankingConfig::default());
        let gump = kg.entity("Forrest_Gump").unwrap();
        let apollo = kg.entity("Apollo_13_(film)").unwrap();
        let exp = explain_pair(&ranker, gump, apollo, 10);
        assert_eq!(exp.shared.len(), 2);
        // Sinise (extent 2) is more discriminative than Hanks (extent 3).
        let kg_ref = &kg;
        let names: Vec<&str> = exp
            .shared
            .iter()
            .map(|(sf, _)| kg_ref.entity_name(sf.anchor))
            .collect();
        assert_eq!(names, vec!["Gary_Sinise", "Tom_Hanks"]);
        let text = exp.render(&kg);
        assert!(text.contains("Forrest Gump"), "{text}");
        assert!(text.contains("starring Gary Sinise"), "{text}");
    }

    #[test]
    fn disjoint_entities_share_nothing() {
        let kg = kg();
        let ranker = Ranker::new(&kg, RankingConfig::default());
        let gump = kg.entity("Forrest_Gump").unwrap();
        let hanks = kg.entity("Tom_Hanks").unwrap();
        let exp = explain_pair(&ranker, gump, hanks, 10);
        assert!(exp.shared.is_empty());
        assert!(exp.render(&kg).contains("no semantic feature"));
    }

    #[test]
    fn limit_truncates() {
        let kg = kg();
        let ranker = Ranker::new(&kg, RankingConfig::default());
        let gump = kg.entity("Forrest_Gump").unwrap();
        let apollo = kg.entity("Apollo_13_(film)").unwrap();
        assert_eq!(explain_pair(&ranker, gump, apollo, 1).shared.len(), 1);
    }

    #[test]
    fn cell_direct_match() {
        let kg = kg();
        let ranker = Ranker::new(&kg, RankingConfig::default());
        let gump = kg.entity("Forrest_Gump").unwrap();
        let sinise = kg.entity("Gary_Sinise").unwrap();
        let sf = SemanticFeature::to_anchor(sinise, kg.predicate("starring").unwrap());
        assert_eq!(
            explain_cell(&ranker, sf, gump),
            CellExplanation::DirectMatch
        );
    }

    #[test]
    fn cell_via_category_context() {
        let kg = kg();
        let ranker = Ranker::new(&kg, RankingConfig::default());
        let cast_away = kg.entity("Cast_Away").unwrap();
        let sinise = kg.entity("Gary_Sinise").unwrap();
        let sf = SemanticFeature::to_anchor(sinise, kg.predicate("starring").unwrap());
        match explain_cell(&ranker, sf, cast_away) {
            CellExplanation::ViaContext {
                context,
                probability,
            } => {
                assert_eq!(context, "American films");
                assert!((probability - 2.0 / 3.0).abs() < 1e-12);
            }
            other => panic!("expected ViaContext, got {other:?}"),
        }
    }

    #[test]
    fn cell_none_without_tolerance() {
        let kg = kg();
        let ranker = Ranker::new(&kg, RankingConfig::default().without_error_tolerance());
        let cast_away = kg.entity("Cast_Away").unwrap();
        let sinise = kg.entity("Gary_Sinise").unwrap();
        let sf = SemanticFeature::to_anchor(sinise, kg.predicate("starring").unwrap());
        assert_eq!(explain_cell(&ranker, sf, cast_away), CellExplanation::None);
    }
}

//! The shared query-execution layer.
//!
//! Every query operation in this workspace — feature ranking
//! (`r(π,Q) = d(π)·c(π,Q)`), entity ranking, ESE expansion, heat maps,
//! explanations, session replay, and the comparison baselines — bottoms
//! out in the same primitives: extent lookups, `p(π|c)` density
//! estimates, candidate scoring, and top-k selection. [`QueryContext`]
//! owns those primitives once per knowledge graph so all engines share
//! one memoized, parallel substrate instead of re-deriving state behind
//! private caches:
//!
//! - **Feature interning**: semantic features are mapped to dense
//!   [`FeatureId`]s with their extent slices resolved once, so hot loops
//!   index instead of re-walking the CSR store, and cache keys are dense
//!   integer pairs instead of hashed structs.
//! - **Probability cache**: `p(π|c) = ‖E(π) ∩ E(c)‖ / ‖E(c)‖` is a pure
//!   graph quantity (independent of any [`RankingConfig`]), cached in a
//!   sharded map keyed by `(FeatureId, ContextId)` — readers on the hot
//!   path take a shard read lock only, so parallel scoring never
//!   serializes behind one global mutex.
//! - **Parallel scoring**: [`QueryContext::par_map`] fans pure per-item
//!   work out over scoped worker threads in deterministic chunk order, so
//!   parallel results are bit-identical to sequential ones.
//! - **Bounded top-k**: [`top_k_ranked`] selects the best `k` by
//!   `(score desc, id asc)` with a size-`k` binary heap instead of
//!   sorting the full candidate set.
//!
//! Ranking *logic* stays in [`crate::ranking::Ranker`] and friends; they
//! hold an `Arc<QueryContext>` and pass their [`RankingConfig`] into the
//! context methods, which is what lets one context serve the full model
//! and its ablations (and every baseline) concurrently over one graph.

use crate::config::RankingConfig;
use crate::extent::{intersect_len, union_k};
use crate::feature::{features_of, SemanticFeature};
use crate::ranking::{RankedEntity, RankedFeature};
use pivote_kg::{AppliedDelta, CategoryId, EntityId, KnowledgeGraph, TypeId};
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Dense handle of an interned [`SemanticFeature`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FeatureId(u32);

impl FeatureId {
    /// The raw dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A smoothing context: a category or a type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Ctx {
    /// Wikipedia-style category.
    Cat(CategoryId),
    /// `rdf:type` class.
    Type(TypeId),
}

/// Dense cache key of a `(feature, context)` pair: `fid << 33 | kind <<
/// 32 | raw`, where `kind` distinguishes categories (0) from types (1).
/// The key is **append-stable**: it does not depend on the category or
/// type *counts*, so keys survive a live graph growing new dictionary
/// terms (only the touched entries are invalidated, never rehomed).
#[inline]
pub(crate) fn prob_key(fid: u32, ctx: Ctx) -> u64 {
    let (kind, raw) = match ctx {
        Ctx::Cat(c) => (0u64, c.raw() as u64),
        Ctx::Type(t) => (1u64, t.raw() as u64),
    };
    ((fid as u64) << 33) | (kind << 32) | raw
}

/// Number of probability-cache shards (power of two).
pub(crate) const SHARDS: usize = 64;

/// Below this many items, parallel fan-out costs more than it saves.
const MIN_PARALLEL_ITEMS: usize = 192;

/// Multiply-xor hasher for the dense `u64` cache keys — the keys are
/// already well-distributed dense pairs, so a full SipHash is wasted
/// work on the hot path.
#[derive(Default)]
pub struct DenseKeyHasher(u64);

impl Hasher for DenseKeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        let mut x = self.0 ^ v;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        self.0 = x ^ (x >> 31);
    }
}

pub(crate) type DenseMap = HashMap<u64, f64, BuildHasherDefault<DenseKeyHasher>>;

/// Shared global-extent registry map: dense feature id → owned, sorted
/// global extent.
pub(crate) type ExtentMap = HashMap<u64, Arc<[EntityId]>, BuildHasherDefault<DenseKeyHasher>>;

/// The bijective feature registry inside a [`SharedCache`].
struct FeatureRegistry {
    ids: HashMap<SemanticFeature, u32>,
    features: Vec<SemanticFeature>,
}

/// The graph-independent, append-surviving half of the execution layer's
/// memoized state: the feature-id registry and the `p(π|c)` probability
/// cache, stamped with a generation counter.
///
/// A [`QueryContext`] (or
/// [`ShardedContext`](crate::sharded::ShardedContext)) built with
/// [`QueryContext::with_cache`] shares this state with every other
/// context over the same logical graph — across queries, sessions *and
/// appends*: when the graph grows, [`SharedCache::invalidate`] drops
/// exactly the densities whose feature or context extents the
/// [`AppliedDelta`] touched, and everything else stays warm. Feature ids
/// are stable forever (a feature's identity does not change when its
/// extent grows), so dense-id cache keys survive too.
pub struct SharedCache {
    registry: RwLock<FeatureRegistry>,
    /// `p(π|c)` cache, sharded by key hash.
    prob_shards: Vec<RwLock<DenseMap>>,
    /// Resolved **global** extents (owned, in global-id order), sharded
    /// by feature id — the promotion of what used to be per-context
    /// memos: one context resolves a feature's materialized extent, every
    /// sibling context (and every prepared snapshot) over the same
    /// logical graph reuses it. Invalidated receipt-exactly like the
    /// densities; a compaction keeps it (global ids are partition-
    /// independent, and the compacted resolution is value-equal).
    extent_shards: Vec<RwLock<ExtentMap>>,
    /// Bumped by every [`SharedCache::invalidate`] call.
    generation: AtomicU64,
}

impl Default for SharedCache {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SharedCache {
    /// Aggregate counters only — the maps are large and lock-guarded.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedCache")
            .field("generation", &self.generation())
            .field("features", &self.feature_count())
            .field("cached_probabilities", &self.cached_probability_count())
            .field("cached_extents", &self.cached_extent_count())
            .finish()
    }
}

impl SharedCache {
    /// A fresh, empty cache at generation 0.
    pub fn new() -> Self {
        Self {
            registry: RwLock::new(FeatureRegistry {
                ids: HashMap::new(),
                features: Vec::new(),
            }),
            prob_shards: (0..SHARDS)
                .map(|_| RwLock::new(DenseMap::default()))
                .collect(),
            extent_shards: (0..SHARDS)
                .map(|_| RwLock::new(ExtentMap::default()))
                .collect(),
            generation: AtomicU64::new(0),
        }
    }

    /// The invalidation generation: how many appends this cache has
    /// absorbed.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Number of interned features.
    pub fn feature_count(&self) -> usize {
        self.registry
            .read()
            .expect("registry poisoned")
            .features
            .len()
    }

    /// Number of cached `p(π|c)` probabilities.
    pub fn cached_probability_count(&self) -> usize {
        self.prob_shards
            .iter()
            .map(|s| s.read().expect("prob shard poisoned").len())
            .sum()
    }

    /// Number of cached global extent resolutions.
    pub fn cached_extent_count(&self) -> usize {
        self.extent_shards
            .iter()
            .map(|s| s.read().expect("extent shard poisoned").len())
            .sum()
    }

    /// Dense id of `sf`, interning it on first sight.
    pub(crate) fn feature_id(&self, sf: SemanticFeature) -> u32 {
        if let Some(&id) = self
            .registry
            .read()
            .expect("registry poisoned")
            .ids
            .get(&sf)
        {
            return id;
        }
        let mut reg = self.registry.write().expect("registry poisoned");
        if let Some(&id) = reg.ids.get(&sf) {
            return id;
        }
        let id = reg.features.len() as u32;
        reg.features.push(sf);
        reg.ids.insert(sf, id);
        id
    }

    /// The feature behind a dense id.
    pub(crate) fn feature(&self, fid: u32) -> SemanticFeature {
        self.registry.read().expect("registry poisoned").features[fid as usize]
    }

    /// The cache shard holding `key` (middle hash bits: hashbrown uses
    /// the low bits for the bucket index and the top 7 as the SIMD
    /// control tag, so taking either end would degrade the in-shard
    /// tables).
    #[inline]
    fn shard_for(&self, key: u64) -> &RwLock<DenseMap> {
        let mut h = DenseKeyHasher::default();
        h.write_u64(key);
        &self.prob_shards[(h.finish() >> 32) as usize & (SHARDS - 1)]
    }

    /// Cached probability for `key`, if present.
    #[inline]
    pub(crate) fn prob_get(&self, key: u64) -> Option<f64> {
        self.shard_for(key)
            .read()
            .expect("prob shard poisoned")
            .get(&key)
            .copied()
    }

    /// Insert a computed probability.
    #[inline]
    pub(crate) fn prob_insert(&self, key: u64, p: f64) {
        self.shard_for(key)
            .write()
            .expect("prob shard poisoned")
            .insert(key, p);
    }

    /// [`SharedCache::prob_insert`] gated on the cache still being at
    /// `born_gen` — the insert path for contexts that run **off** the
    /// store's write-lock exclusion (prepared snapshots). Checked under
    /// the shard write lock: [`SharedCache::invalidate`] bumps the
    /// generation *before* its retain sweep (which takes the same shard
    /// locks), so either this insert lands before the sweep and is
    /// swept if touched, or the generation already moved and the stale
    /// value is refused. Lock-scoped contexts pass trivially (the write
    /// lock excludes invalidation for their whole lifetime).
    #[inline]
    pub(crate) fn prob_insert_if_current(&self, key: u64, p: f64, born_gen: u64) {
        let mut map = self.shard_for(key).write().expect("prob shard poisoned");
        if self.generation.load(Ordering::SeqCst) == born_gen {
            map.insert(key, p);
        }
    }

    /// The extent-registry shard holding `fid` (same middle-bit pick as
    /// [`SharedCache::shard_for`]).
    #[inline]
    fn extent_shard_for(&self, fid: u32) -> &RwLock<ExtentMap> {
        let mut h = DenseKeyHasher::default();
        h.write_u64(fid as u64);
        &self.extent_shards[(h.finish() >> 32) as usize & (SHARDS - 1)]
    }

    /// Cached global extent resolution for a feature, if present.
    #[inline]
    pub(crate) fn extent_get(&self, fid: u32) -> Option<Arc<[EntityId]>> {
        self.extent_shard_for(fid)
            .read()
            .expect("extent shard poisoned")
            .get(&(fid as u64))
            .cloned()
    }

    /// Insert a resolved global extent, gated on the cache still being
    /// at `born_gen` (same protocol as
    /// [`SharedCache::prob_insert_if_current`]).
    #[inline]
    pub(crate) fn extent_insert_if_current(
        &self,
        fid: u32,
        extent: Arc<[EntityId]>,
        born_gen: u64,
    ) {
        let mut map = self
            .extent_shard_for(fid)
            .write()
            .expect("extent shard poisoned");
        if self.generation.load(Ordering::SeqCst) == born_gen {
            map.insert(fid as u64, extent);
        }
    }

    /// Probe the cache for `p(π|c)` of a category context **without**
    /// computing or interning anything — the observability hook the
    /// invalidation tests use.
    pub fn probe_category(&self, sf: SemanticFeature, c: CategoryId) -> Option<f64> {
        let reg = self.registry.read().expect("registry poisoned");
        let fid = *reg.ids.get(&sf)?;
        drop(reg);
        self.prob_get(prob_key(fid, Ctx::Cat(c)))
    }

    /// [`SharedCache::probe_category`] for a type context.
    pub fn probe_type(&self, sf: SemanticFeature, t: TypeId) -> Option<f64> {
        let reg = self.registry.read().expect("registry poisoned");
        let fid = *reg.ids.get(&sf)?;
        drop(reg);
        self.prob_get(prob_key(fid, Ctx::Type(t)))
    }

    /// Drop exactly the cached densities **and global extent
    /// resolutions** an append touched — entries whose feature extent
    /// (`touched_out`/`touched_in`) or context extent
    /// (`touched_types`/`touched_categories`) changed — bump the
    /// generation, and return how many entries were dropped. Everything
    /// else survives.
    pub fn invalidate(&self, delta: &AppliedDelta) -> usize {
        let touched_fids: HashSet<u64> = {
            let reg = self.registry.read().expect("registry poisoned");
            delta
                .touched_out
                .iter()
                .map(|&(e, p)| SemanticFeature::from_anchor(e, p))
                .chain(
                    delta
                        .touched_in
                        .iter()
                        .map(|&(e, p)| SemanticFeature::to_anchor(e, p)),
                )
                .filter_map(|sf| reg.ids.get(&sf).map(|&id| id as u64))
                .collect()
        };
        let touched_ctxs: HashSet<u64> = delta
            .touched_categories
            .iter()
            .map(|c| c.raw() as u64)
            .chain(
                delta
                    .touched_types
                    .iter()
                    .map(|t| (1u64 << 32) | t.raw() as u64),
            )
            .collect();
        // bump FIRST: contexts pinned to an older generation (prepared
        // snapshots running off the store lock) gate their cache reads
        // and inserts on `generation() == born generation`, so bumping
        // before the retains closes both race windows — a stale context
        // can neither insert a pre-delta value after the retain swept,
        // nor observe a post-delta value as if it were its own
        // generation's (see `prob_insert_if_current`).
        self.generation.fetch_add(1, Ordering::SeqCst);
        let mut dropped = 0usize;
        if !touched_fids.is_empty() || !touched_ctxs.is_empty() {
            for shard in &self.prob_shards {
                let mut map = shard.write().expect("prob shard poisoned");
                let before = map.len();
                map.retain(|&key, _| {
                    !touched_fids.contains(&(key >> 33))
                        && !touched_ctxs.contains(&(key & ((1u64 << 33) - 1)))
                });
                dropped += before - map.len();
            }
        }
        if !touched_fids.is_empty() {
            // the extent registry is keyed by bare feature id: only a
            // changed *feature* extent stales a resolution (context
            // extents never enter it)
            for shard in &self.extent_shards {
                let mut map = shard.write().expect("extent shard poisoned");
                let before = map.len();
                map.retain(|&key, _| !touched_fids.contains(&key));
                dropped += before - map.len();
            }
        }
        dropped
    }

    /// Record a compaction (re-partition) of the backing sharded graph:
    /// bump the generation — observable through
    /// [`SharedCache::generation`], like an append — and return the new
    /// value. **Nothing is dropped**: every cached `p(π|c)` is an exact
    /// global quantity (integer intersection sums over the whole
    /// partition, identical to the single-graph value bit for bit) and
    /// every feature id is partition-independent, so re-sharding the
    /// same logical graph invalidates neither. The **global extent
    /// registry survives too**: a registered resolution lists global
    /// entity ids in global order, and compaction changes no global id
    /// and drops no live row (retracted rows were already spliced out of
    /// the extents at retract time — compaction only reclaims their
    /// memory), so the re-resolved value is equal element for element. The
    /// only state a compaction obsoletes is each context's *shard-local*
    /// resolved extents — and those are per-context, scoped to a read
    /// guard that cannot outlive the swap.
    pub fn note_compaction(&self) -> u64 {
        self.generation.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Export the cache's warm state: every interned feature in dense-id
    /// order and every cached `p(π|c)` density, sorted by key so the
    /// serialized sidecar is deterministic. The backing store for
    /// [`crate::warm`]'s persisted warm-state files.
    pub(crate) fn export_entries(&self) -> (Vec<SemanticFeature>, Vec<(u64, f64)>) {
        let features = self
            .registry
            .read()
            .expect("registry poisoned")
            .features
            .clone();
        let mut probs: Vec<(u64, f64)> = self
            .prob_shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .expect("prob shard poisoned")
                    .iter()
                    .map(|(&k, &v)| (k, v))
                    .collect::<Vec<_>>()
            })
            .collect();
        probs.sort_unstable_by_key(|&(k, _)| k);
        (features, probs)
    }

    /// Rebuild a cache from exported warm state. Features are re-interned
    /// in their original dense-id order (feature ids are append-stable,
    /// so the keys of `probs` resolve to the same `(π, c)` pairs), and
    /// the generation restarts at 0 — the caller pairs the cache with a
    /// graph whose generation the sidecar's header was checked against.
    pub(crate) fn import_entries(features: Vec<SemanticFeature>, probs: Vec<(u64, f64)>) -> Self {
        let cache = Self::new();
        {
            let mut reg = cache.registry.write().expect("registry poisoned");
            for (i, sf) in features.iter().enumerate() {
                reg.ids.insert(*sf, i as u32);
            }
            reg.features = features;
        }
        for (key, p) in probs {
            cache.prob_insert(key, p);
        }
        cache
    }
}

/// The shared, memoized, parallel execution substrate for one graph.
///
/// Cheap to construct; all interior state is lazily filled and
/// thread-safe, so one context (behind an [`std::sync::Arc`]) serves
/// every engine and every worker thread of a query session.
pub struct QueryContext<'kg> {
    kg: &'kg KnowledgeGraph,
    threads: usize,
    /// Shared (possibly cross-context, append-surviving) memoized state.
    cache: Arc<SharedCache>,
    /// Cache generation at construction. While the cache is still at
    /// this generation its entries are exact for this context's graph
    /// snapshot; once it moves (an append invalidated behind our back —
    /// only possible for contexts running off the store lock) this
    /// context computes locally and neither trusts nor writes the
    /// shared maps.
    born_gen: u64,
    /// Per-context extent resolutions, indexed by dense feature id. The
    /// slices borrow this context's graph snapshot, so they are exact for
    /// its lifetime; a context built after an append re-resolves lazily.
    extents: RwLock<Vec<Option<&'kg [EntityId]>>>,
}

impl<'kg> QueryContext<'kg> {
    /// Context over `kg` with one worker per available core.
    pub fn new(kg: &'kg KnowledgeGraph) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::with_threads(kg, threads)
    }

    /// Context with an explicit worker-thread count (`0` is clamped to 1;
    /// `1` disables parallel fan-out entirely).
    pub fn with_threads(kg: &'kg KnowledgeGraph, threads: usize) -> Self {
        Self::with_cache(kg, threads, Arc::new(SharedCache::new()))
    }

    /// Context on an existing [`SharedCache`] — the live-graph entry
    /// point: every density the cache already holds (from earlier
    /// queries, earlier sessions, or earlier graph generations whose
    /// extents were not touched since) is a hit for this context.
    pub fn with_cache(kg: &'kg KnowledgeGraph, threads: usize, cache: Arc<SharedCache>) -> Self {
        let born_gen = cache.generation();
        Self {
            kg,
            threads: threads.max(1),
            cache,
            born_gen,
            extents: RwLock::new(Vec::new()),
        }
    }

    /// The knowledge graph this context reads.
    #[inline]
    pub fn kg(&self) -> &'kg KnowledgeGraph {
        self.kg
    }

    /// Configured worker-thread count.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The shared memoized state behind this context.
    pub fn cache(&self) -> &Arc<SharedCache> {
        &self.cache
    }

    /// Number of cached `p(π|c)` probabilities (diagnostics).
    pub fn cached_probability_count(&self) -> usize {
        self.cache.cached_probability_count()
    }

    // ---- interning -----------------------------------------------------

    /// Intern a feature, resolving its extent handle on first sight.
    pub fn intern(&self, sf: SemanticFeature) -> FeatureId {
        let fid = self.cache.feature_id(sf);
        {
            let extents = self.extents.read().expect("extent table poisoned");
            if let Some(Some(_)) = extents.get(fid as usize) {
                return FeatureId(fid);
            }
        }
        let resolved = sf.extent(self.kg);
        let mut extents = self.extents.write().expect("extent table poisoned");
        if extents.len() <= fid as usize {
            extents.resize(fid as usize + 1, None);
        }
        extents[fid as usize] = Some(resolved);
        FeatureId(fid)
    }

    /// The extent handle of an interned feature, resolved against this
    /// context's graph snapshot (lazily, if the id was interned by a
    /// sibling context sharing the same cache).
    pub fn extent(&self, id: FeatureId) -> &'kg [EntityId] {
        {
            let extents = self.extents.read().expect("extent table poisoned");
            if let Some(Some(extent)) = extents.get(id.index()) {
                return extent;
            }
        }
        let sf = self.cache.feature(id.0);
        let resolved = sf.extent(self.kg);
        let mut extents = self.extents.write().expect("extent table poisoned");
        if extents.len() <= id.index() {
            extents.resize(id.index() + 1, None);
        }
        extents[id.index()] = Some(resolved);
        resolved
    }

    // ---- probability cache ---------------------------------------------

    /// Cached `p(π|c) = ‖E(π) ∩ E(c)‖ / ‖E(c)‖`.
    pub(crate) fn p_feature_given_ctx(&self, sf: SemanticFeature, ctx: Ctx) -> f64 {
        self.p_by_fid(self.intern(sf), ctx)
    }

    /// [`QueryContext::p_feature_given_ctx`] by dense feature id — the
    /// hot-loop entry that skips re-hashing the feature.
    fn p_by_fid(&self, fid: FeatureId, ctx: Ctx) -> f64 {
        let key = prob_key(fid.0, ctx);
        // seqlock-style validity: the hit is trustworthy only if the
        // cache generation still equals this context's birth generation
        // *after* the read — otherwise an invalidation ran and the value
        // may belong to a different graph snapshot
        if let Some(p) = self.cache.prob_get(key) {
            if self.cache.generation() == self.born_gen {
                return p;
            }
        }
        let ctx_extent = match ctx {
            Ctx::Cat(c) => self.kg.category_extent(c),
            Ctx::Type(t) => self.kg.type_extent(t),
        };
        let p = if ctx_extent.is_empty() {
            0.0
        } else {
            intersect_len(self.extent(fid), ctx_extent) as f64 / ctx_extent.len() as f64
        };
        self.cache.prob_insert_if_current(key, p, self.born_gen);
        p
    }

    /// `p(π|c*) = max_c p(π|c)` by dense feature id, the smoothing loop
    /// of the resolved-feature scoring path.
    fn p_best_ctx_by_fid(&self, config: &RankingConfig, fid: FeatureId, e: EntityId) -> f64 {
        let mut best = 0.0f64;
        for c in self.kg.categories_of(e) {
            best = best.max(self.p_by_fid(fid, Ctx::Cat(c)));
        }
        if config.use_types_as_context {
            for t in self.kg.types_of(e) {
                best = best.max(self.p_by_fid(fid, Ctx::Type(t)));
            }
        }
        best
    }

    /// Cached `p(π|c)` for one category context.
    pub fn p_for_category(&self, sf: SemanticFeature, c: CategoryId) -> f64 {
        self.p_feature_given_ctx(sf, Ctx::Cat(c))
    }

    /// Cached `p(π|t)` for one type context.
    pub fn p_for_type(&self, sf: SemanticFeature, t: TypeId) -> f64 {
        self.p_feature_given_ctx(sf, Ctx::Type(t))
    }

    /// `p(π|c*) = max_c p(π|c)` over the categories (and, when configured,
    /// types) of `e`.
    pub fn p_feature_given_best_context(
        &self,
        config: &RankingConfig,
        sf: SemanticFeature,
        e: EntityId,
    ) -> f64 {
        let mut best = 0.0f64;
        for c in self.kg.categories_of(e) {
            best = best.max(self.p_feature_given_ctx(sf, Ctx::Cat(c)));
        }
        if config.use_types_as_context {
            for t in self.kg.types_of(e) {
                best = best.max(self.p_feature_given_ctx(sf, Ctx::Type(t)));
            }
        }
        best
    }

    /// `p(π|e)`: 1 for an exact match, otherwise the error-tolerant
    /// context estimate (or 0 when error tolerance is disabled).
    pub fn p_feature_given_entity(
        &self,
        config: &RankingConfig,
        sf: SemanticFeature,
        e: EntityId,
    ) -> f64 {
        if sf.matches(self.kg, e) {
            return 1.0;
        }
        if !config.error_tolerant {
            return 0.0;
        }
        self.p_feature_given_best_context(config, sf, e)
    }

    // ---- ranking model -------------------------------------------------
    //
    // LOCKSTEP: ShardedContext (sharded.rs) mirrors these model bodies
    // over its per-shard primitives; edits to the scoring/filter logic
    // here must be applied there too (bit-identity is enforced by
    // tests/sharded_equivalence.rs and tests/golden_sharded.rs).

    /// `d(π)`: inverse extent size (or 1 under the A2 ablation).
    pub fn discriminability(&self, config: &RankingConfig, sf: SemanticFeature) -> f64 {
        if !config.use_discriminability {
            return 1.0;
        }
        let n = sf.extent_size(self.kg);
        if n == 0 {
            0.0
        } else {
            1.0 / n as f64
        }
    }

    /// `c(π, Q) = ∏_{e∈Q} p(π|e)`.
    pub fn commonality(
        &self,
        config: &RankingConfig,
        sf: SemanticFeature,
        seeds: &[EntityId],
    ) -> f64 {
        let mut c = 1.0;
        for &e in seeds {
            c *= self.p_feature_given_entity(config, sf, e);
            if c == 0.0 {
                break;
            }
        }
        c
    }

    /// The candidate feature pool: the union of the seeds' own features,
    /// filtered by extent size.
    pub fn candidate_features(
        &self,
        config: &RankingConfig,
        seeds: &[EntityId],
    ) -> Vec<SemanticFeature> {
        let mut all: Vec<SemanticFeature> = seeds
            .iter()
            .flat_map(|&e| features_of(self.kg, e))
            .collect();
        all.sort_unstable();
        all.dedup();
        all.retain(|sf| {
            let n = sf.extent_size(self.kg);
            n >= config.min_extent.max(1) && n <= config.max_extent
        });
        all
    }

    /// Rank all candidate features of the query: `Φ(Q)` scored by
    /// `r(π, Q)`, descending, zero-scored features dropped. Scoring is
    /// fanned out over the worker threads.
    pub fn rank_features(&self, config: &RankingConfig, seeds: &[EntityId]) -> Vec<RankedFeature> {
        self.rank_features_top_k(config, seeds, usize::MAX)
    }

    /// [`QueryContext::rank_features`] with bounded heap selection of the
    /// best `k`.
    pub fn rank_features_top_k(
        &self,
        config: &RankingConfig,
        seeds: &[EntityId],
        k: usize,
    ) -> Vec<RankedFeature> {
        let candidates = self.candidate_features(config, seeds);
        let scored = self.par_map(&candidates, |&sf| {
            let d = self.discriminability(config, sf);
            let c = if d > 0.0 {
                self.commonality(config, sf, seeds)
            } else {
                0.0
            };
            RankedFeature {
                feature: sf,
                score: d * c,
                discriminability: d,
                commonality: c,
            }
        });
        top_k_ranked(
            scored.into_iter().filter(|rf| rf.score > 0.0),
            k,
            |rf| rf.score,
            |a, b| a.feature.cmp(&b.feature),
        )
    }

    /// Gather candidate entities: the union of the extents of the top
    /// features, in feature-score order, capped at `max_candidates`, with
    /// seeds removed when configured.
    pub fn candidate_entities(
        &self,
        config: &RankingConfig,
        seeds: &[EntityId],
        features: &[RankedFeature],
    ) -> Vec<EntityId> {
        let top = &features[..features.len().min(config.top_features)];
        let cap = config.max_candidates.saturating_mul(4);
        let mut picked: Vec<&[EntityId]> = Vec::with_capacity(top.len());
        let mut total = 0usize;
        for rf in top {
            picked.push(rf.feature.extent(self.kg));
            total += picked.last().expect("just pushed").len();
            if total >= cap {
                break;
            }
        }
        let mut cands = union_k(&picked);
        if config.exclude_seeds {
            cands.retain(|e| !seeds.contains(e));
        }
        cands.truncate(config.max_candidates);
        cands
    }

    /// `r(e, Q)` for one entity over a scored feature set.
    pub fn score_entity(
        &self,
        config: &RankingConfig,
        e: EntityId,
        features: &[RankedFeature],
    ) -> f64 {
        let mut score = 0.0;
        for rf in features {
            let p = if rf.feature.matches(self.kg, e) {
                1.0
            } else if config.error_tolerant && config.smooth_candidates {
                self.p_feature_given_best_context(config, rf.feature, e)
            } else {
                0.0
            };
            score += p * rf.score;
        }
        score
    }

    /// Rank candidate entities by `r(e, Q)`: parallel scoring, full sort.
    pub fn rank_entities(
        &self,
        config: &RankingConfig,
        seeds: &[EntityId],
        features: &[RankedFeature],
    ) -> Vec<RankedEntity> {
        self.rank_entities_top_k(config, seeds, features, usize::MAX, |_| true)
    }

    /// Rank candidate entities with a pre-score filter and bounded top-k
    /// selection. The filter runs *before* scoring, so expensive smoothing
    /// is never spent on entities a hard query condition already excludes.
    ///
    /// Parallel and sequential execution produce bit-identical results:
    /// per-entity scores are pure functions of the graph, candidates are
    /// chunked in order, and the `(score desc, id asc)` selection order is
    /// total (entity ids are unique).
    pub fn rank_entities_top_k<F>(
        &self,
        config: &RankingConfig,
        seeds: &[EntityId],
        features: &[RankedFeature],
        k: usize,
        filter: F,
    ) -> Vec<RankedEntity>
    where
        F: Fn(EntityId) -> bool + Sync,
    {
        let top = &features[..features.len().min(config.top_features)];
        let mut candidates = self.candidate_entities(config, seeds, features);
        candidates.retain(|&e| filter(e));
        self.score_and_select(config, candidates, top, k)
    }

    /// Score an explicit candidate set in parallel and select the top `k`.
    ///
    /// The candidate pass resolves the fixed feature set **once** —
    /// dense cache ids plus extent slices — so the per-candidate loop is
    /// a binary search per feature instead of a CSR re-walk (the
    /// amortization the sharded backend always had; BENCH_2.json showed
    /// it worth ~2× on `rank_entities`). Bit-identical to scoring via
    /// [`QueryContext::score_entity`]: same extents, same cached
    /// probabilities, same fold order.
    pub fn score_and_select(
        &self,
        config: &RankingConfig,
        candidates: Vec<EntityId>,
        features: &[RankedFeature],
        k: usize,
    ) -> Vec<RankedEntity> {
        let resolved: Vec<(FeatureId, f64, &'kg [EntityId])> = features
            .iter()
            .map(|rf| {
                let fid = self.intern(rf.feature);
                (fid, rf.score, self.extent(fid))
            })
            .collect();
        let scored = self.par_map(&candidates, |&e| {
            let mut score = 0.0;
            for &(fid, feature_score, extent) in &resolved {
                let p = if extent.binary_search(&e).is_ok() {
                    1.0
                } else if config.error_tolerant && config.smooth_candidates {
                    self.p_best_ctx_by_fid(config, fid, e)
                } else {
                    0.0
                };
                score += p * feature_score;
            }
            RankedEntity { entity: e, score }
        });
        top_k_ranked(
            scored.into_iter(),
            k,
            |re| re.score,
            |a, b| a.entity.cmp(&b.entity),
        )
    }

    // ---- parallel substrate --------------------------------------------

    /// Map a pure function over a slice using the context's worker
    /// threads. Chunks are assigned and concatenated in slice order, so
    /// the output is identical to a sequential `iter().map().collect()`.
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.par_map_with(self.threads, items, f)
    }

    /// [`QueryContext::par_map`] with an explicit thread count.
    pub fn par_map_with<T, U, F>(&self, threads: usize, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        par_map_slice(threads, items, f)
    }
}

/// Map a pure function over a slice on scoped worker threads. Chunks are
/// assigned and concatenated in slice order, so the output is identical
/// to a sequential `iter().map().collect()`. Shared by the single-graph
/// [`QueryContext`] and the sharded execution layer.
pub(crate) fn par_map_slice<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    chunked_map(threads, items, MIN_PARALLEL_ITEMS, f)
}

/// Fan items out over at most `workers` scoped threads (contiguous
/// chunks, joined in item order). Unlike [`par_map_slice`] there is no
/// minimum-size threshold — this is the shard fan-out primitive, where
/// item counts are small (one per shard) but each item is a large unit
/// of work. `workers == 1` runs inline; chunking keeps the spawned
/// thread count within the context's configured budget even when there
/// are more shards than workers.
pub(crate) fn fan_out<T, U, F>(workers: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    chunked_map(workers, items, 0, f)
}

/// The one scoped-thread chunk-map core behind [`par_map_slice`] and
/// [`fan_out`]: contiguous chunks over at most `workers` threads, joined
/// in item order; runs inline below `min_items` or at one worker.
fn chunked_map<T, U, F>(workers: usize, items: &[T], min_items: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    if workers == 1 || items.len() < min_items {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut out: Vec<U> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|chunk| scope.spawn(|| chunk.iter().map(&f).collect::<Vec<U>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("chunk worker panicked"));
        }
    });
    out
}

/// Select the `k` best items by `(score desc, id asc)` using a bounded
/// binary heap — O(n log k) instead of a full O(n log n) sort — and
/// return them best-first. Equal scores fall back to `tie` ascending;
/// the combined order must be total (true here: ids are unique), which
/// makes the result identical to sort-then-truncate.
pub fn top_k_ranked<T, I, S, C>(items: I, k: usize, score: S, tie: C) -> Vec<T>
where
    I: Iterator<Item = T>,
    S: Fn(&T) -> f64,
    C: Fn(&T, &T) -> std::cmp::Ordering,
{
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    // rank order: higher score first, then `tie` ascending
    let better = |a: &T, b: &T| -> Ordering {
        score(a)
            .partial_cmp(&score(b))
            .unwrap_or(Ordering::Equal)
            .then_with(|| tie(b, a))
    };

    struct Entry<T, F>(T, F);
    impl<T, F: Fn(&T, &T) -> Ordering> PartialEq for Entry<T, F> {
        fn eq(&self, other: &Self) -> bool {
            (self.1)(&self.0, &other.0) == Ordering::Equal
        }
    }
    impl<T, F: Fn(&T, &T) -> Ordering> Eq for Entry<T, F> {}
    impl<T, F: Fn(&T, &T) -> Ordering> PartialOrd for Entry<T, F> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<T, F: Fn(&T, &T) -> Ordering> Ord for Entry<T, F> {
        fn cmp(&self, other: &Self) -> Ordering {
            // reversed: BinaryHeap is a max-heap, we want the *worst* kept
            // item on top for cheap eviction
            (self.1)(&other.0, &self.0)
        }
    }

    if k == 0 {
        return Vec::new();
    }
    if k == usize::MAX {
        // unbounded: plain sort is faster than heap churn
        let mut all: Vec<T> = items.collect();
        all.sort_unstable_by(|a, b| better(b, a));
        return all;
    }

    // cap the upfront allocation: k is caller-supplied and may be huge
    // ("give me everything"); the heap grows if items really exceed this
    let mut heap: BinaryHeap<Entry<T, _>> =
        BinaryHeap::with_capacity(k.saturating_add(1).min(1024));
    for item in items {
        if heap.len() < k {
            heap.push(Entry(item, &better));
        } else if let Some(worst) = heap.peek() {
            if better(&item, &worst.0) == Ordering::Greater {
                heap.pop();
                heap.push(Entry(item, &better));
            }
        }
    }
    let mut out: Vec<T> = heap.into_iter().map(|e| e.0).collect();
    out.sort_unstable_by(|a, b| better(b, a));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivote_kg::{generate, DatagenConfig, KgBuilder};

    fn toy() -> KnowledgeGraph {
        let mut b = KgBuilder::new();
        let f1 = b.entity("f1");
        let f2 = b.entity("f2");
        let f3 = b.entity("f3");
        let a = b.entity("A");
        let bb = b.entity("B");
        let starring = b.predicate("starring");
        b.triple(f1, starring, a);
        b.triple(f1, starring, bb);
        b.triple(f2, starring, a);
        b.triple(f2, starring, bb);
        b.triple(f3, starring, bb);
        for f in [f1, f2, f3] {
            b.categorized(f, "films");
        }
        b.finish()
    }

    #[test]
    fn interning_is_stable_and_shared() {
        let kg = toy();
        let ctx = QueryContext::new(&kg);
        let sf =
            SemanticFeature::to_anchor(kg.entity("A").unwrap(), kg.predicate("starring").unwrap());
        let id1 = ctx.intern(sf);
        let id2 = ctx.intern(sf);
        assert_eq!(id1, id2);
        assert_eq!(ctx.extent(id1), sf.extent(&kg));
    }

    #[test]
    fn probability_cache_fills_once() {
        let kg = toy();
        let ctx = QueryContext::new(&kg);
        let cfg = RankingConfig::default();
        let sf =
            SemanticFeature::to_anchor(kg.entity("A").unwrap(), kg.predicate("starring").unwrap());
        let f3 = kg.entity("f3").unwrap();
        let p1 = ctx.p_feature_given_entity(&cfg, sf, f3);
        let cached = ctx.cached_probability_count();
        let p2 = ctx.p_feature_given_entity(&cfg, sf, f3);
        assert_eq!(p1, p2);
        assert!((p1 - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(ctx.cached_probability_count(), cached, "no recompute");
    }

    #[test]
    fn par_map_matches_sequential_order() {
        let kg = toy();
        let ctx = QueryContext::with_threads(&kg, 4);
        let items: Vec<u32> = (0..1000).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x as u64 * 3).collect();
        let par = ctx.par_map(&items, |&x| x as u64 * 3);
        assert_eq!(seq, par);
    }

    #[test]
    fn top_k_matches_sort_truncate() {
        let items: Vec<(u32, f64)> = (0..500u32)
            .map(|i| (i, ((i.wrapping_mul(2_654_435_761) % 997) as f64) / 997.0))
            .collect();
        let mut full = items.clone();
        full.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        for k in [0, 1, 7, 100, 499, 500, 1000] {
            let picked = top_k_ranked(items.iter().copied(), k, |it| it.1, |a, b| a.0.cmp(&b.0));
            assert_eq!(picked, full[..k.min(full.len())].to_vec(), "k={k}");
        }
    }

    #[test]
    fn top_k_breaks_score_ties_by_id() {
        let items = vec![(9u32, 1.0), (3, 1.0), (7, 1.0), (5, 0.5)];
        let picked = top_k_ranked(items.into_iter(), 2, |it| it.1, |a, b| a.0.cmp(&b.0));
        assert_eq!(picked, vec![(3, 1.0), (7, 1.0)]);
    }

    #[test]
    fn one_context_serves_multiple_configs() {
        let kg = generate(&DatagenConfig::tiny());
        let ctx = QueryContext::new(&kg);
        let film = kg.type_id("Film").unwrap();
        let seeds = &kg.type_extent(film)[..2];
        let full = RankingConfig::default();
        let ablated = RankingConfig::default().without_discriminability();
        let rf_full = ctx.rank_features(&full, seeds);
        let rf_ablated = ctx.rank_features(&ablated, seeds);
        assert!(!rf_full.is_empty());
        assert!(!rf_ablated.is_empty());
        assert!(rf_ablated.iter().all(|rf| rf.discriminability == 1.0));
        assert!(rf_full.iter().any(|rf| rf.discriminability < 1.0));
    }
}

//! Semantic features (SFs) — the paper's central concept.
//!
//! A semantic feature is a predicate anchored at an entity, in one of two
//! directions (paper §2.3):
//!
//! - `<anchor, p, x>` — the variable is the *object* of the anchor
//!   ([`Direction::FromAnchor`]); e.g. `Forrest_Gump:starring→` describes
//!   "the actors starring in Forrest Gump".
//! - `<x, p, anchor>` — the variable is the *subject*
//!   ([`Direction::ToAnchor`]); e.g. `Tom_Hanks:starring` describes "the
//!   films that have Tom Hanks as a star", the paper's running example.
//!
//! `E(π)` — the extent of a feature — is the set of entities matching the
//! pattern. Thanks to the store's CSR layout it is a zero-copy sorted
//! slice.

use pivote_kg::{EntityId, KnowledgeGraph, PredicateId};
use serde::{Deserialize, Serialize};

/// Which side of the anchored triple pattern the variable is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Pattern `<anchor, p, x>`: extent = objects of the anchor.
    FromAnchor,
    /// Pattern `<x, p, anchor>`: extent = subjects pointing at the anchor.
    ToAnchor,
}

/// A semantic feature `anchor:predicate` with a direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SemanticFeature {
    /// The anchor entity (e.g. `Tom_Hanks`).
    pub anchor: EntityId,
    /// The predicate (e.g. `starring`).
    pub predicate: PredicateId,
    /// Variable position.
    pub direction: Direction,
}

impl SemanticFeature {
    /// Feature `<anchor, p, x>`.
    pub fn from_anchor(anchor: EntityId, predicate: PredicateId) -> Self {
        Self {
            anchor,
            predicate,
            direction: Direction::FromAnchor,
        }
    }

    /// Feature `<x, p, anchor>` — the paper's `Tom_Hanks:starring` form.
    pub fn to_anchor(anchor: EntityId, predicate: PredicateId) -> Self {
        Self {
            anchor,
            predicate,
            direction: Direction::ToAnchor,
        }
    }

    /// The extent `E(π)`: all entities matching the pattern, as a sorted
    /// entity-id slice borrowed from the store.
    #[inline]
    pub fn extent<'kg>(&self, kg: &'kg KnowledgeGraph) -> &'kg [EntityId] {
        match self.direction {
            Direction::FromAnchor => kg.objects(self.anchor, self.predicate),
            Direction::ToAnchor => kg.subjects(self.anchor, self.predicate),
        }
    }

    /// `‖E(π)‖`.
    #[inline]
    pub fn extent_size(&self, kg: &KnowledgeGraph) -> usize {
        self.extent(kg).len()
    }

    /// Whether `e ⊨ π` (binary search on the extent).
    #[inline]
    pub fn matches(&self, kg: &KnowledgeGraph, e: EntityId) -> bool {
        self.extent(kg).binary_search(&e).is_ok()
    }

    /// Render as the paper's `anchor:predicate` notation, with `←`
    /// marking the from-anchor direction (the paper's default/"shorted"
    /// form is to-anchor).
    pub fn display(&self, kg: &KnowledgeGraph) -> String {
        let anchor = kg.entity_name(self.anchor);
        let pred = kg.predicate_name(self.predicate);
        match self.direction {
            Direction::ToAnchor => format!("{anchor}:{pred}"),
            Direction::FromAnchor => format!("{anchor}:{pred}→"),
        }
    }
}

/// All semantic features an entity *has*: every edge of `e`, viewed from
/// the neighbour's side.
///
/// If `<e, p, o>` is a statement, then `e ⊨ (o:p, ToAnchor)`; if
/// `<s, p, e>` is a statement, then `e ⊨ (s:p, FromAnchor)`.
/// Duplicate features (parallel edges) are removed.
pub fn features_of(kg: &KnowledgeGraph, e: EntityId) -> Vec<SemanticFeature> {
    let mut out: Vec<SemanticFeature> = kg
        .out_edges(e)
        .map(|(p, o)| SemanticFeature::to_anchor(o, p))
        .chain(
            kg.in_edges(e)
                .map(|(p, s)| SemanticFeature::from_anchor(s, p)),
        )
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivote_kg::KgBuilder;

    fn kg() -> KnowledgeGraph {
        let mut b = KgBuilder::new();
        let gump = b.entity("Forrest_Gump");
        let apollo = b.entity("Apollo_13");
        let hanks = b.entity("Tom_Hanks");
        let sinise = b.entity("Gary_Sinise");
        let starring = b.predicate("starring");
        b.triple(gump, starring, hanks);
        b.triple(gump, starring, sinise);
        b.triple(apollo, starring, hanks);
        b.finish()
    }

    #[test]
    fn to_anchor_extent_is_films_starring_hanks() {
        let kg = kg();
        let hanks = kg.entity("Tom_Hanks").unwrap();
        let starring = kg.predicate("starring").unwrap();
        let sf = SemanticFeature::to_anchor(hanks, starring);
        let extent = sf.extent(&kg);
        assert_eq!(extent.len(), 2);
        assert!(extent.contains(&kg.entity("Forrest_Gump").unwrap()));
        assert!(extent.contains(&kg.entity("Apollo_13").unwrap()));
        assert!(extent.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn from_anchor_extent_is_cast() {
        let kg = kg();
        let gump = kg.entity("Forrest_Gump").unwrap();
        let starring = kg.predicate("starring").unwrap();
        let sf = SemanticFeature::from_anchor(gump, starring);
        assert_eq!(sf.extent_size(&kg), 2);
    }

    #[test]
    fn matches_uses_extent_membership() {
        let kg = kg();
        let hanks = kg.entity("Tom_Hanks").unwrap();
        let sinise = kg.entity("Gary_Sinise").unwrap();
        let starring = kg.predicate("starring").unwrap();
        let gump = kg.entity("Forrest_Gump").unwrap();
        let apollo = kg.entity("Apollo_13").unwrap();
        let hanks_sf = SemanticFeature::to_anchor(hanks, starring);
        let sinise_sf = SemanticFeature::to_anchor(sinise, starring);
        assert!(hanks_sf.matches(&kg, gump));
        assert!(hanks_sf.matches(&kg, apollo));
        assert!(sinise_sf.matches(&kg, gump));
        assert!(!sinise_sf.matches(&kg, apollo));
    }

    #[test]
    fn features_of_covers_both_directions() {
        let kg = kg();
        let gump = kg.entity("Forrest_Gump").unwrap();
        let hanks = kg.entity("Tom_Hanks").unwrap();
        let starring = kg.predicate("starring").unwrap();
        let fs = features_of(&kg, gump);
        // gump has two out-edges -> two ToAnchor features
        assert_eq!(fs.len(), 2);
        assert!(fs.contains(&SemanticFeature::to_anchor(hanks, starring)));
        // hanks has two in-edges -> two FromAnchor features
        let fs_h = features_of(&kg, hanks);
        assert_eq!(fs_h.len(), 2);
        assert!(fs_h.iter().all(|sf| sf.direction == Direction::FromAnchor));
    }

    #[test]
    fn entity_always_matches_its_own_features() {
        let kg = kg();
        for name in ["Forrest_Gump", "Apollo_13", "Tom_Hanks", "Gary_Sinise"] {
            let e = kg.entity(name).unwrap();
            for sf in features_of(&kg, e) {
                assert!(
                    sf.matches(&kg, e),
                    "{} should match {}",
                    name,
                    sf.display(&kg)
                );
            }
        }
    }

    #[test]
    fn display_notation() {
        let kg = kg();
        let hanks = kg.entity("Tom_Hanks").unwrap();
        let starring = kg.predicate("starring").unwrap();
        assert_eq!(
            SemanticFeature::to_anchor(hanks, starring).display(&kg),
            "Tom_Hanks:starring"
        );
        assert_eq!(
            SemanticFeature::from_anchor(hanks, starring).display(&kg),
            "Tom_Hanks:starring→"
        );
    }
}

//! The path-based ranking model (paper §2.3, after Zhang et al. \[6\] and
//! Chen et al. \[1\]).
//!
//! Given a query `Q` of seed entities:
//!
//! - **Feature ranking** (§2.3.1): `r(π, Q) = d(π) · c(π, Q)` where the
//!   discriminability `d(π) = 1/‖E(π)‖` is an IDF-style weight and the
//!   commonality `c(π, Q) = ∏_{e∈Q} p(π|e)` measures how much of the query
//!   shares the feature. `p(π|e)` is 1 for an exact match and otherwise the
//!   *error-tolerant* estimate `p(π|c*) = ‖E(π) ∩ E(c*)‖ / ‖E(c*)‖`, where
//!   `c*` is the category (or type) context of `e` that best explains `π`.
//! - **Entity ranking** (§2.3.2):
//!   `r(e, Q) = Σ_{π ∈ Φ(Q)} p(π|e) · r(π, Q)` over the top-ranked feature
//!   set `Φ(Q)`.
//!
//! [`Ranker`] owns the *model*: a [`RankingConfig`] applied through a
//! shared [`QueryContext`], which provides memoized probabilities,
//! interned extents, parallel scoring and bounded top-k selection. Several
//! rankers (e.g. the A1/A2 ablations, or every baseline in
//! `pivote-baselines`) can share one context over the same graph — the
//! cached `p(π|c)` densities are pure graph quantities.

use crate::config::RankingConfig;
use crate::context::QueryContext;
use crate::feature::SemanticFeature;
use crate::handle::GraphHandle;
use pivote_kg::{EntityId, KnowledgeGraph};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A feature with its ranking-model scores.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankedFeature {
    /// The semantic feature.
    pub feature: SemanticFeature,
    /// `r(π, Q) = d(π) · c(π, Q)`.
    pub score: f64,
    /// `d(π) = 1/‖E(π)‖` (or 1.0 under the A2 ablation).
    pub discriminability: f64,
    /// `c(π, Q) = ∏_{e∈Q} p(π|e)`.
    pub commonality: f64,
}

/// A candidate entity with its relevance to the query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankedEntity {
    /// The entity.
    pub entity: EntityId,
    /// `r(e, Q)`.
    pub score: f64,
}

/// The ranking engine: a [`RankingConfig`] bound to a backend-agnostic
/// [`GraphHandle`]. Cheap to construct; all memoized state lives in the
/// handle's context so clones/ablations sharing a handle also share the
/// caches — and the same ranker code runs over a single graph or a
/// sharded one.
pub struct Ranker<'kg> {
    handle: GraphHandle<'kg>,
    config: RankingConfig,
}

impl<'kg> Ranker<'kg> {
    /// Create a ranker over `kg` with a fresh private context.
    pub fn new(kg: &'kg KnowledgeGraph, config: RankingConfig) -> Self {
        Self::with_context(Arc::new(QueryContext::new(kg)), config)
    }

    /// Create a ranker sharing an existing single-graph context.
    pub fn with_context(ctx: Arc<QueryContext<'kg>>, config: RankingConfig) -> Self {
        Self::with_handle(GraphHandle::Single(ctx), config)
    }

    /// Create a ranker over any backend handle (single or sharded).
    pub fn with_handle(handle: GraphHandle<'kg>, config: RankingConfig) -> Self {
        Self { handle, config }
    }

    /// The knowledge graph this ranker reads — single backend only.
    ///
    /// # Panics
    /// When the ranker runs on a sharded backend (there is no single
    /// graph to borrow); use [`Ranker::handle`] instead.
    pub fn kg(&self) -> &'kg KnowledgeGraph {
        self.handle
            .kg()
            .expect("Ranker::kg is single-backend only; use Ranker::handle")
    }

    /// The active configuration.
    pub fn config(&self) -> &RankingConfig {
        &self.config
    }

    /// The backend-agnostic graph handle.
    pub fn handle(&self) -> &GraphHandle<'kg> {
        &self.handle
    }

    /// The shared single-graph execution context.
    ///
    /// # Panics
    /// When the ranker runs on a sharded backend; use [`Ranker::handle`].
    pub fn context(&self) -> &Arc<QueryContext<'kg>> {
        match &self.handle {
            GraphHandle::Single(ctx) => ctx,
            GraphHandle::Sharded(_) => {
                panic!("Ranker::context is single-backend only; use Ranker::handle")
            }
        }
    }

    /// `d(π)`: inverse extent size, the IDF-style discriminability.
    pub fn discriminability(&self, sf: SemanticFeature) -> f64 {
        self.handle.discriminability(&self.config, sf)
    }

    /// `p(π|e)`: 1 for an exact match, otherwise the error-tolerant
    /// context estimate (or 0 when error tolerance is disabled).
    pub fn p_feature_given_entity(&self, sf: SemanticFeature, e: EntityId) -> f64 {
        self.handle.p_feature_given_entity(&self.config, sf, e)
    }

    /// `c(π, Q) = ∏_{e∈Q} p(π|e)`.
    pub fn commonality(&self, sf: SemanticFeature, seeds: &[EntityId]) -> f64 {
        self.handle.commonality(&self.config, sf, seeds)
    }

    /// The candidate feature pool: the union of the seeds' own features,
    /// filtered by extent size.
    pub fn candidate_features(&self, seeds: &[EntityId]) -> Vec<SemanticFeature> {
        self.handle.candidate_features(&self.config, seeds)
    }

    /// Rank all candidate features of the query: `Φ(Q)` scored by
    /// `r(π, Q)`, descending, zero-scored features dropped.
    pub fn rank_features(&self, seeds: &[EntityId]) -> Vec<RankedFeature> {
        self.handle.rank_features(&self.config, seeds)
    }

    /// The best `k` features only, selected with a bounded heap.
    pub fn rank_features_top_k(&self, seeds: &[EntityId], k: usize) -> Vec<RankedFeature> {
        self.handle.rank_features_top_k(&self.config, seeds, k)
    }

    /// Gather candidate entities: the union of the extents of the top
    /// features, in feature-score order, capped at `max_candidates`, with
    /// seeds removed when configured.
    pub fn candidate_entities(
        &self,
        seeds: &[EntityId],
        features: &[RankedFeature],
    ) -> Vec<EntityId> {
        self.handle
            .candidate_entities(&self.config, seeds, features)
    }

    /// `r(e, Q)` for one entity over a scored feature set.
    pub fn score_entity(&self, e: EntityId, features: &[RankedFeature]) -> f64 {
        self.handle.score_entity(&self.config, e, features)
    }

    /// Rank candidate entities by `r(e, Q)` over the top features,
    /// descending with entity-id tiebreak. Scoring runs on the context's
    /// worker threads; the result is bit-identical to a sequential pass.
    pub fn rank_entities(
        &self,
        seeds: &[EntityId],
        features: &[RankedFeature],
    ) -> Vec<RankedEntity> {
        self.handle.rank_entities(&self.config, seeds, features)
    }

    /// The best `k` entities only, with an optional pre-score filter
    /// applied before any smoothing work is spent.
    pub fn rank_entities_top_k<F>(
        &self,
        seeds: &[EntityId],
        features: &[RankedFeature],
        k: usize,
        filter: F,
    ) -> Vec<RankedEntity>
    where
        F: Fn(EntityId) -> bool + Sync,
    {
        self.handle
            .rank_entities_top_k(&self.config, seeds, features, k, filter)
    }

    /// [`Ranker::rank_entities`] with an explicit worker-thread count
    /// (kept for scaling experiments; `1` forces the sequential path).
    /// Produces exactly the same ranking as the sequential path.
    pub fn rank_entities_parallel(
        &self,
        seeds: &[EntityId],
        features: &[RankedFeature],
        threads: usize,
    ) -> Vec<RankedEntity> {
        let top = &features[..features.len().min(self.config.top_features)];
        let candidates = self
            .handle
            .candidate_entities(&self.config, seeds, features);
        let scored = self
            .handle
            .par_map_with(threads.max(1), &candidates, |&e| RankedEntity {
                entity: e,
                score: self.handle.score_entity(&self.config, e, top),
            });
        crate::context::top_k_ranked(
            scored.into_iter(),
            usize::MAX,
            |re| re.score,
            |a, b| a.entity.cmp(&b.entity),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::Direction;
    use pivote_kg::KgBuilder;

    /// Hand-computable fixture:
    /// films f1,f2,f3; actors A,B; f1,f2 star A and B; f3 stars only B.
    /// All films in category "films"; f1,f2 additionally in "oscar".
    fn kg() -> KnowledgeGraph {
        let mut b = KgBuilder::new();
        let f1 = b.entity("f1");
        let f2 = b.entity("f2");
        let f3 = b.entity("f3");
        let a = b.entity("A");
        let bb = b.entity("B");
        let starring = b.predicate("starring");
        b.triple(f1, starring, a);
        b.triple(f1, starring, bb);
        b.triple(f2, starring, a);
        b.triple(f2, starring, bb);
        b.triple(f3, starring, bb);
        for f in [f1, f2, f3] {
            b.categorized(f, "films");
        }
        b.categorized(f1, "oscar");
        b.categorized(f2, "oscar");
        b.finish()
    }

    fn sf_a(kg: &KnowledgeGraph) -> SemanticFeature {
        SemanticFeature::to_anchor(kg.entity("A").unwrap(), kg.predicate("starring").unwrap())
    }

    fn sf_b(kg: &KnowledgeGraph) -> SemanticFeature {
        SemanticFeature::to_anchor(kg.entity("B").unwrap(), kg.predicate("starring").unwrap())
    }

    #[test]
    fn discriminability_is_inverse_extent() {
        let kg = kg();
        let r = Ranker::new(&kg, RankingConfig::default());
        assert!((r.discriminability(sf_a(&kg)) - 0.5).abs() < 1e-12);
        assert!((r.discriminability(sf_b(&kg)) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn discriminability_ablation_is_uniform() {
        let kg = kg();
        let r = Ranker::new(&kg, RankingConfig::default().without_discriminability());
        assert_eq!(r.discriminability(sf_a(&kg)), 1.0);
        assert_eq!(r.discriminability(sf_b(&kg)), 1.0);
    }

    #[test]
    fn p_feature_exact_match_is_one() {
        let kg = kg();
        let r = Ranker::new(&kg, RankingConfig::default());
        let f1 = kg.entity("f1").unwrap();
        assert_eq!(r.p_feature_given_entity(sf_a(&kg), f1), 1.0);
    }

    #[test]
    fn p_feature_smoothed_via_best_category() {
        let kg = kg();
        let r = Ranker::new(&kg, RankingConfig::default());
        let f3 = kg.entity("f3").unwrap();
        // f3 does not star A. Contexts: "films" gives |{f1,f2}∩{f1,f2,f3}|/3 = 2/3.
        let p = r.p_feature_given_entity(sf_a(&kg), f3);
        assert!((p - 2.0 / 3.0).abs() < 1e-12, "p={p}");
    }

    #[test]
    fn p_feature_without_tolerance_is_zero() {
        let kg = kg();
        let r = Ranker::new(&kg, RankingConfig::default().without_error_tolerance());
        let f3 = kg.entity("f3").unwrap();
        assert_eq!(r.p_feature_given_entity(sf_a(&kg), f3), 0.0);
    }

    #[test]
    fn best_context_prefers_denser_category() {
        let kg = kg();
        let r = Ranker::new(&kg, RankingConfig::default());
        // For f3 the "oscar" category would give 2/2 = 1.0, but f3 is not
        // in it; only "films" (2/3) applies. Check a seed in "oscar":
        // p(sf_a | f2) is an exact match anyway, so probe the internal
        // context estimate through commonality with a non-matching seed.
        let f3 = kg.entity("f3").unwrap();
        let c = r.commonality(sf_a(&kg), &[f3]);
        assert!((c - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn commonality_multiplies_over_seeds() {
        let kg = kg();
        let r = Ranker::new(&kg, RankingConfig::default());
        let f1 = kg.entity("f1").unwrap();
        let f3 = kg.entity("f3").unwrap();
        // c(sf_a, {f1,f3}) = 1 * 2/3
        assert!((r.commonality(sf_a(&kg), &[f1, f3]) - 2.0 / 3.0).abs() < 1e-12);
        // c(sf_b, {f1,f3}) = 1 * 1
        assert!((r.commonality(sf_b(&kg), &[f1, f3]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_features_single_seed_hand_computed() {
        let kg = kg();
        let r = Ranker::new(&kg, RankingConfig::default());
        let f1 = kg.entity("f1").unwrap();
        let ranked = r.rank_features(&[f1]);
        assert_eq!(ranked.len(), 2);
        // r(sf_a) = 1/2 * 1 = 0.5 beats r(sf_b) = 1/3.
        assert_eq!(ranked[0].feature, sf_a(&kg));
        assert!((ranked[0].score - 0.5).abs() < 1e-12);
        assert_eq!(ranked[1].feature, sf_b(&kg));
        assert!((ranked[1].score - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rank_features_top_k_is_a_prefix_of_full_ranking() {
        let kg = kg();
        let r = Ranker::new(&kg, RankingConfig::default());
        let f1 = kg.entity("f1").unwrap();
        let full = r.rank_features(&[f1]);
        for k in 0..=full.len() + 1 {
            let topk = r.rank_features_top_k(&[f1], k);
            assert_eq!(topk, full[..k.min(full.len())].to_vec(), "k={k}");
        }
    }

    #[test]
    fn rank_entities_hand_computed() {
        let kg = kg();
        let r = Ranker::new(&kg, RankingConfig::default());
        let f1 = kg.entity("f1").unwrap();
        let f2 = kg.entity("f2").unwrap();
        let f3 = kg.entity("f3").unwrap();
        let features = r.rank_features(&[f1]);
        let ranked = r.rank_entities(&[f1], &features);
        // candidates are f2 and f3 (f1 excluded as seed)
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].entity, f2);
        // r(f2) = 1*0.5 + 1*(1/3) = 5/6
        assert!(
            (ranked[0].score - 5.0 / 6.0).abs() < 1e-12,
            "{}",
            ranked[0].score
        );
        assert_eq!(ranked[1].entity, f3);
        // r(f3) = (2/3)*0.5 + 1*(1/3) = 2/3
        assert!(
            (ranked[1].score - 2.0 / 3.0).abs() < 1e-12,
            "{}",
            ranked[1].score
        );
    }

    #[test]
    fn rank_entities_without_smoothing_drops_partial_matches() {
        let kg = kg();
        let cfg = RankingConfig::default().without_error_tolerance();
        let r = Ranker::new(&kg, cfg);
        let f1 = kg.entity("f1").unwrap();
        let f3 = kg.entity("f3").unwrap();
        let features = r.rank_features(&[f1]);
        let ranked = r.rank_entities(&[f1], &features);
        let f3_score = ranked.iter().find(|re| re.entity == f3).unwrap().score;
        // only the exact sf_b match remains: 1/3
        assert!((f3_score - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn seeds_can_be_included_when_configured() {
        let kg = kg();
        let cfg = RankingConfig {
            exclude_seeds: false,
            ..RankingConfig::default()
        };
        let r = Ranker::new(&kg, cfg);
        let f1 = kg.entity("f1").unwrap();
        let features = r.rank_features(&[f1]);
        let ranked = r.rank_entities(&[f1], &features);
        assert_eq!(ranked[0].entity, f1, "the seed itself scores highest");
    }

    #[test]
    fn max_extent_prunes_frequent_features() {
        let kg = kg();
        let cfg = RankingConfig {
            max_extent: 2,
            ..RankingConfig::default()
        };
        let r = Ranker::new(&kg, cfg);
        let f1 = kg.entity("f1").unwrap();
        let ranked = r.rank_features(&[f1]);
        // sf_b has extent 3 > 2 and is pruned
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].feature, sf_a(&kg));
    }

    #[test]
    fn empty_seeds_rank_nothing() {
        let kg = kg();
        let r = Ranker::new(&kg, RankingConfig::default());
        assert!(r.rank_features(&[]).is_empty());
        assert!(r.rank_entities(&[], &[]).is_empty());
    }

    #[test]
    fn adding_matching_seed_never_increases_nonmatching_feature_rank() {
        // Monotonicity: with seeds {f1} vs {f1, f2} (both match sf_a),
        // sf_a's commonality stays 1; with {f1, f3}, it drops.
        let kg = kg();
        let r = Ranker::new(&kg, RankingConfig::default());
        let f1 = kg.entity("f1").unwrap();
        let f2 = kg.entity("f2").unwrap();
        let f3 = kg.entity("f3").unwrap();
        let c1 = r.commonality(sf_a(&kg), &[f1]);
        let c12 = r.commonality(sf_a(&kg), &[f1, f2]);
        let c13 = r.commonality(sf_a(&kg), &[f1, f3]);
        assert_eq!(c1, c12);
        assert!(c13 < c12);
    }

    #[test]
    fn parallel_ranking_matches_sequential() {
        let kg = kg();
        let r = Ranker::new(&kg, RankingConfig::default());
        let f1 = kg.entity("f1").unwrap();
        let features = r.rank_features(&[f1]);
        let seq = r.rank_entities_parallel(&[f1], &features, 1);
        for threads in [1, 2, 4, 16] {
            let par = r.rank_entities_parallel(&[f1], &features, threads);
            assert_eq!(seq.len(), par.len());
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.entity, b.entity);
                assert!((a.score - b.score).abs() < 1e-12);
            }
        }
        // the default (auto-threaded) path agrees too
        let auto = r.rank_entities(&[f1], &features);
        assert_eq!(seq, auto);
    }

    #[test]
    fn parallel_ranking_zero_threads_clamps() {
        let kg = kg();
        let r = Ranker::new(&kg, RankingConfig::default());
        let f1 = kg.entity("f1").unwrap();
        let features = r.rank_features(&[f1]);
        assert!(!r.rank_entities_parallel(&[f1], &features, 0).is_empty());
    }

    #[test]
    fn rankers_sharing_a_context_agree_with_private_contexts() {
        let kg = kg();
        let ctx = Arc::new(QueryContext::new(&kg));
        let shared_full = Ranker::with_context(Arc::clone(&ctx), RankingConfig::default());
        let shared_hard = Ranker::with_context(
            Arc::clone(&ctx),
            RankingConfig::default().without_error_tolerance(),
        );
        let private_full = Ranker::new(&kg, RankingConfig::default());
        let private_hard = Ranker::new(&kg, RankingConfig::default().without_error_tolerance());
        let f1 = kg.entity("f1").unwrap();
        assert_eq!(
            shared_full.rank_features(&[f1]),
            private_full.rank_features(&[f1])
        );
        assert_eq!(
            shared_hard.rank_features(&[f1]),
            private_hard.rank_features(&[f1])
        );
    }

    #[test]
    fn features_of_anchor_direction_from_actor_side() {
        // Seeding with an *actor* must surface FromAnchor features of the
        // films (A is an object of f1/f2).
        let kg = kg();
        let r = Ranker::new(&kg, RankingConfig::default());
        let a = kg.entity("A").unwrap();
        let ranked = r.rank_features(&[a]);
        assert!(!ranked.is_empty());
        assert!(ranked
            .iter()
            .all(|rf| rf.feature.direction == Direction::FromAnchor));
    }
}

//! Ranking configuration, including the ablation switches called out in
//! DESIGN.md (§7).

use serde::{Deserialize, Serialize};

/// Tunables of the path-based ranking model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankingConfig {
    /// Error-tolerant estimation (paper §2.3.1): when a seed does not
    /// match a feature, fall back to `p(π|c*)`, the feature's density in
    /// the seed's best category/type context. Ablation A1 turns this off,
    /// making `p(π|e)` a hard 0/1 indicator.
    pub error_tolerant: bool,
    /// Use the IDF-style discriminability `d(π) = 1/‖E(π)‖`. Ablation A2
    /// replaces it with a constant 1.
    pub use_discriminability: bool,
    /// Include `rdf:type` extents alongside categories when searching for
    /// the best context `c*`.
    pub use_types_as_context: bool,
    /// Apply error-tolerant smoothing when scoring *candidate* entities
    /// too (not just seeds). More recall, more cost.
    pub smooth_candidates: bool,
    /// Skip features whose extent is smaller than this. The default of 2
    /// drops singleton features: an extent that contains only the seed
    /// itself cannot recommend a new entity, yet its `d(π) = 1` would
    /// dominate `Φ(Q)` for small seed sets.
    pub min_extent: usize,
    /// Skip features whose extent exceeds this size — extremely frequent
    /// features carry negligible weight (`d(π)` ≈ 0) but cost the most to
    /// process.
    pub max_extent: usize,
    /// How many top-ranked features form `Φ(Q)` for entity scoring and
    /// feature recommendation.
    pub top_features: usize,
    /// Cap on candidate entities gathered from feature extents.
    pub max_candidates: usize,
    /// Remove the seeds themselves from the recommended entities.
    pub exclude_seeds: bool,
}

impl Default for RankingConfig {
    fn default() -> Self {
        Self {
            error_tolerant: true,
            use_discriminability: true,
            use_types_as_context: true,
            smooth_candidates: true,
            min_extent: 2,
            max_extent: 50_000,
            top_features: 60,
            max_candidates: 10_000,
            exclude_seeds: true,
        }
    }
}

impl RankingConfig {
    /// The A1 ablation: exact matching only.
    pub fn without_error_tolerance(mut self) -> Self {
        self.error_tolerant = false;
        self
    }

    /// The A2 ablation: uniform feature weight instead of `1/‖E(π)‖`.
    pub fn without_discriminability(mut self) -> Self {
        self.use_discriminability = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_the_full_model() {
        let c = RankingConfig::default();
        assert!(c.error_tolerant);
        assert!(c.use_discriminability);
        assert!(c.exclude_seeds);
    }

    #[test]
    fn ablation_builders() {
        let c = RankingConfig::default()
            .without_error_tolerance()
            .without_discriminability();
        assert!(!c.error_tolerant);
        assert!(!c.use_discriminability);
        assert!(c.use_types_as_context); // untouched
    }
}

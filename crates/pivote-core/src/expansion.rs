//! Entity set expansion — the *investigation* operation (paper §3.1).
//!
//! A query is a set of example ("seed") entities plus optional required
//! semantic features ("Find films starring Tom Hanks" = one required
//! feature; "Find films similar to Forrest Gump" = one seed). Expansion
//! returns similar entities ranked by `r(e, Q)` together with the
//! query's relevant semantic features ranked by `r(π, Q)` — exactly the
//! two recommendation areas of the PivotE interface (Fig. 3-c and 3-e).

use crate::config::RankingConfig;
use crate::context::QueryContext;
use crate::extent::{contains, intersect_k};
use crate::feature::SemanticFeature;
use crate::handle::GraphHandle;
use crate::ranking::{RankedEntity, RankedFeature, Ranker};
use pivote_kg::{EntityId, KnowledgeGraph, TypeId};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::sync::Arc;

/// A structured exploration query.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SfQuery {
    /// Example entities ("find entities similar to these").
    pub seeds: Vec<EntityId>,
    /// Required semantic features — hard filters every result must match.
    pub required: Vec<SemanticFeature>,
    /// Restrict results to entities of this type (the investigation
    /// stays within one domain, e.g. `Film`).
    pub type_filter: Option<TypeId>,
}

impl SfQuery {
    /// Query from seed entities only.
    pub fn from_seeds(seeds: impl Into<Vec<EntityId>>) -> Self {
        Self {
            seeds: seeds.into(),
            ..Self::default()
        }
    }

    /// Query from required features only ("Find films starring Tom
    /// Hanks").
    pub fn from_features(required: impl Into<Vec<SemanticFeature>>) -> Self {
        Self {
            required: required.into(),
            ..Self::default()
        }
    }

    /// Add a seed (builder style).
    pub fn with_seed(mut self, e: EntityId) -> Self {
        self.seeds.push(e);
        self
    }

    /// Add a required feature (builder style).
    pub fn with_feature(mut self, sf: SemanticFeature) -> Self {
        self.required.push(sf);
        self
    }

    /// Restrict to a type (builder style).
    pub fn with_type(mut self, t: TypeId) -> Self {
        self.type_filter = Some(t);
        self
    }

    /// Whether the query has no conditions at all.
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty() && self.required.is_empty()
    }
}

/// The result of one expansion: both recommendation areas of the UI.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExpansionResult {
    /// Recommended entities (Fig. 3-c), best first.
    pub entities: Vec<RankedEntity>,
    /// Recommended semantic features (Fig. 3-e), best first.
    pub features: Vec<RankedFeature>,
}

/// Diversify a score-ranked feature list: keep at most `max_per_predicate`
/// features of each predicate+direction, preserving score order, then
/// append the spilled features (still in score order) after the diverse
/// prefix.
///
/// The PivotE interface presents features as *exploration pointers in
/// many aspects* (Fig. 3-e mixes `starring`, `director`, `studio`, …); a
/// raw score ranking of a film query is typically flooded by its cast.
pub fn diversify_features(
    features: &[crate::ranking::RankedFeature],
    max_per_predicate: usize,
) -> Vec<crate::ranking::RankedFeature> {
    if max_per_predicate == 0 {
        return features.to_vec();
    }
    let mut counts: std::collections::HashMap<
        (pivote_kg::PredicateId, crate::feature::Direction),
        usize,
    > = std::collections::HashMap::new();
    let mut kept = Vec::with_capacity(features.len());
    let mut spilled = Vec::new();
    for rf in features {
        let key = (rf.feature.predicate, rf.feature.direction);
        let count = counts.entry(key).or_insert(0);
        if *count < max_per_predicate {
            *count += 1;
            kept.push(*rf);
        } else {
            spilled.push(*rf);
        }
    }
    kept.extend(spilled);
    kept
}

/// The expansion engine: a thin orchestration layer over [`Ranker`],
/// running on a backend-agnostic [`GraphHandle`].
pub struct Expander<'kg> {
    ranker: Ranker<'kg>,
}

/// How many result entities act as pseudo-seeds when a query has required
/// features but no seed entities.
const PSEUDO_SEEDS: usize = 5;

impl<'kg> Expander<'kg> {
    /// Create an expander over `kg` with a fresh private context.
    pub fn new(kg: &'kg KnowledgeGraph, config: RankingConfig) -> Self {
        Self {
            ranker: Ranker::new(kg, config),
        }
    }

    /// Create an expander sharing an existing single-graph context.
    pub fn with_context(ctx: Arc<QueryContext<'kg>>, config: RankingConfig) -> Self {
        Self {
            ranker: Ranker::with_context(ctx, config),
        }
    }

    /// Create an expander over any backend handle (single or sharded).
    pub fn with_handle(handle: GraphHandle<'kg>, config: RankingConfig) -> Self {
        Self {
            ranker: Ranker::with_handle(handle, config),
        }
    }

    /// The underlying ranker.
    pub fn ranker(&self) -> &Ranker<'kg> {
        &self.ranker
    }

    /// The backend-agnostic graph handle.
    pub fn handle(&self) -> &GraphHandle<'kg> {
        self.ranker.handle()
    }

    /// The shared single-graph execution context.
    ///
    /// # Panics
    /// When the expander runs on a sharded backend; use
    /// [`Expander::handle`].
    pub fn context(&self) -> &Arc<QueryContext<'kg>> {
        self.ranker.context()
    }

    /// Expand a seed set: top-`k_entities` similar entities and
    /// top-`k_features` relevant features.
    pub fn expand_seeds(
        &self,
        seeds: &[EntityId],
        k_entities: usize,
        k_features: usize,
    ) -> ExpansionResult {
        self.expand(&SfQuery::from_seeds(seeds.to_vec()), k_entities, k_features)
    }

    /// Expand a structured query.
    ///
    /// All hard query conditions (required-feature membership, type
    /// filter) are applied to the candidate pool *before* scoring, so the
    /// context never spends smoothing work on entities the query already
    /// excludes, and the final top-`k_entities` selection runs through the
    /// context's bounded heap.
    pub fn expand(&self, query: &SfQuery, k_entities: usize, k_features: usize) -> ExpansionResult {
        if query.is_empty() {
            return ExpansionResult {
                entities: Vec::new(),
                features: Vec::new(),
            };
        }
        let handle = self.ranker.handle();
        let config = self.ranker.config();

        // Hard filter: k-way intersection of required-feature extents.
        let filter: Option<Vec<EntityId>> = if query.required.is_empty() {
            None
        } else {
            let extents: Vec<Cow<'_, [EntityId]>> = query
                .required
                .iter()
                .map(|sf| handle.feature_extent(*sf))
                .collect();
            let views: Vec<&[EntityId]> = extents.iter().map(|c| c.as_ref()).collect();
            Some(intersect_k(&views))
        };

        // Seeds for the ranking model: the query's seeds, or — for pure
        // feature queries — the highest-degree members of the filter set.
        let seeds: Vec<EntityId> = if !query.seeds.is_empty() {
            query.seeds.clone()
        } else {
            let mut members: Vec<EntityId> = filter.clone().unwrap_or_default();
            members.sort_by_key(|&e| std::cmp::Reverse(handle.degree(e)));
            members.truncate(PSEUDO_SEEDS);
            members.sort_unstable();
            members
        };

        // Feature pool: enough for Φ(Q) scoring and the caller's ask.
        let feature_budget = config.top_features.max(k_features);
        let features = self.ranker.rank_features_top_k(&seeds, feature_budget);
        let top = &features[..features.len().min(config.top_features)];

        // Candidate pool with every hard condition applied pre-scoring.
        let mut candidates = handle.candidate_entities(config, &seeds, &features);
        if let Some(filter) = &filter {
            candidates.retain(|&e| contains(filter, e));
            // Feature-only queries must return every filter member even if
            // the ranker's candidate pool missed some (tiny extents) or
            // claimed them as pseudo-seeds.
            if query.seeds.is_empty() {
                candidates = crate::extent::union(&candidates, filter);
            }
        }
        if let Some(t) = query.type_filter {
            candidates.retain(|&e| handle.has_type(e, t));
        }

        let entities = handle.score_and_select(config, candidates, top, k_entities);

        ExpansionResult {
            entities,
            features: features.into_iter().take(k_features).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivote_kg::{generate, DatagenConfig, KgBuilder};

    fn toy() -> KnowledgeGraph {
        let mut b = KgBuilder::new();
        let f1 = b.entity("f1");
        let f2 = b.entity("f2");
        let f3 = b.entity("f3");
        let a = b.entity("A");
        let bb = b.entity("B");
        let starring = b.predicate("starring");
        b.triple(f1, starring, a);
        b.triple(f1, starring, bb);
        b.triple(f2, starring, a);
        b.triple(f2, starring, bb);
        b.triple(f3, starring, bb);
        for f in [f1, f2, f3] {
            b.typed(f, "Film");
            b.categorized(f, "films");
        }
        b.typed(a, "Actor");
        b.typed(bb, "Actor");
        b.finish()
    }

    #[test]
    fn seed_expansion_returns_similar_films() {
        let kg = toy();
        let ex = Expander::new(&kg, RankingConfig::default());
        let f1 = kg.entity("f1").unwrap();
        let res = ex.expand_seeds(&[f1], 10, 10);
        assert_eq!(res.entities[0].entity, kg.entity("f2").unwrap());
        assert!(!res.features.is_empty());
    }

    #[test]
    fn feature_query_find_films_starring_a() {
        // The paper's "Find films starring Tom Hanks" pattern.
        let kg = toy();
        let ex = Expander::new(&kg, RankingConfig::default());
        let a = kg.entity("A").unwrap();
        let sf = SemanticFeature::to_anchor(a, kg.predicate("starring").unwrap());
        let res = ex.expand(&SfQuery::from_features(vec![sf]), 10, 10);
        let got: Vec<EntityId> = res.entities.iter().map(|re| re.entity).collect();
        assert_eq!(got.len(), 2);
        assert!(got.contains(&kg.entity("f1").unwrap()));
        assert!(got.contains(&kg.entity("f2").unwrap()));
    }

    #[test]
    fn combined_seed_and_feature_query() {
        let kg = toy();
        let ex = Expander::new(&kg, RankingConfig::default());
        let f1 = kg.entity("f1").unwrap();
        let bsf =
            SemanticFeature::to_anchor(kg.entity("B").unwrap(), kg.predicate("starring").unwrap());
        let q = SfQuery::from_seeds(vec![f1]).with_feature(bsf);
        let res = ex.expand(&q, 10, 10);
        // seeds excluded, filtered to B's films: f2, f3
        let got: Vec<EntityId> = res.entities.iter().map(|re| re.entity).collect();
        assert_eq!(
            got,
            vec![kg.entity("f2").unwrap(), kg.entity("f3").unwrap()]
        );
    }

    #[test]
    fn type_filter_restricts_domain() {
        let kg = toy();
        let ex = Expander::new(&kg, RankingConfig::default());
        let f1 = kg.entity("f1").unwrap();
        let film = kg.type_id("Film").unwrap();
        let actor = kg.type_id("Actor").unwrap();
        let res_film = ex.expand(&SfQuery::from_seeds(vec![f1]).with_type(film), 10, 10);
        assert!(!res_film.entities.is_empty());
        let res_actor = ex.expand(&SfQuery::from_seeds(vec![f1]).with_type(actor), 10, 10);
        assert!(res_actor.entities.is_empty());
    }

    #[test]
    fn empty_query_returns_nothing() {
        let kg = toy();
        let ex = Expander::new(&kg, RankingConfig::default());
        let res = ex.expand(&SfQuery::default(), 10, 10);
        assert!(res.entities.is_empty());
        assert!(res.features.is_empty());
    }

    #[test]
    fn k_limits_are_respected() {
        let kg = toy();
        let ex = Expander::new(&kg, RankingConfig::default());
        let f1 = kg.entity("f1").unwrap();
        let res = ex.expand_seeds(&[f1], 1, 1);
        assert_eq!(res.entities.len(), 1);
        assert_eq!(res.features.len(), 1);
    }

    #[test]
    fn expansion_on_generated_kg_stays_in_domain() {
        let kg = generate(&DatagenConfig::tiny());
        let ex = Expander::new(&kg, RankingConfig::default());
        let film = kg.type_id("Film").unwrap();
        let seeds = &kg.type_extent(film)[..2.min(kg.type_extent(film).len())];
        let res = ex.expand(&SfQuery::from_seeds(seeds.to_vec()).with_type(film), 10, 10);
        for re in &res.entities {
            assert!(kg.has_type(re.entity, film));
            assert!(!seeds.contains(&re.entity), "seed leaked into results");
        }
    }

    #[test]
    fn diversify_caps_per_predicate_and_keeps_order() {
        use crate::ranking::RankedFeature;
        let kg = pivote_kg::generate(&pivote_kg::DatagenConfig::tiny());
        let film = kg.type_id("Film").unwrap();
        let seed = kg.type_extent(film)[0];
        let ex = Expander::new(&kg, RankingConfig::default());
        let features = ex.ranker().rank_features(&[seed]);
        let diverse = diversify_features(&features, 1);
        assert_eq!(diverse.len(), features.len(), "nothing is dropped");
        // the diverse prefix has at most one feature per predicate
        let mut seen = std::collections::HashSet::new();
        let mut prefix_len = 0;
        for rf in &diverse {
            if !seen.insert((rf.feature.predicate, rf.feature.direction)) {
                break;
            }
            prefix_len += 1;
        }
        assert!(prefix_len >= 2, "expected a multi-predicate prefix");
        // scores within the prefix stay sorted
        assert!(diverse[..prefix_len]
            .windows(2)
            .all(|w| w[0].score >= w[1].score));

        // max_per_predicate = 0 disables diversification
        let same = diversify_features(&features, 0);
        assert_eq!(same.len(), features.len());
        assert!(same
            .iter()
            .zip(&features)
            .all(|(a, b): (&RankedFeature, &RankedFeature)| a.feature == b.feature));
    }

    #[test]
    fn conjunctive_feature_query_intersects() {
        let kg = toy();
        let ex = Expander::new(&kg, RankingConfig::default());
        let starring = kg.predicate("starring").unwrap();
        let sf_a = SemanticFeature::to_anchor(kg.entity("A").unwrap(), starring);
        let sf_b = SemanticFeature::to_anchor(kg.entity("B").unwrap(), starring);
        let res = ex.expand(&SfQuery::from_features(vec![sf_a, sf_b]), 10, 10);
        let got: Vec<EntityId> = res.entities.iter().map(|re| re.entity).collect();
        assert_eq!(got.len(), 2); // f1 and f2 star both
        assert!(!got.contains(&kg.entity("f3").unwrap()));
    }
}

//! Persisted context warm-state: the `p(π|c)` density cache as a
//! versioned sidecar file next to the graph snapshot.
//!
//! A server restart used to mean an empty [`SharedCache`]: every density
//! the previous process memoized was re-derived from the extents on the
//! first queries. Since every cached `p(π|c)` is a pure graph quantity —
//! exact for a given logical graph, independent of any ranking
//! configuration or partitioning — the cache can be serialized next to
//! the snapshot and reloaded on open, as long as it is paired with the
//! *same logical graph* it was computed over.
//!
//! The pairing key is [`pivote_kg::snapshot::fingerprint`]: a
//! restart-stable hash of the exact snapshot bytes. (The in-memory
//! mutation generation cannot serve here — it resets to 0 on every
//! snapshot load, and persisting it inside the snapshot would break the
//! append-vs-rebuild byte-identity invariant.) [`load_warm_state`]
//! refuses a sidecar whose stored fingerprint differs from the opened
//! graph's, in which case the caller simply starts cold — correctness
//! never depends on the sidecar; it is a latency artifact, like the
//! snapshot itself.
//!
//! Format (little-endian, exact `f64` bit patterns — warm answers must
//! be *bit-identical* to cold ones):
//!
//! ```text
//! magic "PVWS" | version u32 | graph fingerprint u64 |
//! features: count u32, (anchor u32, predicate u32, direction u8) —
//!   in dense feature-id order |
//! densities: count u64, (key u64, f64 bits u64) — sorted by key
//! ```

use crate::context::SharedCache;
use crate::feature::{Direction, SemanticFeature};
use pivote_kg::{EntityId, PredicateId};
use std::io::{self, Read, Write};
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"PVWS";
const VERSION: u32 = 2;

/// Errors from warm-state IO.
#[derive(Debug)]
pub enum WarmStateError {
    /// Underlying IO failure.
    Io(io::Error),
    /// Not a warm-state file, or an unsupported version.
    Format(String),
    /// The sidecar was computed over a different logical graph.
    StaleSidecar {
        /// Graph fingerprint recorded in the sidecar header.
        stored: u64,
        /// Fingerprint of the graph being opened.
        expected: u64,
    },
}

impl std::fmt::Display for WarmStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WarmStateError::Io(e) => write!(f, "warm-state IO error: {e}"),
            WarmStateError::Format(m) => write!(f, "warm-state format error: {m}"),
            WarmStateError::StaleSidecar { stored, expected } => write!(
                f,
                "warm state is for graph fingerprint {stored:#x}, not {expected:#x} — start cold"
            ),
        }
    }
}

impl std::error::Error for WarmStateError {}

impl From<io::Error> for WarmStateError {
    fn from(e: io::Error) -> Self {
        WarmStateError::Io(e)
    }
}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> Result<u32, WarmStateError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64(r: &mut impl Read) -> Result<u64, WarmStateError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Write the cache's warm state to `w`, stamped as exact for the graph
/// whose [`pivote_kg::snapshot::fingerprint`] is `graph_fingerprint`.
pub fn save_warm(
    cache: &SharedCache,
    graph_fingerprint: u64,
    w: &mut impl Write,
) -> Result<(), WarmStateError> {
    let (features, probs) = cache.export_entries();
    w.write_all(MAGIC)?;
    write_u32(w, VERSION)?;
    write_u64(w, graph_fingerprint)?;
    write_u32(w, features.len() as u32)?;
    for sf in &features {
        write_u32(w, sf.anchor.raw())?;
        write_u32(w, sf.predicate.raw())?;
        w.write_all(&[match sf.direction {
            Direction::FromAnchor => 0,
            Direction::ToAnchor => 1,
        }])?;
    }
    write_u64(w, probs.len() as u64)?;
    for (key, p) in &probs {
        write_u64(w, *key)?;
        write_u64(w, p.to_bits())?;
    }
    Ok(())
}

/// Read warm state back into a fresh [`SharedCache`], refusing the file
/// unless its stored fingerprint equals `expected_fingerprint` (the
/// opened graph's [`pivote_kg::snapshot::fingerprint`] — densities are
/// exact only for the extents they were computed over).
pub fn load_warm(
    expected_fingerprint: u64,
    r: &mut impl Read,
) -> Result<Arc<SharedCache>, WarmStateError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(WarmStateError::Format(
            "bad magic — not a PVWS warm-state file".into(),
        ));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(WarmStateError::Format(format!(
            "unsupported warm-state version {version} (expected {VERSION})"
        )));
    }
    let stored = read_u64(r)?;
    if stored != expected_fingerprint {
        return Err(WarmStateError::StaleSidecar {
            stored,
            expected: expected_fingerprint,
        });
    }
    let n_features = read_u32(r)? as usize;
    // capacity grows as entries actually parse, so a corrupt header
    // count cannot trigger a huge up-front allocation — a bad sidecar
    // must fail with Format/Io, never abort the process
    let mut features = Vec::with_capacity(n_features.min(1 << 16));
    for _ in 0..n_features {
        let anchor = EntityId::new(read_u32(r)?);
        let predicate = PredicateId::new(read_u32(r)?);
        let mut dir = [0u8; 1];
        r.read_exact(&mut dir)?;
        let direction = match dir[0] {
            0 => Direction::FromAnchor,
            1 => Direction::ToAnchor,
            other => return Err(WarmStateError::Format(format!("bad direction tag {other}"))),
        };
        features.push(SemanticFeature {
            anchor,
            predicate,
            direction,
        });
    }
    let n_probs = read_u64(r)? as usize;
    let mut probs = Vec::with_capacity(n_probs.min(1 << 16));
    for _ in 0..n_probs {
        let key = read_u64(r)?;
        let bits = read_u64(r)?;
        probs.push((key, f64::from_bits(bits)));
    }
    Ok(Arc::new(SharedCache::import_entries(features, probs)))
}

/// The conventional sidecar path for a snapshot at `snapshot_path`:
/// `<snapshot_path>.warm`.
pub fn warm_sidecar_path(snapshot_path: impl AsRef<std::path::Path>) -> std::path::PathBuf {
    let mut p = snapshot_path.as_ref().as_os_str().to_owned();
    p.push(".warm");
    std::path::PathBuf::from(p)
}

/// Save the cache's warm state to `path`, stamped for the graph whose
/// snapshot fingerprint is `graph_fingerprint`.
pub fn save_warm_state(
    cache: &SharedCache,
    graph_fingerprint: u64,
    path: impl AsRef<std::path::Path>,
) -> Result<(), WarmStateError> {
    let mut file = io::BufWriter::new(std::fs::File::create(path)?);
    save_warm(cache, graph_fingerprint, &mut file)?;
    file.flush()?;
    Ok(())
}

/// Load a warm-state sidecar from `path` for a graph whose snapshot
/// fingerprint is `expected_fingerprint`.
pub fn load_warm_state(
    path: impl AsRef<std::path::Path>,
    expected_fingerprint: u64,
) -> Result<Arc<SharedCache>, WarmStateError> {
    let mut file = io::BufReader::new(std::fs::File::open(path)?);
    load_warm(expected_fingerprint, &mut file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RankingConfig;
    use crate::context::QueryContext;
    use pivote_kg::snapshot::fingerprint;
    use pivote_kg::{generate, DatagenConfig};

    #[test]
    fn warm_state_roundtrips_exactly() {
        let kg = generate(&DatagenConfig::tiny());
        let fp = fingerprint(&kg);
        let cache = Arc::new(SharedCache::new());
        let cfg = RankingConfig::default();
        let film = kg.type_id("Film").unwrap();
        let seeds = kg.type_extent(film)[..2].to_vec();
        {
            let ctx = QueryContext::with_cache(&kg, 1, Arc::clone(&cache));
            let f = ctx.rank_features(&cfg, &seeds);
            let _ = ctx.rank_entities(&cfg, &seeds, &f);
        }
        let filled = cache.cached_probability_count();
        assert!(filled > 0, "queries must fill the cache");

        let mut buf = Vec::new();
        save_warm(&cache, fp, &mut buf).unwrap();
        let warm = load_warm(fp, &mut buf.as_slice()).unwrap();
        assert_eq!(warm.cached_probability_count(), filled);
        assert_eq!(warm.feature_count(), cache.feature_count());
        // the exported entries are bit-identical after the roundtrip
        assert_eq!(cache.export_entries().0, warm.export_entries().0);
        let (_, a) = cache.export_entries();
        let (_, b) = warm.export_entries();
        for ((ka, va), (kb, vb)) in a.iter().zip(&b) {
            assert_eq!(ka, kb);
            assert_eq!(va.to_bits(), vb.to_bits(), "density bits drifted");
        }
    }

    #[test]
    fn stale_fingerprint_is_refused() {
        let cache = SharedCache::new();
        let mut buf = Vec::new();
        save_warm(&cache, 3, &mut buf).unwrap();
        let err = load_warm(4, &mut buf.as_slice()).unwrap_err();
        assert!(matches!(
            err,
            WarmStateError::StaleSidecar {
                stored: 3,
                expected: 4
            }
        ));
    }

    #[test]
    fn garbage_is_refused() {
        assert!(load_warm(0, &mut &b"NOPE0000"[..]).is_err());
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        let err = load_warm(0, &mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn corrupt_counts_fail_without_huge_allocations() {
        // a sidecar claiming ~4 billion densities must error out on the
        // truncated body, not abort on an up-front allocation
        let cache = SharedCache::new();
        let mut buf = Vec::new();
        save_warm(&cache, 7, &mut buf).unwrap();
        let density_count_at = buf.len() - 8; // empty cache: trailing u64 count
        buf[density_count_at..].copy_from_slice(&(u32::MAX as u64).to_le_bytes());
        assert!(matches!(
            load_warm(7, &mut buf.as_slice()),
            Err(WarmStateError::Io(_))
        ));
    }

    #[test]
    fn sidecar_path_is_derived_from_the_snapshot_path() {
        assert_eq!(
            warm_sidecar_path("/tmp/graph.pvte"),
            std::path::PathBuf::from("/tmp/graph.pvte.warm")
        );
    }
}

//! Concurrency guarantees of the shared QueryContext and its sharded
//! sibling: parallel and sequential execution produce bit-identical
//! rankings, concurrent engines hammering one context agree with
//! isolated engines, and the bounded top-k selection is a true prefix of
//! the full ranking.

use pivote_core::{
    Expander, GraphHandle, QueryContext, RankedEntity, Ranker, RankingConfig, SfQuery,
    ShardedContext,
};
use pivote_kg::{generate, shard_counts_from_env, DatagenConfig, EntityId, KnowledgeGraph};
use std::sync::Arc;

fn seeds_of(kg: &KnowledgeGraph, n: usize) -> Vec<EntityId> {
    let film = kg.type_id("Film").expect("Film type");
    kg.type_extent(film)[..n.min(kg.type_extent(film).len())].to_vec()
}

fn assert_same_ranking(a: &[RankedEntity], b: &[RankedEntity], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length diverged");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.entity, y.entity, "{what}: order diverged");
        assert!(
            (x.score - y.score).abs() == 0.0,
            "{what}: score not bit-identical: {} vs {}",
            x.score,
            y.score
        );
    }
}

#[test]
fn parallel_and_sequential_rankings_are_bit_identical() {
    // a graph large enough that the parallel path actually engages
    // (candidate pools exceed the MIN_PARALLEL_ITEMS threshold)
    let kg = generate(&DatagenConfig::small());
    let seeds = seeds_of(&kg, 3);
    let sequential = Ranker::with_context(
        Arc::new(QueryContext::with_threads(&kg, 1)),
        RankingConfig::default(),
    );
    let features = sequential.rank_features(&seeds);
    let baseline = sequential.rank_entities(&seeds, &features);
    assert!(
        baseline.len() > 200,
        "fixture too small to exercise parallelism"
    );

    for threads in [2, 3, 4, 8] {
        let parallel = Ranker::with_context(
            Arc::new(QueryContext::with_threads(&kg, threads)),
            RankingConfig::default(),
        );
        let par_features = parallel.rank_features(&seeds);
        assert_eq!(
            features, par_features,
            "feature ranking diverged at {threads} threads"
        );
        let ranked = parallel.rank_entities(&seeds, &par_features);
        assert_same_ranking(&baseline, &ranked, &format!("{threads} threads"));
    }
}

#[test]
fn top_k_is_a_prefix_of_the_full_ranking() {
    let kg = generate(&DatagenConfig::small());
    let seeds = seeds_of(&kg, 2);
    let ranker = Ranker::new(&kg, RankingConfig::default());
    let features = ranker.rank_features(&seeds);
    let full = ranker.rank_entities(&seeds, &features);
    for k in [1, 5, 20, 100, full.len(), full.len() + 50] {
        let topk = ranker.rank_entities_top_k(&seeds, &features, k, |_| true);
        assert_same_ranking(&full[..k.min(full.len())], &topk, &format!("top-{k}"));
    }
}

#[test]
fn concurrent_queries_on_one_context_match_isolated_runs() {
    let kg = generate(&DatagenConfig::small());
    let ctx = Arc::new(QueryContext::new(&kg));
    let film = kg.type_id("Film").expect("Film type");
    let all_seeds: Vec<Vec<EntityId>> = (0..8)
        .map(|i| kg.type_extent(film)[i..i + 2].to_vec())
        .collect();

    // expected results from isolated, sequential engines
    let expected: Vec<Vec<RankedEntity>> = all_seeds
        .iter()
        .map(|seeds| {
            let expander = Expander::with_context(
                Arc::new(QueryContext::with_threads(&kg, 1)),
                RankingConfig::default(),
            );
            expander
                .expand(&SfQuery::from_seeds(seeds.clone()), 25, 10)
                .entities
        })
        .collect();

    // hammer one shared context from many threads at once
    let got: Vec<Vec<RankedEntity>> = std::thread::scope(|scope| {
        let handles: Vec<_> = all_seeds
            .iter()
            .map(|seeds| {
                let ctx = Arc::clone(&ctx);
                scope.spawn(move || {
                    let expander = Expander::with_context(ctx, RankingConfig::default());
                    expander
                        .expand(&SfQuery::from_seeds(seeds.clone()), 25, 10)
                        .entities
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("query thread"))
            .collect()
    });

    for (i, (exp, act)) in expected.iter().zip(&got).enumerate() {
        assert_same_ranking(exp, act, &format!("concurrent query {i}"));
    }
    assert!(
        ctx.cached_probability_count() > 0,
        "shared cache should have been populated"
    );
}

#[test]
fn concurrent_sessions_on_one_sharded_context_match_sequential_runs() {
    // Many "sessions" (expansion queries) hammering ONE ShardedContext
    // concurrently must produce exactly what isolated sequential
    // single-graph runs produce — the shared global probability cache,
    // the per-shard feature tables and the heap merge are all exercised
    // under contention.
    let kg = generate(&DatagenConfig::small());
    let film = kg.type_id("Film").expect("Film type");
    let all_seeds: Vec<Vec<EntityId>> = (0..8)
        .map(|i| kg.type_extent(film)[i..i + 2].to_vec())
        .collect();

    // expected results from isolated, sequential single-graph engines
    let expected: Vec<Vec<RankedEntity>> = all_seeds
        .iter()
        .map(|seeds| {
            let expander = Expander::with_context(
                Arc::new(QueryContext::with_threads(&kg, 1)),
                RankingConfig::default(),
            );
            expander
                .expand(&SfQuery::from_seeds(seeds.clone()), 25, 10)
                .entities
        })
        .collect();

    for shards in shard_counts_from_env(&[2, 3]) {
        let sg = pivote_kg::ShardedGraph::from_graph(&kg, shards);
        let ctx = Arc::new(ShardedContext::new(&sg));
        let got: Vec<Vec<RankedEntity>> = std::thread::scope(|scope| {
            let handles: Vec<_> = all_seeds
                .iter()
                .map(|seeds| {
                    let handle = GraphHandle::Sharded(Arc::clone(&ctx));
                    scope.spawn(move || {
                        let expander = Expander::with_handle(handle, RankingConfig::default());
                        expander
                            .expand(&SfQuery::from_seeds(seeds.clone()), 25, 10)
                            .entities
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("query thread"))
                .collect()
        });
        for (i, (exp, act)) in expected.iter().zip(&got).enumerate() {
            assert_same_ranking(
                exp,
                act,
                &format!("concurrent sharded query {i} (shards={shards})"),
            );
        }
        assert!(
            ctx.cached_probability_count() > 0,
            "shared sharded cache should have been populated"
        );
    }
}

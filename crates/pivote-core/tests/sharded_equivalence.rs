//! The sharded/merge layer's contract, property-tested: for **any**
//! randomly generated graph and query, the sharded execution layer
//! produces **bit-for-bit** the same feature and entity rankings as the
//! single-graph `QueryContext`, across shard counts 1–4 and worker-thread
//! counts 1–2.
//!
//! This is the regression net for the shard router, the per-shard id
//! remap, the owned-prefix extent decomposition and the top-k heap merge:
//! any drift in one of them breaks exact score equality here.
//!
//! The shard-count matrix honours `PIVOTE_SHARDS` (e.g. the CI sharded
//! matrix runs `PIVOTE_SHARDS=1` and `PIVOTE_SHARDS=4`); it defaults to
//! 1–4, which includes shard counts near and above the 12-entity id
//! space so empty and near-empty shards are exercised on every case.

use pivote_core::{GraphHandle, RankingConfig, SfQuery};
use pivote_kg::{shard_counts_from_env, KgBuilder, KnowledgeGraph, ShardedGraph};
use proptest::prelude::*;

/// A random small KG: entities e0..e11, predicates p0..p3, a random edge
/// list, random categories over 3, random types over 2.
fn random_kg() -> impl Strategy<Value = KnowledgeGraph> {
    let edges = proptest::collection::vec((0u8..12, 0u8..4, 0u8..12), 1..48);
    let cats = proptest::collection::vec((0u8..12, 0u8..3), 0..24);
    let types = proptest::collection::vec((0u8..12, 0u8..2), 0..16);
    (edges, cats, types).prop_map(|(edges, cats, types)| {
        let mut b = KgBuilder::new();
        for i in 0..12u8 {
            b.entity(&format!("e{i}"));
        }
        for (s, p, o) in edges {
            let s = b.entity(&format!("e{s}"));
            let p = b.predicate(&format!("p{p}"));
            let o = b.entity(&format!("e{o}"));
            b.triple(s, p, o);
        }
        for (e, c) in cats {
            let e = b.entity(&format!("e{e}"));
            b.categorized(e, &format!("c{c}"));
        }
        for (e, t) in types {
            let e = b.entity(&format!("e{e}"));
            b.typed(e, &format!("t{t}"));
        }
        b.finish()
    })
}

fn configs() -> Vec<RankingConfig> {
    vec![
        RankingConfig::default(),
        RankingConfig::default().without_error_tolerance(),
        RankingConfig::default().without_discriminability(),
    ]
}

fn shard_matrix() -> Vec<usize> {
    shard_counts_from_env(&[1, 2, 3, 4])
}

/// Hard equality on scores: the sharded layer promises bit-identical
/// results, so no epsilon is allowed anywhere in this file.
macro_rules! assert_bits {
    ($a:expr, $b:expr, $($ctx:tt)*) => {
        prop_assert!(($a - $b).abs() == 0.0, $($ctx)*)
    };
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Top-k feature and entity rankings are bit-identical between the
    /// single-graph and sharded backends for every shard/thread combo.
    #[test]
    fn prop_sharded_rankings_equal_single(
        kg in random_kg(),
        seed_a in 0u8..12,
        seed_b in 0u8..12,
        k in 1usize..20,
    ) {
        let seeds: Vec<_> = {
            let mut s = vec![
                kg.entity(&format!("e{seed_a}")).unwrap(),
                kg.entity(&format!("e{seed_b}")).unwrap(),
            ];
            s.sort_unstable();
            s.dedup();
            s
        };
        for config in configs() {
            let single = GraphHandle::single_with_threads(&kg, 1);
            let want_features = single.rank_features(&config, &seeds);
            let want_entities = single.rank_entities(&config, &seeds, &want_features);
            let want_top_k =
                single.rank_entities_top_k(&config, &seeds, &want_features, k, |_| true);

            for shards in shard_matrix() {
                let sg = ShardedGraph::from_graph(&kg, shards);
                for threads in [1, 2] {
                    let sharded = GraphHandle::sharded_with_threads(&sg, threads);
                    let features = sharded.rank_features(&config, &seeds);
                    prop_assert_eq!(
                        features.len(), want_features.len(),
                        "feature count diverged (shards={}, threads={})", shards, threads
                    );
                    for (a, b) in features.iter().zip(&want_features) {
                        prop_assert_eq!(a.feature, b.feature);
                        assert_bits!(a.score, b.score,
                            "feature score diverged (shards={}, threads={})", shards, threads);
                        assert_bits!(a.discriminability, b.discriminability, "d(π) diverged");
                        assert_bits!(a.commonality, b.commonality, "c(π,Q) diverged");
                    }
                    let entities = sharded.rank_entities(&config, &seeds, &features);
                    prop_assert_eq!(entities.len(), want_entities.len());
                    for (a, b) in entities.iter().zip(&want_entities) {
                        prop_assert_eq!(a.entity, b.entity,
                            "entity order diverged (shards={}, threads={})", shards, threads);
                        assert_bits!(a.score, b.score, "entity score diverged");
                    }
                    let top_k =
                        sharded.rank_entities_top_k(&config, &seeds, &features, k, |_| true);
                    prop_assert_eq!(top_k.len(), want_top_k.len(), "top-k length diverged");
                    for (a, b) in top_k.iter().zip(&want_top_k) {
                        prop_assert_eq!(a.entity, b.entity, "top-{} diverged", k);
                        assert_bits!(a.score, b.score, "top-{} score diverged", k);
                    }
                }
            }
        }
    }

    /// Full structured-query expansion (seeds + required features + type
    /// filter) agrees across backends, including the heat-map inputs
    /// `p(π|e)·r(π,Q)` it is built from.
    #[test]
    fn prop_sharded_expansion_equals_single(
        kg in random_kg(),
        seed in 0u8..12,
        use_type in 0u8..2,
    ) {
        use pivote_core::Expander;
        let e = kg.entity(&format!("e{seed}")).unwrap();
        let mut query = SfQuery::from_seeds(vec![e]);
        if use_type == 1 {
            query.type_filter = kg.type_id("t0");
        }
        let config = RankingConfig::default();
        let single = Expander::with_handle(GraphHandle::single_with_threads(&kg, 1), config);
        let want = single.expand(&query, 15, 10);
        for shards in shard_matrix() {
            let sg = ShardedGraph::from_graph(&kg, shards);
            let sharded =
                Expander::with_handle(GraphHandle::sharded_with_threads(&sg, 2), config);
            let got = sharded.expand(&query, 15, 10);
            prop_assert_eq!(got.entities.len(), want.entities.len(), "shards={}", shards);
            for (a, b) in got.entities.iter().zip(&want.entities) {
                prop_assert_eq!(a.entity, b.entity);
                assert_bits!(a.score, b.score, "expansion score diverged (shards={})", shards);
            }
            prop_assert_eq!(got.features.len(), want.features.len());
            for (a, b) in got.features.iter().zip(&want.features) {
                prop_assert_eq!(a.feature, b.feature);
                assert_bits!(a.score, b.score, "expansion feature diverged");
            }
        }
    }

    /// The probability substrate itself is exact: p(π|e) agrees bitwise
    /// for every feature × entity pair of the graph.
    #[test]
    fn prop_sharded_probabilities_equal_single(kg in random_kg()) {
        let config = RankingConfig::default();
        let single = GraphHandle::single_with_threads(&kg, 1);
        for shards in shard_matrix() {
            let sg = ShardedGraph::from_graph(&kg, shards);
            let sharded = GraphHandle::sharded_with_threads(&sg, 1);
            for e in kg.entity_ids() {
                for sf in single.features_of(e) {
                    prop_assert_eq!(
                        single.feature_extent_len(sf),
                        sharded.feature_extent_len(sf),
                        "‖E(π)‖ diverged (shards={})", shards
                    );
                    for probe in kg.entity_ids() {
                        let a = single.p_feature_given_entity(&config, sf, probe);
                        let b = sharded.p_feature_given_entity(&config, sf, probe);
                        assert_bits!(a, b, "p(π|e) diverged (shards={})", shards);
                    }
                }
            }
        }
    }
}

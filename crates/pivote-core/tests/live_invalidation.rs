//! The generation-stamped cache-invalidation contract of the live
//! execution layer:
//!
//! - an append touching predicate π drops **exactly** the cached
//!   `p(π|c)` entries whose feature extent or context extent changed —
//!   observable through the [`SharedCache`] probe API and its generation
//!   counter — and every untouched density survives;
//! - the same precision holds for the sharded backend's shared cache;
//! - appends racing queries on one shared [`LiveStore`] never produce a
//!   torn read: at quiescence the rankings equal a from-scratch rebuild
//!   of the union.

use pivote_core::{LiveStore, QueryContext, RankingConfig, SemanticFeature, ShardedContext};
use pivote_kg::{generate, DatagenConfig, DeltaBatch, EntityId, KnowledgeGraph, ShardedGraph};
use std::sync::Arc;

fn base() -> KnowledgeGraph {
    generate(&DatagenConfig::tiny())
}

/// Two features over distinct predicates anchored at entities with
/// categories, plus a probe category for each.
fn fixture(kg: &KnowledgeGraph) -> (SemanticFeature, SemanticFeature) {
    let starring = kg.predicate("starring").expect("starring");
    let director = kg.predicate("director").expect("director");
    let actor = kg.type_id("Actor").expect("Actor");
    let director_t = kg.type_id("Director").expect("Director");
    let a = kg.type_extent(actor)[0];
    let d = kg.type_extent(director_t)[0];
    (
        SemanticFeature::to_anchor(a, starring),
        SemanticFeature::to_anchor(d, director),
    )
}

#[test]
fn append_drops_exactly_the_touched_densities() {
    let live = LiveStore::with_threads(base(), 1);
    let (touched_sf, untouched_sf, cat_touched, cat_untouched, anchor_name) = {
        let reader = live.read();
        let kg = reader.kg();
        let (sf_star, sf_dir) = fixture(kg);
        let film = kg.type_id("Film").unwrap();
        let f = kg.type_extent(film)[0];
        let mut cats = kg.categories_of(f);
        let cat_a = cats.next().expect("film has categories");
        let cat_b = cats.next().expect("film has two categories");
        let ctx = reader.ctx();
        // fill four densities: touched-feature × {touched, untouched}
        // category, untouched-feature × the same two categories
        for sf in [sf_star, sf_dir] {
            for c in [cat_a, cat_b] {
                let _ = ctx.p_for_category(sf, c);
            }
        }
        (
            sf_star,
            sf_dir,
            cat_a,
            cat_b,
            kg.entity_name(sf_star.anchor).to_owned(),
        )
    };
    let cache = Arc::clone(live.cache());
    assert_eq!(cache.generation(), 0);
    let filled = cache.cached_probability_count();
    assert!(filled >= 4, "fixture must fill the cache");
    assert!(cache.probe_category(touched_sf, cat_touched).is_some());
    assert!(cache.probe_category(untouched_sf, cat_untouched).is_some());

    // append one triple into the touched feature's extent (new film
    // starring the anchor) and one category assertion into cat_touched
    let cat_name = {
        let reader = live.read();
        reader.kg().category_name(cat_touched).to_owned()
    };
    let mut delta = DeltaBatch::new();
    delta
        .triple("Freshly_Appended_Film", "starring", &anchor_name)
        .categorized("Freshly_Appended_Film", cat_name);
    let receipt = live.append(&delta).expect("store healthy");
    assert_eq!(receipt.touched_in.len(), 1, "one feature extent touched");
    assert_eq!(receipt.touched_categories.len(), 1);

    // generation observable; exactly the affected entries dropped
    assert_eq!(cache.generation(), 1);
    assert!(
        cache.probe_category(touched_sf, cat_touched).is_none(),
        "touched feature × touched category must be dropped"
    );
    assert!(
        cache.probe_category(touched_sf, cat_untouched).is_none(),
        "touched feature's densities must be dropped for every context"
    );
    assert!(
        cache.probe_category(untouched_sf, cat_touched).is_none(),
        "touched category's densities must be dropped for every feature"
    );
    assert!(
        cache.probe_category(untouched_sf, cat_untouched).is_some(),
        "a density over an untouched feature AND untouched category must survive"
    );

    // the surviving entry is *correct*: recomputing from scratch on the
    // union gives the same value
    let survived = cache.probe_category(untouched_sf, cat_untouched).unwrap();
    let mut union = base();
    union.apply(&delta);
    let fresh = QueryContext::with_threads(&union, 1);
    assert!((fresh.p_for_category(untouched_sf, cat_untouched) - survived).abs() == 0.0);
    // and the dropped one recomputes to the new truth through the cache
    let reader = live.read();
    let got = reader.ctx().p_for_category(touched_sf, cat_touched);
    assert!((fresh.p_for_category(touched_sf, cat_touched) - got).abs() == 0.0);
}

#[test]
fn sharded_cache_invalidates_with_the_same_precision() {
    let kg = base();
    let (sf_star, sf_dir) = fixture(&kg);
    let cat = {
        let film = kg.type_id("Film").unwrap();
        kg.categories_of(kg.type_extent(film)[0])
            .next()
            .expect("category")
    };
    let anchor_name = kg.entity_name(sf_star.anchor).to_owned();

    let mut sg = ShardedGraph::from_graph(&kg, 3);
    let cache = Arc::new(pivote_core::SharedCache::new());
    {
        let ctx = ShardedContext::with_cache(&sg, 1, Arc::clone(&cache));
        let _ = ctx.p_for_category(sf_star, cat);
        let _ = ctx.p_for_category(sf_dir, cat);
    }
    let mut delta = DeltaBatch::new();
    delta.triple("Freshly_Appended_Film", "starring", anchor_name);
    let receipt = sg.apply(&delta);
    let dropped_receipt = cache.invalidate(&receipt);
    assert_eq!(cache.generation(), 1);
    assert_eq!(dropped_receipt, 1, "exactly the starring density drops");
    assert!(cache.probe_category(sf_star, cat).is_none());
    assert!(cache.probe_category(sf_dir, cat).is_some());

    // the refilled value is the exact global quantity of the new graph
    let ctx = ShardedContext::with_cache(&sg, 1, Arc::clone(&cache));
    let got = ctx.p_for_category(sf_star, cat);
    let mut union = base();
    union.apply(&delta);
    let fresh = QueryContext::with_threads(&union, 1);
    assert!((fresh.p_for_category(sf_star, cat) - got).abs() == 0.0);
}

#[test]
fn appends_racing_queries_converge_to_the_union() {
    let cfg = RankingConfig::default();
    let live = Arc::new(LiveStore::with_threads(base(), 1));
    let (seeds, star_names) = {
        let reader = live.read();
        let kg = reader.kg();
        let film = kg.type_id("Film").unwrap();
        let seeds: Vec<EntityId> = kg.type_extent(film)[..2].to_vec();
        let actor = kg.type_id("Actor").unwrap();
        let names: Vec<String> = kg.type_extent(actor)[..4]
            .iter()
            .map(|&a| kg.entity_name(a).to_owned())
            .collect();
        (seeds, names)
    };
    let deltas: Vec<DeltaBatch> = (0..8)
        .map(|i| {
            let mut d = DeltaBatch::new();
            d.triple(
                format!("Raced_Film_{i}"),
                "starring",
                star_names[i % star_names.len()].clone(),
            )
            .typed(format!("Raced_Film_{i}"), "Film");
            d
        })
        .collect();

    // query threads hammer the live graph while the appender applies
    // every delta; queries must never tear (extents and cache always
    // consistent) — the rankings they return are simply those of
    // whichever generation their read guard admitted
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let live = Arc::clone(&live);
            let seeds = seeds.clone();
            scope.spawn(move || {
                for _ in 0..12 {
                    let reader = live.read();
                    let ctx = reader.ctx();
                    let features = ctx.rank_features(&cfg, &seeds);
                    let entities = ctx.rank_entities(&cfg, &seeds, &features);
                    // internal consistency of whatever snapshot we got
                    assert!(entities.windows(2).all(|w| {
                        w[0].score > w[1].score
                            || (w[0].score == w[1].score && w[0].entity < w[1].entity)
                    }));
                }
            });
        }
        let live = Arc::clone(&live);
        let deltas = &deltas;
        scope.spawn(move || {
            for d in deltas {
                live.append(d).expect("store healthy");
            }
        });
    });
    assert_eq!(live.generation(), 8);

    // quiescent state equals the from-scratch rebuild of the union
    let mut union = base();
    for d in &deltas {
        union.apply(d);
    }
    let fresh = QueryContext::with_threads(&union, 1);
    let want_f = fresh.rank_features(&cfg, &seeds);
    let want_e = fresh.rank_entities(&cfg, &seeds, &want_f);
    let reader = live.read();
    let ctx = reader.ctx();
    let got_f = ctx.rank_features(&cfg, &seeds);
    assert_eq!(got_f, want_f, "post-race features must equal the union");
    let got_e = ctx.rank_entities(&cfg, &seeds, &got_f);
    assert_eq!(got_e.len(), want_e.len());
    for (a, b) in got_e.iter().zip(&want_e) {
        assert_eq!(a.entity, b.entity);
        assert!((a.score - b.score).abs() == 0.0, "post-race score drifted");
    }
}

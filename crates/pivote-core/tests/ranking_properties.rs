//! Property tests of the ranking model over randomly generated small
//! knowledge graphs: the probabilistic quantities must stay in range and
//! the documented invariants must hold for *any* graph shape.

use pivote_core::{features_of, RankedEntity, Ranker, RankingConfig};
use pivote_kg::{KgBuilder, KnowledgeGraph};
use proptest::prelude::*;

/// A random small KG: entities e0..e11, predicates p0..p3, a random edge
/// list, and random category assignments over 3 categories.
fn random_kg() -> impl Strategy<Value = KnowledgeGraph> {
    let edges = proptest::collection::vec((0u8..12, 0u8..4, 0u8..12), 1..48);
    let cats = proptest::collection::vec((0u8..12, 0u8..3), 0..24);
    (edges, cats).prop_map(|(edges, cats)| {
        let mut b = KgBuilder::new();
        for i in 0..12u8 {
            b.entity(&format!("e{i}"));
        }
        for (s, p, o) in edges {
            let s = b.entity(&format!("e{s}"));
            let p = b.predicate(&format!("p{p}"));
            let o = b.entity(&format!("e{o}"));
            b.triple(s, p, o);
        }
        for (e, c) in cats {
            let e = b.entity(&format!("e{e}"));
            b.categorized(e, &format!("c{c}"));
        }
        b.finish()
    })
}

fn configs() -> Vec<RankingConfig> {
    vec![
        RankingConfig::default(),
        RankingConfig::default().without_error_tolerance(),
        RankingConfig::default().without_discriminability(),
        RankingConfig {
            min_extent: 1,
            exclude_seeds: false,
            ..RankingConfig::default()
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// p(π|e) ∈ [0,1]; exact matches give exactly 1.
    #[test]
    fn prop_probability_bounds(kg in random_kg(), seed in 0u8..12) {
        let e = kg.entity(&format!("e{seed}")).unwrap();
        for config in configs() {
            let ranker = Ranker::new(&kg, config);
            for sf in features_of(&kg, e) {
                let p = ranker.p_feature_given_entity(sf, e);
                prop_assert!((p - 1.0).abs() < 1e-12, "own feature must have p=1");
                // probe all other entities too
                for other in kg.entity_ids() {
                    let p = ranker.p_feature_given_entity(sf, other);
                    prop_assert!((0.0..=1.0 + 1e-12).contains(&p), "p out of range: {p}");
                }
            }
        }
    }

    /// Ranked feature lists are sorted, positive, and consistent with
    /// score = d × c.
    #[test]
    fn prop_feature_ranking_invariants(kg in random_kg(), seed in 0u8..12) {
        let e = kg.entity(&format!("e{seed}")).unwrap();
        for config in configs() {
            let ranker = Ranker::new(&kg, config);
            let ranked = ranker.rank_features(&[e]);
            prop_assert!(ranked.windows(2).all(|w| w[0].score >= w[1].score));
            for rf in &ranked {
                prop_assert!(rf.score > 0.0);
                prop_assert!((rf.score - rf.discriminability * rf.commonality).abs() < 1e-12);
                prop_assert!(rf.feature.extent_size(&kg) >= config.min_extent.max(1));
            }
        }
    }

    /// Entity ranking: scores non-negative, sorted, no seeds (when
    /// excluded), no duplicates; parallel equals sequential.
    #[test]
    fn prop_entity_ranking_invariants(kg in random_kg(), seed in 0u8..12) {
        let e = kg.entity(&format!("e{seed}")).unwrap();
        let ranker = Ranker::new(&kg, RankingConfig::default());
        let features = ranker.rank_features(&[e]);
        let ranked = ranker.rank_entities(&[e], &features);
        prop_assert!(ranked.windows(2).all(|w| w[0].score >= w[1].score));
        prop_assert!(ranked.iter().all(|re| re.score >= 0.0));
        prop_assert!(ranked.iter().all(|re| re.entity != e), "seed leaked");
        let mut ids: Vec<_> = ranked.iter().map(|re| re.entity).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), ranked.len(), "duplicate candidates");

        let par = ranker.rank_entities_parallel(&[e], &features, 3);
        let same = ranked
            .iter()
            .zip(&par)
            .all(|(a, b): (&RankedEntity, &RankedEntity)| {
                a.entity == b.entity && (a.score - b.score).abs() < 1e-12
            });
        prop_assert!(same && ranked.len() == par.len(), "parallel ranking diverged");
    }

    /// Disabling error tolerance can only remove candidate mass: every
    /// entity's score under the ablation is ≤ its score under the full
    /// model (same feature set).
    #[test]
    fn prop_error_tolerance_only_adds_mass(kg in random_kg(), seed in 0u8..12) {
        let e = kg.entity(&format!("e{seed}")).unwrap();
        let full = Ranker::new(&kg, RankingConfig::default());
        let hard = Ranker::new(&kg, RankingConfig::default().without_error_tolerance());
        // shared feature set: the full model's (scores differ only in c)
        let features = full.rank_features(&[e]);
        for re in hard.rank_entities(&[e], &features) {
            let full_score = full.score_entity(re.entity, &features);
            prop_assert!(full_score >= re.score - 1e-12,
                "full {} < hard {}", full_score, re.score);
        }
    }
}

//! Bench T1 — Table 1: building the five-field entity representation,
//! for one entity and for the whole collection (index construction).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pivote_bench::{bench_kg, flagship_film};
use pivote_search::{FiveFieldRepr, SearchConfig, SearchEngine};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let kg = bench_kg();
    let flagship = flagship_film(&kg);

    let mut group = c.benchmark_group("table1_fields");
    group.bench_function("single_entity_repr", |b| {
        b.iter(|| black_box(FiveFieldRepr::build(&kg, black_box(flagship), 128)))
    });
    group.bench_function("single_entity_repr_render", |b| {
        b.iter_batched(
            || FiveFieldRepr::build(&kg, flagship, 128),
            |repr| black_box(repr.to_table(3)),
            BatchSize::SmallInput,
        )
    });
    group.sample_size(10);
    group.bench_function("full_index_build", |b| {
        b.iter(|| black_box(SearchEngine::build(&kg, SearchConfig::default())))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);

//! Bench F1b — Fig. 1-b: computing the type-coupling statistics over the
//! whole graph and rendering the type view for the Film domain.

use criterion::{criterion_group, criterion_main, Criterion};
use pivote_bench::bench_kg;
use pivote_kg::TypeCouplingStats;
use pivote_viz::{typeview_ascii, typeview_svg};
use std::hint::black_box;

fn bench_typeview(c: &mut Criterion) {
    let kg = bench_kg();
    let film = kg.type_id("Film").expect("Film type");

    let mut group = c.benchmark_group("fig1_typeview");
    group.sample_size(20);
    group.bench_function("coupling_stats_compute", |b| {
        b.iter(|| black_box(TypeCouplingStats::compute(&kg)))
    });
    let stats = TypeCouplingStats::compute(&kg);
    group.bench_function("couplings_from_film", |b| {
        b.iter(|| black_box(stats.couplings_from(black_box(film))))
    });
    group.bench_function("render_ascii", |b| {
        b.iter(|| black_box(typeview_ascii(&kg, &stats, film, 8)))
    });
    group.bench_function("render_svg", |b| {
        b.iter(|| black_box(typeview_svg(&kg, &stats, film, 8)))
    });
    group.finish();
}

criterion_group!(benches, bench_typeview);
criterion_main!(benches);

//! Bench Q3 — scaling: feature ranking and entity ranking latency as the
//! knowledge graph grows (the paper's challenge (2)), plus the extent
//! intersection microbenchmark that dominates the smoothed path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pivote_bench::{film_seeds, kg_with_films};
use pivote_core::{extent, Expander, RankingConfig, SfQuery};
use pivote_kg::EntityId;
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ranking_scaling");
    group.sample_size(10);
    for films in [500usize, 2_000, 8_000] {
        let kg = kg_with_films(films);
        let seeds = film_seeds(&kg, 3);
        let expander = Expander::new(&kg, RankingConfig::default());
        // warm the context cache so steady-state latency is measured
        let _ = expander.ranker().rank_features(&seeds);

        group.bench_with_input(BenchmarkId::new("rank_features", films), &films, |b, _| {
            b.iter(|| black_box(expander.ranker().rank_features(black_box(&seeds))))
        });
        let features = expander.ranker().rank_features(&seeds);
        group.bench_with_input(BenchmarkId::new("rank_entities", films), &films, |b, _| {
            b.iter(|| black_box(expander.ranker().rank_entities(&seeds, &features)))
        });
        group.bench_with_input(BenchmarkId::new("expand_full", films), &films, |b, _| {
            let q = SfQuery::from_seeds(seeds.clone());
            b.iter(|| black_box(expander.expand(&q, 20, 15)))
        });
    }
    group.finish();

    // the sorted-set intersection hot loop
    let mut micro = c.benchmark_group("extent_intersection");
    let small: Vec<EntityId> = (0..64u32).map(|i| EntityId::new(i * 97)).collect();
    let large: Vec<EntityId> = (0..100_000u32).map(EntityId::new).collect();
    micro.bench_function("gallop_64_vs_100k", |b| {
        b.iter(|| black_box(extent::intersect_len(black_box(&small), black_box(&large))))
    });
    let mid: Vec<EntityId> = (0..50_000u32).map(|i| EntityId::new(i * 2)).collect();
    micro.bench_function("merge_50k_vs_100k", |b| {
        b.iter(|| black_box(extent::intersect_len(black_box(&mid), black_box(&large))))
    });
    micro.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);

//! Bench Q3 — scaling: feature ranking and entity ranking latency as the
//! knowledge graph grows (the paper's challenge (2)), the sequential vs
//! parallel QueryContext comparison, plus the extent intersection
//! microbenchmark that dominates the smoothed path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pivote_bench::{film_seeds, kg_with_films};
use pivote_core::{extent, Expander, QueryContext, RankingConfig, SfQuery};
use pivote_kg::EntityId;
use std::hint::black_box;
use std::sync::Arc;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ranking_scaling");
    group.sample_size(10);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let sizes = [500usize, 2_000, 8_000];
    for films in sizes {
        let kg = kg_with_films(films);
        let seeds = film_seeds(&kg, 3);
        let expander = Expander::new(&kg, RankingConfig::default());
        // warm the context cache so steady-state latency is measured
        let _ = expander.ranker().rank_features(&seeds);

        group.bench_with_input(BenchmarkId::new("rank_features", films), &films, |b, _| {
            b.iter(|| black_box(expander.ranker().rank_features(black_box(&seeds))))
        });
        let features = expander.ranker().rank_features(&seeds);
        group.bench_with_input(BenchmarkId::new("rank_entities", films), &films, |b, _| {
            b.iter(|| black_box(expander.ranker().rank_entities(&seeds, &features)))
        });
        group.bench_with_input(BenchmarkId::new("expand_full", films), &films, |b, _| {
            let q = SfQuery::from_seeds(seeds.clone());
            b.iter(|| black_box(expander.expand(&q, 20, 15)))
        });

        // sequential (1 worker) vs parallel (all cores) through the shared
        // QueryContext, warmed identically — the multi-core speedup of the
        // execution layer at each scale. On a single-core host the second
        // variant still runs (with 2 workers) so the fan-out overhead is
        // visible; the speedup itself needs real cores.
        for threads in [1usize, cores.max(2)] {
            let ctx = Arc::new(QueryContext::with_threads(&kg, threads));
            let par_expander = Expander::with_context(Arc::clone(&ctx), RankingConfig::default());
            let features = par_expander.ranker().rank_features(&seeds);
            group.bench_with_input(
                BenchmarkId::new(format!("rank_entities_threads_{threads}"), films),
                &films,
                |b, _| b.iter(|| black_box(par_expander.ranker().rank_entities(&seeds, &features))),
            );
        }
    }
    group.finish();

    // the sorted-set intersection hot loop
    let mut micro = c.benchmark_group("extent_intersection");
    let small: Vec<EntityId> = (0..64u32).map(|i| EntityId::new(i * 97)).collect();
    let large: Vec<EntityId> = (0..100_000u32).map(EntityId::new).collect();
    micro.bench_function("gallop_64_vs_100k", |b| {
        b.iter(|| black_box(extent::intersect_len(black_box(&small), black_box(&large))))
    });
    let mid: Vec<EntityId> = (0..50_000u32).map(|i| EntityId::new(i * 2)).collect();
    micro.bench_function("merge_50k_vs_100k", |b| {
        b.iter(|| black_box(extent::intersect_len(black_box(&mid), black_box(&large))))
    });
    micro.bench_function("materialize_merge_50k_vs_100k", |b| {
        b.iter(|| black_box(extent::intersect(black_box(&mid), black_box(&large))))
    });
    micro.bench_function("materialize_gallop_64_vs_100k", |b| {
        b.iter(|| black_box(extent::intersect(black_box(&small), black_box(&large))))
    });
    let a: Vec<EntityId> = (0..30_000u32).map(|i| EntityId::new(i * 3)).collect();
    let views: Vec<&[EntityId]> = vec![&a, &mid, &large];
    micro.bench_function("intersect_k_3way", |b| {
        b.iter(|| black_box(extent::intersect_k(black_box(&views))))
    });
    micro.bench_function("union_k_3way", |b| {
        b.iter(|| black_box(extent::union_k(black_box(&views))))
    });
    micro.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);

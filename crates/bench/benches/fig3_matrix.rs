//! Bench F3 — Fig. 3: the interactive matrix — one full investigation
//! round-trip (rank features, rank entities, compute the heat map) and
//! its rendering. This is the latency a user perceives per click.

use criterion::{criterion_group, criterion_main, Criterion};
use pivote_bench::{bench_kg, flagship_film};
use pivote_core::{Expander, HeatMap, RankingConfig, SfQuery};
use pivote_kg::EntityId;
use pivote_viz::{heatmap_ascii, heatmap_svg};
use std::hint::black_box;

fn bench_matrix(c: &mut Criterion) {
    let kg = bench_kg();
    let flagship = flagship_film(&kg);
    let expander = Expander::new(&kg, RankingConfig::default());
    let query = SfQuery::from_seeds(vec![flagship]);

    let mut group = c.benchmark_group("fig3_matrix");
    group.sample_size(20);
    group.bench_function("full_click_roundtrip", |b| {
        b.iter(|| {
            let res = expander.expand(black_box(&query), 20, 15);
            let axis: Vec<EntityId> = res.entities.iter().map(|re| re.entity).collect();
            black_box(HeatMap::compute(expander.ranker(), &axis, &res.features))
        })
    });

    let res = expander.expand(&query, 20, 15);
    let axis: Vec<EntityId> = res.entities.iter().map(|re| re.entity).collect();
    let hm = HeatMap::compute(expander.ranker(), &axis, &res.features);
    group.bench_function("heatmap_only", |b| {
        b.iter(|| black_box(HeatMap::compute(expander.ranker(), &axis, &res.features)))
    });
    group.bench_function("render_ascii", |b| {
        b.iter(|| black_box(heatmap_ascii(&kg, &hm, 34)))
    });
    group.bench_function("render_svg", |b| {
        b.iter(|| black_box(heatmap_svg(&kg, &hm)))
    });
    group.finish();
}

criterion_group!(benches, bench_matrix);
criterion_main!(benches);

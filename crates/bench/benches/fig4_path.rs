//! Bench F4 — Fig. 4: replaying a scripted exploration session (search →
//! investigate → lookup → pivot → revisit) and rendering its exploratory
//! path.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pivote_bench::{bench_kg, flagship_film};
use pivote_core::{Direction, SemanticFeature};
use pivote_explore::{Session, UserAction};
use pivote_viz::{path_ascii, path_dot, path_svg};
use std::hint::black_box;

fn bench_path(c: &mut Criterion) {
    let kg = bench_kg();
    let flagship = flagship_film(&kg);
    let starring = kg.predicate("starring").expect("starring");
    let cast_feature = SemanticFeature {
        anchor: flagship,
        predicate: starring,
        direction: Direction::FromAnchor,
    };

    let mut group = c.benchmark_group("fig4_path");
    group.sample_size(10);
    // session construction indexes the graph; bench it separately
    group.bench_function("session_build", |b| {
        b.iter(|| black_box(Session::with_defaults(&kg)))
    });
    group.bench_function("scripted_session_replay", |b| {
        b.iter_batched(
            || Session::with_defaults(&kg),
            |mut s| {
                s.submit_keywords(&kg.display_name(flagship));
                s.click_entity(flagship);
                s.lookup(flagship);
                s.pivot(cast_feature);
                s.apply(UserAction::RevisitQuery { index: 0 });
                black_box(s.path().nodes().len())
            },
            BatchSize::PerIteration,
        )
    });

    let mut s = Session::with_defaults(&kg);
    s.submit_keywords(&kg.display_name(flagship));
    s.click_entity(flagship);
    s.lookup(flagship);
    s.pivot(cast_feature);
    let path = s.path().clone();
    group.bench_function("render_ascii", |b| b.iter(|| black_box(path_ascii(&path))));
    group.bench_function("render_dot", |b| b.iter(|| black_box(path_dot(&path))));
    group.bench_function("render_svg", |b| b.iter(|| black_box(path_svg(&path))));
    group.finish();
}

criterion_group!(benches, bench_path);
criterion_main!(benches);

//! Bench A1/A2 — ablation cost: what the error-tolerant smoothing and
//! the candidate pruning knobs cost in latency (their quality effect is
//! measured by `exp_ese_quality`), and the baselines at the same task.

use criterion::{criterion_group, criterion_main, Criterion};
use pivote_baselines::{
    EntityExpansion, FreqOverlapExpansion, JaccardExpansion, PivotEExpansion, PprExpansion,
};
use pivote_bench::{bench_kg, film_seeds};
use pivote_core::{Expander, RankingConfig, SfQuery};
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion) {
    let kg = bench_kg();
    let seeds = film_seeds(&kg, 3);
    let query = SfQuery::from_seeds(seeds.clone());

    let mut group = c.benchmark_group("expansion_ablation");
    group.sample_size(10);

    let configs: [(&str, RankingConfig); 4] = [
        ("full_model", RankingConfig::default()),
        (
            "no_error_tolerance",
            RankingConfig::default().without_error_tolerance(),
        ),
        (
            "no_discriminability",
            RankingConfig::default().without_discriminability(),
        ),
        (
            "no_candidate_smoothing",
            RankingConfig {
                smooth_candidates: false,
                ..RankingConfig::default()
            },
        ),
    ];
    for (name, cfg) in configs {
        group.bench_function(name, |b| {
            // expander construction is cheap; the cache must start cold
            // each iteration to compare the configs fairly
            b.iter(|| {
                let expander = Expander::new(&kg, cfg);
                black_box(expander.expand(black_box(&query), 20, 15))
            })
        });
    }

    // baselines at the same task size
    group.bench_function("baseline_jaccard", |b| {
        b.iter(|| black_box(JaccardExpansion.expand(&kg, &seeds, 20)))
    });
    group.bench_function("baseline_ppr", |b| {
        b.iter(|| black_box(PprExpansion::default().expand(&kg, &seeds, 20)))
    });
    group.bench_function("baseline_freq_overlap", |b| {
        b.iter(|| black_box(FreqOverlapExpansion.expand(&kg, &seeds, 20)))
    });
    group.bench_function("baseline_pivote_trait", |b| {
        b.iter(|| black_box(PivotEExpansion::default().expand(&kg, &seeds, 20)))
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);

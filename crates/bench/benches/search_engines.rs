//! Bench Q2 (efficiency side) — query latency of the paper's
//! mixture-of-LM retrieval vs the BM25F baseline, on short name queries
//! and longer mixed queries.

use criterion::{criterion_group, criterion_main, Criterion};
use pivote_bench::{bench_kg, flagship_film};
use pivote_search::{Scorer, SearchConfig, SearchEngine};
use std::hint::black_box;

fn bench_search(c: &mut Criterion) {
    let kg = bench_kg();
    let engine = SearchEngine::build(&kg, SearchConfig::default());
    let flagship = flagship_film(&kg);
    let name_query = kg.display_name(flagship);
    let long_query = format!("{name_query} american drama film");

    let mut group = c.benchmark_group("search_engines");
    group.bench_function("lm_mixture_name_query", |b| {
        b.iter(|| black_box(engine.search_with(black_box(&name_query), 20, Scorer::MixtureLm)))
    });
    group.bench_function("bm25f_name_query", |b| {
        b.iter(|| black_box(engine.search_with(black_box(&name_query), 20, Scorer::Bm25)))
    });
    group.bench_function("lm_mixture_long_query", |b| {
        b.iter(|| black_box(engine.search_with(black_box(&long_query), 20, Scorer::MixtureLm)))
    });
    group.bench_function("bm25f_long_query", |b| {
        b.iter(|| black_box(engine.search_with(black_box(&long_query), 20, Scorer::Bm25)))
    });
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);

//! Shared fixtures for the criterion benches: pre-generated knowledge
//! graphs at the scales the benchmarks sweep.

use pivote_kg::{generate, DatagenConfig, EntityId, KnowledgeGraph};

/// Generate the standard bench KG (~2k films, ~9k entities).
pub fn bench_kg() -> KnowledgeGraph {
    generate(&DatagenConfig::medium())
}

/// Generate a KG with `films` films (seed fixed at 7).
pub fn kg_with_films(films: usize) -> KnowledgeGraph {
    generate(&DatagenConfig::scaled(films, 7))
}

/// The most connected film — the "Forrest Gump" of a generated graph.
pub fn flagship_film(kg: &KnowledgeGraph) -> EntityId {
    let film = kg.type_id("Film").expect("Film type");
    *kg.type_extent(film)
        .iter()
        .max_by_key(|&&f| kg.degree(f))
        .expect("at least one film")
}

/// The first `n` films (deterministic seed set).
pub fn film_seeds(kg: &KnowledgeGraph, n: usize) -> Vec<EntityId> {
    let film = kg.type_id("Film").expect("Film type");
    kg.type_extent(film)[..n.min(kg.type_extent(film).len())].to_vec()
}

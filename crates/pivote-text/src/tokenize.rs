//! Unicode-light tokenization for entity text.
//!
//! The search engine indexes labels, literals and category names. Tokens
//! are maximal runs of alphanumeric characters, lowercased; underscores
//! are treated as separators because DBpedia resource names use them as
//! spaces (`Forrest_Gump`).

/// Iterator over lowercase tokens of a string.
pub struct Tokens<'a> {
    rest: &'a str,
}

impl<'a> Iterator for Tokens<'a> {
    type Item = String;

    fn next(&mut self) -> Option<String> {
        // skip separators
        let start = self
            .rest
            .char_indices()
            .find(|(_, c)| c.is_alphanumeric())?
            .0;
        self.rest = &self.rest[start..];
        let end = self
            .rest
            .char_indices()
            .find(|(_, c)| !c.is_alphanumeric())
            .map(|(i, _)| i)
            .unwrap_or(self.rest.len());
        let token = self.rest[..end].to_lowercase();
        self.rest = &self.rest[end..];
        Some(token)
    }
}

/// Tokenize `text` into lowercase alphanumeric tokens.
pub fn tokenize(text: &str) -> Tokens<'_> {
    Tokens { rest: text }
}

/// Tokenize into a `Vec` (convenience).
pub fn tokenize_vec(text: &str) -> Vec<String> {
    tokenize(text).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_underscores() {
        assert_eq!(
            tokenize_vec("Forrest_Gump (1994 film)"),
            vec!["forrest", "gump", "1994", "film"]
        );
    }

    #[test]
    fn lowercases() {
        assert_eq!(tokenize_vec("Tom HANKS"), vec!["tom", "hanks"]);
    }

    #[test]
    fn empty_and_symbol_only() {
        assert!(tokenize_vec("").is_empty());
        assert!(tokenize_vec("--- !!! ...").is_empty());
    }

    #[test]
    fn keeps_digits() {
        assert_eq!(tokenize_vec("142 minutes"), vec!["142", "minutes"]);
    }

    #[test]
    fn handles_unicode() {
        assert_eq!(tokenize_vec("Amélie Poulain"), vec!["amélie", "poulain"]);
    }
}

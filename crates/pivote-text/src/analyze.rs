//! The analysis chain: tokenize → stopword filter → light stem.
//!
//! Both the indexer and the query parser must run the *same* chain, so it
//! is packaged as a configurable [`Analyzer`] value that the search engine
//! stores and reuses.

use crate::stem::stem;
use crate::stopwords::is_stopword;
use crate::tokenize::tokenize;

/// Configurable text analysis chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Analyzer {
    /// Remove stopwords after tokenization.
    pub remove_stopwords: bool,
    /// Apply the light stemmer to each remaining token.
    pub stem: bool,
}

impl Default for Analyzer {
    /// The configuration used by the PivotE search engine: stopwords
    /// removed, light stemming on.
    fn default() -> Self {
        Self {
            remove_stopwords: true,
            stem: true,
        }
    }
}

impl Analyzer {
    /// An analyzer that only tokenizes (for exact-name fields).
    pub fn plain() -> Self {
        Self {
            remove_stopwords: false,
            stem: false,
        }
    }

    /// Run the chain over `text`.
    pub fn analyze(&self, text: &str) -> Vec<String> {
        tokenize(text)
            .filter(|t| !(self.remove_stopwords && is_stopword(t)))
            .map(|t| if self.stem { stem(&t) } else { t })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_chain_removes_stopwords_and_stems() {
        let a = Analyzer::default();
        assert_eq!(
            a.analyze("The films of the American directors"),
            vec!["film", "american", "director"]
        );
    }

    #[test]
    fn plain_chain_preserves_everything() {
        let a = Analyzer::plain();
        assert_eq!(a.analyze("The Films"), vec!["the", "films"]);
    }

    #[test]
    fn empty_input() {
        assert!(Analyzer::default().analyze("").is_empty());
        assert!(Analyzer::default().analyze("the of and").is_empty());
    }

    proptest! {
        /// The chain never emits empty tokens and always lowercases.
        #[test]
        fn prop_tokens_nonempty_lowercase(s in ".{0,80}") {
            for t in Analyzer::default().analyze(&s) {
                prop_assert!(!t.is_empty());
                prop_assert_eq!(t.clone(), t.to_lowercase());
            }
        }

        /// Analyzing is deterministic.
        #[test]
        fn prop_deterministic(s in ".{0,80}") {
            let a = Analyzer::default();
            prop_assert_eq!(a.analyze(&s), a.analyze(&s));
        }
    }
}

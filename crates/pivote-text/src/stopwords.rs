//! A small English stopword list tuned for entity labels and abstracts.

/// Stopwords removed from indexed text and queries.
pub const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "has", "he", "her", "his",
    "in", "is", "it", "its", "of", "on", "or", "she", "that", "the", "they", "this", "to", "was",
    "were", "will", "with",
];

/// Whether `token` (already lowercased) is a stopword.
pub fn is_stopword(token: &str) -> bool {
    STOPWORDS.binary_search(&token).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_for_binary_search() {
        assert!(STOPWORDS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn common_words_are_stopwords() {
        for w in ["the", "of", "and", "in"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn content_words_are_not() {
        for w in ["film", "gump", "hanks", "142"] {
            assert!(!is_stopword(w));
        }
    }
}

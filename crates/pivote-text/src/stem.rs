//! A light suffix stemmer (s-stemmer plus a few common endings).
//!
//! Entity search mostly matches names, where aggressive stemming hurts, so
//! this intentionally does much less than full Porter: plural stripping
//! and the `-ing`/`-ed`/`-ly` endings on long-enough words.

/// Stem one lowercase token.
pub fn stem(token: &str) -> String {
    let t = token;
    // Plural s-stemmer rules (Harman 1991).
    if let Some(base) = t.strip_suffix("ies") {
        if base.len() >= 2 {
            return format!("{base}y");
        }
    }
    if let Some(base) = t.strip_suffix("es") {
        if base.len() >= 3
            && (base.ends_with("ss")
                || base.ends_with('x')
                || base.ends_with("ch")
                || base.ends_with("sh"))
        {
            return base.to_owned();
        }
    }
    if let Some(base) = t.strip_suffix('s') {
        if base.len() >= 3 && !base.ends_with('s') && !base.ends_with('u') && !base.ends_with('i') {
            return base.to_owned();
        }
    }
    if let Some(base) = t.strip_suffix("ing") {
        if base.len() >= 4 {
            return base.to_owned();
        }
    }
    if let Some(base) = t.strip_suffix("ed") {
        if base.len() >= 4 {
            return base.to_owned();
        }
    }
    if let Some(base) = t.strip_suffix("ly") {
        if base.len() >= 4 {
            return base.to_owned();
        }
    }
    t.to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plurals() {
        assert_eq!(stem("films"), "film");
        assert_eq!(stem("actors"), "actor");
        assert_eq!(stem("categories"), "category");
        assert_eq!(stem("boxes"), "box");
        assert_eq!(stem("classes"), "class");
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(stem("is"), "is");
        assert_eq!(stem("as"), "as");
        assert_eq!(stem("us"), "us");
    }

    #[test]
    fn ing_ed_ly() {
        assert_eq!(stem("starring"), "starr");
        assert_eq!(stem("directed"), "direct");
        assert_eq!(stem("quietly"), "quiet");
        // too short to strip
        assert_eq!(stem("ring"), "ring");
        assert_eq!(stem("red"), "red");
    }

    #[test]
    fn names_mostly_survive() {
        assert_eq!(stem("hanks"), "hank"); // plural-ish names do strip
        assert_eq!(stem("gump"), "gump");
        assert_eq!(stem("zemeckis"), "zemeckis"); // ends in 's' preceded by 'i'... check
    }

    #[test]
    fn idempotent_on_own_output() {
        for w in ["films", "categories", "starring", "directed", "running"] {
            let once = stem(w);
            assert_eq!(stem(&once), once, "stem not idempotent for {w}");
        }
    }
}

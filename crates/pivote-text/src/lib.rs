//! # pivote-text — text analysis for PivotE entity search
//!
//! The search engine of PivotE (§2.2 of the paper) retrieves entities by
//! keywords over a five-field document representation. This crate is the
//! shared analysis chain: tokenization, stopword removal, and a light
//! suffix stemmer, packaged as an [`Analyzer`] used identically at index
//! and query time.
//!
//! ```
//! use pivote_text::Analyzer;
//! let a = Analyzer::default();
//! assert_eq!(a.analyze("Films starring Tom Hanks"), vec!["film", "starr", "tom", "hank"]);
//! ```

#![warn(missing_docs)]

pub mod analyze;
pub mod stem;
pub mod stopwords;
pub mod tokenize;

pub use analyze::Analyzer;
pub use stem::stem;
pub use stopwords::{is_stopword, STOPWORDS};
pub use tokenize::{tokenize, tokenize_vec, Tokens};

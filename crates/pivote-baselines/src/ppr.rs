//! Personalized PageRank baseline.
//!
//! Random-walk-with-restart from the seed set over the undirected entity
//! graph — the standard graph-proximity recommender. It captures
//! connectivity but not the *semantics* of relations: a film and its
//! shooting location can outrank a film with the same cast.

use crate::{select_top_k, EntityExpansion};
use pivote_core::GraphHandle;
use pivote_kg::{EntityId, KnowledgeGraph};

/// Personalized PageRank via power iteration.
#[derive(Debug, Clone, Copy)]
pub struct PprExpansion {
    /// Restart probability (teleport to seeds).
    pub alpha: f64,
    /// Number of power iterations.
    pub iterations: usize,
}

impl Default for PprExpansion {
    fn default() -> Self {
        Self {
            alpha: 0.15,
            iterations: 20,
        }
    }
}

impl PprExpansion {
    /// Full PPR vector over all entities (indexed by raw entity id),
    /// computed on a single graph.
    pub fn scores(&self, kg: &KnowledgeGraph, seeds: &[EntityId]) -> Vec<f64> {
        self.scores_in(&GraphHandle::single(kg), seeds)
    }

    /// Full PPR vector over all entities on any backend. Edge rows come
    /// from each entity's home shard (complete on both backends), so the
    /// mass distribution is identical on single and sharded graphs.
    pub fn scores_in(&self, handle: &GraphHandle<'_>, seeds: &[EntityId]) -> Vec<f64> {
        let n = handle.entity_count();
        let mut rank = vec![0.0f64; n];
        if n == 0 || seeds.is_empty() {
            return rank;
        }
        let restart = 1.0 / seeds.len() as f64;
        for &s in seeds {
            rank[s.index()] = restart;
        }
        let mut next = vec![0.0f64; n];
        for _ in 0..self.iterations {
            next.iter_mut().for_each(|v| *v = 0.0);
            let mut dangling = 0.0;
            for e in handle.entity_ids() {
                let r = rank[e.index()];
                if r == 0.0 {
                    continue;
                }
                let deg = handle.degree(e);
                if deg == 0 {
                    dangling += r;
                    continue;
                }
                let share = (1.0 - self.alpha) * r / deg as f64;
                // zero-alloc scatter: per-target sums are invariant to the
                // visit order (all of e's shares are the same value), so
                // both backends produce identical mass
                handle.for_each_edge(e, |_, n| next[n.index()] += share);
            }
            // teleport mass: restart probability plus dangling mass
            let teleport = self.alpha + (1.0 - self.alpha) * dangling;
            for &s in seeds {
                next[s.index()] += teleport * restart;
            }
            std::mem::swap(&mut rank, &mut next);
        }
        rank
    }
}

impl EntityExpansion for PprExpansion {
    fn name(&self) -> &'static str {
        "ppr"
    }

    fn expand_in(
        &self,
        handle: &GraphHandle<'_>,
        seeds: &[EntityId],
        k: usize,
    ) -> Vec<(EntityId, f64)> {
        if seeds.is_empty() || k == 0 {
            return Vec::new();
        }
        // power iteration is a sequential global scatter; only the final
        // selection runs through the context's bounded heap
        let scores = self.scores_in(handle, seeds);
        select_top_k(
            scores.iter().enumerate().filter_map(|(i, &s)| {
                let e = EntityId::new(i as u32);
                (s > 0.0 && !seeds.contains(&e)).then_some((e, s))
            }),
            k,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivote_kg::KgBuilder;

    fn kg() -> KnowledgeGraph {
        let mut b = KgBuilder::new();
        let f1 = b.entity("f1");
        let f2 = b.entity("f2");
        let far = b.entity("far");
        let a = b.entity("A");
        let x = b.entity("x");
        let p = b.predicate("p");
        b.triple(f1, p, a);
        b.triple(f2, p, a);
        b.triple(far, p, x);
        b.finish()
    }

    #[test]
    fn mass_concentrates_near_seeds() {
        let kg = kg();
        let f1 = kg.entity("f1").unwrap();
        let out = PprExpansion::default().expand(&kg, &[f1], 10);
        assert!(!out.is_empty());
        // A (direct neighbour) first, then f2 (2 hops), far unreachable
        assert_eq!(out[0].0, kg.entity("A").unwrap());
        let names: Vec<&str> = out.iter().map(|&(e, _)| kg.entity_name(e)).collect();
        assert!(!names.contains(&"far"));
        assert!(!names.contains(&"x"));
    }

    #[test]
    fn scores_form_probability_like_mass() {
        let kg = kg();
        let f1 = kg.entity("f1").unwrap();
        let scores = PprExpansion::default().scores(&kg, &[f1]);
        let total: f64 = scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "mass conserved, got {total}");
        assert!(scores.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn empty_seed_set() {
        let kg = kg();
        assert!(PprExpansion::default().expand(&kg, &[], 5).is_empty());
    }

    #[test]
    fn dangling_nodes_do_not_lose_mass() {
        let mut b = KgBuilder::new();
        let a = b.entity("a");
        let sink = b.entity("sink");
        let p = b.predicate("p");
        b.triple(a, p, sink);
        let kg = b.finish();
        // sink has degree 1 (incoming counts), so make a true dangling case:
        // a graph where the seed is isolated.
        let scores = PprExpansion::default().scores(&kg, &[a]);
        let total: f64 = scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }
}

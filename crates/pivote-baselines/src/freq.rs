//! Feature-overlap frequency baseline.
//!
//! Scores a candidate by the *count* of semantic features it shares with
//! the seed set — PivotE's candidate machinery without discriminability
//! weighting or error tolerance. Isolates the contribution of the
//! ranking model itself (every candidate here is scored by raw overlap).

use crate::{select_top_k, EntityExpansion};
use pivote_core::GraphHandle;
use pivote_kg::EntityId;
use std::collections::HashMap;

/// The raw-overlap baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct FreqOverlapExpansion;

impl EntityExpansion for FreqOverlapExpansion {
    fn name(&self) -> &'static str {
        "freq-overlap"
    }

    fn expand_in(
        &self,
        handle: &GraphHandle<'_>,
        seeds: &[EntityId],
        k: usize,
    ) -> Vec<(EntityId, f64)> {
        if seeds.is_empty() || k == 0 {
            return Vec::new();
        }
        // count, per candidate, how many of the seeds' features it has
        let mut counts: HashMap<EntityId, f64> = HashMap::new();
        let mut seed_features: Vec<pivote_core::SemanticFeature> =
            seeds.iter().flat_map(|&s| handle.features_of(s)).collect();
        seed_features.sort_unstable();
        seed_features.dedup();
        for sf in seed_features {
            for &e in handle.feature_extent(sf).as_ref() {
                *counts.entry(e).or_default() += 1.0;
            }
        }
        select_top_k(counts.into_iter().filter(|(e, _)| !seeds.contains(e)), k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivote_kg::KgBuilder;

    #[test]
    fn counts_shared_features() {
        let mut b = KgBuilder::new();
        let f1 = b.entity("f1");
        let f2 = b.entity("f2");
        let f3 = b.entity("f3");
        let a = b.entity("A");
        let bb = b.entity("B");
        let starring = b.predicate("starring");
        b.triple(f1, starring, a);
        b.triple(f1, starring, bb);
        b.triple(f2, starring, a);
        b.triple(f2, starring, bb);
        b.triple(f3, starring, bb);
        let kg = b.finish();
        let f1 = kg.entity("f1").unwrap();
        let out = FreqOverlapExpansion.expand(&kg, &[f1], 10);
        assert_eq!(out[0].0, kg.entity("f2").unwrap());
        assert_eq!(out[0].1, 2.0); // shares A and B
        let f3_entry = out
            .iter()
            .find(|&&(e, _)| e == kg.entity("f3").unwrap())
            .unwrap();
        assert_eq!(f3_entry.1, 1.0);
    }

    #[test]
    fn empty_inputs() {
        let kg = KgBuilder::new().finish();
        assert!(FreqOverlapExpansion.expand(&kg, &[], 5).is_empty());
    }
}

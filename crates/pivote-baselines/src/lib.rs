//! # pivote-baselines — comparison systems for the PivotE experiments
//!
//! The paper positions PivotE against keyword/SPARQL entity search
//! systems (§4) and builds its recommendations on the set-expansion work
//! of \[1\]/\[6\]. To give the reproduction a measurable comparison shape,
//! this crate implements the standard entity-set-expansion baselines
//! behind one trait:
//!
//! - [`JaccardExpansion`] — neighbour-set Jaccard similarity;
//! - [`PprExpansion`] — personalized PageRank (random walk with restart);
//! - [`FreqOverlapExpansion`] — raw shared-feature counting;
//! - [`PivotEExpansion`] — the paper's model ([`pivote_core`]) adapted to
//!   the same trait for side-by-side evaluation.
//!
//! Every method executes through the shared, backend-agnostic
//! [`GraphHandle`](pivote_core::GraphHandle) substrate —
//! [`EntityExpansion::expand_in`] — so candidate scoring parallelizes
//! through the same scoped-thread fan-out, top-k selection uses the same
//! bounded heap, the PivotE variants reuse the memoized `p(π|c)`
//! densities, and every baseline runs unchanged (and bit-identically)
//! over a single graph or a sharded one.
//! [`EntityExpansion::expand`] is a convenience wrapper constructing a
//! private context; the evaluation harness builds one handle per graph
//! and shares it across all methods and ablations.
//!
//! The keyword-search baseline (BM25F) lives in `pivote-search` as
//! `Scorer::Bm25`.

#![warn(missing_docs)]

pub mod freq;
pub mod jaccard;
pub mod ppr;

use pivote_core::{Expander, GraphHandle, RankingConfig};
use pivote_kg::{EntityId, KnowledgeGraph};

pub use freq::FreqOverlapExpansion;
pub use jaccard::JaccardExpansion;
pub use ppr::PprExpansion;

/// A seed-set entity expansion method.
pub trait EntityExpansion {
    /// Short identifier used in experiment tables.
    fn name(&self) -> &'static str;

    /// Top-`k` entities similar to `seeds`, best first, seeds excluded,
    /// executed on a shared backend-agnostic [`GraphHandle`] (single
    /// graph or sharded — results are identical).
    fn expand_in(
        &self,
        handle: &GraphHandle<'_>,
        seeds: &[EntityId],
        k: usize,
    ) -> Vec<(EntityId, f64)>;

    /// [`EntityExpansion::expand_in`] with a fresh private single-graph
    /// context.
    fn expand(&self, kg: &KnowledgeGraph, seeds: &[EntityId], k: usize) -> Vec<(EntityId, f64)> {
        self.expand_in(&GraphHandle::single(kg), seeds, k)
    }
}

/// Order scored candidates best-first — `(score desc, id asc)` — keeping
/// only the top `k`, via the context's bounded-heap selection.
pub(crate) fn select_top_k(
    scored: impl Iterator<Item = (EntityId, f64)>,
    k: usize,
) -> Vec<(EntityId, f64)> {
    pivote_core::top_k_ranked(scored, k, |&(_, s)| s, |a, b| a.0.cmp(&b.0))
}

/// The paper's ranking model behind the common baseline trait.
#[derive(Debug, Clone, Copy)]
pub struct PivotEExpansion {
    /// The ranking configuration (use the ablation builders of
    /// [`RankingConfig`] to produce A1/A2 variants).
    pub config: RankingConfig,
    /// Display name (to distinguish ablations in tables).
    pub label: &'static str,
}

impl Default for PivotEExpansion {
    fn default() -> Self {
        Self {
            config: RankingConfig::default(),
            label: "pivote",
        }
    }
}

impl PivotEExpansion {
    /// The A1 ablation (no error tolerance).
    pub fn without_error_tolerance() -> Self {
        Self {
            config: RankingConfig::default().without_error_tolerance(),
            label: "pivote-noet",
        }
    }

    /// The A2 ablation (no discriminability).
    pub fn without_discriminability() -> Self {
        Self {
            config: RankingConfig::default().without_discriminability(),
            label: "pivote-nod",
        }
    }
}

impl EntityExpansion for PivotEExpansion {
    fn name(&self) -> &'static str {
        self.label
    }

    fn expand_in(
        &self,
        handle: &GraphHandle<'_>,
        seeds: &[EntityId],
        k: usize,
    ) -> Vec<(EntityId, f64)> {
        // the context's p(π|c) cache is config-independent, so ablation
        // variants sharing one context share all memoized densities
        let expander = Expander::with_handle(handle.clone(), self.config);
        expander
            .expand_seeds(seeds, k, 0)
            .entities
            .into_iter()
            .map(|re| (re.entity, re.score))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivote_kg::{generate, DatagenConfig};

    #[test]
    fn all_baselines_run_on_generated_kg() {
        let kg = generate(&DatagenConfig::tiny());
        let film = kg.type_id("Film").unwrap();
        let seeds = &kg.type_extent(film)[..2];
        let methods: Vec<Box<dyn EntityExpansion>> = vec![
            Box::new(JaccardExpansion),
            Box::new(PprExpansion::default()),
            Box::new(FreqOverlapExpansion),
            Box::new(PivotEExpansion::default()),
        ];
        for m in &methods {
            let out = m.expand(&kg, seeds, 5);
            assert!(!out.is_empty(), "{} returned nothing", m.name());
            assert!(out.len() <= 5);
            assert!(
                out.windows(2).all(|w| w[0].1 >= w[1].1),
                "{} not sorted",
                m.name()
            );
            assert!(
                out.iter().all(|(e, _)| !seeds.contains(e)),
                "{} leaked a seed",
                m.name()
            );
        }
    }

    #[test]
    fn shared_context_matches_private_context() {
        let kg = generate(&DatagenConfig::tiny());
        let film = kg.type_id("Film").unwrap();
        let seeds = &kg.type_extent(film)[..2];
        let shared = GraphHandle::single(&kg);
        let methods: Vec<Box<dyn EntityExpansion>> = vec![
            Box::new(JaccardExpansion),
            Box::new(PprExpansion::default()),
            Box::new(FreqOverlapExpansion),
            Box::new(PivotEExpansion::default()),
            Box::new(PivotEExpansion::without_error_tolerance()),
            Box::new(PivotEExpansion::without_discriminability()),
        ];
        for m in &methods {
            let private = m.expand(&kg, seeds, 5);
            let through_shared = m.expand_in(&shared, seeds, 5);
            assert_eq!(
                private.len(),
                through_shared.len(),
                "{} result size changed under a shared context",
                m.name()
            );
            for (a, b) in private.iter().zip(&through_shared) {
                assert_eq!(a.0, b.0, "{} entity order diverged", m.name());
                assert!((a.1 - b.1).abs() < 1e-12, "{} score diverged", m.name());
            }
        }
    }

    #[test]
    fn ablation_labels_differ() {
        assert_eq!(PivotEExpansion::default().name(), "pivote");
        assert_eq!(
            PivotEExpansion::without_error_tolerance().name(),
            "pivote-noet"
        );
        assert_eq!(
            PivotEExpansion::without_discriminability().name(),
            "pivote-nod"
        );
    }
}

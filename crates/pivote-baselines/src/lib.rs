//! # pivote-baselines — comparison systems for the PivotE experiments
//!
//! The paper positions PivotE against keyword/SPARQL entity search
//! systems (§4) and builds its recommendations on the set-expansion work
//! of \[1\]/\[6\]. To give the reproduction a measurable comparison shape,
//! this crate implements the standard entity-set-expansion baselines
//! behind one trait:
//!
//! - [`JaccardExpansion`] — neighbour-set Jaccard similarity;
//! - [`PprExpansion`] — personalized PageRank (random walk with restart);
//! - [`FreqOverlapExpansion`] — raw shared-feature counting;
//! - [`PivotEExpansion`] — the paper's model ([`pivote_core`]) adapted to
//!   the same trait for side-by-side evaluation.
//!
//! The keyword-search baseline (BM25F) lives in `pivote-search` as
//! `Scorer::Bm25`.

#![warn(missing_docs)]

pub mod freq;
pub mod jaccard;
pub mod ppr;

use pivote_core::{Expander, RankingConfig};
use pivote_kg::{EntityId, KnowledgeGraph};

pub use freq::FreqOverlapExpansion;
pub use jaccard::JaccardExpansion;
pub use ppr::PprExpansion;

/// A seed-set entity expansion method.
pub trait EntityExpansion {
    /// Short identifier used in experiment tables.
    fn name(&self) -> &'static str;

    /// Top-`k` entities similar to `seeds`, best first, seeds excluded.
    fn expand(&self, kg: &KnowledgeGraph, seeds: &[EntityId], k: usize) -> Vec<(EntityId, f64)>;
}

/// The paper's ranking model behind the common baseline trait.
#[derive(Debug, Clone, Copy)]
pub struct PivotEExpansion {
    /// The ranking configuration (use the ablation builders of
    /// [`RankingConfig`] to produce A1/A2 variants).
    pub config: RankingConfig,
    /// Display name (to distinguish ablations in tables).
    pub label: &'static str,
}

impl Default for PivotEExpansion {
    fn default() -> Self {
        Self {
            config: RankingConfig::default(),
            label: "pivote",
        }
    }
}

impl PivotEExpansion {
    /// The A1 ablation (no error tolerance).
    pub fn without_error_tolerance() -> Self {
        Self {
            config: RankingConfig::default().without_error_tolerance(),
            label: "pivote-noet",
        }
    }

    /// The A2 ablation (no discriminability).
    pub fn without_discriminability() -> Self {
        Self {
            config: RankingConfig::default().without_discriminability(),
            label: "pivote-nod",
        }
    }
}

impl EntityExpansion for PivotEExpansion {
    fn name(&self) -> &'static str {
        self.label
    }

    fn expand(&self, kg: &KnowledgeGraph, seeds: &[EntityId], k: usize) -> Vec<(EntityId, f64)> {
        let expander = Expander::new(kg, self.config);
        expander
            .expand_seeds(seeds, k, 0)
            .entities
            .into_iter()
            .map(|re| (re.entity, re.score))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivote_kg::{generate, DatagenConfig};

    #[test]
    fn all_baselines_run_on_generated_kg() {
        let kg = generate(&DatagenConfig::tiny());
        let film = kg.type_id("Film").unwrap();
        let seeds = &kg.type_extent(film)[..2];
        let methods: Vec<Box<dyn EntityExpansion>> = vec![
            Box::new(JaccardExpansion),
            Box::new(PprExpansion::default()),
            Box::new(FreqOverlapExpansion),
            Box::new(PivotEExpansion::default()),
        ];
        for m in &methods {
            let out = m.expand(&kg, seeds, 5);
            assert!(!out.is_empty(), "{} returned nothing", m.name());
            assert!(out.len() <= 5);
            assert!(
                out.windows(2).all(|w| w[0].1 >= w[1].1),
                "{} not sorted",
                m.name()
            );
            assert!(
                out.iter().all(|(e, _)| !seeds.contains(e)),
                "{} leaked a seed",
                m.name()
            );
        }
    }

    #[test]
    fn ablation_labels_differ() {
        assert_eq!(PivotEExpansion::default().name(), "pivote");
        assert_eq!(
            PivotEExpansion::without_error_tolerance().name(),
            "pivote-noet"
        );
        assert_eq!(
            PivotEExpansion::without_discriminability().name(),
            "pivote-nod"
        );
    }
}

//! Jaccard neighbour-overlap baseline.
//!
//! Scores a candidate by the average Jaccard similarity between its
//! neighbour set and each seed's neighbour set — the classic
//! structure-only set-expansion heuristic that ignores predicates,
//! directions and extent statistics. PivotE's semantic features should
//! beat it exactly where relation semantics matter.

use crate::{select_top_k, EntityExpansion};
use pivote_core::extent::intersect_len;
use pivote_core::GraphHandle;
use pivote_kg::EntityId;

/// The Jaccard baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct JaccardExpansion;

impl EntityExpansion for JaccardExpansion {
    fn name(&self) -> &'static str {
        "jaccard"
    }

    fn expand_in(
        &self,
        handle: &GraphHandle<'_>,
        seeds: &[EntityId],
        k: usize,
    ) -> Vec<(EntityId, f64)> {
        if seeds.is_empty() || k == 0 {
            return Vec::new();
        }
        let seed_neigh: Vec<Vec<EntityId>> = seeds.iter().map(|&s| handle.neighbours(s)).collect();
        // candidates: 2-hop — entities adjacent to any seed neighbour
        let mut candidates: Vec<EntityId> = Vec::new();
        for n in &seed_neigh {
            for &mid in n {
                candidates.extend(handle.neighbours(mid));
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        candidates.retain(|c| !seeds.contains(c));

        // per-candidate similarity is pure — fan it out over the context's
        // scoped worker threads; |A ∪ B| = |A| + |B| − |A ∩ B| avoids materializing
        // the union
        let scored = handle.par_map(&candidates, |&c| {
            let cn = handle.neighbours(c);
            let mut total = 0.0;
            for sn in &seed_neigh {
                let inter = intersect_len(&cn, sn) as f64;
                let uni = cn.len() as f64 + sn.len() as f64 - inter;
                if uni > 0.0 {
                    total += inter / uni;
                }
            }
            (c, total / seed_neigh.len() as f64)
        });
        select_top_k(scored.into_iter().filter(|&(_, s)| s > 0.0), k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivote_kg::{KgBuilder, KnowledgeGraph};

    fn kg() -> KnowledgeGraph {
        // f1, f2 share both actors; f3 shares one.
        let mut b = KgBuilder::new();
        let f1 = b.entity("f1");
        let f2 = b.entity("f2");
        let f3 = b.entity("f3");
        let a = b.entity("A");
        let bb = b.entity("B");
        let starring = b.predicate("starring");
        b.triple(f1, starring, a);
        b.triple(f1, starring, bb);
        b.triple(f2, starring, a);
        b.triple(f2, starring, bb);
        b.triple(f3, starring, bb);
        b.finish()
    }

    #[test]
    fn closer_neighbourhood_ranks_higher() {
        let kg = kg();
        let f1 = kg.entity("f1").unwrap();
        let out = JaccardExpansion.expand(&kg, &[f1], 10);
        assert_eq!(out[0].0, kg.entity("f2").unwrap());
        assert!(out[0].1 > 0.9, "f2 shares the full neighbourhood");
        let f3_pos = out
            .iter()
            .position(|&(e, _)| e == kg.entity("f3").unwrap())
            .unwrap();
        assert!(f3_pos > 0);
    }

    #[test]
    fn seeds_are_excluded_and_k_respected() {
        let kg = kg();
        let f1 = kg.entity("f1").unwrap();
        let out = JaccardExpansion.expand(&kg, &[f1], 1);
        assert_eq!(out.len(), 1);
        assert!(out.iter().all(|&(e, _)| e != f1));
    }

    #[test]
    fn empty_inputs() {
        let kg = kg();
        assert!(JaccardExpansion.expand(&kg, &[], 5).is_empty());
        let f1 = kg.entity("f1").unwrap();
        assert!(JaccardExpansion.expand(&kg, &[f1], 0).is_empty());
    }
}

//! The wire protocol: one JSON object per line, in both directions.
//!
//! Every request is an object with an `"op"` discriminator; every
//! response is an object with an `"ok"` bool. Scores cross the wire as
//! raw JSON numbers rendered with shortest-round-trip formatting, so a
//! client reading a score back gets the **bit-identical** `f64` the
//! engine computed — the serving layer inherits the workspace's
//! bit-identity contracts instead of weakening them to "approximately
//! equal after a network hop".
//!
//! Requests (fields marked `?` are optional):
//!
//! ```text
//! {"op":"rank",    "seeds":[names], "k_features"?:10, "k_entities"?:10}
//! {"op":"expand",  "seeds":[names], "type"?:"Film", "k"?:10}
//! {"op":"heatmap", "seeds":[names], "k_features"?:10, "k_entities"?:10}
//! {"op":"search",  "query":"...", "k"?:10}
//! {"op":"append",  "ntriples":"<s> <p> <o> .\n..."}
//! {"op":"retract", "ntriples":"<s> <p> <o> .\n..."}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! Error responses are `{"ok":false,"error":"..."}`; a malformed
//! N-Triples append or retract body additionally carries the 1-based
//! `"line"` within the submitted body, straight from the parser's
//! [`pivote_kg::ParseError`]. A retract body none of whose statements
//! matched anything stored is also an error response — the client
//! asked to delete something that does not exist.

use serde::Value;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Rank features and entities for a seed set (the paper's core
    /// recommendation operation).
    Rank {
        /// Seed entity names.
        seeds: Vec<String>,
        /// How many features to return.
        k_features: usize,
        /// How many entities to return.
        k_entities: usize,
    },
    /// Entity-set expansion: entities only, with an optional type filter.
    Expand {
        /// Seed entity names.
        seeds: Vec<String>,
        /// Restrict results to this type, when present.
        type_filter: Option<String>,
        /// How many entities to return.
        k: usize,
    },
    /// The entity × feature correlation matrix (paper Fig. 3-f).
    Heatmap {
        /// Seed entity names.
        seeds: Vec<String>,
        /// Feature axis length.
        k_features: usize,
        /// Entity axis length.
        k_entities: usize,
    },
    /// Keyword search over the five-field entity representation.
    Search {
        /// The keyword query.
        query: String,
        /// How many hits to return.
        k: usize,
    },
    /// Append an N-Triples delta to the live store.
    Append {
        /// The N-Triples body (may span many lines via `\n` escapes).
        ntriples: String,
    },
    /// Retract the statements of an N-Triples body from the live store
    /// (tombstoning them until the next compaction reclaims the space).
    Retract {
        /// The N-Triples body naming the statements to remove.
        ntriples: String,
    },
    /// Server/store observability snapshot.
    Stats,
    /// Graceful stop: persist warm state, then stop accepting.
    Shutdown,
}

fn str_field(v: &Value, name: &str) -> Result<String, String> {
    match v.field(name).map_err(|e| e.to_string())? {
        Value::Str(s) => Ok(s.clone()),
        other => Err(format!(
            "field `{name}` must be a string, got {}",
            other.kind()
        )),
    }
}

fn opt_str_field(v: &Value, name: &str) -> Result<Option<String>, String> {
    match v.field_opt(name) {
        Value::Null => Ok(None),
        Value::Str(s) => Ok(Some(s.clone())),
        other => Err(format!(
            "field `{name}` must be a string, got {}",
            other.kind()
        )),
    }
}

/// The largest count any request may ask for. A `k` above this is a
/// client error, not a bigger allocation: counts arrive as JSON doubles,
/// so without a ceiling `{"k":1e18}` is a perfectly integral number that
/// `as usize` happily saturates into a near-`usize::MAX` top-k budget.
pub const MAX_REQUEST_COUNT: usize = 10_000;

fn usize_field_or(v: &Value, name: &str, default: usize) -> Result<usize, String> {
    match v.field_opt(name) {
        Value::Null => Ok(default),
        Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 => {
            // compare in f64: MAX_REQUEST_COUNT is exactly representable,
            // and `*n as usize` on a huge double would saturate first
            if *n > MAX_REQUEST_COUNT as f64 {
                Err(format!(
                    "field `{name}` must be at most {MAX_REQUEST_COUNT}, got {n}"
                ))
            } else {
                Ok(*n as usize)
            }
        }
        other => Err(format!(
            "field `{name}` must be a non-negative integer, got {}",
            other.kind()
        )),
    }
}

fn name_list_field(v: &Value, name: &str) -> Result<Vec<String>, String> {
    match v.field(name).map_err(|e| e.to_string())? {
        Value::Arr(items) => items
            .iter()
            .map(|item| match item {
                Value::Str(s) => Ok(s.clone()),
                other => Err(format!(
                    "field `{name}` must be an array of strings, got a {} element",
                    other.kind()
                )),
            })
            .collect(),
        other => Err(format!(
            "field `{name}` must be an array, got {}",
            other.kind()
        )),
    }
}

impl Request {
    /// Parse one request line. Errors are client-facing messages for an
    /// `{"ok":false}` response — malformed JSON or an unknown/ill-typed
    /// op must never take the connection (or the server) down.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v: Value = serde_json::from_str(line).map_err(|e| format!("malformed JSON: {e}"))?;
        let op = str_field(&v, "op")?;
        match op.as_str() {
            "rank" => Ok(Request::Rank {
                seeds: name_list_field(&v, "seeds")?,
                k_features: usize_field_or(&v, "k_features", 10)?,
                k_entities: usize_field_or(&v, "k_entities", 10)?,
            }),
            "expand" => Ok(Request::Expand {
                seeds: name_list_field(&v, "seeds")?,
                type_filter: opt_str_field(&v, "type")?,
                k: usize_field_or(&v, "k", 10)?,
            }),
            "heatmap" => Ok(Request::Heatmap {
                seeds: name_list_field(&v, "seeds")?,
                k_features: usize_field_or(&v, "k_features", 10)?,
                k_entities: usize_field_or(&v, "k_entities", 10)?,
            }),
            "search" => Ok(Request::Search {
                query: str_field(&v, "query")?,
                k: usize_field_or(&v, "k", 10)?,
            }),
            "append" => Ok(Request::Append {
                ntriples: str_field(&v, "ntriples")?,
            }),
            "retract" => Ok(Request::Retract {
                ntriples: str_field(&v, "ntriples")?,
            }),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op {other:?}")),
        }
    }

    /// Whether this op is a pure function of the store at one generation
    /// — the ops the server may serve from its generation-keyed response
    /// memo. Writes mutate, `stats` reads live counters, and `shutdown`
    /// has a side effect: none of them may ever be replayed from a
    /// cache.
    pub fn is_deterministic_read(&self) -> bool {
        matches!(
            self,
            Request::Rank { .. }
                | Request::Expand { .. }
                | Request::Heatmap { .. }
                | Request::Search { .. }
        )
    }
}

/// An outgoing response under construction — an ordered JSON object that
/// always leads with `"ok"`.
#[derive(Debug, Clone)]
pub struct Reply(Vec<(String, Value)>);

impl Reply {
    /// A success response.
    pub fn ok() -> Self {
        Reply(vec![("ok".to_owned(), Value::Bool(true))])
    }

    /// An error response carrying a client-facing message.
    pub fn error(message: impl Into<String>) -> Self {
        Reply(vec![
            ("ok".to_owned(), Value::Bool(false)),
            ("error".to_owned(), Value::Str(message.into())),
        ])
    }

    /// Attach a field.
    pub fn with(mut self, key: &str, value: Value) -> Self {
        self.0.push((key.to_owned(), value));
        self
    }

    /// Attach an integer field.
    pub fn num(self, key: &str, n: u64) -> Self {
        self.with(key, Value::Num(n as f64))
    }

    /// Render to the single line that goes on the wire (no trailing
    /// newline).
    pub fn render(self) -> String {
        serde_json::to_string(&Value::Obj(self.0)).expect("reply serializes")
    }
}

/// `[[name, score], ...]` — the shape every ranked list crosses the wire
/// in.
pub fn scored_names(items: impl IntoIterator<Item = (String, f64)>) -> Value {
    Value::Arr(
        items
            .into_iter()
            .map(|(name, score)| Value::Arr(vec![Value::Str(name), Value::Num(score)]))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse_with_defaults() {
        let r = Request::parse(r#"{"op":"rank","seeds":["A","B"]}"#).unwrap();
        assert_eq!(
            r,
            Request::Rank {
                seeds: vec!["A".into(), "B".into()],
                k_features: 10,
                k_entities: 10
            }
        );
        let r = Request::parse(r#"{"op":"search","query":"tom hanks","k":3}"#).unwrap();
        assert_eq!(
            r,
            Request::Search {
                query: "tom hanks".into(),
                k: 3
            }
        );
        assert_eq!(Request::parse(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
        let r = Request::parse(r#"{"op":"retract","ntriples":"<a> <b> <c> ."}"#).unwrap();
        assert_eq!(
            r,
            Request::Retract {
                ntriples: "<a> <b> <c> .".into()
            }
        );
        let r = Request::parse(r#"{"op":"expand","seeds":["A"],"type":"Film"}"#).unwrap();
        assert_eq!(
            r,
            Request::Expand {
                seeds: vec!["A".into()],
                type_filter: Some("Film".into()),
                k: 10
            }
        );
    }

    #[test]
    fn malformed_requests_are_messages_not_panics() {
        for bad in [
            "not json at all",
            "{}",
            r#"{"op":"no_such_op"}"#,
            r#"{"op":"rank"}"#,
            r#"{"op":"rank","seeds":"A"}"#,
            r#"{"op":"rank","seeds":[1]}"#,
            r#"{"op":"search","query":"x","k":-1}"#,
            r#"{"op":"search","query":"x","k":1.5}"#,
            r#"{"op":"search","query":"x","k":10001}"#,
            r#"{"op":"search","query":"x","k":1e18}"#,
            r#"{"op":"rank","seeds":["A"],"k_entities":100000000000000000}"#,
            r#"{"op":"rank","seeds":["A"],"k_features":1e300}"#,
            r#"{"op":"expand","seeds":["A"],"k":1e18}"#,
            r#"{"op":"heatmap","seeds":["A"],"k_entities":99999999999}"#,
            r#"{"op":"append"}"#,
            r#"{"op":"retract"}"#,
            r#"{"op":"retract","ntriples":7}"#,
        ] {
            let err = Request::parse(bad).expect_err(bad);
            assert!(!err.is_empty());
        }
    }

    #[test]
    fn count_ceiling_is_inclusive() {
        let r = Request::parse(&format!(
            r#"{{"op":"search","query":"x","k":{MAX_REQUEST_COUNT}}}"#
        ))
        .unwrap();
        assert_eq!(
            r,
            Request::Search {
                query: "x".into(),
                k: MAX_REQUEST_COUNT
            }
        );
        let err = Request::parse(&format!(
            r#"{{"op":"search","query":"x","k":{}}}"#,
            MAX_REQUEST_COUNT + 1
        ))
        .unwrap_err();
        assert!(err.contains("at most"), "{err}");
    }

    #[test]
    fn replies_render_ok_first() {
        let line = Reply::ok().num("generation", 3).render();
        assert_eq!(line, r#"{"ok":true,"generation":3}"#);
        let line = Reply::error("boom").render();
        assert_eq!(line, r#"{"ok":false,"error":"boom"}"#);
    }

    #[test]
    fn scores_roundtrip_bit_identically_through_json() {
        let score = -7.581_504_805_231_83_f64;
        let line = Reply::ok()
            .with("hits", scored_names([("Forrest_Gump".to_owned(), score)]))
            .render();
        let v: Value = serde_json::from_str(&line).unwrap();
        let hits = v.field("hits").unwrap();
        let Value::Arr(hits) = hits else { panic!() };
        let Value::Arr(hit) = &hits[0] else { panic!() };
        let Value::Num(got) = hit[1] else { panic!() };
        assert_eq!(got.to_bits(), score.to_bits());
    }
}

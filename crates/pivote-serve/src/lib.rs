//! # pivote-serve — the serving layer over a [`pivote_core::LiveStore`]
//!
//! A `std::net` TCP server (no async runtime) speaking a line-delimited
//! JSON protocol that exposes the whole live stack to remote clients:
//!
//! | op | backed by |
//! |---|---|
//! | `rank` | [`pivote_core::Expander`] — features + entities for seeds |
//! | `expand` | entity-set expansion with an optional type filter |
//! | `heatmap` | [`pivote_core::HeatMap`] — the Fig. 3-f matrix |
//! | `search` | [`pivote_explore::LiveSearchCache`] — five-field keyword search |
//! | `append` | the N-Triples delta parser + [`pivote_core::LiveStore::append`] |
//! | `stats` | generation / shard / density-cache probes |
//! | `shutdown` | graceful stop, persisting warm state |
//!
//! All connections share **one** store and **one** density cache, so
//! the memoization and invalidation guarantees of the library hold
//! across clients; the server owns the background
//! [`pivote_core::MaintenanceHandle`], so compaction never runs on a
//! request path. See [`server`] for the shutdown/warm-restart
//! semantics and [`protocol`] for the wire format.
//!
//! Try it by hand (`nc` is all a client needs):
//!
//! ```text
//! $ cargo run -p pivote-serve -- --data data/sample.nt --addr 127.0.0.1:7878
//! $ printf '%s\n' '{"op":"search","query":"forrest gump","k":3}' | nc 127.0.0.1 7878
//! {"ok":true,"generation":0,"hits":[["Forrest_Gump",-7.58150480523183],...]}
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{num_field, response_ok, scored_list, Client};
pub use protocol::{Reply, Request, MAX_REQUEST_COUNT};
pub use server::{
    backend_fingerprint, store_with_warm_state, MaintenanceConfig, ServeConfig, Server,
    ShutdownReport,
};
